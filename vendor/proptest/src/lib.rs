//! Offline stand-in for the `proptest` crate.
//!
//! The build environment for this repository cannot reach crates.io, so this
//! vendored crate implements the subset of the proptest API the workspace
//! uses: the [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros,
//! numeric range and `prop::collection::vec` strategies, tuple composition,
//! [`test_runner::TestRunner`], and `ProptestConfig::with_cases`.
//!
//! Differences from upstream worth knowing about:
//!
//! * Cases are generated from a *fixed* seed derived from the test body's
//!   source location, so failures reproduce exactly — there is no
//!   persistence file and no environment-variable seeding.
//! * There is no shrinking: a failing case reports the inputs that failed
//!   as generated.
//! * The default case count is 64 (upstream: 256), keeping `cargo test`
//!   latency manageable for the heavier simulation-driven properties.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// How many cases [`ProptestConfig::default`] runs.
pub const DEFAULT_CASES: u32 = 64;

/// Test-suite configuration (the subset upstream `ProptestConfig` exposes
/// that this workspace uses).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: DEFAULT_CASES,
        }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The deterministic generator behind every strategy.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x5DEE_CE66_D1CE_4E5B,
        }
    }

    /// The next 64 raw bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, span)`.
    pub fn below(&mut self, span: u128) -> u128 {
        assert!(span > 0, "span must be positive");
        ((u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())) % span
    }
}

/// Hashes a string (FNV-1a) — used to derive per-test seeds from source
/// locations so every property has its own reproducible stream.
pub fn seed_for(tag: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in tag.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The type of value produced.
    type Value: fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                (self.start as i128).wrapping_add(rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128).wrapping_sub(start as i128) as u128 + 1;
                (start as i128).wrapping_add(rng.below(span) as i128) as $t
            }
        }
    )*};
}
int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                start + (rng.unit_f64() as $t) * (end - start)
            }
        }
    )*};
}
float_strategy!(f32, f64);

/// A strategy producing a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::fmt;
    use std::ops::{Range, RangeInclusive};

    /// The number of elements a collection strategy produces.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a random length.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// lengths are uniform in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: fmt::Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi_inclusive - self.size.lo + 1) as u128;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test execution: the engine behind [`proptest!`] and the standalone
/// [`test_runner::TestRunner`].
pub mod test_runner {
    use super::{ProptestConfig, Strategy, TestRng};
    use std::fmt;

    /// Why one generated case failed.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// A failed assertion/requirement with the given explanation.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError(reason.into())
        }

        /// The explanation.
        pub fn message(&self) -> &str {
            &self.0
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Re-export so `test_runner::Config`-style call sites work.
    pub type Config = ProptestConfig;

    /// Runs a strategy against a property closure for the configured number
    /// of cases.
    #[derive(Debug, Default)]
    pub struct TestRunner {
        config: ProptestConfig,
    }

    impl TestRunner {
        /// A runner with explicit configuration.
        pub fn new(config: ProptestConfig) -> Self {
            TestRunner { config }
        }

        /// Runs `test` against `cases` values drawn from `strategy`.
        /// Returns the first failure, formatted with the failing input.
        pub fn run<S: Strategy, F>(&mut self, strategy: &S, mut test: F) -> Result<(), String>
        where
            F: FnMut(S::Value) -> Result<(), TestCaseError>,
        {
            let mut rng = TestRng::from_seed(super::seed_for("proptest::TestRunner"));
            for case in 0..self.config.cases {
                let value = strategy.generate(&mut rng);
                let repr = format!("{value:?}");
                if let Err(e) = test(value) {
                    return Err(format!(
                        "property failed on case {case}/{}: {e}\n  input: {repr}",
                        self.config.cases
                    ));
                }
            }
            Ok(())
        }
    }
}

/// Everything a property-test module usually imports.
pub mod prelude {
    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy,
    };

    /// The `prop::` namespace (`prop::collection::vec(...)`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a property, failing the *case* (with its
/// inputs reported) rather than panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts two expressions are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Asserts two expressions are unequal inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Skips the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Ok(());
        }
    };
}

/// Internal: applies a property closure to one generated value. Routing the
/// call through a generic `fn` (instead of invoking a closure literal
/// directly) lets the closure's argument type be inferred from `value`,
/// which keeps method calls inside property bodies type-checkable.
#[doc(hidden)]
pub fn __run_case<V, F>(value: V, property: F) -> Result<(), test_runner::TestCaseError>
where
    F: FnOnce(V) -> Result<(), test_runner::TestCaseError>,
{
    property(value)
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body against generated inputs.
#[macro_export]
macro_rules! proptest {
    // With a leading #![proptest_config(...)] attribute.
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!($config; $($rest)*);
    };
    // Without configuration: default config.
    ($($rest:tt)*) => {
        $crate::__proptest_fns!($crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Internal: expands each property function; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($config:expr;) => {};
    ($config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        // Callers write `#[test]` themselves (as with the real proptest),
        // so attributes pass through rather than being added here.
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::from_seed($crate::seed_for(concat!(
                module_path!(), "::", stringify!($name)
            )));
            for case in 0..config.cases {
                let generated = ($($crate::Strategy::generate(&($strategy), &mut rng),)+);
                let repr = format!("{generated:?}");
                let result = $crate::__run_case(generated, |($($arg,)+)| {
                    $body
                    ::core::result::Result::Ok(())
                });
                if let ::core::result::Result::Err(e) = result {
                    panic!(
                        "property {} failed on case {case}/{}: {e}\n  inputs: {repr}",
                        stringify!($name),
                        config.cases
                    );
                }
            }
        }
        $crate::__proptest_fns!($config; $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..1000 {
            let v = (3u8..7).generate(&mut rng);
            assert!((3..7).contains(&v));
            let w = (0.5f64..2.5).generate(&mut rng);
            assert!((0.5..2.5).contains(&w));
            let x = (10i64..=12).generate(&mut rng);
            assert!((10..=12).contains(&x));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let s = collection::vec(0u32..5, 2..6);
        let mut rng = TestRng::from_seed(2);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn runner_reports_failures_with_input() {
        let mut runner = test_runner::TestRunner::default();
        let err = runner
            .run(&(0u8..10), |v| {
                prop_assert!(v < 5, "too big: {v}");
                Ok(())
            })
            .unwrap_err();
        assert!(err.contains("too big"), "{err}");
        assert!(err.contains("input:"), "{err}");
    }

    #[test]
    fn runner_accepts_tuples() {
        let mut runner = test_runner::TestRunner::default();
        runner
            .run(&(0u8..10, 0.0f64..1.0), |(a, b)| {
                prop_assert!(a < 10);
                prop_assert!((0.0..1.0).contains(&b));
                Ok(())
            })
            .unwrap();
    }

    proptest! {
        #[test]
        fn macro_generates_and_checks(a in 0u32..100, v in prop::collection::vec(1u8..4, 1..10)) {
            prop_assert!(a < 100);
            prop_assert!(!v.is_empty());
            prop_assert_eq!(v.len(), v.iter().map(|_| 1usize).sum::<usize>());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn macro_respects_config(x in 0u8..=255) {
            prop_assume!(x > 0);
            prop_assert!(u16::from(x) <= 255);
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failing_property_panics_with_context() {
        mod inner {
            #[allow(unused_imports)]
            use crate::prelude::*;
            proptest! {
                #[test]
                fn always_fails(x in 0u8..10) {
                    prop_assert!(x > 100, "x was {x}");
                }
            }
            pub fn run() {
                always_fails();
            }
        }
        inner::run();
    }
}
