//! Offline stand-in for `serde`.
//!
//! The build environment for this repository has no crates.io access. The
//! workspace uses serde only to mark its wire-protocol and metrics types as
//! serializable (`#[derive(Serialize, Deserialize)]`); nothing actually
//! serializes through serde at runtime. This shim therefore provides the
//! two trait names with blanket implementations, plus no-op derive macros,
//! so the annotations keep compiling and keep documenting intent.
//!
//! If real serialization is ever needed offline, the hand-rolled encoders
//! live next to the types themselves (see `flare_core::messages`).

#![forbid(unsafe_code)]

/// Marker: the type is part of a serializable schema.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker: the type can be reconstructed from its serialized form.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

pub use serde_derive::{Deserialize, Serialize};
