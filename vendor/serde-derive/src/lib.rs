//! Offline stand-in for `serde_derive`.
//!
//! The real derives generate `impl Serialize`/`impl Deserialize` bodies;
//! this workspace's vendored `serde` defines those traits with blanket
//! implementations (see `vendor/serde`), so the derives here only need to
//! *exist* for `#[derive(Serialize, Deserialize)]` to keep compiling. They
//! deliberately emit nothing.

use proc_macro::TokenStream;

/// No-op `Serialize` derive: the vendored `serde::Serialize` trait is
/// blanket-implemented, so there is nothing to generate.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive: the vendored `serde::Deserialize` trait is
/// blanket-implemented, so there is nothing to generate.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
