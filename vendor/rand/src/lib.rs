//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! this vendored crate re-implements the (small) subset of the `rand` 0.8
//! API the workspace actually uses: [`rngs::SmallRng`], the [`Rng`] and
//! [`SeedableRng`] traits, uniform `gen`/`gen_range` sampling for the
//! primitive types, and `sample_iter(Standard)`.
//!
//! The generator is xoshiro256++ seeded through splitmix64 — the same
//! construction real `SmallRng` uses on 64-bit targets. Streams are fully
//! deterministic for a given seed, which is the property every simulation
//! in this workspace relies on. Exact bit-compatibility with upstream
//! `rand` output is *not* a goal (and nothing here depends on it).

#![forbid(unsafe_code)]

/// A seedable random number generator (the subset of `rand::SeedableRng`
/// this workspace uses).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Marker for distributions that can be sampled from a [`Rng`].
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Uniform distributions over primitive types.
pub mod distributions {
    pub use super::{Distribution, Standard};
}

/// The standard distribution: uniform over all values of an integer type,
/// uniform in `[0, 1)` for floats.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

/// Types [`Standard`] can produce.
pub trait StandardSample {
    /// Draws one value from `rng`'s output stream.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// The raw 64-bit output stream every generator provides.
pub trait RngCore {
    /// The next 64 raw bits.
    fn next_u64(&mut self) -> u64;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl<T: StandardSample> Distribution<T> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
        T::from_rng(rng)
    }
}

/// A range that [`Rng::gen_range`] can sample uniformly.
pub trait SampleRange<T> {
    /// Draws one value in the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let v = u128::from_rng(rng) % span;
                (self.start as i128).wrapping_add(v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range of a 128-bit type.
                    return u128::from_rng(rng) as $t;
                }
                let v = u128::from_rng(rng) % span;
                (start as i128).wrapping_add(v as i128) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as StandardSample>::from_rng(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let u = <$t as StandardSample>::from_rng(rng);
                start + u * (end - start)
            }
        }
    )*};
}
float_range!(f32, f64);

/// User-facing sampling methods (the subset of `rand::Rng` this workspace
/// uses), blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the [`Standard`] distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        f64::from_rng(self) < p
    }

    /// An iterator of samples from `dist`.
    fn sample_iter<T, D: Distribution<T>>(self, dist: D) -> SampleIter<Self, D, T>
    where
        Self: Sized,
    {
        SampleIter {
            rng: self,
            dist,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Iterator returned by [`Rng::sample_iter`].
#[derive(Debug)]
pub struct SampleIter<R, D, T> {
    rng: R,
    dist: D,
    _marker: std::marker::PhantomData<T>,
}

impl<R: Rng, D: Distribution<T>, T> Iterator for SampleIter<R, D, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        Some(self.dist.sample(&mut self.rng))
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn floats_are_unit_interval() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn int_ranges_hit_bounds_and_stay_inside() {
        let mut r = SmallRng::seed_from_u64(9);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let v = r.gen_range(3u64..=5);
            assert!((3..=5).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 5;
        }
        assert!(seen_lo && seen_hi);
        for _ in 0..1_000 {
            let v = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn float_ranges_stay_inside() {
        let mut r = SmallRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let v = r.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&v));
        }
    }

    #[test]
    fn gen_bool_probability_plausible() {
        let mut r = SmallRng::seed_from_u64(13);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "{frac}");
    }

    #[test]
    fn sample_iter_matches_gen() {
        let seq: Vec<u64> = SmallRng::seed_from_u64(5)
            .sample_iter(super::Standard)
            .take(4)
            .collect();
        let mut r = SmallRng::seed_from_u64(5);
        let direct: Vec<u64> = (0..4).map(|_| r.gen()).collect();
        assert_eq!(seq, direct);
    }
}
