//! Offline stand-in for the `criterion` crate.
//!
//! The build environment for this repository cannot reach crates.io, so
//! this vendored crate implements the subset of the Criterion API the
//! workspace's benches use — `benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros — as a plain timing loop.
//!
//! Statistics are deliberately simple: each benchmark runs a warm-up pass
//! and `sample_size` timed samples, then prints the mean and min per-sample
//! iteration time. There is no outlier analysis, plotting, or baseline
//! comparison; the point is that `cargo bench` produces comparable numbers
//! without any external dependency.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A benchmark `name` at parameter `parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        let mut id = name.into();
        let _ = write!(id, "/{parameter}");
        BenchmarkId { id }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Runs the measured closure and accumulates timing samples.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`: one warm-up call, then `sample_size` measured calls.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    fn report(&self, id: &str, samples: &[Duration]) {
        if samples.is_empty() {
            println!("{}/{id}: no samples", self.name);
            return;
        }
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = samples.iter().min().copied().unwrap_or_default();
        println!(
            "{}/{id}: mean {mean:?}, min {min:?} ({} samples)",
            self.name,
            samples.len()
        );
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        self.report(&id.id, &bencher.samples);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher, input);
        self.report(&id.id, &bencher.samples);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {
        let _ = &self.criterion;
    }
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares a group of benchmark functions, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_time_and_report() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            });
        });
        group.finish();
        // One warm-up + three samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::new("sq", 7), &7u64, |b, &x| {
            b.iter(|| x * x);
        });
        group.finish();
    }

    #[test]
    fn ids_format_with_parameters() {
        let id = BenchmarkId::new("exact", 64);
        assert_eq!(id.id, "exact/64");
    }
}
