//! Shared physical quantities: bit rates and byte counts.
//!
//! Every crate in the workspace moves data around, so the unit newtypes live
//! in the kernel crate. [`Rate`] is a bit rate in bits/second backed by `f64`
//! (rates are the output of estimators and optimizers, which are inherently
//! fractional); [`ByteCount`] is an exact byte tally backed by `u64`.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use crate::TimeDelta;

/// A bit rate in bits per second.
///
/// # Example
///
/// ```
/// use flare_sim::units::Rate;
///
/// let r = Rate::from_kbps(790.0);
/// assert_eq!(r.as_bps(), 790_000.0);
/// assert_eq!(r.as_kbps(), 790.0);
/// assert!(Rate::from_mbps(1.0) > r);
/// ```
#[derive(Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Rate(f64);

impl Rate {
    /// The zero rate.
    pub const ZERO: Rate = Rate(0.0);

    /// Creates a rate from bits per second.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `bps` is negative or NaN.
    pub fn from_bps(bps: f64) -> Self {
        debug_assert!(bps >= 0.0 && !bps.is_nan(), "rate must be non-negative");
        Rate(bps)
    }

    /// Creates a rate from kilobits per second.
    pub fn from_kbps(kbps: f64) -> Self {
        Rate::from_bps(kbps * 1e3)
    }

    /// Creates a rate from megabits per second.
    pub fn from_mbps(mbps: f64) -> Self {
        Rate::from_bps(mbps * 1e6)
    }

    /// Returns the rate in bits per second.
    pub fn as_bps(self) -> f64 {
        self.0
    }

    /// Returns the rate in kilobits per second.
    pub fn as_kbps(self) -> f64 {
        self.0 / 1e3
    }

    /// Returns the rate in megabits per second.
    pub fn as_mbps(self) -> f64 {
        self.0 / 1e6
    }

    /// Returns the number of whole bytes transferred at this rate over `dt`.
    pub fn bytes_over(self, dt: TimeDelta) -> ByteCount {
        ByteCount::new((self.0 * dt.as_secs_f64() / 8.0).floor() as u64)
    }

    /// Returns the smaller of two rates.
    pub fn min(self, other: Rate) -> Rate {
        Rate(self.0.min(other.0))
    }

    /// Returns the larger of two rates.
    pub fn max(self, other: Rate) -> Rate {
        Rate(self.0.max(other.0))
    }

    /// Returns `true` if the rate is exactly zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }
}

impl Add for Rate {
    type Output = Rate;
    fn add(self, rhs: Rate) -> Rate {
        Rate(self.0 + rhs.0)
    }
}

impl AddAssign for Rate {
    fn add_assign(&mut self, rhs: Rate) {
        self.0 += rhs.0;
    }
}

impl Sub for Rate {
    type Output = Rate;
    /// Saturating at zero: rates are never negative.
    fn sub(self, rhs: Rate) -> Rate {
        Rate((self.0 - rhs.0).max(0.0))
    }
}

impl Mul<f64> for Rate {
    type Output = Rate;
    fn mul(self, rhs: f64) -> Rate {
        Rate::from_bps(self.0 * rhs)
    }
}

impl Div<f64> for Rate {
    type Output = Rate;
    fn div(self, rhs: f64) -> Rate {
        Rate::from_bps(self.0 / rhs)
    }
}

impl Div<Rate> for Rate {
    type Output = f64;
    /// Dimensionless ratio of two rates.
    fn div(self, rhs: Rate) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Rate {
    fn sum<I: Iterator<Item = Rate>>(iter: I) -> Rate {
        iter.fold(Rate::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for Rate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}kbps", self.as_kbps())
    }
}

impl fmt::Display for Rate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e6 {
            write!(f, "{:.2} Mbps", self.as_mbps())
        } else {
            write!(f, "{:.0} kbps", self.as_kbps())
        }
    }
}

/// An exact count of bytes.
///
/// # Example
///
/// ```
/// use flare_sim::units::{ByteCount, Rate};
/// use flare_sim::TimeDelta;
///
/// // A 10-second segment at 790 kbps is 987,500 bytes.
/// let seg = Rate::from_kbps(790.0).bytes_over(TimeDelta::from_secs(10));
/// assert_eq!(seg, ByteCount::new(987_500));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ByteCount(u64);

impl ByteCount {
    /// The zero count.
    pub const ZERO: ByteCount = ByteCount(0);

    /// Creates a byte count.
    pub const fn new(bytes: u64) -> Self {
        ByteCount(bytes)
    }

    /// Returns the raw number of bytes.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the count in bits, saturating at `u64::MAX` (greedy flows are
    /// modelled with effectively infinite backlogs).
    pub const fn as_bits(self) -> u64 {
        self.0.saturating_mul(8)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: ByteCount) -> ByteCount {
        ByteCount(self.0.saturating_sub(rhs.0))
    }

    /// Returns the smaller of two counts.
    pub fn min(self, other: ByteCount) -> ByteCount {
        ByteCount(self.0.min(other.0))
    }

    /// Returns the average rate achieved by transferring this many bytes over
    /// `dt`, or zero for an empty interval.
    pub fn rate_over(self, dt: TimeDelta) -> Rate {
        if dt.is_zero() {
            Rate::ZERO
        } else {
            Rate::from_bps(self.as_bits() as f64 / dt.as_secs_f64())
        }
    }

    /// Returns `true` if the count is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for ByteCount {
    type Output = ByteCount;
    fn add(self, rhs: ByteCount) -> ByteCount {
        ByteCount(self.0 + rhs.0)
    }
}

impl AddAssign for ByteCount {
    fn add_assign(&mut self, rhs: ByteCount) {
        self.0 += rhs.0;
    }
}

impl Sum for ByteCount {
    fn sum<I: Iterator<Item = ByteCount>>(iter: I) -> ByteCount {
        iter.fold(ByteCount::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for ByteCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}B", self.0)
    }
}

impl fmt::Display for ByteCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} bytes", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_unit_conversions() {
        let r = Rate::from_mbps(2.5);
        assert_eq!(r.as_kbps(), 2500.0);
        assert_eq!(r.as_bps(), 2_500_000.0);
        assert_eq!(Rate::from_kbps(100.0).as_mbps(), 0.1);
    }

    #[test]
    fn rate_arithmetic() {
        let a = Rate::from_kbps(100.0);
        let b = Rate::from_kbps(250.0);
        assert_eq!((a + b).as_kbps(), 350.0);
        assert_eq!((b - a).as_kbps(), 150.0);
        // Subtraction saturates at zero.
        assert_eq!((a - b), Rate::ZERO);
        assert_eq!((a * 3.0).as_kbps(), 300.0);
        assert_eq!((b / 2.0).as_kbps(), 125.0);
        assert_eq!(b / a, 2.5);
    }

    #[test]
    fn rate_min_max_sum() {
        let rates = [
            Rate::from_kbps(1.0),
            Rate::from_kbps(2.0),
            Rate::from_kbps(3.0),
        ];
        assert_eq!(rates.iter().copied().sum::<Rate>().as_kbps(), 6.0);
        assert_eq!(rates[0].max(rates[2]), rates[2]);
        assert_eq!(rates[0].min(rates[2]), rates[0]);
    }

    #[test]
    fn bytes_over_matches_hand_computation() {
        // 1 Mbps over 1 ms = 125 bytes.
        assert_eq!(
            Rate::from_mbps(1.0).bytes_over(TimeDelta::from_millis(1)),
            ByteCount::new(125)
        );
        // Fractional byte counts are floored.
        assert_eq!(
            Rate::from_bps(9.0).bytes_over(TimeDelta::from_secs(1)),
            ByteCount::new(1)
        );
    }

    #[test]
    fn rate_over_inverts_bytes_over() {
        let dt = TimeDelta::from_secs(10);
        let bytes = Rate::from_kbps(790.0).bytes_over(dt);
        let back = bytes.rate_over(dt);
        assert!((back.as_kbps() - 790.0).abs() < 0.01);
    }

    #[test]
    fn rate_over_empty_interval_is_zero() {
        assert_eq!(ByteCount::new(1000).rate_over(TimeDelta::ZERO), Rate::ZERO);
    }

    #[test]
    fn byte_count_arithmetic() {
        let a = ByteCount::new(10);
        let b = ByteCount::new(4);
        assert_eq!((a + b).as_u64(), 14);
        assert_eq!(a.saturating_sub(b).as_u64(), 6);
        assert_eq!(b.saturating_sub(a), ByteCount::ZERO);
        assert_eq!(a.min(b), b);
        assert_eq!(a.as_bits(), 80);
        assert!(ByteCount::ZERO.is_zero());
    }

    #[test]
    fn byte_count_sum() {
        let total: ByteCount = (1..=4).map(ByteCount::new).sum();
        assert_eq!(total, ByteCount::new(10));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Rate::from_kbps(790.0).to_string(), "790 kbps");
        assert_eq!(Rate::from_mbps(2.5).to_string(), "2.50 Mbps");
        assert_eq!(ByteCount::new(5).to_string(), "5 bytes");
        assert_eq!(format!("{:?}", ByteCount::new(5)), "5B");
    }
}
