//! Deterministic seed derivation for per-entity random streams.
//!
//! Every simulation in this workspace takes a single master `u64` seed. Each
//! simulated entity (UE, channel process, scheduler, workload generator)
//! derives its own independent stream with [`derive_seed`], so adding or
//! removing one entity never perturbs the randomness seen by the others.
//!
//! # Example
//!
//! ```
//! use flare_sim::rng::{derive_seed, stream};
//! use rand::Rng;
//!
//! let master = 42;
//! let mut ue0 = stream(master, "ue", 0);
//! let mut ue1 = stream(master, "ue", 1);
//! // Independent, reproducible streams.
//! assert_ne!(ue0.gen::<u64>(), ue1.gen::<u64>());
//! assert_eq!(derive_seed(master, "ue", 0), derive_seed(master, "ue", 0));
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// One round of the splitmix64 output function.
///
/// Splitmix64 is a bijective mixer with full avalanche, which makes it a good
/// cheap way to turn structured `(seed, tag, index)` triples into
/// decorrelated seeds.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Hashes an arbitrary byte string into a `u64` (FNV-1a).
fn hash_tag(tag: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in tag.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Derives a child seed from a master seed, a textual tag, and an index.
///
/// The derivation is pure: equal inputs always yield equal outputs, and any
/// change to master, tag, or index yields an unrelated output.
pub fn derive_seed(master: u64, tag: &str, index: u64) -> u64 {
    splitmix64(splitmix64(master ^ hash_tag(tag)).wrapping_add(index))
}

/// Creates an independent [`SmallRng`] stream for entity `(tag, index)`.
pub fn stream(master: u64, tag: &str, index: u64) -> SmallRng {
    SmallRng::seed_from_u64(derive_seed(master, tag, index))
}

/// Samples a standard-normal variate via the Box-Muller transform.
///
/// Kept in the kernel so simulation crates need no extra distribution
/// dependency for the occasional Gaussian (shadowing, jitter).
pub fn standard_normal<R: rand::Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling u1 from the half-open (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use std::collections::HashSet;

    #[test]
    fn derivation_is_deterministic() {
        assert_eq!(derive_seed(1, "ue", 3), derive_seed(1, "ue", 3));
    }

    #[test]
    fn derivation_separates_tags_indices_and_masters() {
        let base = derive_seed(1, "ue", 0);
        assert_ne!(base, derive_seed(1, "ue", 1));
        assert_ne!(base, derive_seed(1, "channel", 0));
        assert_ne!(base, derive_seed(2, "ue", 0));
    }

    #[test]
    fn streams_reproduce() {
        let a: Vec<u64> = stream(7, "x", 0)
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        let b: Vec<u64> = stream(7, "x", 0)
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn splitmix_is_not_identity_and_spreads() {
        let mut seen = HashSet::new();
        for i in 0..1000u64 {
            let v = splitmix64(i);
            assert_ne!(v, i);
            seen.insert(v);
        }
        assert_eq!(
            seen.len(),
            1000,
            "splitmix64 should be collision-free on small inputs"
        );
    }

    #[test]
    fn derived_seeds_have_no_small_collisions() {
        let mut seen = HashSet::new();
        for master in 0..10u64 {
            for idx in 0..100u64 {
                seen.insert(derive_seed(master, "ue", idx));
            }
        }
        assert_eq!(seen.len(), 1000);
    }

    #[test]
    fn standard_normal_moments_are_plausible() {
        let mut rng = stream(11, "gauss", 0);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.05, "variance {var} too far from 1");
    }

    #[test]
    fn streams_are_decorrelated() {
        let mut s0 = stream(5, "ue", 0);
        let mut s1 = stream(5, "ue", 1);
        let a: Vec<u64> = (0..16).map(|_| s0.gen()).collect();
        let b: Vec<u64> = (0..16).map(|_| s1.gen()).collect();
        assert_ne!(a, b);
    }
}
