//! Millisecond-resolution simulation time.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Length of one LTE transmission time interval (TTI).
///
/// The FLARE paper's femtocell (JL-620) and the ns-3 LTE module both schedule
/// resource blocks once per 1 ms TTI, so the kernel's native tick is 1 ms.
pub const TTI: TimeDelta = TimeDelta::from_millis(1);

/// An absolute simulation time, measured in milliseconds since the start of
/// the simulation.
///
/// `Time` is a newtype over `u64`; arithmetic with [`TimeDelta`] is checked in
/// debug builds via the underlying integer operations.
///
/// # Example
///
/// ```
/// use flare_sim::{Time, TimeDelta};
///
/// let t = Time::from_secs(3) + TimeDelta::from_millis(250);
/// assert_eq!(t.as_millis(), 3250);
/// assert_eq!(t.as_secs_f64(), 3.25);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

/// A span of simulation time, measured in milliseconds.
///
/// # Example
///
/// ```
/// use flare_sim::TimeDelta;
///
/// let bai = TimeDelta::from_secs(10);
/// assert_eq!(bai.as_millis(), 10_000);
/// assert_eq!(bai / TimeDelta::from_millis(1), 10_000);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TimeDelta(u64);

impl Time {
    /// The simulation epoch (t = 0).
    pub const ZERO: Time = Time(0);

    /// Creates a time from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Time(ms)
    }

    /// Creates a time from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        Time(secs * 1000)
    }

    /// Returns the time in whole milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Returns the time in seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Returns the time elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is later than `self`.
    pub fn since(self, earlier: Time) -> TimeDelta {
        debug_assert!(earlier <= self, "since() requires earlier <= self");
        TimeDelta(self.0 - earlier.0)
    }

    /// Returns the time elapsed since `earlier`, or zero if `earlier` is in
    /// the future.
    pub fn saturating_since(self, earlier: Time) -> TimeDelta {
        TimeDelta(self.0.saturating_sub(earlier.0))
    }

    /// Rounds `self` down to a multiple of `period`.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn floor_to(self, period: TimeDelta) -> Time {
        assert!(period.0 > 0, "period must be non-zero");
        Time(self.0 / period.0 * period.0)
    }
}

impl TimeDelta {
    /// The zero-length span.
    pub const ZERO: TimeDelta = TimeDelta(0);

    /// Creates a span from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        TimeDelta(ms)
    }

    /// Creates a span from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        TimeDelta(secs * 1000)
    }

    /// Creates a span from fractional seconds, rounding to the nearest
    /// millisecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "span must be non-negative");
        TimeDelta((secs * 1000.0).round() as u64)
    }

    /// Returns the span in whole milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Returns the span in seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Returns `true` if the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction of spans.
    pub fn saturating_sub(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta(self.0.saturating_sub(rhs.0))
    }

    /// Multiplies the span by an integer factor.
    pub const fn times(self, factor: u64) -> TimeDelta {
        TimeDelta(self.0 * factor)
    }
}

impl Add<TimeDelta> for Time {
    type Output = Time;
    fn add(self, rhs: TimeDelta) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<TimeDelta> for Time {
    fn add_assign(&mut self, rhs: TimeDelta) {
        self.0 += rhs.0;
    }
}

impl Sub<TimeDelta> for Time {
    type Output = Time;
    fn sub(self, rhs: TimeDelta) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl Add for TimeDelta {
    type Output = TimeDelta;
    fn add(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta(self.0 + rhs.0)
    }
}

impl AddAssign for TimeDelta {
    fn add_assign(&mut self, rhs: TimeDelta) {
        self.0 += rhs.0;
    }
}

impl Sub for TimeDelta {
    type Output = TimeDelta;
    fn sub(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta(self.0 - rhs.0)
    }
}

impl SubAssign for TimeDelta {
    fn sub_assign(&mut self, rhs: TimeDelta) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for TimeDelta {
    type Output = TimeDelta;
    fn mul(self, rhs: u64) -> TimeDelta {
        TimeDelta(self.0 * rhs)
    }
}

impl Div<TimeDelta> for TimeDelta {
    type Output = u64;
    /// Returns how many whole `rhs` spans fit in `self`.
    fn div(self, rhs: TimeDelta) -> u64 {
        self.0 / rhs.0
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}ms", self.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for TimeDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ms", self.0)
    }
}

impl fmt::Display for TimeDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_construction_and_accessors() {
        assert_eq!(Time::from_secs(2), Time::from_millis(2000));
        assert_eq!(Time::from_millis(1500).as_secs_f64(), 1.5);
        assert_eq!(Time::ZERO.as_millis(), 0);
    }

    #[test]
    fn delta_construction_and_accessors() {
        assert_eq!(TimeDelta::from_secs(10).as_millis(), 10_000);
        assert_eq!(TimeDelta::from_secs_f64(0.25).as_millis(), 250);
        assert!(TimeDelta::ZERO.is_zero());
        assert!(!TTI.is_zero());
    }

    #[test]
    fn arithmetic_round_trips() {
        let t = Time::from_secs(1) + TimeDelta::from_millis(500);
        assert_eq!(t.as_millis(), 1500);
        assert_eq!((t - TimeDelta::from_millis(500)).as_millis(), 1000);
        assert_eq!(t.since(Time::from_secs(1)).as_millis(), 500);
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let early = Time::from_millis(10);
        let late = Time::from_millis(20);
        assert_eq!(early.saturating_since(late), TimeDelta::ZERO);
        assert_eq!(late.saturating_since(early).as_millis(), 10);
    }

    #[test]
    fn floor_to_rounds_down() {
        let bai = TimeDelta::from_secs(10);
        assert_eq!(Time::from_millis(25_500).floor_to(bai), Time::from_secs(20));
        assert_eq!(Time::from_secs(20).floor_to(bai), Time::from_secs(20));
    }

    #[test]
    #[should_panic(expected = "period must be non-zero")]
    fn floor_to_zero_period_panics() {
        let _ = Time::from_secs(1).floor_to(TimeDelta::ZERO);
    }

    #[test]
    fn delta_division_counts_whole_spans() {
        assert_eq!(TimeDelta::from_secs(10) / TTI, 10_000);
        assert_eq!(TimeDelta::from_millis(999) / TimeDelta::from_millis(500), 1);
    }

    #[test]
    fn delta_mul_and_times_agree() {
        assert_eq!(TTI * 50, TTI.times(50));
        assert_eq!((TTI * 50).as_millis(), 50);
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(Time::from_millis(1) < Time::from_millis(2));
        assert!(TimeDelta::from_millis(1) < TimeDelta::from_secs(1));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Time::from_millis(1250).to_string(), "1.250s");
        assert_eq!(format!("{:?}", Time::from_millis(5)), "t=5ms");
        assert_eq!(TimeDelta::from_millis(30).to_string(), "0.030s");
    }

    #[test]
    fn saturating_sub_delta() {
        let a = TimeDelta::from_millis(5);
        let b = TimeDelta::from_millis(7);
        assert_eq!(a.saturating_sub(b), TimeDelta::ZERO);
        assert_eq!(b.saturating_sub(a).as_millis(), 2);
    }
}
