//! A stable, deterministic event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::Time;

/// A timestamped event queue with deterministic FIFO tie-breaking.
///
/// Events scheduled for the same [`Time`] are popped in the order they were
/// pushed, which keeps whole-simulation runs bit-for-bit reproducible no
/// matter how ties arise.
///
/// # Example
///
/// ```
/// use flare_sim::{EventQueue, Time};
///
/// let mut q = EventQueue::new();
/// q.push(Time::from_millis(5), 'b');
/// q.push(Time::from_millis(5), 'c');
/// q.push(Time::from_millis(1), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, vec!['a', 'b', 'c']);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    time: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so earliest (time, seq) pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` at absolute time `at`.
    pub fn push(&mut self, at: Time, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry {
            time: at,
            seq,
            event,
        });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Returns the timestamp of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.time)
    }

    /// Removes and returns the earliest event only if it is due at or before
    /// `now`.
    pub fn pop_due(&mut self, now: Time) -> Option<(Time, E)> {
        match self.peek_time() {
            Some(t) if t <= now => self.pop(),
            _ => None,
        }
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain<E>(q: &mut EventQueue<E>) -> Vec<(Time, E)> {
        std::iter::from_fn(|| q.pop()).collect()
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time::from_millis(30), 3);
        q.push(Time::from_millis(10), 1);
        q.push(Time::from_millis(20), 2);
        let order: Vec<i32> = drain(&mut q).into_iter().map(|(_, e)| e).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Time::from_millis(7), i);
        }
        let order: Vec<i32> = drain(&mut q).into_iter().map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_ties_and_times() {
        let mut q = EventQueue::new();
        q.push(Time::from_millis(5), "b1");
        q.push(Time::from_millis(1), "a");
        q.push(Time::from_millis(5), "b2");
        let order: Vec<&str> = drain(&mut q).into_iter().map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b1", "b2"]);
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.push(Time::from_millis(10), "x");
        assert!(q.pop_due(Time::from_millis(9)).is_none());
        assert_eq!(q.pop_due(Time::from_millis(10)).unwrap().1, "x");
        assert!(q.pop_due(Time::from_millis(100)).is_none());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(Time::from_millis(3), ());
        assert_eq!(q.peek_time(), Some(Time::from_millis(3)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn default_is_empty() {
        let q: EventQueue<u8> = EventQueue::default();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }
}
