//! Discrete-event simulation kernel for the FLARE reproduction.
//!
//! This crate provides the minimal, deterministic building blocks shared by
//! every simulator in the workspace:
//!
//! * [`Time`] / [`TimeDelta`] — millisecond-resolution simulation time. One
//!   LTE transmission time interval (TTI) is exactly one millisecond, so the
//!   kernel's native resolution matches the MAC layer's.
//! * [`EventQueue`] — a stable priority queue of timestamped events with
//!   deterministic FIFO tie-breaking.
//! * [`rng`] — seed-derivation utilities so that every simulated entity owns
//!   an independent, reproducible random stream derived from one master seed.
//!
//! # Example
//!
//! ```
//! use flare_sim::{EventQueue, Time};
//!
//! let mut q = EventQueue::new();
//! q.push(Time::from_secs(2), "later");
//! q.push(Time::from_millis(10), "sooner");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!(t, Time::from_millis(10));
//! assert_eq!(ev, "sooner");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod events;
pub mod rng;
mod time;
pub mod units;

pub use events::EventQueue;
pub use time::{Time, TimeDelta, TTI};
