//! The cell: per-TTI scheduling, delivery, counters, and enforcement knobs.

use flare_sim::units::{ByteCount, Rate};
use flare_sim::{Time, TimeDelta};
use flare_trace::{Category, TraceHandle};

use crate::bearer::{BearerQos, TokenBucket};
use crate::channel::ChannelModel;
use crate::flows::{FlowClass, FlowId};
use crate::scheduler::{FlowTtiState, MacScheduler, RbAllocation};
use crate::stats::{FlowIntervalStats, IntervalReport};
use crate::tbs::{Itbs, LinkAdaptation};

/// Cell-wide radio configuration.
#[derive(Debug, Clone)]
pub struct CellConfig {
    /// Resource blocks available per TTI (50 for the paper's 10 MHz FDD
    /// femtocell).
    pub rbs_per_tti: u32,
    /// iTbs → bits-per-RB mapping.
    pub link_adaptation: LinkAdaptation,
    /// Burst window of the GBR credit bucket (how far behind its guaranteed
    /// rate the MAC lets a flow fall before credit stops accruing).
    pub gbr_burst_window: TimeDelta,
    /// Burst window of the MBR allowance bucket.
    pub mbr_burst_window: TimeDelta,
}

impl Default for CellConfig {
    fn default() -> Self {
        CellConfig {
            rbs_per_tti: 50,
            link_adaptation: LinkAdaptation::default(),
            gbr_burst_window: TimeDelta::from_millis(200),
            mbr_burst_window: TimeDelta::from_millis(200),
        }
    }
}

/// Bytes delivered to one flow during one TTI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivered {
    /// The receiving flow.
    pub flow: FlowId,
    /// Bytes handed to the flow this TTI.
    pub bytes: ByteCount,
}

#[derive(Debug)]
struct FlowState {
    class: FlowClass,
    channel: Box<dyn ChannelModel>,
    qos: BearerQos,
    gbr_bucket: Option<TokenBucket>,
    /// When set, the GBR is a *lease*: it clears itself at this time unless
    /// renewed. `None` means the GBR is persistent (classic bearer setup).
    gbr_expires: Option<Time>,
    mbr_bucket: Option<TokenBucket>,
    /// Pending bytes; `None` means always backlogged (greedy data flow).
    backlog: Option<ByteCount>,
    // Counters since the last report.
    interval_rbs: u64,
    interval_bytes: ByteCount,
    // Lifetime counters.
    total_bytes: ByteCount,
    last_itbs: Itbs,
    /// Memoized `bits_per_rb(last_itbs)`; refreshed only when the fading
    /// process actually moves the index (the channel→iTbs→TBS cache).
    cached_bits_per_rb: f64,
}

impl std::fmt::Debug for Box<dyn ChannelModel> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ChannelModel")
    }
}

/// A simulated LTE cell (eNodeB MAC + per-UE channels).
///
/// Drive it by calling [`ENodeB::step_tti`] once per millisecond with a
/// monotonically increasing time; collect `(n_u, b_u)` statistics with
/// [`ENodeB::take_report`] once per bitrate assignment interval.
pub struct ENodeB {
    config: CellConfig,
    scheduler: Box<dyn MacScheduler>,
    flows: Vec<FlowState>,
    report_start: Time,
    now: Time,
    expired_leases: u64,
    /// RBs granted in the most recent TTI (as summed over scheduler grants).
    last_tti_granted: u32,
    /// Test-only distortion added to [`ENodeB::last_tti_granted_rbs`]; lets
    /// invariant-layer tests observe a deliberately over-granted TTI without
    /// tripping the scheduler's internal assertion. Always 0 in real runs.
    reported_grant_inflation: u32,
    trace: TraceHandle,
    // Persistent per-TTI scratch buffers. Cleared and refilled every
    // [`ENodeB::step_tti`] so the hot path performs no allocation once their
    // capacities stabilize (after warm-up).
    tti_states: Vec<FlowTtiState>,
    tti_grants: Vec<RbAllocation>,
    tti_delivered: Vec<Delivered>,
    tti_expired: Vec<u64>,
    /// True while the cell is provably inert: no backlog, no leases, every
    /// bearer bucket at its burst cap, every channel time-invariant, and a
    /// scheduler whose idle TTI is a pure settle. Under this flag
    /// [`ENodeB::step_tti`] reduces to that settle plus the trace tick —
    /// the outcome is bit-identical to the full path. Cleared by any flow
    /// mutation (see [`ENodeB::flow_mut`]) and re-derived after each fully
    /// idle TTI.
    quiescent: bool,
    /// All attached channels report [`ChannelModel::is_time_invariant`];
    /// maintained by [`ENodeB::add_flow`].
    channels_static: bool,
}

impl std::fmt::Debug for ENodeB {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ENodeB")
            .field("scheduler", &self.scheduler.name())
            .field("flows", &self.flows.len())
            .field("now", &self.now)
            .finish()
    }
}

impl ENodeB {
    /// Creates a cell with the given configuration and MAC scheduler.
    pub fn new(config: CellConfig, scheduler: Box<dyn MacScheduler>) -> Self {
        assert!(
            config.rbs_per_tti > 0,
            "cell must have at least one RB per TTI"
        );
        ENodeB {
            config,
            scheduler,
            flows: Vec::new(),
            report_start: Time::ZERO,
            now: Time::ZERO,
            expired_leases: 0,
            last_tti_granted: 0,
            reported_grant_inflation: 0,
            trace: TraceHandle::disabled(),
            tti_states: Vec::new(),
            tti_grants: Vec::new(),
            tti_delivered: Vec::new(),
            tti_expired: Vec::new(),
            quiescent: false,
            channels_static: true,
        }
    }

    /// Attaches a trace recorder. MAC events ([`Category::Mac`]) are
    /// tick-sampled per the handle's configuration; enforcement events
    /// ([`Category::Enforce`]) record GBR/lease lifecycle.
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    /// Attaches a flow with its own channel process. Data flows are greedy
    /// (always backlogged); video flows start with an empty queue.
    pub fn add_flow(&mut self, class: FlowClass, channel: Box<dyn ChannelModel>) -> FlowId {
        let id = FlowId(self.flows.len() as u32);
        self.quiescent = false;
        self.channels_static &= channel.is_time_invariant();
        let initial_itbs = Itbs::new(0);
        let cached_bits_per_rb = self.config.link_adaptation.bits_per_rb(initial_itbs);
        self.flows.push(FlowState {
            class,
            channel,
            qos: BearerQos::default(),
            gbr_bucket: None,
            gbr_expires: None,
            mbr_bucket: None,
            backlog: match class {
                FlowClass::Video => Some(ByteCount::ZERO),
                FlowClass::Data => None,
            },
            interval_rbs: 0,
            interval_bytes: ByteCount::ZERO,
            total_bytes: ByteCount::ZERO,
            last_itbs: initial_itbs,
            cached_bits_per_rb,
        });
        id
    }

    /// Number of attached flows.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// The cell configuration.
    pub fn config(&self) -> &CellConfig {
        &self.config
    }

    /// The link adaptation table (shared with network-side optimizers).
    pub fn link_adaptation(&self) -> &LinkAdaptation {
        &self.config.link_adaptation
    }

    /// Sets or clears a flow's guaranteed bit rate (the Continuous GBR
    /// Updater: the paper re-assigns GBRs every BAI, not just at bearer
    /// setup).
    ///
    /// # Panics
    ///
    /// Panics if `flow` is unknown.
    pub fn set_gbr(&mut self, flow: FlowId, gbr: Option<Rate>) {
        let now = self.now;
        self.trace.record_debug(now, Category::Enforce, "gbr", |e| {
            e.u64("flow", flow.index() as u64);
            match gbr {
                Some(rate) => e.f64("kbps", rate.as_kbps()),
                None => e.bool("cleared", true),
            };
        });
        let window = self.config.gbr_burst_window;
        let st = self.flow_mut(flow);
        // A plain set is persistent: it cancels any outstanding lease.
        st.gbr_expires = None;
        st.qos.gbr = gbr;
        match (gbr, st.gbr_bucket.as_mut()) {
            (Some(rate), Some(bucket)) => bucket.set_rate(rate),
            (Some(rate), None) => {
                let mut bucket = TokenBucket::new(rate, window);
                bucket.advance(now);
                bucket.drain();
                st.gbr_bucket = Some(bucket);
            }
            (None, _) => st.gbr_bucket = None,
        }
    }

    /// Sets a flow's guaranteed bit rate as a *lease* that self-destructs at
    /// `expires_at` unless renewed (by another lease or a plain
    /// [`ENodeB::set_gbr`]).
    ///
    /// A robust control plane grants leases instead of persistent GBRs: if
    /// the OneAPI server dies mid-experiment, stale reservations evaporate
    /// after a bounded number of BAIs and the radio resources return to the
    /// proportional-fair pool, instead of staying pinned to whatever the
    /// last solve decided forever.
    ///
    /// # Panics
    ///
    /// Panics if `flow` is unknown or `expires_at` is not in the future.
    pub fn set_gbr_lease(&mut self, flow: FlowId, gbr: Rate, expires_at: Time) {
        assert!(
            expires_at > self.now,
            "a GBR lease must expire in the future"
        );
        self.trace
            .record(self.now, Category::Enforce, "lease_grant", |e| {
                e.u64("flow", flow.index() as u64)
                    .f64("kbps", gbr.as_kbps())
                    .u64("expires_ms", expires_at.as_millis());
            });
        self.trace.incr("enforce.lease_grants", 1);
        self.set_gbr(flow, Some(gbr));
        self.flow_mut(flow).gbr_expires = Some(expires_at);
    }

    /// When the flow's GBR lease expires (`None`: no GBR, or persistent).
    pub fn lease_expiry(&self, flow: FlowId) -> Option<Time> {
        self.flows[flow.index()].gbr_expires
    }

    /// GBR leases that expired without renewal since the cell was created.
    pub fn expired_lease_count(&self) -> u64 {
        self.expired_leases
    }

    /// Sets or clears a flow's maximum bit rate (AVIS-style cap).
    ///
    /// # Panics
    ///
    /// Panics if `flow` is unknown.
    pub fn set_mbr(&mut self, flow: FlowId, mbr: Option<Rate>) {
        let now = self.now;
        let window = self.config.mbr_burst_window;
        let st = self.flow_mut(flow);
        st.qos.mbr = mbr;
        match (mbr, st.mbr_bucket.as_mut()) {
            (Some(rate), Some(bucket)) => bucket.set_rate(rate),
            (Some(rate), None) => {
                let mut bucket = TokenBucket::new(rate, window);
                bucket.advance(now);
                // An MBR bucket starts full: the flow may immediately burst
                // one window's worth.
                st.mbr_bucket = Some(bucket);
            }
            (None, _) => st.mbr_bucket = None,
        }
    }

    /// Returns a flow's current QoS configuration.
    pub fn qos(&self, flow: FlowId) -> BearerQos {
        self.flows[flow.index()].qos
    }

    /// Queues `bytes` for downlink delivery on a video flow (one HAS segment
    /// arriving at the eNodeB from the media server).
    ///
    /// # Panics
    ///
    /// Panics if `flow` is a greedy data flow (those are always backlogged).
    pub fn push_backlog(&mut self, flow: FlowId, bytes: ByteCount) {
        let st = self.flow_mut(flow);
        match st.backlog.as_mut() {
            Some(b) => *b += bytes,
            None => panic!("cannot push backlog on an always-backlogged data flow"),
        }
    }

    /// Remaining queued bytes of a finite flow (`None` for greedy flows).
    pub fn backlog(&self, flow: FlowId) -> Option<ByteCount> {
        self.flows[flow.index()].backlog
    }

    /// The iTbs operating point a flow saw in the most recent TTI.
    pub fn current_itbs(&self, flow: FlowId) -> Itbs {
        self.flows[flow.index()].last_itbs
    }

    fn flow_mut(&mut self, flow: FlowId) -> &mut FlowState {
        // Every externally driven flow mutation (backlog, QoS, leases) comes
        // through here, so this is the one choke point that must re-arm the
        // full per-TTI path.
        self.quiescent = false;
        &mut self.flows[flow.index()]
    }

    /// Runs one TTI of MAC scheduling at time `now`, returning the bytes
    /// delivered to each flow.
    ///
    /// The returned slice borrows a scratch buffer owned by the cell; it is
    /// valid until the next `step_tti` call. Callers that need the results
    /// past that point must copy them out (`Delivered` is `Copy`).
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes a previous TTI, or if the scheduler
    /// over-allocates the RB budget (a scheduler bug).
    pub fn step_tti(&mut self, now: Time) -> &[Delivered] {
        debug_assert!(now >= self.now, "TTIs must advance monotonically");
        self.now = now;

        // Quiescent fast path: when the previous TTI proved the cell inert
        // (see the `quiescent` field), the full path below would rebuild an
        // identical flow snapshot, grant nothing, and deliver nothing. Its
        // only observable effects — the scheduler's idle settle and the MAC
        // trace tick — are replayed here verbatim.
        if self.quiescent {
            let idled = self.scheduler.idle_tick(&self.tti_states);
            debug_assert!(idled, "a quiescent cell's scheduler must idle");
            self.tti_grants.clear();
            self.last_tti_granted = 0;
            self.tti_delivered.clear();
            if self.trace.tick(Category::Mac) {
                let n_flows = self.tti_states.len() as u64;
                self.trace.record(now, Category::Mac, "tti", |e| {
                    e.u64("rbs", 0).u64("sched", 0).u64("flows", n_flows);
                });
            }
            return &self.tti_delivered;
        }

        // 0. Expire GBR leases that were not renewed.
        self.tti_expired.clear();
        for (i, st) in self.flows.iter_mut().enumerate() {
            if let Some(expires_at) = st.gbr_expires {
                if now >= expires_at {
                    st.gbr_expires = None;
                    st.qos.gbr = None;
                    st.gbr_bucket = None;
                    self.expired_leases += 1;
                    self.tti_expired.push(i as u64);
                }
            }
        }
        if !self.tti_expired.is_empty() {
            self.trace
                .incr("enforce.lease_expiries", self.tti_expired.len() as u64);
            for &f in &self.tti_expired {
                self.trace
                    .record(now, Category::Enforce, "lease_expired", |e| {
                        e.u64("flow", f);
                    });
            }
        }

        // 1. Refresh channels and bearer buckets.
        self.tti_states.clear();
        let mut any_backlog = false;
        for (i, st) in self.flows.iter_mut().enumerate() {
            let itbs = st.channel.itbs_at(now);
            if itbs != st.last_itbs {
                st.last_itbs = itbs;
                st.cached_bits_per_rb = self.config.link_adaptation.bits_per_rb(itbs);
            }
            if let Some(b) = st.gbr_bucket.as_mut() {
                b.advance(now);
            }
            if let Some(b) = st.mbr_bucket.as_mut() {
                b.advance(now);
            }
            let mbr_allowance = st
                .mbr_bucket
                .as_ref()
                .map_or(ByteCount::new(u64::MAX), |b| b.available());
            let raw_backlog = st.backlog.unwrap_or(ByteCount::new(u64::MAX / 2));
            let backlog = raw_backlog.min(mbr_allowance);
            any_backlog |= !backlog.is_zero();
            self.tti_states.push(FlowTtiState {
                flow: FlowId(i as u32),
                class: st.class,
                backlog,
                bits_per_rb: st.cached_bits_per_rb,
                gbr_credit: st
                    .gbr_bucket
                    .as_ref()
                    .map_or(ByteCount::ZERO, |b| b.available()),
            });
        }

        // 2. Schedule into the reused grants buffer. A backlog-free TTI
        // takes the scheduler's idle settle when the policy offers one
        // (grants stay empty either way, so the outcome is identical).
        let took_idle = !any_backlog && self.scheduler.idle_tick(&self.tti_states);
        if took_idle {
            self.tti_grants.clear();
        } else {
            self.scheduler.allocate_into(
                self.config.rbs_per_tti,
                &self.tti_states,
                &mut self.tti_grants,
            );
        }
        let granted_total: u32 = self.tti_grants.iter().map(|g| g.rbs).sum();
        assert!(
            granted_total <= self.config.rbs_per_tti,
            "scheduler over-allocated: {granted_total} > {}",
            self.config.rbs_per_tti
        );
        self.last_tti_granted = granted_total;

        // 3. Deliver.
        let mac_sampled = self.trace.tick(Category::Mac);
        let grant_debug = mac_sampled && self.trace.debug_enabled(Category::Mac);
        self.tti_delivered.clear();
        for gi in 0..self.tti_grants.len() {
            let g = self.tti_grants[gi];
            let state = self.tti_states[g.flow.index()];
            let capacity = state.bytes_for_rbs(g.rbs);
            let bytes = capacity.min(state.backlog);
            if grant_debug {
                let st = &self.flows[g.flow.index()];
                self.trace.record_debug(now, Category::Mac, "grant", |e| {
                    e.u64("flow", g.flow.index() as u64)
                        .u64("rbs", u64::from(g.rbs))
                        .u64("bytes", bytes.as_u64())
                        .u64("itbs", st.last_itbs.index() as u64);
                });
            }
            let st = &mut self.flows[g.flow.index()];
            if let Some(backlog) = st.backlog.as_mut() {
                *backlog = backlog.saturating_sub(bytes);
            }
            if let Some(b) = st.gbr_bucket.as_mut() {
                b.consume(bytes.min(b.available()));
            }
            if let Some(b) = st.mbr_bucket.as_mut() {
                b.consume(bytes);
            }
            st.interval_rbs += u64::from(g.rbs);
            st.interval_bytes += bytes;
            st.total_bytes += bytes;
            if !bytes.is_zero() || g.rbs > 0 {
                self.tti_delivered.push(Delivered {
                    flow: g.flow,
                    bytes,
                });
            }
        }
        if mac_sampled {
            let sched = self.tti_delivered.len() as u64;
            let n_flows = self.tti_states.len() as u64;
            self.trace.record(now, Category::Mac, "tti", |e| {
                e.u64("rbs", u64::from(granted_total))
                    .u64("sched", sched)
                    .u64("flows", n_flows);
            });
        }

        // Arm the quiescent fast path for the next TTI: an idle settle just
        // happened, every channel is pinned, no lease is ticking, and every
        // bucket is already at its cap — so the next TTI can only repeat
        // this one.
        if took_idle && self.channels_static {
            self.quiescent = self.flows.iter().all(|st| {
                st.gbr_expires.is_none()
                    && st.gbr_bucket.as_ref().is_none_or(TokenBucket::is_full)
                    && st.mbr_bucket.as_ref().is_none_or(TokenBucket::is_full)
            });
        }
        &self.tti_delivered
    }

    /// Drains and returns the per-flow `(n_u, b_u)` counters accumulated
    /// since the previous report — the paper's periodic Statistics Reporter
    /// message to the OneAPI server.
    pub fn take_report(&mut self, now: Time) -> IntervalReport {
        let start = self.report_start;
        self.report_start = now;
        let flows = self
            .flows
            .iter_mut()
            .enumerate()
            .map(|(i, st)| {
                let s = FlowIntervalStats {
                    flow: FlowId(i as u32),
                    class: st.class,
                    rbs: st.interval_rbs,
                    bytes: st.interval_bytes,
                    itbs: st.last_itbs,
                };
                st.interval_rbs = 0;
                st.interval_bytes = ByteCount::ZERO;
                s
            })
            .collect();
        let report = IntervalReport {
            start,
            end: now,
            flows,
        };
        if self.trace.is_attached() {
            self.trace.incr("mac.reports", 1);
            self.trace.incr("mac.report_rbs", report.total_rbs());
            self.trace
                .incr("mac.report_bytes", report.total_bytes().as_u64());
            self.trace.gauge("mac.flows", self.flows.len() as f64);
        }
        report
    }

    /// Lifetime bytes delivered to a flow.
    pub fn total_bytes(&self, flow: FlowId) -> ByteCount {
        self.flows[flow.index()].total_bytes
    }

    /// RBs granted in the most recent TTI, as reported to external
    /// observers (the runtime invariant layer reads this after every
    /// [`ENodeB::step_tti`] to check RB conservation against
    /// [`CellConfig::rbs_per_tti`]).
    pub fn last_tti_granted_rbs(&self) -> u32 {
        self.last_tti_granted
            .saturating_add(self.reported_grant_inflation)
    }

    /// Test-only hook: inflates the grant total *reported* by
    /// [`ENodeB::last_tti_granted_rbs`] by `extra` RBs without touching the
    /// actual allocation. A real over-allocation trips the hard assertion in
    /// [`ENodeB::step_tti`] before any observer sees it; this hook lets
    /// tests verify that the invariant layer would catch one.
    #[doc(hidden)]
    pub fn debug_inflate_reported_grants(&mut self, extra: u32) {
        self.reported_grant_inflation = extra;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::StaticChannel;
    use crate::scheduler::{ProportionalFair, TwoPhaseGbr};
    use flare_sim::TTI;

    fn cell(scheduler: Box<dyn MacScheduler>) -> ENodeB {
        ENodeB::new(CellConfig::default(), scheduler)
    }

    fn run_ttis(enb: &mut ENodeB, start_ms: u64, n: u64) -> Vec<Vec<Delivered>> {
        (0..n)
            .map(|i| enb.step_tti(Time::from_millis(start_ms + i)).to_vec())
            .collect()
    }

    #[test]
    fn data_flow_absorbs_full_cell() {
        let mut enb = cell(Box::new(ProportionalFair::default()));
        let f = enb.add_flow(FlowClass::Data, Box::new(StaticChannel::new(Itbs::new(2))));
        run_ttis(&mut enb, 0, 1000);
        let report = enb.take_report(Time::from_secs(1));
        let stats = report.flow(f).unwrap();
        // iTbs 2 with default 2x MIMO = 64 bits/RB; 50 RB * 1000 TTI.
        assert_eq!(stats.rbs, 50_000);
        let tput = stats.throughput(report.duration());
        assert!((tput.as_mbps() - 3.2).abs() < 0.01, "tput {tput}");
    }

    #[test]
    fn video_flow_drains_exact_backlog() {
        let mut enb = cell(Box::new(ProportionalFair::default()));
        let f = enb.add_flow(
            FlowClass::Video,
            Box::new(StaticChannel::new(Itbs::new(12))),
        );
        enb.push_backlog(f, ByteCount::new(10_000));
        let mut total = ByteCount::ZERO;
        let mut t = Time::ZERO;
        while enb.backlog(f).unwrap() > ByteCount::ZERO {
            for d in enb.step_tti(t) {
                total += d.bytes;
            }
            t += TTI;
            assert!(t < Time::from_secs(10), "drain took too long");
        }
        assert_eq!(total, ByteCount::new(10_000));
        // Nothing more is delivered once the queue is empty.
        let extra: ByteCount = enb.step_tti(t).iter().map(|d| d.bytes).sum();
        assert_eq!(extra, ByteCount::ZERO);
    }

    #[test]
    fn gbr_flow_paced_at_guaranteed_rate() {
        let mut enb = cell(Box::new(TwoPhaseGbr::default()));
        let video = enb.add_flow(
            FlowClass::Video,
            Box::new(StaticChannel::new(Itbs::new(12))),
        );
        let _data = enb.add_flow(FlowClass::Data, Box::new(StaticChannel::new(Itbs::new(12))));
        enb.set_gbr(video, Some(Rate::from_kbps(790.0)));
        enb.push_backlog(video, ByteCount::new(10_000_000));
        run_ttis(&mut enb, 0, 10_000);
        let report = enb.take_report(Time::from_secs(10));
        let tput = report.flow(video).unwrap().throughput(report.duration());
        // Phase 2 also serves the video flow, so throughput >= GBR; with a
        // greedy data competitor the PF split gives each ~half the slack.
        assert!(tput.as_kbps() >= 780.0, "GBR not met: {tput}");
    }

    #[test]
    fn mbr_caps_data_flow() {
        let mut enb = cell(Box::new(ProportionalFair::default()));
        let f = enb.add_flow(FlowClass::Data, Box::new(StaticChannel::new(Itbs::new(12))));
        enb.set_mbr(f, Some(Rate::from_mbps(1.0)));
        run_ttis(&mut enb, 0, 10_000);
        let report = enb.take_report(Time::from_secs(10));
        let tput = report.flow(f).unwrap().throughput(report.duration());
        assert!(
            (tput.as_mbps() - 1.0).abs() < 0.05,
            "MBR cap violated or overly strict: {tput}"
        );
    }

    #[test]
    fn report_resets_counters() {
        let mut enb = cell(Box::new(ProportionalFair::default()));
        let f = enb.add_flow(FlowClass::Data, Box::new(StaticChannel::new(Itbs::new(5))));
        run_ttis(&mut enb, 0, 100);
        let r1 = enb.take_report(Time::from_millis(100));
        assert!(r1.flow(f).unwrap().rbs > 0);
        let r2 = enb.take_report(Time::from_millis(100));
        assert_eq!(r2.flow(f).unwrap().rbs, 0);
        assert_eq!(r2.duration(), TimeDelta::ZERO);
    }

    #[test]
    fn two_videos_share_via_gbr() {
        let mut enb = cell(Box::new(TwoPhaseGbr::default()));
        let a = enb.add_flow(FlowClass::Video, Box::new(StaticChannel::new(Itbs::new(8))));
        let b = enb.add_flow(FlowClass::Video, Box::new(StaticChannel::new(Itbs::new(8))));
        enb.set_gbr(a, Some(Rate::from_kbps(450.0)));
        enb.set_gbr(b, Some(Rate::from_kbps(1100.0)));
        enb.push_backlog(a, ByteCount::new(50_000_000));
        enb.push_backlog(b, ByteCount::new(50_000_000));
        run_ttis(&mut enb, 0, 20_000);
        let report = enb.take_report(Time::from_secs(20));
        let ta = report.flow(a).unwrap().throughput(report.duration());
        let tb = report.flow(b).unwrap().throughput(report.duration());
        assert!(ta.as_kbps() >= 440.0, "flow a below GBR: {ta}");
        assert!(tb.as_kbps() >= 1080.0, "flow b below GBR: {tb}");
        assert!(tb > ta);
    }

    #[test]
    fn total_bytes_accumulates_across_reports() {
        let mut enb = cell(Box::new(ProportionalFair::default()));
        let f = enb.add_flow(FlowClass::Data, Box::new(StaticChannel::new(Itbs::new(5))));
        run_ttis(&mut enb, 0, 100);
        enb.take_report(Time::from_millis(100));
        run_ttis(&mut enb, 100, 100);
        enb.take_report(Time::from_millis(200));
        assert!(enb.total_bytes(f).as_u64() > 0);
    }

    #[test]
    fn rb_conservation_under_many_flows() {
        let mut enb = cell(Box::new(TwoPhaseGbr::default()));
        for i in 0..8 {
            let class = if i % 2 == 0 {
                FlowClass::Video
            } else {
                FlowClass::Data
            };
            let f = enb.add_flow(class, Box::new(StaticChannel::new(Itbs::new(3 + i))));
            if class == FlowClass::Video {
                enb.set_gbr(f, Some(Rate::from_kbps(500.0)));
                enb.push_backlog(f, ByteCount::new(10_000_000));
            }
        }
        run_ttis(&mut enb, 0, 5000);
        let report = enb.take_report(Time::from_secs(5));
        // 50 RB/TTI * 5000 TTIs is the hard ceiling.
        assert!(report.total_rbs() <= 250_000);
        // With greedy data flows present the cell should be fully loaded.
        assert!(
            report.total_rbs() >= 249_000,
            "cell idle: {}",
            report.total_rbs()
        );
    }

    #[test]
    fn conservation_under_random_workloads() {
        use proptest::prelude::*;
        use proptest::test_runner::TestRunner;

        let mut runner = TestRunner::default();
        runner
            .run(
                &(
                    proptest::collection::vec(0u8..=26, 1..10),
                    proptest::collection::vec(1_000u64..5_000_000, 1..10),
                    1u64..u64::MAX,
                ),
                |(itbs_list, backlogs, _seed)| {
                    let mut enb = cell(Box::new(TwoPhaseGbr::default()));
                    let n = itbs_list.len().min(backlogs.len());
                    let mut flows = Vec::new();
                    for i in 0..n {
                        let f = enb.add_flow(
                            FlowClass::Video,
                            Box::new(StaticChannel::new(Itbs::new(itbs_list[i]))),
                        );
                        enb.push_backlog(f, ByteCount::new(backlogs[i]));
                        enb.set_gbr(f, Some(Rate::from_kbps(500.0)));
                        flows.push(f);
                    }
                    let mut delivered_total = ByteCount::ZERO;
                    for ms in 0..2_000u64 {
                        for d in enb.step_tti(Time::from_millis(ms)) {
                            delivered_total += d.bytes;
                        }
                    }
                    let report = enb.take_report(Time::from_secs(2));
                    // 1. RB conservation: never more than 50 RB/TTI * TTIs.
                    prop_assert!(report.total_rbs() <= 50 * 2_000);
                    // 2. Byte conservation: delivered == counted == pushed - left.
                    prop_assert_eq!(report.total_bytes(), delivered_total);
                    let pushed: u64 = backlogs[..n].iter().sum();
                    let left: u64 = flows
                        .iter()
                        .map(|&f| enb.backlog(f).unwrap().as_u64())
                        .sum();
                    prop_assert_eq!(delivered_total.as_u64() + left, pushed);
                    // 3. Physical limit: bytes <= RBs * best-channel bits/RB.
                    let best = itbs_list[..n]
                        .iter()
                        .map(|&i| enb.link_adaptation().bits_per_rb(Itbs::new(i)))
                        .fold(0.0f64, f64::max);
                    prop_assert!(
                        (report.total_bytes().as_bits() as f64)
                            <= report.total_rbs() as f64 * best + 1.0
                    );
                    Ok(())
                },
            )
            .unwrap();
    }

    #[test]
    #[should_panic(expected = "always-backlogged")]
    fn pushing_backlog_on_data_flow_panics() {
        let mut enb = cell(Box::new(ProportionalFair::default()));
        let f = enb.add_flow(FlowClass::Data, Box::new(StaticChannel::new(Itbs::new(2))));
        enb.push_backlog(f, ByteCount::new(1));
    }

    #[test]
    fn set_gbr_updates_and_clears() {
        let mut enb = cell(Box::new(TwoPhaseGbr::default()));
        let f = enb.add_flow(FlowClass::Video, Box::new(StaticChannel::new(Itbs::new(5))));
        enb.set_gbr(f, Some(Rate::from_kbps(500.0)));
        assert_eq!(enb.qos(f).gbr, Some(Rate::from_kbps(500.0)));
        enb.set_gbr(f, Some(Rate::from_kbps(790.0)));
        assert_eq!(enb.qos(f).gbr, Some(Rate::from_kbps(790.0)));
        enb.set_gbr(f, None);
        assert_eq!(enb.qos(f).gbr, None);
    }

    #[test]
    fn gbr_lease_expires_without_renewal() {
        let mut enb = cell(Box::new(TwoPhaseGbr::default()));
        let f = enb.add_flow(FlowClass::Video, Box::new(StaticChannel::new(Itbs::new(5))));
        enb.set_gbr_lease(f, Rate::from_kbps(500.0), Time::from_millis(100));
        assert_eq!(enb.qos(f).gbr, Some(Rate::from_kbps(500.0)));
        assert_eq!(enb.lease_expiry(f), Some(Time::from_millis(100)));
        run_ttis(&mut enb, 0, 99);
        assert_eq!(enb.qos(f).gbr, Some(Rate::from_kbps(500.0)));
        enb.step_tti(Time::from_millis(100));
        assert_eq!(enb.qos(f).gbr, None);
        assert_eq!(enb.lease_expiry(f), None);
        assert_eq!(enb.expired_lease_count(), 1);
    }

    #[test]
    fn renewed_lease_does_not_expire() {
        let mut enb = cell(Box::new(TwoPhaseGbr::default()));
        let f = enb.add_flow(FlowClass::Video, Box::new(StaticChannel::new(Itbs::new(5))));
        enb.set_gbr_lease(f, Rate::from_kbps(500.0), Time::from_millis(100));
        run_ttis(&mut enb, 0, 50);
        // Renewal pushes the expiry out; the old deadline passes harmlessly.
        enb.set_gbr_lease(f, Rate::from_kbps(790.0), Time::from_millis(200));
        run_ttis(&mut enb, 50, 100);
        assert_eq!(enb.qos(f).gbr, Some(Rate::from_kbps(790.0)));
        assert_eq!(enb.expired_lease_count(), 0);
    }

    #[test]
    fn plain_set_gbr_cancels_lease() {
        let mut enb = cell(Box::new(TwoPhaseGbr::default()));
        let f = enb.add_flow(FlowClass::Video, Box::new(StaticChannel::new(Itbs::new(5))));
        enb.set_gbr_lease(f, Rate::from_kbps(500.0), Time::from_millis(100));
        enb.set_gbr(f, Some(Rate::from_kbps(500.0)));
        assert_eq!(enb.lease_expiry(f), None);
        run_ttis(&mut enb, 0, 200);
        // Persistent GBR outlives the would-be lease deadline.
        assert_eq!(enb.qos(f).gbr, Some(Rate::from_kbps(500.0)));
        assert_eq!(enb.expired_lease_count(), 0);
    }

    #[test]
    fn expired_lease_returns_rbs_to_pf_pool() {
        // A leased video flow and a greedy data flow: while the lease is
        // live the video's GBR is honoured; after expiry the data flow's
        // share grows because nothing is reserved any more.
        let mut enb = cell(Box::new(TwoPhaseGbr::default()));
        let video = enb.add_flow(FlowClass::Video, Box::new(StaticChannel::new(Itbs::new(8))));
        let data = enb.add_flow(FlowClass::Data, Box::new(StaticChannel::new(Itbs::new(8))));
        enb.set_gbr_lease(video, Rate::from_kbps(1500.0), Time::from_secs(5));
        enb.push_backlog(video, ByteCount::new(100_000_000));
        run_ttis(&mut enb, 0, 5_000);
        let leased = enb.take_report(Time::from_secs(5));
        run_ttis(&mut enb, 5_000, 5_000);
        let expired = enb.take_report(Time::from_secs(10));
        assert_eq!(enb.expired_lease_count(), 1);
        let d_before = leased.flow(data).unwrap().rbs;
        let d_after = expired.flow(data).unwrap().rbs;
        assert!(
            d_after > d_before,
            "data flow RBs should grow after lease expiry: {d_before} -> {d_after}"
        );
    }

    #[test]
    #[should_panic(expected = "expire in the future")]
    fn lease_in_the_past_panics() {
        let mut enb = cell(Box::new(TwoPhaseGbr::default()));
        let f = enb.add_flow(FlowClass::Video, Box::new(StaticChannel::new(Itbs::new(5))));
        enb.step_tti(Time::from_millis(10));
        enb.set_gbr_lease(f, Rate::from_kbps(500.0), Time::from_millis(10));
    }
}
