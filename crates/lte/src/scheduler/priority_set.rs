//! The ns-3 Priority Set Scheduler analogue used by the simulation study.

use super::{
    pf_pass, push_grant, settle_averages, FlowTtiState, MacScheduler, PfAverages, RbAllocation,
};

/// Priority-Set scheduling (Monghal et al., the scheduler the paper modifies
/// in ns-3): flows below their target (GBR) rate form a priority set served
/// strictly first, ordered by *descending deficit*; remaining RBs go to
/// proportional fair across all backlogged flows.
///
/// The difference from [`super::TwoPhaseGbr`] is the deficit ordering inside
/// the priority set — under overload, the most-starved GBR flow is served
/// first instead of the lowest flow id, which matters when many video flows
/// compete (the Section IV-B scenarios).
///
/// # Example
///
/// ```
/// use flare_lte::scheduler::{MacScheduler, PrioritySetScheduler};
/// let mut s = PrioritySetScheduler::default();
/// assert_eq!(s.name(), "priority-set");
/// assert!(s.allocate(50, &[]).is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct PrioritySetScheduler {
    averages: PfAverages,
}

impl PrioritySetScheduler {
    /// Creates the scheduler with a PF time constant in TTIs.
    ///
    /// # Panics
    ///
    /// Panics if `tc_ttis < 1`.
    pub fn new(tc_ttis: f64) -> Self {
        PrioritySetScheduler {
            averages: PfAverages::new(tc_ttis),
        }
    }
}

impl Default for PrioritySetScheduler {
    /// One-second PF averaging window.
    fn default() -> Self {
        PrioritySetScheduler::new(1000.0)
    }
}

impl MacScheduler for PrioritySetScheduler {
    fn allocate(&mut self, n_rbs: u32, flows: &[FlowTtiState]) -> Vec<RbAllocation> {
        let mut grants = Vec::new();
        let mut rbs_left = n_rbs;

        // Priority set: flows with outstanding GBR credit, most-starved first
        // (ties broken by flow id via the stable sort).
        let mut prio: Vec<&FlowTtiState> = flows
            .iter()
            .filter(|f| !f.gbr_credit.min(f.backlog).is_zero())
            .collect();
        prio.sort_by(|a, b| {
            b.gbr_credit
                .cmp(&a.gbr_credit)
                .then_with(|| a.flow.cmp(&b.flow))
        });
        for f in prio {
            if rbs_left == 0 {
                break;
            }
            let owed = f.gbr_credit.min(f.backlog);
            let want = f.rbs_for_bytes(owed).min(rbs_left);
            push_grant(&mut grants, f.flow, want);
            rbs_left -= want;
        }

        pf_pass(&mut self.averages, rbs_left, flows, &mut grants);
        settle_averages(&mut self.averages, flows, &grants);
        grants
    }

    fn name(&self) -> &'static str {
        "priority-set"
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::*;
    use super::*;
    use crate::flows::FlowClass;

    #[test]
    fn most_starved_flow_served_first_under_overload() {
        let mut s = PrioritySetScheduler::default();
        // Flow 1 is owed more than flow 0; under a 50-RB budget flow 1 wins.
        let flows = vec![
            flow(0, FlowClass::Video, 1_000_000, 128.0, 800),
            flow(1, FlowClass::Video, 1_000_000, 128.0, 1600),
        ];
        let grants = s.allocate(50, &flows);
        assert_eq!(rbs_of(&grants, 1), 50);
        assert_eq!(rbs_of(&grants, 0), 0);
    }

    #[test]
    fn equal_deficits_break_ties_by_flow_id() {
        let mut s = PrioritySetScheduler::default();
        let flows = vec![
            flow(0, FlowClass::Video, 1_000_000, 128.0, 1600),
            flow(1, FlowClass::Video, 1_000_000, 128.0, 1600),
        ];
        let grants = s.allocate(50, &flows);
        assert_eq!(rbs_of(&grants, 0), 50);
    }

    #[test]
    fn leftover_goes_to_pf() {
        let mut s = PrioritySetScheduler::default();
        let flows = vec![
            flow(0, FlowClass::Video, 160, 128.0, 160),
            flow(1, FlowClass::Data, 1_000_000, 128.0, 0),
        ];
        let grants = s.allocate(50, &flows);
        assert_eq!(rbs_of(&grants, 0), 10);
        assert_eq!(rbs_of(&grants, 1), 40);
    }

    #[test]
    fn never_over_allocates() {
        let mut s = PrioritySetScheduler::default();
        let flows: Vec<_> = (0..16)
            .map(|i| flow(i, FlowClass::Video, 1_000_000, 64.0 + f64::from(i), 500))
            .collect();
        for _ in 0..100 {
            let grants = s.allocate(50, &flows);
            assert!(total(&grants) <= 50);
        }
    }
}
