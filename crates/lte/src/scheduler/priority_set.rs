//! The ns-3 Priority Set Scheduler analogue used by the simulation study.

use super::{
    pf_pass, push_grant, settle_all_idle, settle_averages, FlowTtiState, MacScheduler, PfAverages,
    PfScratch, RbAllocation,
};

/// Priority-Set scheduling (Monghal et al., the scheduler the paper modifies
/// in ns-3): flows below their target (GBR) rate form a priority set served
/// strictly first, ordered by *descending deficit*; remaining RBs go to
/// proportional fair across all backlogged flows.
///
/// The difference from [`super::TwoPhaseGbr`] is the deficit ordering inside
/// the priority set — under overload, the most-starved GBR flow is served
/// first instead of the lowest flow id, which matters when many video flows
/// compete (the Section IV-B scenarios).
///
/// # Example
///
/// ```
/// use flare_lte::scheduler::{MacScheduler, PrioritySetScheduler};
/// let mut s = PrioritySetScheduler::default();
/// assert_eq!(s.name(), "priority-set");
/// assert!(s.allocate(50, &[]).is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct PrioritySetScheduler {
    averages: PfAverages,
    /// Reused per-TTI scratch for the PF pass.
    scratch: PfScratch,
    /// Reused per-TTI index list of the priority set, sorted by deficit.
    prio: Vec<usize>,
}

impl PrioritySetScheduler {
    /// Creates the scheduler with a PF time constant in TTIs.
    ///
    /// # Panics
    ///
    /// Panics if `tc_ttis < 1`.
    pub fn new(tc_ttis: f64) -> Self {
        PrioritySetScheduler {
            averages: PfAverages::new(tc_ttis),
            scratch: PfScratch::default(),
            prio: Vec::new(),
        }
    }
}

impl Default for PrioritySetScheduler {
    /// One-second PF averaging window.
    fn default() -> Self {
        PrioritySetScheduler::new(1000.0)
    }
}

impl MacScheduler for PrioritySetScheduler {
    fn allocate_into(
        &mut self,
        n_rbs: u32,
        flows: &[FlowTtiState],
        grants: &mut Vec<RbAllocation>,
    ) {
        grants.clear();
        self.scratch.begin_tti();
        let mut rbs_left = n_rbs;

        // Priority set: flows with outstanding GBR credit, most-starved first
        // (ties broken by flow id via the stable sort), selected by index.
        self.prio.clear();
        self.prio.extend(
            flows
                .iter()
                .enumerate()
                .filter(|(_, f)| !f.gbr_credit.min(f.backlog).is_zero())
                .map(|(i, _)| i),
        );
        self.prio.sort_by(|&a, &b| {
            flows[b]
                .gbr_credit
                .cmp(&flows[a].gbr_credit)
                .then_with(|| flows[a].flow.cmp(&flows[b].flow))
        });
        for &i in &self.prio {
            if rbs_left == 0 {
                break;
            }
            let f = &flows[i];
            let owed = f.gbr_credit.min(f.backlog);
            let want = f.rbs_for_bytes(owed).min(rbs_left);
            push_grant(grants, &mut self.scratch, f.flow, want);
            rbs_left -= want;
        }

        pf_pass(
            &mut self.averages,
            rbs_left,
            flows,
            None,
            grants,
            &mut self.scratch,
        );
        settle_averages(&mut self.averages, flows, &self.scratch);
    }

    fn idle_tick(&mut self, flows: &[FlowTtiState]) -> bool {
        // The priority set requires `min(credit, backlog) > 0`, so an
        // all-idle TTI grants nothing; only the averages decay.
        settle_all_idle(&mut self.averages, flows);
        true
    }

    fn name(&self) -> &'static str {
        "priority-set"
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::*;
    use super::*;
    use crate::flows::FlowClass;

    #[test]
    fn most_starved_flow_served_first_under_overload() {
        let mut s = PrioritySetScheduler::default();
        // Flow 1 is owed more than flow 0; under a 50-RB budget flow 1 wins.
        let flows = vec![
            flow(0, FlowClass::Video, 1_000_000, 128.0, 800),
            flow(1, FlowClass::Video, 1_000_000, 128.0, 1600),
        ];
        let grants = s.allocate(50, &flows);
        assert_eq!(rbs_of(&grants, 1), 50);
        assert_eq!(rbs_of(&grants, 0), 0);
    }

    #[test]
    fn equal_deficits_break_ties_by_flow_id() {
        let mut s = PrioritySetScheduler::default();
        let flows = vec![
            flow(0, FlowClass::Video, 1_000_000, 128.0, 1600),
            flow(1, FlowClass::Video, 1_000_000, 128.0, 1600),
        ];
        let grants = s.allocate(50, &flows);
        assert_eq!(rbs_of(&grants, 0), 50);
    }

    #[test]
    fn leftover_goes_to_pf() {
        let mut s = PrioritySetScheduler::default();
        let flows = vec![
            flow(0, FlowClass::Video, 160, 128.0, 160),
            flow(1, FlowClass::Data, 1_000_000, 128.0, 0),
        ];
        let grants = s.allocate(50, &flows);
        assert_eq!(rbs_of(&grants, 0), 10);
        assert_eq!(rbs_of(&grants, 1), 40);
    }

    #[test]
    fn never_over_allocates() {
        let mut s = PrioritySetScheduler::default();
        let flows: Vec<_> = (0..16)
            .map(|i| flow(i, FlowClass::Video, 1_000_000, 64.0 + f64::from(i), 500))
            .collect();
        for _ in 0..100 {
            let grants = s.allocate(50, &flows);
            assert!(total(&grants) <= 50);
        }
    }
}
