//! The femtocell Scheduler Module: GBR phase + proportional-fair phase.

use super::{
    pf_pass, push_grant, settle_all_idle, settle_averages, FlowTtiState, MacScheduler, PfAverages,
    PfScratch, RbAllocation,
};

/// Two-phase GBR scheduling, as implemented in the paper's eNodeB MAC
/// (Section III-B):
///
/// * **Phase 1** serves each flow's outstanding GBR credit, in flow-id
///   order, until the credit or the TTI's RBs run out.
/// * **Phase 2** hands every remaining RB to legacy proportional fair over
///   *all* backlogged flows — video and data alike — which is what lets the
///   cell opportunistically reuse slack for video when the network-side
///   optimizer lags the channel.
///
/// # Example
///
/// ```
/// use flare_lte::scheduler::{MacScheduler, TwoPhaseGbr};
/// let mut s = TwoPhaseGbr::default();
/// assert_eq!(s.name(), "two-phase-gbr");
/// assert!(s.allocate(50, &[]).is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct TwoPhaseGbr {
    averages: PfAverages,
    /// Reused per-TTI scratch for the phase-2 PF pass.
    scratch: PfScratch,
}

impl TwoPhaseGbr {
    /// Creates the scheduler with a PF time constant in TTIs for phase 2.
    ///
    /// # Panics
    ///
    /// Panics if `tc_ttis < 1`.
    pub fn new(tc_ttis: f64) -> Self {
        TwoPhaseGbr {
            averages: PfAverages::new(tc_ttis),
            scratch: PfScratch::default(),
        }
    }
}

impl Default for TwoPhaseGbr {
    /// One-second PF averaging window.
    fn default() -> Self {
        TwoPhaseGbr::new(1000.0)
    }
}

impl MacScheduler for TwoPhaseGbr {
    fn allocate_into(
        &mut self,
        n_rbs: u32,
        flows: &[FlowTtiState],
        grants: &mut Vec<RbAllocation>,
    ) {
        grants.clear();
        self.scratch.begin_tti();
        let mut rbs_left = n_rbs;

        // Phase 1: clear GBR credit in flow-id order.
        for f in flows {
            if rbs_left == 0 {
                break;
            }
            let owed = f.gbr_credit.min(f.backlog);
            if owed.is_zero() {
                continue;
            }
            let want = f.rbs_for_bytes(owed).min(rbs_left);
            push_grant(grants, &mut self.scratch, f.flow, want);
            rbs_left -= want;
        }

        // Phase 2: PF over whatever backlog remains.
        pf_pass(
            &mut self.averages,
            rbs_left,
            flows,
            None,
            grants,
            &mut self.scratch,
        );
        settle_averages(&mut self.averages, flows, &self.scratch);
    }

    fn idle_tick(&mut self, flows: &[FlowTtiState]) -> bool {
        // Phase 1 is capped by backlog and phase 2 only serves backlog, so
        // an all-idle TTI grants nothing; only the averages decay.
        settle_all_idle(&mut self.averages, flows);
        true
    }

    fn name(&self) -> &'static str {
        "two-phase-gbr"
    }
}

/// Suppresses phase-2 sharing: GBR flows get exactly their credit and data
/// flows split the rest, never vice versa. Used by the ablation that shows
/// why the paper's opportunistic phase 2 matters.
#[derive(Debug, Clone)]
pub struct StrictGbrPartition {
    averages: PfAverages,
    /// Reused per-TTI scratch for the phase-2 PF pass.
    scratch: PfScratch,
    /// Reused per-TTI index partition of the zero-credit flows.
    non_gbr: Vec<usize>,
}

impl StrictGbrPartition {
    /// Creates the strict-partition scheduler.
    ///
    /// # Panics
    ///
    /// Panics if `tc_ttis < 1`.
    pub fn new(tc_ttis: f64) -> Self {
        StrictGbrPartition {
            averages: PfAverages::new(tc_ttis),
            scratch: PfScratch::default(),
            non_gbr: Vec::new(),
        }
    }
}

impl Default for StrictGbrPartition {
    fn default() -> Self {
        StrictGbrPartition::new(1000.0)
    }
}

impl MacScheduler for StrictGbrPartition {
    fn allocate_into(
        &mut self,
        n_rbs: u32,
        flows: &[FlowTtiState],
        grants: &mut Vec<RbAllocation>,
    ) {
        grants.clear();
        self.scratch.begin_tti();
        let mut rbs_left = n_rbs;
        for f in flows {
            if rbs_left == 0 {
                break;
            }
            // Reserve by *credit*, not by backlog: an idle sliced flow still
            // holds its RBs, modelling AVIS-style static resource slicing
            // (the reserved-but-unused blocks are the waste the paper's
            // Section I-B attributes to static partitioning).
            let owed = f.gbr_credit;
            if owed.is_zero() {
                continue;
            }
            let want = f.rbs_for_bytes(owed).min(rbs_left);
            push_grant(grants, &mut self.scratch, f.flow, want);
            rbs_left -= want;
        }
        // Phase 2 restricted to flows *without* a GBR bearer, selected by
        // index instead of copying their state out.
        self.non_gbr.clear();
        self.non_gbr.extend(
            flows
                .iter()
                .enumerate()
                .filter(|(_, f)| f.gbr_credit.is_zero())
                .map(|(i, _)| i),
        );
        pf_pass(
            &mut self.averages,
            rbs_left,
            flows,
            Some(&self.non_gbr),
            grants,
            &mut self.scratch,
        );
        settle_averages(&mut self.averages, flows, &self.scratch);
    }

    fn name(&self) -> &'static str {
        "strict-gbr-partition"
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::*;
    use super::*;
    use crate::flows::FlowClass;

    #[test]
    fn gbr_credit_served_first() {
        let mut s = TwoPhaseGbr::default();
        // Flow 0 is a GBR video flow owed 160 bytes (10 RBs at 128 b/RB);
        // flow 1 is greedy data.
        let flows = vec![
            flow(0, FlowClass::Video, 10_000, 128.0, 160),
            flow(1, FlowClass::Data, 1_000_000, 128.0, 0),
        ];
        let grants = s.allocate(50, &flows);
        assert!(
            rbs_of(&grants, 0) >= 10,
            "GBR flow must get its credit first"
        );
        assert_eq!(total(&grants), 50);
    }

    #[test]
    fn gbr_flow_can_exceed_credit_via_phase2() {
        let mut s = TwoPhaseGbr::default();
        // Only the video flow is backlogged; it should absorb all 50 RBs
        // even though its credit covers just 10.
        let flows = vec![flow(0, FlowClass::Video, 1_000_000, 128.0, 160)];
        let grants = s.allocate(50, &flows);
        assert_eq!(rbs_of(&grants, 0), 50);
    }

    #[test]
    fn strict_partition_wastes_slack() {
        let mut s = StrictGbrPartition::default();
        let flows = vec![flow(0, FlowClass::Video, 1_000_000, 128.0, 160)];
        let grants = s.allocate(50, &flows);
        // Credit = 160 bytes = 10 RBs; strict partitioning stops there.
        assert_eq!(rbs_of(&grants, 0), 10);
    }

    #[test]
    fn strict_partition_reserves_for_idle_sliced_flows() {
        let mut s = StrictGbrPartition::default();
        // The sliced video flow has credit but *no backlog* (player buffer
        // full); a greedy data flow wants everything. The slice's 10 RBs
        // are reserved anyway and go to waste — AVIS's inefficiency.
        let flows = vec![
            flow(0, FlowClass::Video, 0, 128.0, 160),
            flow(1, FlowClass::Data, 1_000_000, 128.0, 0),
        ];
        let grants = s.allocate(50, &flows);
        assert_eq!(rbs_of(&grants, 1), 40, "data must not reclaim the slice");
    }

    #[test]
    fn credit_capped_by_backlog() {
        let mut s = TwoPhaseGbr::default();
        // Credit says 160 bytes but only 16 bytes are queued.
        let flows = vec![
            flow(0, FlowClass::Video, 16, 128.0, 160),
            flow(1, FlowClass::Data, 1_000_000, 128.0, 0),
        ];
        let grants = s.allocate(50, &flows);
        assert_eq!(rbs_of(&grants, 0), 1);
        assert_eq!(rbs_of(&grants, 1), 49);
    }

    #[test]
    fn budget_exhaustion_in_phase1() {
        let mut s = TwoPhaseGbr::default();
        // Two GBR flows each owed 100 RBs worth; only 50 available.
        let flows = vec![
            flow(0, FlowClass::Video, 1_000_000, 128.0, 1600),
            flow(1, FlowClass::Video, 1_000_000, 128.0, 1600),
        ];
        let grants = s.allocate(50, &flows);
        assert_eq!(total(&grants), 50);
        // Flow-id order: flow 0 is served first.
        assert_eq!(rbs_of(&grants, 0), 50);
        assert_eq!(rbs_of(&grants, 1), 0);
    }

    #[test]
    fn strict_partition_matches_two_phase_without_credit() {
        // The schedulers only diverge through GBR credit: phase 1 is empty
        // on both sides when nobody is owed anything, and strict's phase-2
        // filter keeps every zero-credit flow. This is the boundary of the
        // AVIS-waste model — divergence begins exactly when an idle sliced
        // flow holds credit (see strict_partition_reserves_for_idle_sliced_flows).
        let flows = vec![
            flow(0, FlowClass::Video, 5_000, 96.0, 0),
            flow(1, FlowClass::Data, 1_000_000, 128.0, 0),
            flow(2, FlowClass::Video, 0, 64.0, 0),
        ];
        let mut two_phase = TwoPhaseGbr::default();
        let mut strict = StrictGbrPartition::default();
        for tti in 0..500 {
            let a = two_phase.allocate(50, &flows);
            let b = strict.allocate(50, &flows);
            assert_eq!(a, b, "grants diverged at TTI {tti}");
        }
    }

    proptest::proptest! {
        #[test]
        fn schedulers_are_identical_when_no_flow_holds_credit(
            n_rbs in 1u32..100,
            specs in proptest::collection::vec(
                (0u64..1_000_000, 16u32..512, 0u32..2),
                1..8,
            ),
            ttis in 1usize..50,
        ) {
            // Differential property: with every gbr_credit at zero, the
            // two-phase and strict-partition schedulers produce identical
            // per-flow grants TTI after TTI (identical grants ⇒ identical
            // per-flow bytes, since bytes_for_rbs is a pure per-flow map).
            // The PF state also stays in lockstep because it is settled
            // from the very grants that just matched.
            let flows: Vec<FlowTtiState> = specs
                .iter()
                .enumerate()
                .map(|(i, &(backlog, bits_per_rb, is_video))| {
                    let class = if is_video == 1 { FlowClass::Video } else { FlowClass::Data };
                    flow(i as u32, class, backlog, f64::from(bits_per_rb), 0)
                })
                .collect();
            let mut two_phase = TwoPhaseGbr::default();
            let mut strict = StrictGbrPartition::default();
            for tti in 0..ttis {
                let a = two_phase.allocate(n_rbs, &flows);
                let b = strict.allocate(n_rbs, &flows);
                proptest::prop_assert_eq!(&a, &b, "grants diverged at TTI {}", tti);
            }
        }
    }

    #[test]
    fn data_flows_share_leftover() {
        let mut s = TwoPhaseGbr::default();
        let flows = vec![
            flow(0, FlowClass::Video, 160, 128.0, 160),
            flow(1, FlowClass::Data, 1_000_000, 128.0, 0),
            flow(2, FlowClass::Data, 1_000_000, 128.0, 0),
        ];
        let mut tot = [0u64; 3];
        for _ in 0..2000 {
            for g in s.allocate(50, &flows) {
                tot[g.flow.index()] += u64::from(g.rbs);
            }
        }
        // Video gets its 10 RBs/TTI; data flows split the remaining 40.
        let d1 = tot[1] as f64;
        let d2 = tot[2] as f64;
        assert!((d1 / d2 - 1.0).abs() < 0.1, "data split {d1}/{d2} not even");
    }
}
