//! The legacy proportional fair scheduler.

use super::{
    pf_pass, settle_all_idle, settle_averages, FlowTtiState, MacScheduler, PfAverages, PfScratch,
    RbAllocation,
};

/// Pure proportional fair scheduling: every TTI, backlogged flows are served
/// greedily in order of `achievable rate / average throughput`.
///
/// This is the baseline policy of both the femtocell MAC and ns-3, and the
/// phase-2 policy inside [`super::TwoPhaseGbr`] and
/// [`super::PrioritySetScheduler`].
///
/// # Example
///
/// ```
/// use flare_lte::scheduler::{MacScheduler, ProportionalFair};
/// let mut pf = ProportionalFair::default();
/// assert_eq!(pf.name(), "pf");
/// assert!(pf.allocate(50, &[]).is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct ProportionalFair {
    averages: PfAverages,
    /// Reused per-TTI scratch for the PF pass.
    scratch: PfScratch,
}

impl ProportionalFair {
    /// Creates a PF scheduler with the given averaging time constant in TTIs.
    ///
    /// # Panics
    ///
    /// Panics if `tc_ttis < 1`.
    pub fn new(tc_ttis: f64) -> Self {
        ProportionalFair {
            averages: PfAverages::new(tc_ttis),
            scratch: PfScratch::default(),
        }
    }
}

impl Default for ProportionalFair {
    /// One-second averaging window (1000 TTIs), the common LTE default.
    fn default() -> Self {
        ProportionalFair::new(1000.0)
    }
}

impl MacScheduler for ProportionalFair {
    fn allocate_into(
        &mut self,
        n_rbs: u32,
        flows: &[FlowTtiState],
        grants: &mut Vec<RbAllocation>,
    ) {
        grants.clear();
        self.scratch.begin_tti();
        pf_pass(
            &mut self.averages,
            n_rbs,
            flows,
            None,
            grants,
            &mut self.scratch,
        );
        settle_averages(&mut self.averages, flows, &self.scratch);
    }

    fn idle_tick(&mut self, flows: &[FlowTtiState]) -> bool {
        // A backlog-free PF pass grants nothing; only the averages decay.
        settle_all_idle(&mut self.averages, flows);
        true
    }

    fn name(&self) -> &'static str {
        "pf"
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::*;
    use super::*;
    use crate::flows::FlowClass;
    use flare_sim::units::ByteCount;

    #[test]
    fn never_exceeds_rb_budget() {
        let mut pf = ProportionalFair::default();
        let flows = vec![
            flow(0, FlowClass::Data, 1_000_000, 128.0, 0),
            flow(1, FlowClass::Data, 1_000_000, 256.0, 0),
        ];
        let grants = pf.allocate(50, &flows);
        assert_eq!(total(&grants), 50);
    }

    #[test]
    fn idle_flows_get_nothing() {
        let mut pf = ProportionalFair::default();
        let flows = vec![
            flow(0, FlowClass::Data, 0, 128.0, 0),
            flow(1, FlowClass::Data, 500, 128.0, 0),
        ];
        let grants = pf.allocate(50, &flows);
        assert_eq!(rbs_of(&grants, 0), 0);
        assert!(rbs_of(&grants, 1) > 0);
    }

    #[test]
    fn small_backlogs_do_not_waste_rbs() {
        let mut pf = ProportionalFair::default();
        // 16 bytes = exactly 1 RB at 128 bits/RB; the rest should go to flow 1.
        let flows = vec![
            flow(0, FlowClass::Data, 16, 128.0, 0),
            flow(1, FlowClass::Data, 1_000_000, 128.0, 0),
        ];
        let grants = pf.allocate(50, &flows);
        assert_eq!(rbs_of(&grants, 0), 1);
        assert_eq!(rbs_of(&grants, 1), 49);
    }

    #[test]
    fn long_run_shares_are_proportional_fair() {
        // Two always-backlogged flows with equal channels should converge to
        // an equal RB split; with a 2x better channel the splits stay equal
        // in RBs (PF equalizes *time*, rates differ).
        let mut pf = ProportionalFair::new(200.0);
        let flows = vec![
            flow(0, FlowClass::Data, u64::MAX / 2, 128.0, 0),
            flow(1, FlowClass::Data, u64::MAX / 2, 256.0, 0),
        ];
        let mut tot = [0u64; 2];
        for _ in 0..5000 {
            for g in pf.allocate(50, &flows) {
                tot[g.flow.index()] += u64::from(g.rbs);
            }
        }
        let share0 = tot[0] as f64 / (tot[0] + tot[1]) as f64;
        assert!((share0 - 0.5).abs() < 0.05, "share {share0} should be ~0.5");
    }

    #[test]
    fn starved_flow_eventually_wins() {
        let mut pf = ProportionalFair::new(100.0);
        // Serve only flow 0 for a while by making flow 1 idle...
        let warm = vec![flow(0, FlowClass::Data, u64::MAX / 2, 128.0, 0)];
        for _ in 0..1000 {
            pf.allocate(50, &warm);
        }
        // ...then flow 1 appears and must immediately out-rank flow 0.
        let flows = vec![
            flow(0, FlowClass::Data, u64::MAX / 2, 128.0, 0),
            flow(
                1,
                FlowClass::Data,
                ByteCount::new(u64::MAX / 2).as_u64(),
                128.0,
                0,
            ),
        ];
        let grants = pf.allocate(50, &flows);
        assert!(rbs_of(&grants, 1) >= rbs_of(&grants, 0));
    }

    #[test]
    fn deterministic_across_reruns() {
        let run = || {
            let mut pf = ProportionalFair::default();
            let flows = vec![
                flow(0, FlowClass::Data, 1_000_000, 144.0, 0),
                flow(1, FlowClass::Data, 1_000_000, 208.0, 0),
                flow(2, FlowClass::Data, 1_000_000, 64.0, 0),
            ];
            (0..200)
                .map(|_| pf.allocate(50, &flows))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
