//! A round-robin scheduler: the simplest fair baseline.

use flare_sim::units::ByteCount;

use super::{FlowTtiState, MacScheduler, RbAllocation};
use crate::flows::FlowId;

/// Round-robin scheduling: backlogged flows take turns receiving whole
/// TTIs, regardless of channel quality.
///
/// Not used by any paper scenario; it serves as the classical
/// channel-oblivious reference point against which proportional fair's
/// multi-user-diversity gain (and FLARE's utility gain) can be measured in
/// ablations.
///
/// # Example
///
/// ```
/// use flare_lte::scheduler::{MacScheduler, RoundRobin};
/// let mut rr = RoundRobin::new();
/// assert_eq!(rr.name(), "round-robin");
/// assert!(rr.allocate(50, &[]).is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct RoundRobin {
    next: Option<FlowId>,
    /// Reused per-TTI index list of the backlogged flows.
    backlogged: Vec<usize>,
    /// Reused per-TTI scratch: remaining backlog per backlogged flow.
    remaining: Vec<ByteCount>,
}

impl RoundRobin {
    /// Creates the scheduler.
    pub fn new() -> Self {
        RoundRobin::default()
    }
}

impl MacScheduler for RoundRobin {
    fn allocate_into(
        &mut self,
        n_rbs: u32,
        flows: &[FlowTtiState],
        grants: &mut Vec<RbAllocation>,
    ) {
        grants.clear();
        let mut rbs_left = n_rbs;
        self.backlogged.clear();
        self.backlogged.extend(
            flows
                .iter()
                .enumerate()
                .filter(|(_, f)| !f.backlog.is_zero())
                .map(|(i, _)| i),
        );
        if self.backlogged.is_empty() {
            return;
        }
        // Start from the remembered turn (or the lowest id) and hand out
        // RBs in id order, wrapping, each flow taking what its backlog
        // needs.
        let start = self
            .next
            .and_then(|next| self.backlogged.iter().position(|&f| flows[f].flow >= next))
            .unwrap_or(0);
        self.remaining.clear();
        self.remaining
            .extend(self.backlogged.iter().map(|&f| flows[f].backlog));
        let count = self.backlogged.len();
        let mut i = start;
        let mut visited = 0;
        while rbs_left > 0 && visited < count {
            let idx = i % count;
            let f = &flows[self.backlogged[idx]];
            let want = f.rbs_for_bytes(self.remaining[idx]).min(rbs_left);
            if want > 0 {
                // Each backlogged flow is visited at most once per TTI
                // (`visited < count`), so a plain push never needs merging.
                grants.push(RbAllocation {
                    flow: f.flow,
                    rbs: want,
                });
                let delivered = f.bytes_for_rbs(want).min(self.remaining[idx]);
                self.remaining[idx] = self.remaining[idx].saturating_sub(delivered);
                rbs_left -= want;
            }
            i += 1;
            visited += 1;
        }
        // Next TTI starts with the flow after the last one served.
        self.next = Some(flows[self.backlogged[i % count]].flow);
    }

    fn idle_tick(&mut self, flows: &[FlowTtiState]) -> bool {
        // With nothing backlogged the turn pointer does not move and no
        // grants are made; there is no state to settle.
        let _ = flows;
        true
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::*;
    use super::*;
    use crate::flows::FlowClass;

    #[test]
    fn turns_rotate_across_ttis() {
        let mut rr = RoundRobin::new();
        let flows = vec![
            flow(0, FlowClass::Data, u64::MAX / 4, 128.0, 0),
            flow(1, FlowClass::Data, u64::MAX / 4, 128.0, 0),
            flow(2, FlowClass::Data, u64::MAX / 4, 128.0, 0),
        ];
        let mut tot = [0u64; 3];
        for _ in 0..300 {
            for g in rr.allocate(50, &flows) {
                tot[g.flow.index()] += u64::from(g.rbs);
            }
        }
        let max = *tot.iter().max().unwrap() as f64;
        let min = *tot.iter().min().unwrap() as f64;
        assert!(max / min < 1.05, "RB shares must equalize: {tot:?}");
    }

    #[test]
    fn channel_quality_is_ignored() {
        // Unlike PF, a flow with a 10x better channel gets the same RBs.
        let mut rr = RoundRobin::new();
        let flows = vec![
            flow(0, FlowClass::Data, u64::MAX / 4, 64.0, 0),
            flow(1, FlowClass::Data, u64::MAX / 4, 640.0, 0),
        ];
        let mut tot = [0u64; 2];
        for _ in 0..200 {
            for g in rr.allocate(50, &flows) {
                tot[g.flow.index()] += u64::from(g.rbs);
            }
        }
        let ratio = tot[0] as f64 / tot[1] as f64;
        assert!(
            (ratio - 1.0).abs() < 0.05,
            "RR must be channel-blind: {tot:?}"
        );
    }

    #[test]
    fn small_backlogs_release_the_turn() {
        let mut rr = RoundRobin::new();
        let flows = vec![
            flow(0, FlowClass::Data, 16, 128.0, 0), // exactly 1 RB
            flow(1, FlowClass::Data, u64::MAX / 4, 128.0, 0),
        ];
        let grants = rr.allocate(50, &flows);
        assert_eq!(rbs_of(&grants, 0), 1);
        assert_eq!(rbs_of(&grants, 1), 49);
    }

    #[test]
    fn idle_cell_grants_nothing() {
        let mut rr = RoundRobin::new();
        let flows = vec![flow(0, FlowClass::Data, 0, 128.0, 0)];
        assert!(rr.allocate(50, &flows).is_empty());
    }

    #[test]
    fn never_over_allocates() {
        let mut rr = RoundRobin::new();
        let flows: Vec<_> = (0..7)
            .map(|i| flow(i, FlowClass::Data, 1000 + u64::from(i) * 50, 64.0, 0))
            .collect();
        for _ in 0..50 {
            assert!(total(&rr.allocate(50, &flows)) <= 50);
        }
    }
}
