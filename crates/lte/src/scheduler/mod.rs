//! Per-TTI MAC schedulers.
//!
//! The policies match the systems the paper builds on, plus one classical
//! baseline:
//!
//! * [`ProportionalFair`] — the legacy PF scheduler every policy falls back
//!   to for non-GBR traffic.
//! * [`TwoPhaseGbr`] — the paper's femtocell Scheduler Module: phase 1
//!   serves video flows up to their GBR, phase 2 hands the remaining RBs to
//!   proportional fair across all backlogged flows (this is what lets FLARE
//!   opportunistically reuse data-flow RBs for video when the optimizer lags
//!   link dynamics, cf. Section IV-A).
//! * [`RoundRobin`] — the classical channel-blind baseline, for ablations
//!   quantifying proportional fair's multi-user-diversity gain.
//! * [`PrioritySetScheduler`] — the ns-3 scheduler used in Section IV-B:
//!   GBR flows below their target rate get strict priority ordered by
//!   deficit; the remainder is proportional fair. It also honours MBR caps,
//!   which is how AVIS enforces its per-flow allocations.

mod pf;
mod priority_set;
mod round_robin;
mod two_phase;

pub use pf::ProportionalFair;
pub use priority_set::PrioritySetScheduler;
pub use round_robin::RoundRobin;
pub use two_phase::{StrictGbrPartition, TwoPhaseGbr};

use flare_sim::units::ByteCount;

use crate::flows::{FlowClass, FlowId};

/// Everything a scheduler may consult about one flow in one TTI.
#[derive(Debug, Clone, Copy)]
pub struct FlowTtiState {
    /// The flow being scheduled.
    pub flow: FlowId,
    /// Its traffic class.
    pub class: FlowClass,
    /// Bytes waiting to be sent, already clamped by any MBR allowance.
    pub backlog: ByteCount,
    /// Deliverable bits per resource block at the flow's current iTbs.
    pub bits_per_rb: f64,
    /// Outstanding GBR service credit in bytes (zero for non-GBR bearers).
    pub gbr_credit: ByteCount,
}

impl FlowTtiState {
    /// RBs needed to move `bytes` at this flow's current operating point.
    pub fn rbs_for_bytes(&self, bytes: ByteCount) -> u32 {
        if bytes.is_zero() {
            return 0;
        }
        ((bytes.as_bits() as f64) / self.bits_per_rb).ceil() as u32
    }

    /// Whole bytes deliverable with `rbs` resource blocks.
    pub fn bytes_for_rbs(&self, rbs: u32) -> ByteCount {
        ByteCount::new((self.bits_per_rb * f64::from(rbs) / 8.0).floor() as u64)
    }
}

/// One flow's share of a TTI's resource blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RbAllocation {
    /// The flow receiving the grant.
    pub flow: FlowId,
    /// Number of RBs granted this TTI.
    pub rbs: u32,
}

/// A per-TTI downlink MAC scheduler.
///
/// Implementations must be deterministic and must never allocate more than
/// `n_rbs` blocks in total (the eNodeB asserts this).
pub trait MacScheduler {
    /// Distributes `n_rbs` resource blocks among `flows` for one TTI,
    /// writing the grants into the caller-owned `grants` buffer.
    ///
    /// `grants` is cleared first and then filled; reusing one buffer across
    /// TTIs keeps the hot path allocation-free after warm-up (the eNodeB
    /// does exactly that). `flows` is ordered by flow id; implementations
    /// must break metric ties the same way to keep runs reproducible.
    fn allocate_into(&mut self, n_rbs: u32, flows: &[FlowTtiState], grants: &mut Vec<RbAllocation>);

    /// Distributes `n_rbs` resource blocks among `flows` for one TTI,
    /// returning a freshly allocated grant list.
    ///
    /// Convenience wrapper over [`MacScheduler::allocate_into`] for callers
    /// outside the per-TTI hot path; the vector is pre-sized to the flow
    /// count so grant pushes never reallocate mid-TTI.
    fn allocate(&mut self, n_rbs: u32, flows: &[FlowTtiState]) -> Vec<RbAllocation> {
        let mut grants = Vec::with_capacity(flows.len());
        self.allocate_into(n_rbs, flows, &mut grants);
        grants
    }

    /// Settles one all-idle TTI (every `flows[i].backlog` is zero) without a
    /// full allocation pass, returning `true` on success.
    ///
    /// Policies whose all-idle TTI provably grants nothing and only decays
    /// internal averages may override this with that cheaper settle; the
    /// default returns `false`, telling the eNodeB to run
    /// [`MacScheduler::allocate_into`] as usual. [`StrictGbrPartition`]
    /// must keep the default: it reserves RBs for idle sliced flows, so even
    /// a backlog-free TTI produces grants.
    fn idle_tick(&mut self, flows: &[FlowTtiState]) -> bool {
        let _ = flows;
        false
    }

    /// A short human-readable policy name (for experiment logs).
    fn name(&self) -> &'static str;
}

/// Shared helper: exponentially averaged per-flow throughput used by the PF
/// metric. The time constant is in TTIs (1 ms each); ns-3's PF default is
/// an effective window of about one second.
#[derive(Debug, Clone)]
pub(crate) struct PfAverages {
    /// `1 − 1/tc`, precomputed so the per-flow-per-TTI update divides never.
    decay: f64,
    /// `1/tc`, the complementary EWMA gain.
    gain: f64,
    avgs: Vec<f64>,
}

impl PfAverages {
    pub(crate) fn new(tc_ttis: f64) -> Self {
        assert!(tc_ttis >= 1.0, "PF time constant must be >= 1 TTI");
        PfAverages {
            decay: 1.0 - 1.0 / tc_ttis,
            gain: 1.0 / tc_ttis,
            avgs: Vec::new(),
        }
    }

    fn ensure(&mut self, flow: FlowId) {
        let idx = flow.index();
        if idx >= self.avgs.len() {
            // Small positive prior so brand-new flows don't divide by zero
            // and immediately win every RB forever.
            self.avgs.resize(idx + 1, 1.0);
        }
    }

    /// PF metric: achievable rate over averaged rate.
    pub(crate) fn metric(&mut self, state: &FlowTtiState) -> f64 {
        self.ensure(state.flow);
        let inst_bps = state.bits_per_rb * 1000.0; // one RB every TTI
        inst_bps / self.avgs[state.flow.index()]
    }

    /// Folds one TTI's delivered bits into the average of every flow.
    pub(crate) fn update(&mut self, flow: FlowId, delivered_bits: f64) {
        self.ensure(flow);
        let a = &mut self.avgs[flow.index()];
        // IEEE: `x + 0.0 == x` for the non-negative averages, so a zero
        // delivery is a pure decay — same value, half the flops.
        if delivered_bits == 0.0 {
            *a *= self.decay;
        } else {
            *a = self.decay * *a + self.gain * delivered_bits * 1000.0;
        }
    }
}

/// Reused per-TTI scratch for [`pf_pass`]: remaining backlog and the
/// memoized PF metric per eligible flow, plus an O(1) granted-RBs lookup
/// keyed by flow index (the grant list itself stays ordered for output).
/// Owned by each scheduler so the pass is allocation-free once capacities
/// stabilize.
#[derive(Debug, Clone, Default)]
pub(crate) struct PfScratch {
    remaining: Vec<ByteCount>,
    metrics: Vec<f64>,
    granted: Vec<u32>,
}

impl PfScratch {
    /// Resets the per-TTI granted-RBs table. Must be called once at the top
    /// of every `allocate_into` before any [`push_grant`].
    pub(crate) fn begin_tti(&mut self) {
        self.granted.clear();
    }

    /// RBs granted to `flow` so far this TTI.
    pub(crate) fn granted(&self, flow: FlowId) -> u32 {
        self.granted.get(flow.index()).copied().unwrap_or(0)
    }
}

/// Shared helper: greedy PF pass over whatever backlog remains.
///
/// Repeatedly grants the metric-argmax flow enough RBs to drain its backlog
/// (or whatever is left), updating `grants`. `eligible` restricts the pass
/// to a subset of `flows` by index (ascending, so metric ties still resolve
/// to the lowest flow id); `None` means every flow. PF metrics depend only
/// on the averages, which this pass never mutates, so they are computed
/// once per call instead of once per argmax iteration — same floats, same
/// selections. Returns the RBs still free.
pub(crate) fn pf_pass(
    averages: &mut PfAverages,
    mut rbs_left: u32,
    flows: &[FlowTtiState],
    eligible: Option<&[usize]>,
    grants: &mut Vec<RbAllocation>,
    scratch: &mut PfScratch,
) -> u32 {
    let flow_at = |j: usize| match eligible {
        Some(idx) => &flows[idx[j]],
        None => &flows[j],
    };
    let n = eligible.map_or(flows.len(), <[usize]>::len);

    // Remaining backlog after earlier phases, plus the per-flow metric. The
    // metric (a float division) is only computed for flows that can still
    // receive a grant; zero-remaining flows are never examined by the argmax
    // below, so their placeholder is unobservable.
    scratch.remaining.clear();
    scratch.metrics.clear();
    for j in 0..n {
        let f = flow_at(j);
        let granted = scratch.granted(f.flow);
        let remaining = if granted == 0 {
            f.backlog
        } else {
            f.backlog.saturating_sub(f.bytes_for_rbs(granted))
        };
        scratch.remaining.push(remaining);
        scratch.metrics.push(if remaining.is_zero() {
            0.0
        } else {
            averages.metric(f)
        });
    }

    while rbs_left > 0 {
        let mut best: Option<(usize, f64)> = None;
        for (j, r) in scratch.remaining.iter().enumerate() {
            if r.is_zero() {
                continue;
            }
            let m = scratch.metrics[j];
            // Strictly-greater keeps ties on the lowest flow id.
            if best.is_none_or(|(_, bm)| m > bm) {
                best = Some((j, m));
            }
        }
        let Some((j, _)) = best else { break };
        let f = flow_at(j);
        let want = f.rbs_for_bytes(scratch.remaining[j]).min(rbs_left);
        let grant = want.max(1).min(rbs_left);
        push_grant(grants, scratch, f.flow, grant);
        let delivered = f.bytes_for_rbs(grant).min(scratch.remaining[j]);
        scratch.remaining[j] = scratch.remaining[j].saturating_sub(delivered);
        rbs_left -= grant;
    }
    rbs_left
}

/// Adds `rbs` to an existing grant for `flow`, or appends a new one, keeping
/// the scratch granted-RBs table in sync.
pub(crate) fn push_grant(
    grants: &mut Vec<RbAllocation>,
    scratch: &mut PfScratch,
    flow: FlowId,
    rbs: u32,
) {
    if rbs == 0 {
        return;
    }
    let idx = flow.index();
    if idx >= scratch.granted.len() {
        scratch.granted.resize(idx + 1, 0);
    }
    if scratch.granted[idx] > 0 {
        if let Some(g) = grants.iter_mut().find(|g| g.flow == flow) {
            g.rbs += rbs;
        }
    } else {
        grants.push(RbAllocation { flow, rbs });
    }
    scratch.granted[idx] += rbs;
}

/// Settles the PF averages for a grant-free TTI: every flow folds in a zero
/// delivery, i.e. a pure decay. Exactly [`settle_averages`] with no grants,
/// skipping the per-flow lookup machinery.
pub(crate) fn settle_all_idle(averages: &mut PfAverages, flows: &[FlowTtiState]) {
    for f in flows {
        averages.update(f.flow, 0.0);
    }
}

/// Folds one TTI's outcome into the PF averages for all flows.
pub(crate) fn settle_averages(
    averages: &mut PfAverages,
    flows: &[FlowTtiState],
    scratch: &PfScratch,
) {
    for f in flows {
        let rbs = scratch.granted(f.flow);
        // `bytes_for_rbs(0)` is exactly zero, so ungranted flows fold in a
        // pure decay without the float round-trip.
        let delivered = if rbs == 0 {
            ByteCount::ZERO
        } else {
            f.bytes_for_rbs(rbs).min(f.backlog)
        };
        averages.update(f.flow, delivered.as_bits() as f64);
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;

    /// Builds a flow TTI state for scheduler tests.
    pub(crate) fn flow(
        id: u32,
        class: FlowClass,
        backlog: u64,
        bits_per_rb: f64,
        gbr_credit: u64,
    ) -> FlowTtiState {
        FlowTtiState {
            flow: FlowId(id),
            class,
            backlog: ByteCount::new(backlog),
            bits_per_rb,
            gbr_credit: ByteCount::new(gbr_credit),
        }
    }

    /// Total RBs in a grant list.
    pub(crate) fn total(grants: &[RbAllocation]) -> u32 {
        grants.iter().map(|g| g.rbs).sum()
    }

    /// RBs granted to one flow.
    pub(crate) fn rbs_of(grants: &[RbAllocation], id: u32) -> u32 {
        grants
            .iter()
            .find(|g| g.flow == FlowId(id))
            .map_or(0, |g| g.rbs)
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::*;
    use super::*;

    #[test]
    fn rbs_for_bytes_round_trip() {
        let f = flow(0, FlowClass::Video, 0, 128.0, 0);
        assert_eq!(f.rbs_for_bytes(ByteCount::new(0)), 0);
        // 16 bytes = 128 bits = exactly 1 RB.
        assert_eq!(f.rbs_for_bytes(ByteCount::new(16)), 1);
        assert_eq!(f.rbs_for_bytes(ByteCount::new(17)), 2);
        assert_eq!(f.bytes_for_rbs(2), ByteCount::new(32));
    }

    #[test]
    fn push_grant_merges() {
        let mut g = Vec::new();
        let mut scratch = PfScratch::default();
        push_grant(&mut g, &mut scratch, FlowId(1), 3);
        push_grant(&mut g, &mut scratch, FlowId(1), 2);
        push_grant(&mut g, &mut scratch, FlowId(2), 0);
        assert_eq!(scratch.granted(FlowId(1)), 5);
        assert_eq!(
            g,
            vec![RbAllocation {
                flow: FlowId(1),
                rbs: 5
            }]
        );
    }

    #[test]
    fn pf_averages_prior_prevents_div_by_zero() {
        let mut avg = PfAverages::new(1000.0);
        let f = flow(0, FlowClass::Data, 100, 128.0, 0);
        let m = avg.metric(&f);
        assert!(m.is_finite() && m > 0.0);
    }

    #[test]
    fn pf_averages_decay_towards_service_rate() {
        let mut avg = PfAverages::new(100.0);
        let id = FlowId(0);
        for _ in 0..5000 {
            avg.update(id, 1000.0); // 1000 bits per TTI = 1 Mbps
        }
        let f = flow(0, FlowClass::Data, 100, 128.0, 0);
        let m = avg.metric(&f);
        // metric = 128k / ~1M
        assert!((m - 0.128).abs() < 0.01, "metric {m}");
    }
}
