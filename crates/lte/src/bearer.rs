//! Bearer QoS: guaranteed and maximum bit rates, enforced by token buckets.
//!
//! The paper's eNodeB modules map here directly: the **Continuous GBR
//! Updater** is [`crate::ENodeB::set_gbr`] re-writing a bearer's
//! [`BearerQos::gbr`] at every bitrate assignment interval, and AVIS's
//! MBR clamping is [`BearerQos::mbr`]. Both are paced by a [`TokenBucket`]:
//! the GBR bucket accumulates a *service credit* that phase-1 scheduling
//! tries to clear, and the MBR bucket caps how many bytes a flow may receive.

use flare_sim::units::{ByteCount, Rate};
use flare_sim::{Time, TimeDelta};

/// Per-bearer QoS configuration.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BearerQos {
    /// Guaranteed bit rate: the MAC serves this flow with strict priority up
    /// to this rate.
    pub gbr: Option<Rate>,
    /// Maximum bit rate: the MAC never serves this flow above this rate
    /// (measured at token-bucket granularity).
    pub mbr: Option<Rate>,
}

/// A byte-denominated token bucket.
///
/// Tokens accrue at `rate` and cap at `burst`; consumers spend tokens as
/// bytes are served. Used for both GBR credit (how much the cell *owes* a
/// flow) and MBR allowance (how much a flow may still receive).
///
/// # Example
///
/// ```
/// use flare_lte::bearer::TokenBucket;
/// use flare_sim::units::{ByteCount, Rate};
/// use flare_sim::{Time, TimeDelta};
///
/// let mut tb = TokenBucket::new(Rate::from_mbps(1.0), TimeDelta::from_millis(200));
/// tb.advance(Time::from_millis(100));
/// // 1 Mbps for 100 ms = 12,500 bytes accrued.
/// assert_eq!(tb.available(), ByteCount::new(12_500));
/// tb.consume(ByteCount::new(500));
/// assert_eq!(tb.available(), ByteCount::new(12_000));
/// ```
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate: Rate,
    burst_window: TimeDelta,
    /// `rate × burst_window` in bytes, recomputed only when the rate
    /// changes so the per-TTI clamp is a compare, not two multiplies.
    cap: f64,
    tokens: f64,
    last: Time,
}

impl TokenBucket {
    /// Creates a bucket that accrues at `rate` and holds at most
    /// `rate × burst_window` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `burst_window` is zero.
    pub fn new(rate: Rate, burst_window: TimeDelta) -> Self {
        assert!(!burst_window.is_zero(), "burst window must be non-zero");
        TokenBucket {
            rate,
            burst_window,
            cap: rate.as_bps() * burst_window.as_secs_f64() / 8.0,
            tokens: 0.0,
            last: Time::ZERO,
        }
    }

    /// Updates the accrual rate, keeping accumulated tokens (the Continuous
    /// GBR Updater path).
    pub fn set_rate(&mut self, rate: Rate) {
        self.rate = rate;
        self.cap = rate.as_bps() * self.burst_window.as_secs_f64() / 8.0;
        self.clamp_to_burst();
    }

    /// Returns the current accrual rate.
    pub fn rate(&self) -> Rate {
        self.rate
    }

    /// Accrues tokens up to time `now`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `now` precedes the previous call.
    pub fn advance(&mut self, now: Time) {
        debug_assert!(now >= self.last, "token bucket time must be monotone");
        // A full bucket stays exactly full under any accrual-then-clamp, so
        // the float work can be skipped outright.
        if self.tokens >= self.cap {
            self.last = now;
            return;
        }
        let dt = now.saturating_since(self.last);
        self.tokens += self.rate.as_bps() * dt.as_secs_f64() / 8.0;
        self.last = now;
        self.clamp_to_burst();
    }

    /// True when the bucket holds its full burst allowance, i.e. an
    /// [`TokenBucket::advance`] of any length cannot change it.
    pub fn is_full(&self) -> bool {
        self.tokens >= self.cap
    }

    fn clamp_to_burst(&mut self) {
        if self.tokens > self.cap {
            self.tokens = self.cap;
        }
    }

    /// Whole bytes currently available.
    pub fn available(&self) -> ByteCount {
        ByteCount::new(self.tokens.max(0.0) as u64)
    }

    /// Spends `bytes` tokens (may drive the bucket slightly negative when a
    /// transport block overshoots the remaining allowance, which models MBR
    /// enforcement at TB granularity).
    pub fn consume(&mut self, bytes: ByteCount) {
        self.tokens -= bytes.as_u64() as f64;
    }

    /// Empties the bucket.
    pub fn drain(&mut self) {
        self.tokens = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accrues_at_rate() {
        let mut tb = TokenBucket::new(Rate::from_kbps(800.0), TimeDelta::from_secs(10));
        tb.advance(Time::from_secs(1));
        assert_eq!(tb.available(), ByteCount::new(100_000));
    }

    #[test]
    fn burst_caps_accrual() {
        let mut tb = TokenBucket::new(Rate::from_mbps(1.0), TimeDelta::from_millis(200));
        tb.advance(Time::from_secs(60));
        // Cap = 1 Mbps * 0.2 s / 8 = 25,000 bytes.
        assert_eq!(tb.available(), ByteCount::new(25_000));
    }

    #[test]
    fn consume_and_negative_balance() {
        let mut tb = TokenBucket::new(Rate::from_mbps(1.0), TimeDelta::from_millis(200));
        tb.advance(Time::from_millis(8));
        assert_eq!(tb.available(), ByteCount::new(1000));
        tb.consume(ByteCount::new(1500));
        assert_eq!(tb.available(), ByteCount::ZERO);
        // The deficit must be paid back before tokens reappear.
        tb.advance(Time::from_millis(10));
        assert_eq!(tb.available(), ByteCount::ZERO);
        tb.advance(Time::from_millis(20));
        assert_eq!(tb.available(), ByteCount::new(1000));
    }

    #[test]
    fn set_rate_reclamps() {
        let mut tb = TokenBucket::new(Rate::from_mbps(8.0), TimeDelta::from_millis(100));
        tb.advance(Time::from_secs(1));
        assert_eq!(tb.available(), ByteCount::new(100_000));
        tb.set_rate(Rate::from_kbps(800.0));
        // New cap = 800 kbps * 0.1 s / 8 = 10,000 bytes.
        assert_eq!(tb.available(), ByteCount::new(10_000));
        assert_eq!(tb.rate(), Rate::from_kbps(800.0));
    }

    #[test]
    fn drain_empties() {
        let mut tb = TokenBucket::new(Rate::from_mbps(1.0), TimeDelta::from_secs(1));
        tb.advance(Time::from_millis(500));
        assert!(!tb.available().is_zero());
        tb.drain();
        assert_eq!(tb.available(), ByteCount::ZERO);
    }

    #[test]
    fn zero_rate_never_accrues() {
        let mut tb = TokenBucket::new(Rate::ZERO, TimeDelta::from_secs(1));
        tb.advance(Time::from_secs(100));
        assert_eq!(tb.available(), ByteCount::ZERO);
    }

    #[test]
    #[should_panic(expected = "burst window")]
    fn zero_burst_window_panics() {
        let _ = TokenBucket::new(Rate::from_mbps(1.0), TimeDelta::ZERO);
    }

    #[test]
    fn qos_default_is_best_effort() {
        let qos = BearerQos::default();
        assert!(qos.gbr.is_none());
        assert!(qos.mbr.is_none());
    }
}
