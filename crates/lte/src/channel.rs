//! Per-UE channel processes: how a UE's iTbs operating point evolves.
//!
//! The paper drives link dynamics three ways, all reproduced here:
//!
//! * **Static** — the testbed static scenario pins iTbs = 2
//!   ([`StaticChannel`]).
//! * **Triangle wave** — the testbed dynamic scenario sweeps iTbs 1 → 12 → 1
//!   over a four-minute cycle, each UE starting at a different offset
//!   ([`TriangleWave`]).
//! * **Trace** — the ns-3 experiments use a "trace based model"; traces are
//!   replayed by [`TraceChannel`] and generated from the mobility model in
//!   [`crate::mobility`].
//!
//! [`MarkovChannel`] adds a discrete Gilbert-Elliott-style fading process as
//! an extension for robustness experiments.

use flare_sim::{Time, TimeDelta};
use rand::rngs::SmallRng;
use rand::Rng;

use crate::tbs::{Itbs, ITBS_MAX};

/// A time-varying channel quality process for one UE.
///
/// Implementations must be deterministic: calling `itbs_at` with
/// non-decreasing times yields a reproducible sequence.
pub trait ChannelModel {
    /// Returns the iTbs operating point at simulation time `t`.
    ///
    /// Callers must pass non-decreasing `t` values (the eNodeB does).
    fn itbs_at(&mut self, t: Time) -> Itbs;

    /// True if `itbs_at` returns the same index at every `t`, letting the
    /// eNodeB skip the per-TTI poll on a quiescent cell. Only a channel
    /// whose value provably never moves may override this to `true`.
    fn is_time_invariant(&self) -> bool {
        false
    }
}

/// A channel that never changes — the paper's static testbed scenario.
///
/// # Example
///
/// ```
/// use flare_lte::channel::{ChannelModel, StaticChannel};
/// use flare_lte::Itbs;
/// use flare_sim::Time;
///
/// let mut ch = StaticChannel::new(Itbs::new(2));
/// assert_eq!(ch.itbs_at(Time::ZERO), Itbs::new(2));
/// assert_eq!(ch.itbs_at(Time::from_secs(600)), Itbs::new(2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticChannel {
    itbs: Itbs,
}

impl StaticChannel {
    /// Creates a channel pinned at `itbs`.
    pub fn new(itbs: Itbs) -> Self {
        StaticChannel { itbs }
    }
}

impl ChannelModel for StaticChannel {
    fn itbs_at(&mut self, _t: Time) -> Itbs {
        self.itbs
    }

    fn is_time_invariant(&self) -> bool {
        true
    }
}

/// A triangle-wave iTbs sweep — the paper's dynamic testbed scenario.
///
/// The index ramps linearly from `min` to `max` over half a `period`, then
/// back down, repeating. `offset` shifts the phase so that heterogeneous UEs
/// start at different points of the cycle, exactly as in Section IV-A.
///
/// # Example
///
/// ```
/// use flare_lte::channel::{ChannelModel, TriangleWave};
/// use flare_lte::Itbs;
/// use flare_sim::{Time, TimeDelta};
///
/// // Paper setting: iTbs 1..=12, 4-minute cycle.
/// let mut ch = TriangleWave::new(Itbs::new(1), Itbs::new(12), TimeDelta::from_secs(240), TimeDelta::ZERO);
/// assert_eq!(ch.itbs_at(Time::ZERO), Itbs::new(1));
/// assert_eq!(ch.itbs_at(Time::from_secs(120)), Itbs::new(12));
/// assert_eq!(ch.itbs_at(Time::from_secs(240)), Itbs::new(1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TriangleWave {
    min: Itbs,
    max: Itbs,
    period: TimeDelta,
    offset: TimeDelta,
}

impl TriangleWave {
    /// Creates a triangle sweep between `min` and `max` with the given cycle
    /// `period`, phase-shifted by `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `min > max` or `period` is zero.
    pub fn new(min: Itbs, max: Itbs, period: TimeDelta, offset: TimeDelta) -> Self {
        assert!(min <= max, "triangle wave requires min <= max");
        assert!(
            !period.is_zero(),
            "triangle wave requires a non-zero period"
        );
        TriangleWave {
            min,
            max,
            period,
            offset,
        }
    }
}

impl ChannelModel for TriangleWave {
    fn itbs_at(&mut self, t: Time) -> Itbs {
        let pos_ms = (t.as_millis() + self.offset.as_millis()) % self.period.as_millis();
        let half = self.period.as_millis() as f64 / 2.0;
        let span = f64::from(self.max.index() - self.min.index());
        let frac = if (pos_ms as f64) < half {
            pos_ms as f64 / half
        } else {
            (self.period.as_millis() - pos_ms) as f64 / half
        };
        let idx = f64::from(self.min.index()) + frac * span;
        Itbs::saturating_new(idx.round() as u8)
    }
}

/// Replays a recorded `(time, iTbs)` trace, holding each value until the next
/// entry — the ns-3 "trace based model".
///
/// # Example
///
/// ```
/// use flare_lte::channel::{ChannelModel, TraceChannel};
/// use flare_lte::Itbs;
/// use flare_sim::Time;
///
/// let mut ch = TraceChannel::new(vec![
///     (Time::ZERO, Itbs::new(5)),
///     (Time::from_secs(10), Itbs::new(9)),
/// ]);
/// assert_eq!(ch.itbs_at(Time::from_secs(3)), Itbs::new(5));
/// assert_eq!(ch.itbs_at(Time::from_secs(12)), Itbs::new(9));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceChannel {
    trace: Vec<(Time, Itbs)>,
    cursor: usize,
}

impl TraceChannel {
    /// Creates a trace playback channel.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty, does not start at time zero, or is not
    /// sorted by time.
    pub fn new(trace: Vec<(Time, Itbs)>) -> Self {
        assert!(!trace.is_empty(), "trace must be non-empty");
        assert_eq!(trace[0].0, Time::ZERO, "trace must start at t=0");
        assert!(
            trace.windows(2).all(|w| w[0].0 <= w[1].0),
            "trace must be sorted by time"
        );
        TraceChannel { trace, cursor: 0 }
    }

    /// Returns the underlying trace.
    pub fn trace(&self) -> &[(Time, Itbs)] {
        &self.trace
    }
}

/// A malformed channel-trace document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseTraceError {
    /// A line did not have the `time_ms,itbs` shape.
    BadLine {
        /// 1-based line number.
        line: usize,
    },
    /// An iTbs value was out of range.
    BadItbs {
        /// 1-based line number.
        line: usize,
    },
    /// The document had no entries.
    Empty,
    /// Entries were unsorted or did not start at t = 0.
    BadTimeline,
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseTraceError::BadLine { line } => {
                write!(f, "line {line} is not `time_ms,itbs`")
            }
            ParseTraceError::BadItbs { line } => {
                write!(f, "line {line} has an iTbs outside 0..=26")
            }
            ParseTraceError::Empty => write!(f, "trace has no entries"),
            ParseTraceError::BadTimeline => {
                write!(f, "trace must be sorted and start at t=0")
            }
        }
    }
}

impl std::error::Error for ParseTraceError {}

impl TraceChannel {
    /// Serializes the trace as `time_ms,itbs` lines (one per entry) — the
    /// on-disk format for recorded channel traces.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for (t, itbs) in &self.trace {
            out.push_str(&format!("{},{}\n", t.as_millis(), itbs.index()));
        }
        out
    }

    /// Parses a trace from [`TraceChannel::to_csv`]'s format. Blank lines
    /// and `#` comments are ignored.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseTraceError`] on malformed lines, out-of-range iTbs
    /// values, an empty document, or an unsorted timeline.
    pub fn from_csv(text: &str) -> Result<TraceChannel, ParseTraceError> {
        let mut trace = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = i + 1;
            let content = raw.trim();
            if content.is_empty() || content.starts_with('#') {
                continue;
            }
            let (t, v) = content
                .split_once(',')
                .ok_or(ParseTraceError::BadLine { line })?;
            let ms: u64 = t
                .trim()
                .parse()
                .map_err(|_| ParseTraceError::BadLine { line })?;
            let idx: u8 = v
                .trim()
                .parse()
                .map_err(|_| ParseTraceError::BadLine { line })?;
            if idx > ITBS_MAX {
                return Err(ParseTraceError::BadItbs { line });
            }
            trace.push((Time::from_millis(ms), Itbs::new(idx)));
        }
        if trace.is_empty() {
            return Err(ParseTraceError::Empty);
        }
        if trace[0].0 != Time::ZERO || trace.windows(2).any(|w| w[0].0 > w[1].0) {
            return Err(ParseTraceError::BadTimeline);
        }
        Ok(TraceChannel { trace, cursor: 0 })
    }
}

impl ChannelModel for TraceChannel {
    fn itbs_at(&mut self, t: Time) -> Itbs {
        // Monotone queries: advance a cursor instead of binary-searching.
        while self.cursor + 1 < self.trace.len() && self.trace[self.cursor + 1].0 <= t {
            self.cursor += 1;
        }
        // Support occasional rewinds (e.g. a fresh component querying t=0).
        if self.trace[self.cursor].0 > t {
            self.cursor = match self.trace.binary_search_by_key(&t, |e| e.0) {
                Ok(i) => i,
                Err(0) => 0,
                Err(i) => i - 1,
            };
        }
        self.trace[self.cursor].1
    }
}

/// A bounded random-walk fading process (Gilbert-Elliott flavoured).
///
/// Every `step` interval the index moves −1, 0, or +1 with probability
/// `p_move / 2`, `1 − p_move`, `p_move / 2`, clamped to `[min, max]`. Used by
/// robustness/ablation experiments; not part of the paper's scenarios.
#[derive(Debug)]
pub struct MarkovChannel {
    min: u8,
    max: u8,
    current: u8,
    step: TimeDelta,
    p_move: f64,
    next_update: Time,
    rng: SmallRng,
}

impl MarkovChannel {
    /// Creates a random-walk channel starting at `start`.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are invalid, `start` is outside them, `step` is
    /// zero, or `p_move` is not a probability.
    pub fn new(
        min: Itbs,
        max: Itbs,
        start: Itbs,
        step: TimeDelta,
        p_move: f64,
        rng: SmallRng,
    ) -> Self {
        assert!(min <= max, "markov channel requires min <= max");
        assert!(start >= min && start <= max, "start must lie within bounds");
        assert!(!step.is_zero(), "update step must be non-zero");
        assert!(
            (0.0..=1.0).contains(&p_move),
            "p_move must be a probability"
        );
        MarkovChannel {
            min: min.index(),
            max: max.index(),
            current: start.index(),
            step,
            p_move,
            next_update: Time::ZERO + step,
            rng,
        }
    }
}

impl ChannelModel for MarkovChannel {
    fn itbs_at(&mut self, t: Time) -> Itbs {
        while self.next_update <= t {
            let u: f64 = self.rng.gen();
            if u < self.p_move / 2.0 {
                self.current = self.current.saturating_sub(1).max(self.min);
            } else if u < self.p_move {
                self.current = (self.current + 1).min(self.max).min(ITBS_MAX);
            }
            self.next_update += self.step;
        }
        Itbs::new(self.current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flare_sim::rng::stream;
    use proptest::prelude::*;

    #[test]
    fn static_channel_is_constant() {
        let mut ch = StaticChannel::new(Itbs::new(7));
        for s in 0..100 {
            assert_eq!(ch.itbs_at(Time::from_secs(s)), Itbs::new(7));
        }
    }

    #[test]
    fn triangle_hits_min_and_max() {
        let mut ch = TriangleWave::new(
            Itbs::new(1),
            Itbs::new(12),
            TimeDelta::from_secs(240),
            TimeDelta::ZERO,
        );
        assert_eq!(ch.itbs_at(Time::ZERO), Itbs::new(1));
        assert_eq!(ch.itbs_at(Time::from_secs(120)), Itbs::new(12));
        assert_eq!(ch.itbs_at(Time::from_secs(240)), Itbs::new(1));
        assert_eq!(ch.itbs_at(Time::from_secs(360)), Itbs::new(12));
    }

    #[test]
    fn triangle_offset_shifts_phase() {
        let period = TimeDelta::from_secs(240);
        let mut a = TriangleWave::new(Itbs::new(1), Itbs::new(12), period, TimeDelta::ZERO);
        let mut b = TriangleWave::new(
            Itbs::new(1),
            Itbs::new(12),
            period,
            TimeDelta::from_secs(120),
        );
        assert_eq!(b.itbs_at(Time::ZERO), a.itbs_at(Time::from_secs(120)));
        assert_eq!(
            b.itbs_at(Time::from_secs(120)),
            a.itbs_at(Time::from_secs(240))
        );
    }

    #[test]
    fn triangle_is_continuous_enough() {
        // Neighbouring milliseconds never jump more than one index.
        let mut ch = TriangleWave::new(
            Itbs::new(1),
            Itbs::new(12),
            TimeDelta::from_secs(240),
            TimeDelta::from_secs(33),
        );
        let mut prev = ch.itbs_at(Time::ZERO);
        for ms in 1..=480_000u64 {
            let cur = ch.itbs_at(Time::from_millis(ms));
            let delta = i16::from(cur.index()) - i16::from(prev.index());
            assert!(delta.abs() <= 1, "jump of {delta} at {ms}ms");
            prev = cur;
        }
    }

    #[test]
    fn trace_holds_between_entries() {
        let mut ch = TraceChannel::new(vec![
            (Time::ZERO, Itbs::new(3)),
            (Time::from_secs(5), Itbs::new(8)),
            (Time::from_secs(9), Itbs::new(1)),
        ]);
        assert_eq!(ch.itbs_at(Time::ZERO), Itbs::new(3));
        assert_eq!(ch.itbs_at(Time::from_millis(4999)), Itbs::new(3));
        assert_eq!(ch.itbs_at(Time::from_secs(5)), Itbs::new(8));
        assert_eq!(ch.itbs_at(Time::from_secs(100)), Itbs::new(1));
    }

    #[test]
    fn trace_supports_rewind() {
        let mut ch = TraceChannel::new(vec![
            (Time::ZERO, Itbs::new(3)),
            (Time::from_secs(5), Itbs::new(8)),
        ]);
        assert_eq!(ch.itbs_at(Time::from_secs(7)), Itbs::new(8));
        assert_eq!(ch.itbs_at(Time::from_secs(1)), Itbs::new(3));
    }

    #[test]
    #[should_panic(expected = "start at t=0")]
    fn trace_must_start_at_zero() {
        let _ = TraceChannel::new(vec![(Time::from_secs(1), Itbs::new(0))]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn trace_must_be_non_empty() {
        let _ = TraceChannel::new(vec![]);
    }

    #[test]
    fn trace_csv_round_trips() {
        let original = TraceChannel::new(vec![
            (Time::ZERO, Itbs::new(3)),
            (Time::from_secs(5), Itbs::new(8)),
            (Time::from_secs(9), Itbs::new(1)),
        ]);
        let csv = original.to_csv();
        assert_eq!(csv, "0,3\n5000,8\n9000,1\n");
        let parsed = TraceChannel::from_csv(&csv).unwrap();
        assert_eq!(parsed.trace(), original.trace());
    }

    #[test]
    fn trace_csv_ignores_comments_and_blanks() {
        let text = "# recorded ue-3\n\n0,5\n\n100, 7\n";
        let parsed = TraceChannel::from_csv(text).unwrap();
        assert_eq!(parsed.trace().len(), 2);
        assert_eq!(parsed.trace()[1], (Time::from_millis(100), Itbs::new(7)));
    }

    #[test]
    fn trace_csv_rejects_malformed_documents() {
        assert_eq!(
            TraceChannel::from_csv("0;5\n"),
            Err(ParseTraceError::BadLine { line: 1 })
        );
        assert_eq!(
            TraceChannel::from_csv("0,99\n"),
            Err(ParseTraceError::BadItbs { line: 1 })
        );
        assert_eq!(
            TraceChannel::from_csv("# nothing\n"),
            Err(ParseTraceError::Empty)
        );
        assert_eq!(
            TraceChannel::from_csv("100,5\n"),
            Err(ParseTraceError::BadTimeline)
        );
        assert_eq!(
            TraceChannel::from_csv("0,5\n200,6\n100,7\n"),
            Err(ParseTraceError::BadTimeline)
        );
        // Errors render human-readable messages.
        assert_eq!(
            ParseTraceError::BadItbs { line: 3 }.to_string(),
            "line 3 has an iTbs outside 0..=26"
        );
    }

    #[test]
    fn markov_stays_in_bounds_and_reproduces() {
        let mk = |seed| {
            MarkovChannel::new(
                Itbs::new(3),
                Itbs::new(15),
                Itbs::new(9),
                TimeDelta::from_millis(100),
                0.5,
                stream(seed, "markov", 0),
            )
        };
        let mut a = mk(1);
        let mut b = mk(1);
        for s in 0..200 {
            let t = Time::from_millis(s * 137);
            let va = a.itbs_at(t);
            assert_eq!(va, b.itbs_at(t), "same seed must reproduce");
            assert!(va >= Itbs::new(3) && va <= Itbs::new(15));
        }
    }

    proptest! {
        #[test]
        fn triangle_always_within_bounds(
            min in 0u8..10, span in 1u8..16, period_s in 1u64..600, off_s in 0u64..600, t_s in 0u64..3600
        ) {
            let lo = Itbs::new(min);
            let hi = Itbs::new(min + span);
            let mut ch = TriangleWave::new(lo, hi, TimeDelta::from_secs(period_s), TimeDelta::from_secs(off_s));
            let v = ch.itbs_at(Time::from_secs(t_s));
            prop_assert!(v >= lo && v <= hi);
        }

        #[test]
        fn triangle_is_periodic(period_s in 2u64..600, t_s in 0u64..1200) {
            let mut ch = TriangleWave::new(Itbs::new(1), Itbs::new(12), TimeDelta::from_secs(period_s), TimeDelta::ZERO);
            let a = ch.itbs_at(Time::from_secs(t_s));
            let b = ch.itbs_at(Time::from_secs(t_s + period_s));
            prop_assert_eq!(a, b);
        }
    }
}
