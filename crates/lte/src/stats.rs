//! Per-flow MAC statistics: the RB & Rate Trace and Statistics Reporter
//! modules of the paper's Figure 3.
//!
//! The FLARE optimization needs, for each flow `u` and each bitrate
//! assignment interval `i`, the resource blocks assigned `n_u^i` and bytes
//! transmitted `b_u^i`. [`IntervalReport`] is exactly that periodic report,
//! produced by [`crate::ENodeB::take_report`].

use flare_sim::units::{ByteCount, Rate};
use flare_sim::{Time, TimeDelta};

use crate::flows::{FlowClass, FlowId};
use crate::tbs::Itbs;

/// One flow's MAC counters over a reporting interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowIntervalStats {
    /// The flow these counters describe.
    pub flow: FlowId,
    /// The flow's traffic class.
    pub class: FlowClass,
    /// Resource blocks assigned during the interval (`n_u`).
    pub rbs: u64,
    /// Bytes transmitted during the interval (`b_u`).
    pub bytes: ByteCount,
    /// The flow's iTbs operating point at the end of the interval.
    pub itbs: Itbs,
}

impl FlowIntervalStats {
    /// Average throughput over `interval`.
    pub fn throughput(&self, interval: TimeDelta) -> Rate {
        self.bytes.rate_over(interval)
    }

    /// Realized bytes per RB — the per-flow link efficiency FLARE's capacity
    /// constraint divides by (`b_u / n_u`).
    pub fn bytes_per_rb(&self) -> Option<f64> {
        if self.rbs == 0 {
            None
        } else {
            Some(self.bytes.as_u64() as f64 / self.rbs as f64)
        }
    }
}

/// A periodic per-cell statistics report.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalReport {
    /// Start of the reporting interval (inclusive).
    pub start: Time,
    /// End of the reporting interval (exclusive).
    pub end: Time,
    /// Per-flow counters, ordered by flow id.
    pub flows: Vec<FlowIntervalStats>,
}

impl IntervalReport {
    /// The interval length.
    pub fn duration(&self) -> TimeDelta {
        self.end.since(self.start)
    }

    /// Looks up one flow's counters.
    pub fn flow(&self, id: FlowId) -> Option<&FlowIntervalStats> {
        self.flows.iter().find(|f| f.flow == id)
    }

    /// Total RBs assigned over the interval, across all flows.
    pub fn total_rbs(&self) -> u64 {
        self.flows.iter().map(|f| f.rbs).sum()
    }

    /// Total bytes transmitted over the interval, across all flows.
    pub fn total_bytes(&self) -> ByteCount {
        self.flows.iter().map(|f| f.bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(flow: u32, rbs: u64, bytes: u64) -> FlowIntervalStats {
        FlowIntervalStats {
            flow: FlowId(flow),
            class: FlowClass::Video,
            rbs,
            bytes: ByteCount::new(bytes),
            itbs: Itbs::new(5),
        }
    }

    #[test]
    fn throughput_over_interval() {
        let s = stats(0, 100, 125_000);
        let tput = s.throughput(TimeDelta::from_secs(1));
        assert_eq!(tput, Rate::from_mbps(1.0));
    }

    #[test]
    fn bytes_per_rb_handles_idle_flows() {
        assert_eq!(stats(0, 0, 0).bytes_per_rb(), None);
        assert_eq!(stats(0, 10, 250).bytes_per_rb(), Some(25.0));
    }

    #[test]
    fn report_aggregates() {
        let report = IntervalReport {
            start: Time::ZERO,
            end: Time::from_secs(10),
            flows: vec![stats(0, 100, 1000), stats(1, 50, 700)],
        };
        assert_eq!(report.duration(), TimeDelta::from_secs(10));
        assert_eq!(report.total_rbs(), 150);
        assert_eq!(report.total_bytes(), ByteCount::new(1700));
        assert_eq!(report.flow(FlowId(1)).unwrap().rbs, 50);
        assert!(report.flow(FlowId(9)).is_none());
    }
}
