//! Flow identities and traffic classes.

use std::fmt;

/// Identifies one downlink flow (one bearer of one UE) within a cell.
///
/// Flow ids are dense indices handed out by [`crate::ENodeB::add_flow`] in
/// attachment order; they are stable for the lifetime of the cell.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub(crate) u32);

impl FlowId {
    /// Returns the dense index of this flow.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "flow#{}", self.0)
    }
}

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The traffic class of a flow.
///
/// FLARE treats video flows (set `U` in the paper) and best-effort data flows
/// (set `D`) differently: video flows get GBR bearers, data flows are served
/// from the leftover resource share.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlowClass {
    /// An HTTP adaptive streaming video flow (paper set `U`).
    Video,
    /// A best-effort TCP data flow (paper set `D`), always backlogged.
    Data,
}

impl fmt::Display for FlowClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowClass::Video => write!(f, "video"),
            FlowClass::Data => write!(f, "data"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_id_formats() {
        let id = FlowId(3);
        assert_eq!(format!("{id:?}"), "flow#3");
        assert_eq!(id.to_string(), "3");
        assert_eq!(id.index(), 3);
    }

    #[test]
    fn class_display() {
        assert_eq!(FlowClass::Video.to_string(), "video");
        assert_eq!(FlowClass::Data.to_string(), "data");
    }

    #[test]
    fn ids_order_by_index() {
        assert!(FlowId(1) < FlowId(2));
        assert_eq!(FlowId(5), FlowId(5));
    }
}
