//! UE mobility and radio propagation: the ns-3 "trace based model".
//!
//! The paper's simulations place UEs randomly in a 2000 m × 2000 m area and,
//! for the mobile scenarios, move them like vehicles; link quality comes from
//! a trace-based channel model. We reproduce that pipeline end to end:
//!
//! 1. [`RandomWaypoint`] moves a UE between uniformly random waypoints at a
//!    uniformly random vehicular speed,
//! 2. [`Propagation`] converts eNodeB distance to SNR with a 3GPP-style
//!    log-distance path loss plus AR(1) lognormal shadowing,
//! 3. [`snr_to_itbs`] maps SNR to the iTbs operating point used by link
//!    adaptation, and
//! 4. [`MobilityChannel`] packages 1–3 as a [`ChannelModel`];
//!    [`generate_trace`] pre-bakes the same process into a replayable
//!    [`TraceChannel`].

use flare_sim::rng::standard_normal;
use flare_sim::{Time, TimeDelta};
use rand::rngs::SmallRng;
use rand::Rng;

use crate::channel::{ChannelModel, TraceChannel};
use crate::tbs::Itbs;

/// A planar position in metres.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Position {
    /// Easting in metres.
    pub x: f64,
    /// Northing in metres.
    pub y: f64,
}

impl Position {
    /// Euclidean distance to `other` in metres.
    pub fn distance_to(self, other: Position) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// Random-waypoint mobility in a rectangular area.
///
/// The UE repeatedly picks a uniform waypoint and a uniform speed from
/// `speed_range`, travels there in a straight line, pauses for `pause`, and
/// repeats. Queries must use non-decreasing times.
///
/// # Example
///
/// ```
/// use flare_lte::mobility::RandomWaypoint;
/// use flare_sim::rng::stream;
/// use flare_sim::{Time, TimeDelta};
///
/// let mut rw = RandomWaypoint::new((2000.0, 2000.0), (10.0, 25.0), TimeDelta::ZERO, stream(1, "ue", 0));
/// let p0 = rw.position_at(Time::ZERO);
/// let p1 = rw.position_at(Time::from_secs(60));
/// assert!(p0.distance_to(p1) > 0.0);
/// ```
#[derive(Debug)]
pub struct RandomWaypoint {
    area: (f64, f64),
    speed_range: (f64, f64),
    pause: TimeDelta,
    rng: SmallRng,
    // Current leg: from `leg_start_pos` at `leg_start`, arriving at
    // `waypoint` at `leg_arrive`, then pausing until `leg_end`.
    leg_start: Time,
    leg_arrive: Time,
    leg_end: Time,
    leg_start_pos: Position,
    waypoint: Position,
}

impl RandomWaypoint {
    /// Creates a random-waypoint walker.
    ///
    /// # Panics
    ///
    /// Panics if the area is not positive or the speed range is invalid
    /// (non-positive or reversed).
    pub fn new(
        area: (f64, f64),
        speed_range: (f64, f64),
        pause: TimeDelta,
        mut rng: SmallRng,
    ) -> Self {
        assert!(area.0 > 0.0 && area.1 > 0.0, "area must be positive");
        assert!(
            speed_range.0 > 0.0 && speed_range.1 >= speed_range.0,
            "speed range must be positive and ordered"
        );
        let start = Position {
            x: rng.gen::<f64>() * area.0,
            y: rng.gen::<f64>() * area.1,
        };
        let mut rw = RandomWaypoint {
            area,
            speed_range,
            pause,
            rng,
            leg_start: Time::ZERO,
            leg_arrive: Time::ZERO,
            leg_end: Time::ZERO,
            leg_start_pos: start,
            waypoint: start,
        };
        rw.next_leg(Time::ZERO);
        rw
    }

    fn next_leg(&mut self, now: Time) {
        self.leg_start_pos = self.waypoint;
        self.waypoint = Position {
            x: self.rng.gen::<f64>() * self.area.0,
            y: self.rng.gen::<f64>() * self.area.1,
        };
        let dist = self.leg_start_pos.distance_to(self.waypoint);
        let speed = self.rng.gen_range(self.speed_range.0..=self.speed_range.1);
        let travel = TimeDelta::from_secs_f64((dist / speed).max(1e-3));
        self.leg_start = now;
        self.leg_arrive = now + travel;
        self.leg_end = self.leg_arrive + self.pause;
    }

    /// Returns the UE position at time `t` (non-decreasing queries).
    pub fn position_at(&mut self, t: Time) -> Position {
        while t >= self.leg_end {
            let end = self.leg_end;
            self.next_leg(end);
        }
        if t >= self.leg_arrive {
            return self.waypoint;
        }
        let total = self.leg_arrive.since(self.leg_start).as_secs_f64();
        let done = t.saturating_since(self.leg_start).as_secs_f64();
        let f = if total > 0.0 {
            (done / total).clamp(0.0, 1.0)
        } else {
            1.0
        };
        Position {
            x: self.leg_start_pos.x + f * (self.waypoint.x - self.leg_start_pos.x),
            y: self.leg_start_pos.y + f * (self.waypoint.y - self.leg_start_pos.y),
        }
    }
}

/// Log-distance path loss with AR(1) lognormal shadowing, plus a link budget.
///
/// Defaults follow the 3GPP macro model (`PL = 128.1 + 37.6·log10(d_km)`)
/// with an interference-adjusted link budget calibrated so that a UE at the
/// cell edge of the paper's 2000 m × 2000 m area operates around iTbs 4–8 and
/// a UE near the eNodeB saturates link adaptation — the spread the mobile
/// scenarios need.
#[derive(Debug, Clone)]
pub struct Propagation {
    /// Transmit power minus fixed margins, in dBm.
    pub tx_power_dbm: f64,
    /// Effective noise-plus-interference floor, in dBm.
    pub noise_dbm: f64,
    /// Path loss at the reference distance of 1 km, in dB.
    pub pl_1km_db: f64,
    /// Path loss slope per decade of distance, in dB.
    pub slope_db_per_decade: f64,
    /// Standard deviation of lognormal shadowing, in dB.
    pub shadowing_sigma_db: f64,
    /// AR(1) correlation of shadowing between consecutive samples.
    pub shadowing_rho: f64,
}

impl Default for Propagation {
    fn default() -> Self {
        Propagation {
            tx_power_dbm: 32.0,
            noise_dbm: -95.0,
            pl_1km_db: 128.1,
            slope_db_per_decade: 37.6,
            shadowing_sigma_db: 4.0,
            shadowing_rho: 0.98,
        }
    }
}

impl Propagation {
    /// Deterministic path loss in dB at distance `d` metres.
    pub fn path_loss_db(&self, d_m: f64) -> f64 {
        let d_km = (d_m / 1000.0).max(0.01);
        self.pl_1km_db + self.slope_db_per_decade * d_km.log10()
    }

    /// Mean SNR in dB (no shadowing) at distance `d` metres.
    pub fn mean_snr_db(&self, d_m: f64) -> f64 {
        self.tx_power_dbm - self.path_loss_db(d_m) - self.noise_dbm
    }
}

/// Maps an SNR in dB to an iTbs operating point.
///
/// Linear link adaptation: −6 dB maps to iTbs 0 and each additional
/// 1.15 dB buys one index, saturating at [`crate::ITBS_MAX`]. This mirrors
/// the roughly linear SNR→MCS curves of LTE link-level studies.
///
/// # Example
///
/// ```
/// use flare_lte::mobility::snr_to_itbs;
/// use flare_lte::Itbs;
///
/// assert_eq!(snr_to_itbs(-10.0), Itbs::new(0));
/// assert_eq!(snr_to_itbs(50.0), Itbs::new(26));
/// assert!(snr_to_itbs(10.0) > snr_to_itbs(0.0));
/// ```
pub fn snr_to_itbs(snr_db: f64) -> Itbs {
    let idx = ((snr_db + 6.0) / 1.15).floor();
    Itbs::saturating_new(idx.clamp(0.0, 255.0) as u8)
}

/// Configuration for mobility-driven channels.
#[derive(Debug, Clone)]
pub struct MobilityConfig {
    /// Simulation area in metres (the paper uses 2000 × 2000).
    pub area: (f64, f64),
    /// UE speed range in m/s (vehicular: 10–25 m/s).
    pub speed_range: (f64, f64),
    /// Pause at each waypoint.
    pub pause: TimeDelta,
    /// How often the channel (position + shadowing) is re-sampled.
    pub update_interval: TimeDelta,
    /// Radio propagation parameters.
    pub propagation: Propagation,
}

impl Default for MobilityConfig {
    fn default() -> Self {
        MobilityConfig {
            area: (2000.0, 2000.0),
            speed_range: (10.0, 25.0),
            pause: TimeDelta::from_secs(2),
            update_interval: TimeDelta::from_millis(100),
            propagation: Propagation::default(),
        }
    }
}

/// A live mobility-driven channel: random waypoint + path loss + shadowing.
///
/// The eNodeB sits at the centre of the area. Between `update_interval`
/// samples the iTbs is held constant, like a real CQI reporting period.
#[derive(Debug)]
pub struct MobilityChannel {
    walker: RandomWaypoint,
    config: MobilityConfig,
    enb: Position,
    shadow_db: f64,
    sigma_db: f64,
    rng: SmallRng,
    current: Itbs,
    next_update: Time,
}

impl MobilityChannel {
    /// Creates a mobility channel; `walk_rng` drives movement and
    /// `fade_rng` drives shadowing so the two processes are independent.
    pub fn new(config: MobilityConfig, walk_rng: SmallRng, fade_rng: SmallRng) -> Self {
        let walker = RandomWaypoint::new(config.area, config.speed_range, config.pause, walk_rng);
        let enb = Position {
            x: config.area.0 / 2.0,
            y: config.area.1 / 2.0,
        };
        let sigma = config.propagation.shadowing_sigma_db.max(0.0);
        let mut ch = MobilityChannel {
            walker,
            config,
            enb,
            shadow_db: 0.0,
            sigma_db: sigma,
            rng: fade_rng,
            current: Itbs::new(0),
            next_update: Time::ZERO,
        };
        ch.resample(Time::ZERO);
        ch
    }

    fn resample(&mut self, t: Time) {
        let pos = self.walker.position_at(t);
        let d = pos.distance_to(self.enb);
        let rho = self.config.propagation.shadowing_rho;
        let innovation = standard_normal(&mut self.rng) * self.sigma_db * (1.0 - rho * rho).sqrt();
        self.shadow_db = rho * self.shadow_db + innovation;
        let snr = self.config.propagation.mean_snr_db(d) + self.shadow_db;
        self.current = snr_to_itbs(snr);
        self.next_update = t + self.config.update_interval;
    }
}

impl ChannelModel for MobilityChannel {
    fn itbs_at(&mut self, t: Time) -> Itbs {
        while t >= self.next_update {
            let due = self.next_update;
            self.resample(due);
        }
        self.current
    }
}

/// Pre-generates a `(time, iTbs)` trace from the mobility pipeline, suitable
/// for [`TraceChannel`] playback (and for persisting scenario inputs).
pub fn generate_trace(
    config: &MobilityConfig,
    duration: TimeDelta,
    walk_rng: SmallRng,
    fade_rng: SmallRng,
) -> TraceChannel {
    let mut live = MobilityChannel::new(config.clone(), walk_rng, fade_rng);
    let step = config.update_interval;
    let mut trace = Vec::new();
    let mut t = Time::ZERO;
    let end = Time::ZERO + duration;
    let mut last: Option<Itbs> = None;
    while t <= end {
        let v = live.itbs_at(t);
        if last != Some(v) {
            trace.push((t, v));
            last = Some(v);
        }
        t += step;
    }
    if trace.is_empty() {
        trace.push((Time::ZERO, Itbs::new(0)));
    }
    TraceChannel::new(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flare_sim::rng::stream;

    fn walker(seed: u64) -> RandomWaypoint {
        RandomWaypoint::new(
            (2000.0, 2000.0),
            (10.0, 25.0),
            TimeDelta::from_secs(2),
            stream(seed, "walk", 0),
        )
    }

    #[test]
    fn waypoint_stays_in_area() {
        let mut rw = walker(3);
        for s in 0..2000 {
            let p = rw.position_at(Time::from_secs(s));
            assert!((0.0..=2000.0).contains(&p.x), "x out of area: {}", p.x);
            assert!((0.0..=2000.0).contains(&p.y), "y out of area: {}", p.y);
        }
    }

    #[test]
    fn waypoint_speed_is_bounded() {
        let mut rw = walker(4);
        let mut prev = rw.position_at(Time::ZERO);
        for s in 1..1200 {
            let cur = rw.position_at(Time::from_secs(s));
            let speed = prev.distance_to(cur);
            // Max configured speed is 25 m/s; one-second displacement can
            // never exceed it.
            assert!(speed <= 25.0 + 1e-6, "speed {speed} too high at {s}s");
            prev = cur;
        }
    }

    #[test]
    fn waypoint_is_reproducible() {
        let mut a = walker(9);
        let mut b = walker(9);
        for s in (0..600).step_by(7) {
            let t = Time::from_secs(s);
            assert_eq!(a.position_at(t), b.position_at(t));
        }
    }

    #[test]
    fn path_loss_increases_with_distance() {
        let p = Propagation::default();
        assert!(p.path_loss_db(100.0) < p.path_loss_db(500.0));
        assert!(p.path_loss_db(500.0) < p.path_loss_db(1400.0));
        assert!(p.mean_snr_db(100.0) > p.mean_snr_db(1400.0));
    }

    #[test]
    fn snr_mapping_is_monotone_and_saturating() {
        let mut prev = snr_to_itbs(-20.0);
        for i in -19..60 {
            let cur = snr_to_itbs(f64::from(i));
            assert!(cur >= prev);
            prev = cur;
        }
        assert_eq!(snr_to_itbs(-20.0), Itbs::new(0));
        assert_eq!(snr_to_itbs(100.0), Itbs::new(26));
    }

    #[test]
    fn operating_points_span_a_useful_range() {
        // Near-centre UEs should saturate; far-corner UEs should be low but
        // usable — this spread is what makes the mobile scenarios vary.
        let p = Propagation::default();
        assert!(snr_to_itbs(p.mean_snr_db(50.0)) >= Itbs::new(24));
        let edge = snr_to_itbs(p.mean_snr_db(1414.0));
        assert!(
            edge <= Itbs::new(10),
            "edge operating point too high: {edge:?}"
        );
    }

    #[test]
    fn mobility_channel_varies_and_reproduces() {
        let cfg = MobilityConfig::default();
        let mk = || MobilityChannel::new(cfg.clone(), stream(5, "walk", 1), stream(5, "fade", 1));
        let mut a = mk();
        let mut b = mk();
        let mut distinct = std::collections::HashSet::new();
        for s in 0..600 {
            let t = Time::from_secs(s);
            let v = a.itbs_at(t);
            assert_eq!(v, b.itbs_at(t));
            distinct.insert(v);
        }
        assert!(
            distinct.len() >= 3,
            "mobile channel should vary, got {distinct:?}"
        );
    }

    #[test]
    fn generated_trace_matches_live_channel() {
        let cfg = MobilityConfig::default();
        let mut live =
            MobilityChannel::new(cfg.clone(), stream(6, "walk", 2), stream(6, "fade", 2));
        let mut trace = generate_trace(
            &cfg,
            TimeDelta::from_secs(120),
            stream(6, "walk", 2),
            stream(6, "fade", 2),
        );
        for ms in (0..120_000).step_by(100) {
            let t = Time::from_millis(ms);
            assert_eq!(live.itbs_at(t), trace.itbs_at(t), "divergence at {t:?}");
        }
    }

    #[test]
    fn trace_compresses_repeats() {
        let cfg = MobilityConfig::default();
        let tr = generate_trace(
            &cfg,
            TimeDelta::from_secs(60),
            stream(7, "walk", 0),
            stream(7, "fade", 0),
        );
        let entries = tr.trace();
        assert!(
            entries.windows(2).all(|w| w[0].1 != w[1].1),
            "adjacent duplicates present"
        );
    }
}
