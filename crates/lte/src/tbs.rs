//! Transport block sizes: the iTbs → bits-per-resource-block mapping.
//!
//! The paper's femtocell exposes an "iTbs Override Module" that emulates
//! time-varying link bandwidth by forcing the transport block size index
//! (iTbs) of a UE; each index corresponds to a modulation and coding scheme
//! per 3GPP TS 36.213. We embed the 1-PRB column of TS 36.213 Table
//! 7.1.7.2.1-1 and scale linearly in the number of allocated PRBs.
//!
//! *Substitution note (see DESIGN.md):* the real TBS table is mildly
//! super-linear in `n_prb`; the linear approximation errs by < 10% and keeps
//! the per-TTI scheduler exact-integer and fast. A configurable
//! `spatial_multiplexing` factor models 2×2 MIMO so that cell capacities land
//! in the range the paper's experiments exhibit.

use std::fmt;

use flare_sim::units::{ByteCount, Rate};
use flare_sim::{TimeDelta, TTI};

/// The largest valid iTbs index (3GPP TS 36.213 Rel-8 defines 0..=26).
pub const ITBS_MAX: u8 = 26;

/// Transport block size in bits for one PRB over one TTI, per iTbs index.
/// Source: 3GPP TS 36.213 Table 7.1.7.2.1-1, column N_PRB = 1.
const TBS_1PRB_BITS: [u32; 27] = [
    16, 24, 32, 40, 56, 72, 88, 104, 120, 136, 144, 176, 208, 224, 256, 280, 328, 336, 376, 408,
    440, 488, 520, 552, 584, 616, 712,
];

/// A transport block size index (modulation-and-coding operating point).
///
/// # Example
///
/// ```
/// use flare_lte::Itbs;
///
/// let good = Itbs::new(12);
/// let bad = Itbs::new(2);
/// assert!(good > bad);
/// assert_eq!(good.index(), 12);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Itbs(u8);

impl Itbs {
    /// Creates an iTbs index.
    ///
    /// # Panics
    ///
    /// Panics if `index > ITBS_MAX`.
    pub fn new(index: u8) -> Self {
        assert!(
            index <= ITBS_MAX,
            "iTbs index {index} out of range 0..={ITBS_MAX}"
        );
        Itbs(index)
    }

    /// Creates an iTbs index, clamping out-of-range values to `ITBS_MAX`.
    pub fn saturating_new(index: u8) -> Self {
        Itbs(index.min(ITBS_MAX))
    }

    /// Returns the raw index.
    pub fn index(self) -> u8 {
        self.0
    }
}

impl fmt::Debug for Itbs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "iTbs{}", self.0)
    }
}

impl fmt::Display for Itbs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Maps an iTbs operating point to deliverable bits per resource block.
///
/// # Example
///
/// ```
/// use flare_lte::{Itbs, LinkAdaptation};
/// use flare_sim::units::Rate;
///
/// let la = LinkAdaptation::default();
/// // Cell capacity at iTbs 12 with 50 RBs/TTI and default 2x MIMO:
/// let cap = la.cell_capacity(Itbs::new(12), 50);
/// assert!((cap.as_mbps() - 20.8).abs() < 0.1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinkAdaptation {
    /// Multiplier on the single-layer TBS, modelling spatial multiplexing
    /// (2.0 ≈ 2×2 MIMO, the JL-620's configuration).
    spatial_multiplexing: f64,
    /// `TBS_1PRB_BITS[i] * spatial_multiplexing`, precomputed once at
    /// construction so the per-TTI path is a plain indexed load.
    scaled_bits: [f64; TBS_1PRB_BITS.len()],
}

impl LinkAdaptation {
    /// Creates a link adaptation table with the given spatial multiplexing
    /// gain.
    ///
    /// # Panics
    ///
    /// Panics if `spatial_multiplexing` is not in `(0, 8]`.
    pub fn new(spatial_multiplexing: f64) -> Self {
        assert!(
            spatial_multiplexing > 0.0 && spatial_multiplexing <= 8.0,
            "spatial multiplexing gain must be in (0, 8]"
        );
        let mut scaled_bits = [0.0; TBS_1PRB_BITS.len()];
        for (scaled, &bits) in scaled_bits.iter_mut().zip(TBS_1PRB_BITS.iter()) {
            *scaled = f64::from(bits) * spatial_multiplexing;
        }
        LinkAdaptation {
            spatial_multiplexing,
            scaled_bits,
        }
    }

    /// Deliverable bits for one PRB over one TTI at the given operating point.
    pub fn bits_per_rb(&self, itbs: Itbs) -> f64 {
        self.scaled_bits[usize::from(itbs.0)]
    }

    /// Deliverable whole bytes for `n_rb` PRBs over one TTI.
    pub fn bytes_per_tti(&self, itbs: Itbs, n_rb: u32) -> ByteCount {
        ByteCount::new((self.bits_per_rb(itbs) * f64::from(n_rb) / 8.0).floor() as u64)
    }

    /// The downlink rate sustained if a UE at `itbs` received all `n_rb` RBs
    /// every TTI.
    pub fn cell_capacity(&self, itbs: Itbs, n_rb: u32) -> Rate {
        let bits_per_tti = self.bits_per_rb(itbs) * f64::from(n_rb);
        Rate::from_bps(bits_per_tti / TTI.as_secs_f64())
    }

    /// The number of RBs per TTI needed to sustain `rate` at `itbs`,
    /// as a real number (callers round per their scheduling policy).
    pub fn rbs_for_rate(&self, itbs: Itbs, rate: Rate) -> f64 {
        let bits_per_tti_needed = rate.as_bps() * TTI.as_secs_f64();
        bits_per_tti_needed / self.bits_per_rb(itbs)
    }

    /// The average rate delivered by `n_rb` RBs per `period` at `itbs`.
    pub fn rate_of_rbs(&self, itbs: Itbs, n_rb: u64, period: TimeDelta) -> Rate {
        if period.is_zero() {
            return Rate::ZERO;
        }
        Rate::from_bps(self.bits_per_rb(itbs) * n_rb as f64 / period.as_secs_f64())
    }
}

impl Default for LinkAdaptation {
    /// 2×2 MIMO, matching the testbed calibration in DESIGN.md.
    fn default() -> Self {
        LinkAdaptation::new(2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn table_is_monotone_in_itbs() {
        for i in 1..=ITBS_MAX {
            assert!(
                TBS_1PRB_BITS[usize::from(i)] >= TBS_1PRB_BITS[usize::from(i - 1)],
                "TBS must be non-decreasing in iTbs"
            );
        }
    }

    #[test]
    fn itbs_constructors() {
        assert_eq!(Itbs::new(0).index(), 0);
        assert_eq!(Itbs::new(26).index(), 26);
        assert_eq!(Itbs::saturating_new(200), Itbs::new(ITBS_MAX));
        assert_eq!(Itbs::saturating_new(5), Itbs::new(5));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn itbs_out_of_range_panics() {
        let _ = Itbs::new(27);
    }

    #[test]
    fn bits_per_rb_matches_table() {
        let la = LinkAdaptation::new(1.0);
        assert_eq!(la.bits_per_rb(Itbs::new(0)), 16.0);
        assert_eq!(la.bits_per_rb(Itbs::new(26)), 712.0);
        let la2 = LinkAdaptation::default();
        assert_eq!(la2.bits_per_rb(Itbs::new(2)), 64.0);
    }

    #[test]
    fn cell_capacity_at_paper_operating_points() {
        let la = LinkAdaptation::default();
        // Static testbed scenario: iTbs 2, 50 RBs -> 3.2 Mbps.
        let static_cap = la.cell_capacity(Itbs::new(2), 50);
        assert!((static_cap.as_mbps() - 3.2).abs() < 1e-9);
        // Peak of the dynamic cycle: iTbs 12 -> 20.8 Mbps.
        let peak = la.cell_capacity(Itbs::new(12), 50);
        assert!((peak.as_mbps() - 20.8).abs() < 1e-9);
    }

    #[test]
    fn rbs_for_rate_inverts_rate_of_rbs() {
        let la = LinkAdaptation::default();
        let itbs = Itbs::new(10);
        let rate = Rate::from_kbps(790.0);
        let rbs_per_tti = la.rbs_for_rate(itbs, rate);
        // Spend that many RBs per TTI for 1 second => recover the rate.
        let n_rb = (rbs_per_tti * 1000.0).round() as u64;
        let back = la.rate_of_rbs(itbs, n_rb, TimeDelta::from_secs(1));
        assert!((back.as_kbps() - 790.0).abs() < 1.0);
    }

    #[test]
    fn bytes_per_tti_floors() {
        let la = LinkAdaptation::new(1.0);
        // iTbs 0: 16 bits = 2 bytes per RB.
        assert_eq!(la.bytes_per_tti(Itbs::new(0), 3), ByteCount::new(6));
        // iTbs 1: 24 bits = 3 bytes per RB.
        assert_eq!(la.bytes_per_tti(Itbs::new(1), 1), ByteCount::new(3));
    }

    #[test]
    fn rate_of_rbs_zero_period_is_zero() {
        let la = LinkAdaptation::default();
        assert_eq!(
            la.rate_of_rbs(Itbs::new(5), 100, TimeDelta::ZERO),
            Rate::ZERO
        );
    }

    #[test]
    #[should_panic(expected = "spatial multiplexing")]
    fn invalid_spatial_gain_panics() {
        let _ = LinkAdaptation::new(0.0);
    }

    proptest! {
        #[test]
        fn capacity_monotone_in_itbs_and_rbs(i in 0u8..26, n in 1u32..100) {
            let la = LinkAdaptation::default();
            let lo = la.cell_capacity(Itbs::new(i), n);
            let hi = la.cell_capacity(Itbs::new(i + 1), n);
            prop_assert!(hi >= lo);
            let wider = la.cell_capacity(Itbs::new(i), n + 1);
            prop_assert!(wider >= lo);
        }

        #[test]
        fn rbs_for_rate_non_negative_and_monotone(i in 0u8..=26, kbps in 0.0f64..100_000.0) {
            let la = LinkAdaptation::default();
            let r = la.rbs_for_rate(Itbs::new(i), Rate::from_kbps(kbps));
            prop_assert!(r >= 0.0);
            let r2 = la.rbs_for_rate(Itbs::new(i), Rate::from_kbps(kbps + 1.0));
            prop_assert!(r2 >= r);
        }
    }
}
