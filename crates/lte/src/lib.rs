//! LTE cell substrate for the FLARE reproduction.
//!
//! The FLARE paper evaluates on two platforms: a commodity LTE femtocell
//! (JL-620: 10 MHz FDD, 50 resource blocks per 1 ms TTI, with an "iTbs
//! override" module used to emulate time-varying link bandwidth) and the ns-3
//! LTE module with the Priority Set Scheduler. This crate replaces both with
//! one deterministic TTI-level cell simulator exposing the same observables
//! the paper's algorithms consume:
//!
//! * per-flow `(n_u, b_u)` — resource blocks assigned and bytes transmitted
//!   per bitrate-assignment interval (the RB & Rate Trace / Statistics
//!   Reporter modules of Figure 3),
//! * per-flow throughput,
//! * enforcement knobs: per-flow GBR (guaranteed bit rate, the Continuous GBR
//!   Updater) and MBR (maximum bit rate, used by AVIS).
//!
//! The main entry point is [`ENodeB`]: configure a [`CellConfig`], attach
//! flows with [`ENodeB::add_flow`], give each UE a [`channel::ChannelModel`],
//! then call [`ENodeB::step_tti`] once per millisecond.
//!
//! # Example
//!
//! ```
//! use flare_lte::channel::StaticChannel;
//! use flare_lte::scheduler::TwoPhaseGbr;
//! use flare_lte::{CellConfig, ENodeB, FlowClass, Itbs};
//! use flare_sim::units::Rate;
//! use flare_sim::Time;
//!
//! let mut enb = ENodeB::new(CellConfig::default(), Box::new(TwoPhaseGbr::default()));
//! let video = enb.add_flow(FlowClass::Video, Box::new(StaticChannel::new(Itbs::new(12))));
//! enb.set_gbr(video, Some(Rate::from_kbps(790.0)));
//! enb.push_backlog(video, flare_sim::units::ByteCount::new(1_000_000));
//! let delivered = enb.step_tti(Time::ZERO);
//! assert!(delivered.iter().any(|d| d.flow == video && !d.bytes.is_zero()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bearer;
pub mod channel;
mod enodeb;
mod flows;
pub mod mobility;
pub mod scheduler;
mod stats;
mod tbs;

pub use enodeb::{CellConfig, Delivered, ENodeB};
pub use flows::{FlowClass, FlowId};
pub use stats::{FlowIntervalStats, IntervalReport};
pub use tbs::{Itbs, LinkAdaptation, ITBS_MAX};
