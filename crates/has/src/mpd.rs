//! The Media Presentation Description (MPD).
//!
//! FLARE's streaming flow starts when the client fetches the MPD, parses the
//! available encodings, and — crucially for privacy — sends the OneAPI
//! server *only* the bitrate list, "after removing any information that can
//! be used to identify the video" (Section III-A). [`Mpd`] models the
//! parsed manifest; [`Mpd::anonymized_bitrates`] is that privacy-preserving
//! projection.

use flare_sim::units::Rate;
use flare_sim::TimeDelta;

use crate::ladder::BitrateLadder;

/// A parsed media presentation: the encodings, segment timing, and identity
/// of one video.
///
/// # Example
///
/// ```
/// use flare_has::{BitrateLadder, Mpd};
/// use flare_sim::TimeDelta;
///
/// let mpd = Mpd::new(
///     "big-buck-bunny".to_owned(),
///     BitrateLadder::testbed(),
///     TimeDelta::from_secs(10),
///     TimeDelta::from_secs(600),
/// );
/// assert_eq!(mpd.segment_count(), 60);
/// // The anonymized view drops the title.
/// assert_eq!(mpd.anonymized_bitrates().len(), 8);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Mpd {
    title: String,
    ladder: BitrateLadder,
    segment_duration: TimeDelta,
    media_duration: TimeDelta,
}

impl Mpd {
    /// Creates a manifest.
    ///
    /// # Panics
    ///
    /// Panics if the segment duration is zero or longer than the media, or
    /// if the media duration is zero.
    pub fn new(
        title: String,
        ladder: BitrateLadder,
        segment_duration: TimeDelta,
        media_duration: TimeDelta,
    ) -> Self {
        assert!(
            !segment_duration.is_zero(),
            "segment duration must be non-zero"
        );
        assert!(!media_duration.is_zero(), "media duration must be non-zero");
        assert!(
            segment_duration <= media_duration,
            "segments cannot outlast the media"
        );
        Mpd {
            title,
            ladder,
            segment_duration,
            media_duration,
        }
    }

    /// The (identifying) video title. This never leaves the client.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The available encodings.
    pub fn ladder(&self) -> &BitrateLadder {
        &self.ladder
    }

    /// Length of one segment (the paper simulates 10-second segments).
    pub fn segment_duration(&self) -> TimeDelta {
        self.segment_duration
    }

    /// Total media length.
    pub fn media_duration(&self) -> TimeDelta {
        self.media_duration
    }

    /// Number of segments, rounding the final partial segment up.
    pub fn segment_count(&self) -> u64 {
        let whole = self.media_duration / self.segment_duration;
        let exact = whole * self.segment_duration.as_millis() == self.media_duration.as_millis();
        if exact {
            whole
        } else {
            whole + 1
        }
    }

    /// The privacy-preserving projection the FLARE plugin sends to the
    /// OneAPI server: bitrates only, no title, URL, or timing fingerprint.
    pub fn anonymized_bitrates(&self) -> Vec<Rate> {
        self.ladder.rates().to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mpd(seg_s: u64, media_s: u64) -> Mpd {
        Mpd::new(
            "title".to_owned(),
            BitrateLadder::simulation(),
            TimeDelta::from_secs(seg_s),
            TimeDelta::from_secs(media_s),
        )
    }

    #[test]
    fn segment_count_rounds_up() {
        assert_eq!(mpd(10, 600).segment_count(), 60);
        assert_eq!(mpd(10, 605).segment_count(), 61);
        assert_eq!(mpd(10, 10).segment_count(), 1);
    }

    #[test]
    fn accessors() {
        let m = mpd(10, 600);
        assert_eq!(m.title(), "title");
        assert_eq!(m.segment_duration(), TimeDelta::from_secs(10));
        assert_eq!(m.media_duration(), TimeDelta::from_secs(600));
        assert_eq!(m.ladder().len(), 6);
    }

    #[test]
    fn anonymized_view_contains_only_rates() {
        let m = mpd(10, 600);
        let rates = m.anonymized_bitrates();
        assert_eq!(rates.len(), 6);
        assert_eq!(rates[0], Rate::from_kbps(100.0));
        assert_eq!(rates[5], Rate::from_kbps(3000.0));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_segment_duration_panics() {
        let _ = mpd(0, 600);
    }

    #[test]
    #[should_panic(expected = "outlast")]
    fn segment_longer_than_media_panics() {
        let _ = mpd(20, 10);
    }
}
