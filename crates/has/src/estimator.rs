//! Client-side throughput estimators.
//!
//! Client-side HAS algorithms estimate available bandwidth from the
//! throughput history of recently downloaded segments (Section I-B). The
//! estimators here are the ones the evaluated players use:
//!
//! * [`SlidingMean`] — arithmetic mean over the last *n* samples.
//! * [`HarmonicMean`] — FESTIVE's estimator, robust to outlier-fast
//!   segments.
//! * [`Ewma`] — exponentially weighted moving average.
//! * [`DualWindow`] — the reference MPEG-DASH player's long/short pair
//!   (`b^l`, `b^s`); GOOGLE picks the highest encoding
//!   `≤ 0.85 · min(b^l, b^s)`.

use std::collections::VecDeque;

use flare_sim::units::{ByteCount, Rate};
use flare_sim::TimeDelta;

/// One completed download, as seen by an estimator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputSample {
    /// Bytes transferred.
    pub bytes: ByteCount,
    /// Wall-clock transfer time.
    pub elapsed: TimeDelta,
}

impl ThroughputSample {
    /// The sample's average rate (zero for an instantaneous transfer).
    pub fn rate(&self) -> Rate {
        self.bytes.rate_over(self.elapsed)
    }
}

/// An online throughput estimator.
pub trait ThroughputEstimator {
    /// Feeds one completed download.
    fn record(&mut self, sample: ThroughputSample);

    /// Current estimate, or `None` before the first sample.
    fn estimate(&self) -> Option<Rate>;
}

/// Arithmetic mean of the last `window` samples.
///
/// # Example
///
/// ```
/// use flare_has::estimator::{SlidingMean, ThroughputEstimator, ThroughputSample};
/// use flare_sim::units::ByteCount;
/// use flare_sim::TimeDelta;
///
/// let mut est = SlidingMean::new(3);
/// assert!(est.estimate().is_none());
/// est.record(ThroughputSample { bytes: ByteCount::new(125_000), elapsed: TimeDelta::from_secs(1) });
/// assert_eq!(est.estimate().unwrap().as_mbps(), 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct SlidingMean {
    window: usize,
    samples: VecDeque<Rate>,
}

impl SlidingMean {
    /// Creates a mean over the last `window` samples.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be non-zero");
        SlidingMean {
            window,
            samples: VecDeque::new(),
        }
    }
}

impl ThroughputEstimator for SlidingMean {
    fn record(&mut self, sample: ThroughputSample) {
        if self.samples.len() == self.window {
            self.samples.pop_front();
        }
        self.samples.push_back(sample.rate());
    }

    fn estimate(&self) -> Option<Rate> {
        if self.samples.is_empty() {
            return None;
        }
        let sum: Rate = self.samples.iter().copied().sum();
        Some(sum / self.samples.len() as f64)
    }
}

/// Harmonic mean of the last `window` samples — FESTIVE's bandwidth
/// estimator (robust against short bursts of overestimation).
#[derive(Debug, Clone)]
pub struct HarmonicMean {
    window: usize,
    samples: VecDeque<Rate>,
}

impl HarmonicMean {
    /// Creates a harmonic mean over the last `window` samples (FESTIVE
    /// uses 20).
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be non-zero");
        HarmonicMean {
            window,
            samples: VecDeque::new(),
        }
    }
}

impl ThroughputEstimator for HarmonicMean {
    fn record(&mut self, sample: ThroughputSample) {
        if self.samples.len() == self.window {
            self.samples.pop_front();
        }
        self.samples.push_back(sample.rate());
    }

    fn estimate(&self) -> Option<Rate> {
        if self.samples.is_empty() {
            return None;
        }
        let inv_sum: f64 = self.samples.iter().map(|r| 1.0 / r.as_bps().max(1.0)).sum();
        Some(Rate::from_bps(self.samples.len() as f64 / inv_sum))
    }
}

/// Exponentially weighted moving average with smoothing factor `alpha`.
#[derive(Debug, Clone)]
pub struct Ewma {
    alpha: f64,
    current: Option<Rate>,
}

impl Ewma {
    /// Creates an EWMA; `alpha` is the weight of the newest sample.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not in `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Ewma {
            alpha,
            current: None,
        }
    }
}

impl ThroughputEstimator for Ewma {
    fn record(&mut self, sample: ThroughputSample) {
        let r = sample.rate();
        self.current = Some(match self.current {
            None => r,
            Some(prev) => {
                Rate::from_bps((1.0 - self.alpha) * prev.as_bps() + self.alpha * r.as_bps())
            }
        });
    }

    fn estimate(&self) -> Option<Rate> {
        self.current
    }
}

/// The reference player's long/short window pair.
///
/// `GOOGLE` (the MPEG-DASH/Media Source demo player) keeps two bandwidth
/// estimates over long- and short-term histories and selects the highest
/// encoding `≤ safety · min(b_long, b_short)` with `safety = 0.85`.
#[derive(Debug, Clone)]
pub struct DualWindow {
    long: SlidingMean,
    short: SlidingMean,
}

impl DualWindow {
    /// Creates the pair; the reference player defaults to windows of 10 and
    /// 3 segments.
    ///
    /// # Panics
    ///
    /// Panics if either window is zero or `long_window < short_window`.
    pub fn new(long_window: usize, short_window: usize) -> Self {
        assert!(
            long_window >= short_window,
            "long window must be at least the short window"
        );
        DualWindow {
            long: SlidingMean::new(long_window),
            short: SlidingMean::new(short_window),
        }
    }

    /// The conservative estimate `min(b_long, b_short)`.
    pub fn conservative(&self) -> Option<Rate> {
        match (self.long.estimate(), self.short.estimate()) {
            (Some(l), Some(s)) => Some(l.min(s)),
            _ => None,
        }
    }
}

impl Default for DualWindow {
    fn default() -> Self {
        DualWindow::new(10, 3)
    }
}

impl ThroughputEstimator for DualWindow {
    fn record(&mut self, sample: ThroughputSample) {
        self.long.record(sample);
        self.short.record(sample);
    }

    fn estimate(&self) -> Option<Rate> {
        self.conservative()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample(mbps: f64) -> ThroughputSample {
        ThroughputSample {
            bytes: Rate::from_mbps(mbps).bytes_over(TimeDelta::from_secs(1)),
            elapsed: TimeDelta::from_secs(1),
        }
    }

    #[test]
    fn sample_rate_round_trips() {
        let s = sample(2.0);
        assert!((s.rate().as_mbps() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn sliding_mean_windows() {
        let mut est = SlidingMean::new(2);
        est.record(sample(1.0));
        est.record(sample(3.0));
        assert!((est.estimate().unwrap().as_mbps() - 2.0).abs() < 1e-6);
        // Third sample evicts the first.
        est.record(sample(5.0));
        assert!((est.estimate().unwrap().as_mbps() - 4.0).abs() < 1e-6);
    }

    #[test]
    fn harmonic_mean_is_below_arithmetic() {
        let mut h = HarmonicMean::new(10);
        let mut a = SlidingMean::new(10);
        for m in [1.0, 1.0, 10.0] {
            h.record(sample(m));
            a.record(sample(m));
        }
        let hm = h.estimate().unwrap();
        let am = a.estimate().unwrap();
        assert!(hm < am, "harmonic {hm} must undercut arithmetic {am}");
        // Harmonic mean of {1, 1, 10} = 3 / (1 + 1 + 0.1) = ~1.43 Mbps.
        assert!((hm.as_mbps() - 1.4286).abs() < 0.01);
    }

    #[test]
    fn ewma_tracks_with_lag() {
        let mut e = Ewma::new(0.5);
        e.record(sample(1.0));
        assert_eq!(e.estimate().unwrap().as_mbps(), 1.0);
        e.record(sample(3.0));
        assert!((e.estimate().unwrap().as_mbps() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn dual_window_takes_min() {
        let mut d = DualWindow::new(3, 1);
        d.record(sample(4.0));
        d.record(sample(4.0));
        // Short window sees only the dip; long window still remembers 4.0.
        d.record(sample(1.0));
        let est = d.estimate().unwrap();
        assert!(
            (est.as_mbps() - 1.0).abs() < 1e-6,
            "short dip must dominate: {est}"
        );
    }

    #[test]
    fn estimators_start_empty() {
        assert!(SlidingMean::new(3).estimate().is_none());
        assert!(HarmonicMean::new(3).estimate().is_none());
        assert!(Ewma::new(0.3).estimate().is_none());
        assert!(DualWindow::default().estimate().is_none());
    }

    #[test]
    #[should_panic(expected = "window")]
    fn zero_window_panics() {
        let _ = SlidingMean::new(0);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn bad_alpha_panics() {
        let _ = Ewma::new(0.0);
    }

    proptest! {
        #[test]
        fn means_stay_within_sample_range(samples in prop::collection::vec(0.1f64..100.0, 1..30)) {
            let mut sm = SlidingMean::new(50);
            let mut hm = HarmonicMean::new(50);
            for &m in &samples {
                sm.record(sample(m));
                hm.record(sample(m));
            }
            let lo = samples.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = samples.iter().copied().fold(0.0, f64::max);
            let s = sm.estimate().unwrap().as_mbps();
            let h = hm.estimate().unwrap().as_mbps();
            // Samples are quantized to whole bytes, so allow ~100 bps slack.
            let eps = 1e-4;
            prop_assert!(s >= lo - eps && s <= hi + eps);
            prop_assert!(h >= lo - eps && h <= hi + eps);
            prop_assert!(h <= s + eps, "harmonic must not exceed arithmetic");
        }
    }
}
