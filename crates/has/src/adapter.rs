//! The rate-adaptation interface every HAS algorithm implements.

use flare_sim::units::ByteCount;
use flare_sim::{Time, TimeDelta};

use crate::ladder::{BitrateLadder, Level};

/// One completed segment download, reported to the adapter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DownloadSample {
    /// When the download finished.
    pub completed_at: Time,
    /// The encoding that was downloaded.
    pub level: Level,
    /// Segment size in bytes.
    pub bytes: ByteCount,
    /// Wall-clock download time (request to last byte).
    pub elapsed: TimeDelta,
}

/// Everything an adapter may consult when choosing the next segment's
/// encoding.
#[derive(Debug, Clone, Copy)]
pub struct AdaptContext<'a> {
    /// Current simulation time.
    pub now: Time,
    /// The video's available encodings.
    pub ladder: &'a BitrateLadder,
    /// Seconds of media currently buffered.
    pub buffer_level: TimeDelta,
    /// The previously selected encoding, if any segment has been requested.
    pub last_level: Option<Level>,
    /// Length of one segment.
    pub segment_duration: TimeDelta,
    /// Zero-based index of the segment about to be requested.
    pub segment_index: u64,
}

/// A bitrate adaptation algorithm.
///
/// The player calls [`RateAdapter::on_download_complete`] after each segment
/// and [`RateAdapter::next_level`] immediately before each request.
/// Client-side algorithms (FESTIVE, GOOGLE) decide from the context alone;
/// coordinated algorithms (FLARE, AVIS) additionally receive assignments
/// from the network side through their own channels.
pub trait RateAdapter {
    /// Feeds the outcome of a finished download.
    fn on_download_complete(&mut self, sample: DownloadSample) {
        let _ = sample;
    }

    /// Chooses the encoding for the next segment.
    fn next_level(&mut self, ctx: &AdaptContext) -> Level;

    /// A short algorithm name for logs and result tables.
    fn name(&self) -> &'static str;
}

impl<T: RateAdapter + ?Sized> RateAdapter for Box<T> {
    fn on_download_complete(&mut self, sample: DownloadSample) {
        (**self).on_download_complete(sample);
    }

    fn next_level(&mut self, ctx: &AdaptContext) -> Level {
        (**self).next_level(ctx)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(Level);

    impl RateAdapter for Fixed {
        fn next_level(&mut self, _ctx: &AdaptContext) -> Level {
            self.0
        }
        fn name(&self) -> &'static str {
            "fixed"
        }
    }

    #[test]
    fn boxed_adapter_delegates() {
        let ladder = BitrateLadder::simulation();
        let ctx = AdaptContext {
            now: Time::ZERO,
            ladder: &ladder,
            buffer_level: TimeDelta::ZERO,
            last_level: None,
            segment_duration: TimeDelta::from_secs(10),
            segment_index: 0,
        };
        let mut boxed: Box<dyn RateAdapter> = Box::new(Fixed(Level::new(2)));
        assert_eq!(boxed.next_level(&ctx), Level::new(2));
        assert_eq!(boxed.name(), "fixed");
        boxed.on_download_complete(DownloadSample {
            completed_at: Time::ZERO,
            level: Level::new(2),
            bytes: ByteCount::new(1),
            elapsed: TimeDelta::from_millis(1),
        });
    }
}
