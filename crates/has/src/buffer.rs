//! The playback buffer: seconds of downloaded-but-unplayed media.

use flare_sim::TimeDelta;

/// Tracks buffered media and playback stalls.
///
/// Media is appended in whole segments and drained in real time while
/// playing. The buffer also accounts the paper's "average time that the
/// buffer is underflowed" metric: total wall-clock time playback was stalled
/// after it first started.
///
/// # Example
///
/// ```
/// use flare_has::PlaybackBuffer;
/// use flare_sim::TimeDelta;
///
/// let mut b = PlaybackBuffer::new();
/// b.push(TimeDelta::from_secs(10));
/// let starved = b.drain(TimeDelta::from_secs(4));
/// assert_eq!(b.level(), TimeDelta::from_secs(6));
/// assert_eq!(starved, TimeDelta::ZERO);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlaybackBuffer {
    level: TimeDelta,
    underflow_total: TimeDelta,
}

impl PlaybackBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        PlaybackBuffer::default()
    }

    /// Seconds of media currently buffered.
    pub fn level(&self) -> TimeDelta {
        self.level
    }

    /// Total time the buffer was empty while playback wanted to proceed.
    pub fn underflow_total(&self) -> TimeDelta {
        self.underflow_total
    }

    /// Appends `media` (one downloaded segment).
    pub fn push(&mut self, media: TimeDelta) {
        self.level += media;
    }

    /// Plays back `wall` time of media, returning how much of that time was
    /// spent starved (buffer empty). Starved time is added to the underflow
    /// total.
    pub fn drain(&mut self, wall: TimeDelta) -> TimeDelta {
        let played = self.level.min(wall);
        self.level -= played;
        let starved = wall - played;
        self.underflow_total += starved;
        starved
    }

    /// Whether the buffer is completely empty.
    pub fn is_empty(&self) -> bool {
        self.level.is_zero()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn push_and_drain() {
        let mut b = PlaybackBuffer::new();
        b.push(TimeDelta::from_secs(10));
        b.push(TimeDelta::from_secs(10));
        assert_eq!(b.level(), TimeDelta::from_secs(20));
        assert_eq!(b.drain(TimeDelta::from_secs(5)), TimeDelta::ZERO);
        assert_eq!(b.level(), TimeDelta::from_secs(15));
    }

    #[test]
    fn starvation_is_accounted() {
        let mut b = PlaybackBuffer::new();
        b.push(TimeDelta::from_secs(2));
        let starved = b.drain(TimeDelta::from_secs(5));
        assert_eq!(starved, TimeDelta::from_secs(3));
        assert_eq!(b.underflow_total(), TimeDelta::from_secs(3));
        assert!(b.is_empty());
        // Subsequent drains while empty keep accumulating.
        b.drain(TimeDelta::from_secs(1));
        assert_eq!(b.underflow_total(), TimeDelta::from_secs(4));
    }

    #[test]
    fn empty_buffer_reports_empty() {
        let b = PlaybackBuffer::new();
        assert!(b.is_empty());
        assert_eq!(b.level(), TimeDelta::ZERO);
        assert_eq!(b.underflow_total(), TimeDelta::ZERO);
    }

    proptest! {
        #[test]
        fn conservation_of_media(
            pushes in prop::collection::vec(1u64..30, 0..20),
            drains in prop::collection::vec(1u64..30, 0..20),
        ) {
            let mut b = PlaybackBuffer::new();
            let mut pushed = 0;
            let mut drained_wall = 0;
            for p in &pushes { b.push(TimeDelta::from_secs(*p)); pushed += p; }
            for d in &drains { b.drain(TimeDelta::from_secs(*d)); drained_wall += d; }
            // level = pushed - (wall - starved); everything in whole seconds.
            let played = drained_wall - b.underflow_total().as_millis() / 1000;
            prop_assert_eq!(b.level().as_millis() / 1000, pushed - played);
        }
    }
}
