//! The HAS client player: request scheduling, buffer dynamics, statistics.

use flare_sim::units::{ByteCount, Rate};
use flare_sim::{Time, TimeDelta};
use flare_trace::{Category, TraceHandle};

use crate::adapter::{AdaptContext, DownloadSample, RateAdapter};
use crate::buffer::PlaybackBuffer;
use crate::ladder::Level;
use crate::mpd::Mpd;

/// Player timing configuration.
///
/// The reference player behaviours in the paper map onto these knobs: the
/// static-scenario GOOGLE player requests the next segment when the buffer
/// falls below 15 s (`request_threshold`), the dynamic-scenario variant
/// below 40 s, and playback stalls are declared when buffered media runs
/// out, resuming once a full segment is buffered again.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlayerConfig {
    /// Begin playback once this much media is buffered.
    pub startup_threshold: TimeDelta,
    /// After a stall, resume once this much media is buffered.
    pub resume_threshold: TimeDelta,
    /// Request the next segment while less than this much media is buffered.
    pub request_threshold: TimeDelta,
}

impl Default for PlayerConfig {
    /// Start and resume after one 10-second segment; keep up to 30 s
    /// buffered.
    fn default() -> Self {
        PlayerConfig {
            startup_threshold: TimeDelta::from_secs(10),
            resume_threshold: TimeDelta::from_secs(10),
            request_threshold: TimeDelta::from_secs(30),
        }
    }
}

/// A segment request the player wants sent to the media server.
///
/// The harness forwards `bytes` to the cell as downlink backlog for the
/// player's flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentRequest {
    /// Zero-based index of the requested segment.
    pub segment_index: u64,
    /// The encoding requested.
    pub level: Level,
    /// Segment size in bytes.
    pub bytes: ByteCount,
}

/// One fully downloaded segment, for offline analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentRecord {
    /// Zero-based segment index.
    pub segment_index: u64,
    /// Encoding that was downloaded.
    pub level: Level,
    /// The encoding's nominal bitrate.
    pub rate: Rate,
    /// Segment size in bytes.
    pub bytes: ByteCount,
    /// When the request was issued.
    pub requested_at: Time,
    /// When the last byte arrived.
    pub completed_at: Time,
    /// Buffered media right after this segment was appended.
    pub buffer_after: TimeDelta,
}

impl SegmentRecord {
    /// Average download throughput for this segment.
    pub fn throughput(&self) -> Rate {
        self.bytes
            .rate_over(self.completed_at.since(self.requested_at))
    }
}

/// Summary statistics over a finished run (the paper's QoE metrics).
#[derive(Debug, Clone, PartialEq)]
pub struct PlayerStats {
    /// Mean nominal bitrate over all downloaded segments.
    pub average_rate: Rate,
    /// Number of times consecutive segments changed encoding.
    pub bitrate_changes: u64,
    /// Total time playback was stalled after it first started.
    pub underflow_time: TimeDelta,
    /// Number of distinct stall events.
    pub rebuffer_events: u64,
    /// Number of downloaded segments.
    pub segments: u64,
    /// When playback first started, if it did.
    pub playback_started_at: Option<Time>,
}

#[derive(Debug, Clone, Copy)]
struct Download {
    segment_index: u64,
    level: Level,
    total: ByteCount,
    received: ByteCount,
    requested_at: Time,
}

/// The HAS client state machine.
///
/// Drive it with [`Player::step`] once per simulation tick; forward any
/// returned [`SegmentRequest`] to the network; report radio deliveries back
/// with [`Player::on_delivered`].
pub struct Player {
    mpd: Mpd,
    config: PlayerConfig,
    adapter: Box<dyn RateAdapter>,
    buffer: PlaybackBuffer,
    download: Option<Download>,
    next_segment: u64,
    started: bool,
    stalled: bool,
    playback_started_at: Option<Time>,
    underflow_time: TimeDelta,
    rebuffer_events: u64,
    records: Vec<SegmentRecord>,
    trace: TraceHandle,
    ue: u64,
}

impl std::fmt::Debug for Player {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Player")
            .field("adapter", &self.adapter.name())
            .field("next_segment", &self.next_segment)
            .field("buffer", &self.buffer.level())
            .field("stalled", &self.stalled)
            .finish()
    }
}

impl Player {
    /// Creates a player for `mpd` driven by `adapter`.
    pub fn new(mpd: Mpd, config: PlayerConfig, adapter: Box<dyn RateAdapter>) -> Self {
        Player {
            mpd,
            config,
            adapter,
            buffer: PlaybackBuffer::new(),
            download: None,
            next_segment: 0,
            started: false,
            stalled: false,
            playback_started_at: None,
            underflow_time: TimeDelta::ZERO,
            rebuffer_events: 0,
            records: Vec::new(),
            trace: TraceHandle::disabled(),
            ue: 0,
        }
    }

    /// Attaches a trace recorder; `ue` tags this player's
    /// [`Category::Player`] events so traces from multiple players sharing
    /// one recorder stay distinguishable.
    pub fn set_trace(&mut self, trace: TraceHandle, ue: u64) {
        self.trace = trace;
        self.ue = ue;
    }

    /// The manifest being played.
    pub fn mpd(&self) -> &Mpd {
        &self.mpd
    }

    /// The adaptation algorithm's name.
    pub fn adapter_name(&self) -> &'static str {
        self.adapter.name()
    }

    /// Seconds of media currently buffered.
    pub fn buffer_level(&self) -> TimeDelta {
        self.buffer.level()
    }

    /// Whether a download is currently in flight.
    pub fn downloading(&self) -> bool {
        self.download.is_some()
    }

    /// Whether every segment has been downloaded.
    pub fn finished(&self) -> bool {
        self.download.is_none() && self.next_segment >= self.mpd.segment_count()
    }

    /// Whether playback is currently stalled waiting for buffer to refill.
    pub fn stalled(&self) -> bool {
        self.stalled
    }

    /// Number of rebuffering events so far (monotone over a run).
    pub fn rebuffer_events(&self) -> u64 {
        self.rebuffer_events
    }

    /// All completed segments so far.
    pub fn records(&self) -> &[SegmentRecord] {
        &self.records
    }

    /// Reserves capacity for `n` segment records up front so steady-state
    /// playback never reallocates the record log (a run completes at most
    /// one record per MPD segment).
    pub fn reserve_records(&mut self, n: usize) {
        self.records.reserve(n.saturating_sub(self.records.len()));
    }

    /// Advances playback by `dt` ending at time `now`, and issues the next
    /// segment request if the player is idle and hungry.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `dt` exceeds `now` (time under-run).
    pub fn step(&mut self, now: Time, dt: TimeDelta) -> Option<SegmentRequest> {
        debug_assert!(
            now.as_millis() >= dt.as_millis(),
            "dt larger than elapsed time"
        );
        self.advance_playback(now, dt);
        self.maybe_request(now)
    }

    fn advance_playback(&mut self, now: Time, dt: TimeDelta) {
        if !self.started {
            if self.buffer.level() >= self.config.startup_threshold
                || (self.finished() && !self.buffer.is_empty())
            {
                self.started = true;
                self.playback_started_at = Some(now - dt);
            } else {
                return;
            }
        }
        if self.stalled {
            self.underflow_time += dt;
            if self.buffer.level() >= self.config.resume_threshold {
                self.stalled = false;
                let ue = self.ue;
                let buffer_ms = self.buffer.level().as_millis();
                self.trace.record(now, Category::Player, "resume", |e| {
                    e.u64("ue", ue).u64("buffer_ms", buffer_ms);
                });
            }
            return;
        }
        // Nothing left to play and nothing left to fetch: idle, not a stall.
        if self.finished() && self.buffer.is_empty() {
            return;
        }
        let starved = self.buffer.drain(dt);
        if !starved.is_zero() {
            self.stalled = true;
            self.rebuffer_events += 1;
            self.underflow_time += starved;
            self.trace.incr("player.stalls", 1);
            let ue = self.ue;
            self.trace.record(now, Category::Player, "stall", |e| {
                e.u64("ue", ue);
            });
        }
    }

    fn maybe_request(&mut self, now: Time) -> Option<SegmentRequest> {
        if self.download.is_some()
            || self.next_segment >= self.mpd.segment_count()
            || self.buffer.level() >= self.config.request_threshold
        {
            return None;
        }
        let ctx = AdaptContext {
            now,
            ladder: self.mpd.ladder(),
            buffer_level: self.buffer.level(),
            last_level: self.records.last().map(|r| r.level),
            segment_duration: self.mpd.segment_duration(),
            segment_index: self.next_segment,
        };
        let level = self.mpd.ladder().clamp(self.adapter.next_level(&ctx));
        let bytes = self
            .mpd
            .ladder()
            .rate(level)
            .bytes_over(self.mpd.segment_duration());
        self.download = Some(Download {
            segment_index: self.next_segment,
            level,
            total: bytes,
            received: ByteCount::ZERO,
            requested_at: now,
        });
        self.trace.incr("player.requests", 1);
        {
            let ue = self.ue;
            let segment = self.next_segment;
            let buffer_ms = self.buffer.level().as_millis();
            self.trace
                .record_debug(now, Category::Player, "request", |e| {
                    e.u64("ue", ue)
                        .u64("segment", segment)
                        .u64("level", level.index() as u64)
                        .u64("bytes", bytes.as_u64())
                        .u64("buffer_ms", buffer_ms);
                });
        }
        Some(SegmentRequest {
            segment_index: self.next_segment,
            level,
            bytes,
        })
    }

    /// Reports `bytes` of the in-flight segment as delivered at `now`.
    /// Returns the completed record when the segment finishes.
    ///
    /// Bytes arriving with no download in flight are ignored (the cell may
    /// flush a final transport block after completion).
    pub fn on_delivered(&mut self, now: Time, bytes: ByteCount) -> Option<SegmentRecord> {
        let dl = self.download.as_mut()?;
        dl.received += bytes;
        if dl.received < dl.total {
            return None;
        }
        let dl = self.download.take().expect("download in flight");
        self.buffer.push(self.mpd.segment_duration());
        self.next_segment = dl.segment_index + 1;
        let record = SegmentRecord {
            segment_index: dl.segment_index,
            level: dl.level,
            rate: self.mpd.ladder().rate(dl.level),
            bytes: dl.total,
            requested_at: dl.requested_at,
            completed_at: now,
            buffer_after: self.buffer.level(),
        };
        self.records.push(record);
        if self.trace.is_attached() {
            let download_ms = now.since(dl.requested_at).as_millis();
            self.trace.incr("player.segments", 1);
            self.trace.observe("player.download_ms", download_ms as f64);
            let ue = self.ue;
            let buffer_ms = self.buffer.level().as_millis();
            self.trace.record(now, Category::Player, "segment", |e| {
                e.u64("ue", ue)
                    .u64("segment", dl.segment_index)
                    .u64("level", dl.level.index() as u64)
                    .u64("bytes", dl.total.as_u64())
                    .u64("download_ms", download_ms)
                    .u64("buffer_ms", buffer_ms);
            });
        }
        self.adapter.on_download_complete(DownloadSample {
            completed_at: now,
            level: dl.level,
            bytes: dl.total,
            elapsed: now.since(dl.requested_at),
        });
        Some(record)
    }

    /// Summarizes the run so far.
    pub fn stats(&self) -> PlayerStats {
        let segments = self.records.len() as u64;
        let average_rate = if self.records.is_empty() {
            Rate::ZERO
        } else {
            self.records.iter().map(|r| r.rate).sum::<Rate>() / self.records.len() as f64
        };
        let bitrate_changes = self
            .records
            .windows(2)
            .filter(|w| w[0].level != w[1].level)
            .count() as u64;
        PlayerStats {
            average_rate,
            bitrate_changes,
            underflow_time: self.underflow_time,
            rebuffer_events: self.rebuffer_events,
            segments,
            playback_started_at: self.playback_started_at,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ladder::BitrateLadder;
    use flare_sim::TTI;

    /// Requests a fixed level forever.
    struct Fixed(Level);
    impl RateAdapter for Fixed {
        fn next_level(&mut self, _ctx: &AdaptContext) -> Level {
            self.0
        }
        fn name(&self) -> &'static str {
            "fixed"
        }
    }

    fn mpd(media_s: u64) -> Mpd {
        Mpd::new(
            "test".to_owned(),
            BitrateLadder::simulation(),
            TimeDelta::from_secs(10),
            TimeDelta::from_secs(media_s),
        )
    }

    fn player(level: usize, media_s: u64) -> Player {
        Player::new(
            mpd(media_s),
            PlayerConfig::default(),
            Box::new(Fixed(Level::new(level))),
        )
    }

    /// Drives the player against a fixed-rate link for `total` time.
    fn run(player: &mut Player, link: Rate, total: TimeDelta) {
        let mut now = Time::ZERO;
        let end = Time::ZERO + total;
        while now < end {
            now += TTI;
            let req = player.step(now, TTI);
            let _ = req;
            if player.downloading() {
                player.on_delivered(now, link.bytes_over(TTI));
            }
        }
    }

    #[test]
    fn first_request_is_immediate() {
        let mut p = player(2, 600);
        let req = p.step(Time::ZERO + TTI, TTI).expect("should request");
        assert_eq!(req.segment_index, 0);
        assert_eq!(req.level, Level::new(2));
        // 500 kbps * 10 s / 8 = 625,000 bytes.
        assert_eq!(req.bytes, ByteCount::new(625_000));
        // No duplicate request while in flight.
        assert!(p.step(Time::ZERO + TTI * 2, TTI).is_none());
    }

    #[test]
    fn fast_link_never_underflows() {
        let mut p = player(2, 300);
        run(&mut p, Rate::from_mbps(5.0), TimeDelta::from_secs(400));
        let stats = p.stats();
        assert_eq!(stats.underflow_time, TimeDelta::ZERO);
        assert_eq!(stats.rebuffer_events, 0);
        assert_eq!(stats.segments, 30);
        assert!(p.finished());
        assert_eq!(stats.bitrate_changes, 0);
        assert_eq!(stats.average_rate, Rate::from_kbps(500.0));
    }

    #[test]
    fn slow_link_stalls_playback() {
        // 3 Mbps encoding over a 1 Mbps link: every segment takes 3x real
        // time, guaranteeing stalls.
        let mut p = player(5, 300);
        run(&mut p, Rate::from_mbps(1.0), TimeDelta::from_secs(300));
        let stats = p.stats();
        assert!(stats.rebuffer_events > 0, "expected stalls");
        assert!(stats.underflow_time > TimeDelta::from_secs(30));
    }

    #[test]
    fn buffer_threshold_paces_requests() {
        let mut p = player(0, 600);
        run(&mut p, Rate::from_mbps(10.0), TimeDelta::from_secs(60));
        // With a 30 s request threshold the player holds 30-40 s of media
        // and stops fetching, rather than downloading all 60 segments.
        assert!(p.buffer_level() >= TimeDelta::from_secs(30) - TimeDelta::from_secs(10));
        let fetched = p.records().len();
        assert!(fetched < 12, "fetched {fetched} segments, pacing broken");
    }

    #[test]
    fn playback_starts_after_startup_threshold() {
        let mut p = player(2, 300);
        run(&mut p, Rate::from_mbps(5.0), TimeDelta::from_secs(30));
        let stats = p.stats();
        let started = stats.playback_started_at.expect("playback must start");
        // 625,000 bytes at 5 Mbps = 1 s for the first segment; startup
        // threshold is one segment, so playback starts right after.
        assert!(
            started >= Time::from_millis(900) && started <= Time::from_millis(1200),
            "started at {started:?}"
        );
    }

    #[test]
    fn stall_resumes_after_resume_threshold() {
        let cfg = PlayerConfig {
            request_threshold: TimeDelta::from_secs(15),
            ..PlayerConfig::default()
        };
        let mut p = Player::new(mpd(300), cfg, Box::new(Fixed(Level::new(3))));
        // 1 Mbps encoding over exactly 1 Mbps link: the second segment takes
        // 10 s to fetch while 10 s play out — borderline; throttle to 0.8.
        run(&mut p, Rate::from_kbps(800.0), TimeDelta::from_secs(200));
        let stats = p.stats();
        assert!(stats.rebuffer_events >= 1);
        // Playback keeps making progress after stalls.
        assert!(stats.segments >= 10);
    }

    #[test]
    fn records_expose_throughput() {
        let mut p = player(1, 300);
        run(&mut p, Rate::from_mbps(2.0), TimeDelta::from_secs(50));
        let r = p.records()[0];
        assert!(
            (r.throughput().as_mbps() - 2.0).abs() < 0.1,
            "tput {:?}",
            r.throughput()
        );
        assert_eq!(r.segment_index, 0);
        assert_eq!(r.buffer_after, TimeDelta::from_secs(10));
    }

    #[test]
    fn change_counting() {
        /// Alternates between two levels.
        struct Alternate(bool);
        impl RateAdapter for Alternate {
            fn next_level(&mut self, _ctx: &AdaptContext) -> Level {
                self.0 = !self.0;
                Level::new(if self.0 { 0 } else { 1 })
            }
            fn name(&self) -> &'static str {
                "alternate"
            }
        }
        let mut p = Player::new(
            mpd(100),
            PlayerConfig::default(),
            Box::new(Alternate(false)),
        );
        run(&mut p, Rate::from_mbps(10.0), TimeDelta::from_secs(200));
        let stats = p.stats();
        assert_eq!(stats.segments, 10);
        assert_eq!(stats.bitrate_changes, 9);
    }

    #[test]
    fn stray_bytes_after_completion_are_ignored() {
        let mut p = player(0, 100);
        assert!(p.on_delivered(Time::ZERO, ByteCount::new(1000)).is_none());
    }

    #[test]
    fn finished_player_goes_idle_without_stalling() {
        let mut p = player(0, 30); // 3 segments only
        run(&mut p, Rate::from_mbps(10.0), TimeDelta::from_secs(120));
        assert!(p.finished());
        let stats = p.stats();
        assert_eq!(stats.segments, 3);
        // Idle after the end of media is not a stall.
        assert_eq!(stats.rebuffer_events, 0);
        assert_eq!(stats.underflow_time, TimeDelta::ZERO);
    }

    #[test]
    fn invariants_hold_under_random_delivery_schedules() {
        use proptest::prelude::*;
        use proptest::test_runner::TestRunner;

        let mut runner = TestRunner::default();
        runner
            .run(
                // Per-TTI delivery rates in bytes (0 = outage), plus a level.
                &(proptest::collection::vec(0u64..4000, 50..400), 0usize..6),
                |(deliveries, level)| {
                    let mut p = player(level, 100);
                    let mut now = Time::ZERO;
                    let mut completed_indices = Vec::new();
                    for chunk in deliveries.iter().cycle().take(60_000) {
                        now += TTI;
                        p.step(now, TTI);
                        if p.downloading() {
                            if let Some(rec) = p.on_delivered(now, ByteCount::new(*chunk)) {
                                completed_indices.push(rec.segment_index);
                            }
                        }
                    }
                    // 1. Segments complete strictly in order, no skips.
                    prop_assert!(completed_indices.windows(2).all(|w| w[1] == w[0] + 1));
                    // 2. Stats are internally consistent.
                    let stats = p.stats();
                    prop_assert_eq!(stats.segments as usize, completed_indices.len());
                    prop_assert!(stats.bitrate_changes <= stats.segments.saturating_sub(1));
                    // 3. Stalls can only happen after playback started.
                    if stats.playback_started_at.is_none() {
                        prop_assert_eq!(stats.underflow_time, TimeDelta::ZERO);
                        prop_assert_eq!(stats.rebuffer_events, 0);
                    }
                    // 4. Records' timing is sane.
                    for r in p.records() {
                        prop_assert!(r.completed_at > r.requested_at);
                    }
                    Ok(())
                },
            )
            .unwrap();
    }

    #[test]
    fn out_of_range_adapter_levels_are_clamped() {
        let mut p = Player::new(
            mpd(100),
            PlayerConfig::default(),
            Box::new(Fixed(Level::new(999))),
        );
        let req = p.step(Time::ZERO + TTI, TTI).unwrap();
        assert_eq!(req.level, Level::new(5));
    }
}
