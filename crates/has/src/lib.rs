//! HTTP adaptive streaming (HAS) substrate for the FLARE reproduction.
//!
//! HAS divides a video into fixed-length segments, each encoded at several
//! bitrates; before each segment download the player picks one encoding.
//! This crate provides everything around that choice:
//!
//! * [`BitrateLadder`] / [`Level`] — the discrete encodings `r_u(1..M_u)`,
//!   including the exact ladders used by the paper's testbed and
//!   simulations.
//! * [`Mpd`] — the Media Presentation Description a client parses before
//!   streaming, plus its privacy-preserving projection
//!   ([`Mpd::anonymized_bitrates`]) that the FLARE plugin sends to the
//!   OneAPI server.
//! * [`estimator`] — client-side throughput estimators (sliding mean,
//!   harmonic mean, EWMA, and the dual long/short window used by the
//!   "GOOGLE" reference player).
//! * [`PlaybackBuffer`] and [`Player`] — the client state machine: startup,
//!   steady streaming, rebuffering, and per-segment statistics.
//! * [`RateAdapter`] — the trait every adaptation algorithm (FESTIVE,
//!   GOOGLE, AVIS's client, FLARE's plugin) implements.
//!
//! # Example
//!
//! ```
//! use flare_has::{AdaptContext, BitrateLadder, Level, RateAdapter};
//!
//! /// Always picks the lowest encoding.
//! struct Lowest;
//! impl RateAdapter for Lowest {
//!     fn next_level(&mut self, _ctx: &AdaptContext) -> Level {
//!         Level::new(0)
//!     }
//!     fn name(&self) -> &'static str {
//!         "lowest"
//!     }
//! }
//!
//! let ladder = BitrateLadder::testbed();
//! assert_eq!(ladder.rate(Level::new(0)).as_kbps(), 200.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adapter;
mod buffer;
pub mod estimator;
mod ladder;
mod mpd;
mod player;

pub use adapter::{AdaptContext, DownloadSample, RateAdapter};
pub use buffer::PlaybackBuffer;
pub use ladder::{BitrateLadder, Level};
pub use mpd::Mpd;
pub use player::{Player, PlayerConfig, PlayerStats, SegmentRecord, SegmentRequest};
