//! Bitrate ladders: the discrete encodings available for one video.

use std::fmt;

use flare_sim::units::Rate;

/// An index into a [`BitrateLadder`] (the paper's `L_u`), zero-based.
///
/// # Example
///
/// ```
/// use flare_has::Level;
///
/// let l = Level::new(3);
/// assert_eq!(l.index(), 3);
/// assert_eq!(l.up().index(), 4);
/// assert_eq!(Level::new(0).down(), Level::new(0));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Level(usize);

impl Level {
    /// Creates a level index.
    pub const fn new(index: usize) -> Self {
        Level(index)
    }

    /// Returns the zero-based index.
    pub const fn index(self) -> usize {
        self.0
    }

    /// The next level up.
    pub const fn up(self) -> Level {
        Level(self.0 + 1)
    }

    /// The next level down, saturating at the lowest level.
    pub const fn down(self) -> Level {
        Level(self.0.saturating_sub(1))
    }
}

impl fmt::Debug for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The sorted list of encodings available for a video — `r_u(1) ≤ … ≤
/// r_u(M_u)` in the paper's notation.
///
/// # Example
///
/// ```
/// use flare_has::{BitrateLadder, Level};
/// use flare_sim::units::Rate;
///
/// let ladder = BitrateLadder::simulation();
/// assert_eq!(ladder.len(), 6);
/// assert_eq!(
///     ladder.highest_at_most(Rate::from_kbps(700.0)),
///     Some(Level::new(2)) // 500 kbps
/// );
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BitrateLadder {
    rates: Vec<Rate>,
}

impl BitrateLadder {
    /// Creates a ladder from ascending, strictly positive bitrates.
    ///
    /// # Panics
    ///
    /// Panics if `rates` is empty, unsorted, or contains non-positive or
    /// duplicate entries.
    pub fn new(rates: Vec<Rate>) -> Self {
        assert!(!rates.is_empty(), "ladder must have at least one encoding");
        assert!(rates[0] > Rate::ZERO, "bitrates must be positive");
        assert!(
            rates.windows(2).all(|w| w[0] < w[1]),
            "bitrates must be strictly ascending"
        );
        BitrateLadder { rates }
    }

    /// Builds a ladder from kilobit-per-second values.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`BitrateLadder::new`].
    pub fn from_kbps(kbps: &[u32]) -> Self {
        BitrateLadder::new(
            kbps.iter()
                .map(|&k| Rate::from_kbps(f64::from(k)))
                .collect(),
        )
    }

    /// The testbed ladder of Section IV-A:
    /// {200, 310, 450, 790, 1100, 1320, 2280, 2750} kbps.
    pub fn testbed() -> Self {
        BitrateLadder::from_kbps(&[200, 310, 450, 790, 1100, 1320, 2280, 2750])
    }

    /// The default simulation ladder of Table III:
    /// {100, 250, 500, 1000, 2000, 3000} kbps.
    pub fn simulation() -> Self {
        BitrateLadder::from_kbps(&[100, 250, 500, 1000, 2000, 3000])
    }

    /// The fine-grained ladder used by Figures 8–10:
    /// {100, 200, …, 1200} kbps.
    pub fn fine_grained() -> Self {
        BitrateLadder::from_kbps(&[
            100, 200, 300, 400, 500, 600, 700, 800, 900, 1000, 1100, 1200,
        ])
    }

    /// Number of encodings (`M_u`).
    pub fn len(&self) -> usize {
        self.rates.len()
    }

    /// Whether the ladder is empty (never true for a constructed ladder).
    pub fn is_empty(&self) -> bool {
        self.rates.is_empty()
    }

    /// The bitrate of `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    pub fn rate(&self, level: Level) -> Rate {
        self.rates[level.index()]
    }

    /// The lowest encoding.
    pub fn lowest(&self) -> Level {
        Level(0)
    }

    /// The highest encoding.
    pub fn highest(&self) -> Level {
        Level(self.rates.len() - 1)
    }

    /// Clamps `level` into the ladder's range.
    pub fn clamp(&self, level: Level) -> Level {
        Level(level.index().min(self.rates.len() - 1))
    }

    /// The highest level whose rate is `≤ budget` — the paper's rounding
    /// `L = max{k : r(k) ≤ R}`. Returns `None` when even the lowest encoding
    /// exceeds the budget.
    pub fn highest_at_most(&self, budget: Rate) -> Option<Level> {
        let mut found = None;
        for (i, r) in self.rates.iter().enumerate() {
            if *r <= budget {
                found = Some(Level(i));
            } else {
                break;
            }
        }
        found
    }

    /// Like [`Self::highest_at_most`] but falls back to the lowest encoding,
    /// which is what actual players do when starved.
    pub fn highest_at_most_or_lowest(&self, budget: Rate) -> Level {
        self.highest_at_most(budget).unwrap_or(Level(0))
    }

    /// Iterates over `(Level, Rate)` pairs in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = (Level, Rate)> + '_ {
        self.rates.iter().enumerate().map(|(i, r)| (Level(i), *r))
    }

    /// All bitrates, ascending.
    pub fn rates(&self) -> &[Rate] {
        &self.rates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn level_navigation() {
        let l = Level::new(2);
        assert_eq!(l.up(), Level::new(3));
        assert_eq!(l.down(), Level::new(1));
        assert_eq!(Level::new(0).down(), Level::new(0));
        assert_eq!(format!("{:?}", l), "L2");
        assert_eq!(l.to_string(), "2");
    }

    #[test]
    fn paper_ladders_have_documented_shapes() {
        let t = BitrateLadder::testbed();
        assert_eq!(t.len(), 8);
        assert_eq!(t.rate(t.lowest()).as_kbps(), 200.0);
        assert_eq!(t.rate(t.highest()).as_kbps(), 2750.0);

        let s = BitrateLadder::simulation();
        assert_eq!(s.len(), 6);
        assert_eq!(s.rate(s.highest()).as_kbps(), 3000.0);

        let f = BitrateLadder::fine_grained();
        assert_eq!(f.len(), 12);
        assert_eq!(f.rate(Level::new(4)).as_kbps(), 500.0);
    }

    #[test]
    fn highest_at_most_brackets() {
        let l = BitrateLadder::testbed();
        assert_eq!(l.highest_at_most(Rate::from_kbps(199.0)), None);
        assert_eq!(
            l.highest_at_most(Rate::from_kbps(200.0)),
            Some(Level::new(0))
        );
        assert_eq!(
            l.highest_at_most(Rate::from_kbps(800.0)),
            Some(Level::new(3))
        );
        assert_eq!(
            l.highest_at_most(Rate::from_kbps(9999.0)),
            Some(Level::new(7))
        );
        assert_eq!(l.highest_at_most_or_lowest(Rate::ZERO), Level::new(0));
    }

    #[test]
    fn clamp_saturates() {
        let l = BitrateLadder::simulation();
        assert_eq!(l.clamp(Level::new(100)), l.highest());
        assert_eq!(l.clamp(Level::new(2)), Level::new(2));
    }

    #[test]
    fn iter_is_ascending() {
        let l = BitrateLadder::testbed();
        let rates: Vec<f64> = l.iter().map(|(_, r)| r.as_kbps()).collect();
        let mut sorted = rates.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(rates, sorted);
        assert!(!l.is_empty());
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_ladder_panics() {
        let _ = BitrateLadder::from_kbps(&[500, 200]);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn duplicate_ladder_panics() {
        let _ = BitrateLadder::from_kbps(&[200, 200]);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_ladder_panics() {
        let _ = BitrateLadder::new(vec![]);
    }

    proptest! {
        #[test]
        fn highest_at_most_is_correct_bracket(budget_kbps in 0.0f64..5000.0) {
            let l = BitrateLadder::testbed();
            let budget = Rate::from_kbps(budget_kbps);
            match l.highest_at_most(budget) {
                Some(level) => {
                    prop_assert!(l.rate(level) <= budget);
                    if level < l.highest() {
                        prop_assert!(l.rate(level.up()) > budget);
                    }
                }
                None => prop_assert!(l.rate(l.lowest()) > budget),
            }
        }
    }
}
