//! Per-TTI MAC scheduler benchmarks.
//!
//! Every simulated second costs 1000 scheduler invocations, so scheduler
//! throughput bounds how fast the paper's 1200 s × 20-run sweeps execute.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flare_lte::channel::StaticChannel;
use flare_lte::scheduler::{
    MacScheduler, PrioritySetScheduler, ProportionalFair, StrictGbrPartition, TwoPhaseGbr,
};
use flare_lte::{CellConfig, ENodeB, FlowClass, Itbs};
use flare_sim::units::{ByteCount, Rate};
use flare_sim::Time;
use std::hint::black_box;

fn build_cell(scheduler: Box<dyn MacScheduler>, n_video: usize, n_data: usize) -> ENodeB {
    let mut enb = ENodeB::new(CellConfig::default(), scheduler);
    for i in 0..n_video {
        let f = enb.add_flow(
            FlowClass::Video,
            Box::new(StaticChannel::new(Itbs::new((4 + i % 20) as u8))),
        );
        enb.set_gbr(f, Some(Rate::from_kbps(500.0)));
        enb.push_backlog(f, ByteCount::new(u64::MAX / 4));
    }
    for i in 0..n_data {
        enb.add_flow(
            FlowClass::Data,
            Box::new(StaticChannel::new(Itbs::new((2 + i % 24) as u8))),
        );
    }
    enb
}

type SchedulerFactory = fn() -> Box<dyn MacScheduler>;

fn bench_schedulers(c: &mut Criterion) {
    let mut group = c.benchmark_group("mac_tti");
    group.sample_size(20);
    let make: Vec<(&str, SchedulerFactory)> = vec![
        ("pf", || Box::new(ProportionalFair::default())),
        ("two-phase-gbr", || Box::new(TwoPhaseGbr::default())),
        ("priority-set", || Box::new(PrioritySetScheduler::default())),
        ("strict-partition", || {
            Box::new(StrictGbrPartition::default())
        }),
    ];
    for (name, mk) in make {
        for &flows in &[8usize, 32] {
            group.bench_with_input(BenchmarkId::new(name, flows), &flows, |b, &flows| {
                let mut enb = build_cell(mk(), flows / 2, flows - flows / 2);
                let mut ms = 0u64;
                b.iter(|| {
                    let out = enb.step_tti(Time::from_millis(ms)).len();
                    ms += 1;
                    black_box(out)
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_schedulers);
criterion_main!(benches);
