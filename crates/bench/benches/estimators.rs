//! Throughput-estimator benchmarks: the per-segment client-side cost.

use criterion::{criterion_group, criterion_main, Criterion};
use flare_has::estimator::{
    DualWindow, Ewma, HarmonicMean, SlidingMean, ThroughputEstimator, ThroughputSample,
};
use flare_sim::units::ByteCount;
use flare_sim::TimeDelta;
use std::hint::black_box;

fn sample(i: u64) -> ThroughputSample {
    ThroughputSample {
        bytes: ByteCount::new(100_000 + (i * 7919) % 900_000),
        elapsed: TimeDelta::from_millis(500 + (i * 131) % 9_500),
    }
}

fn bench_estimators(c: &mut Criterion) {
    let mut group = c.benchmark_group("estimators");
    group.sample_size(30);
    group.bench_function("sliding_mean_record_estimate", |b| {
        let mut est = SlidingMean::new(20);
        let mut i = 0u64;
        b.iter(|| {
            est.record(sample(i));
            i += 1;
            black_box(est.estimate())
        });
    });
    group.bench_function("harmonic_mean_record_estimate", |b| {
        let mut est = HarmonicMean::new(20);
        let mut i = 0u64;
        b.iter(|| {
            est.record(sample(i));
            i += 1;
            black_box(est.estimate())
        });
    });
    group.bench_function("ewma_record_estimate", |b| {
        let mut est = Ewma::new(0.3);
        let mut i = 0u64;
        b.iter(|| {
            est.record(sample(i));
            i += 1;
            black_box(est.estimate())
        });
    });
    group.bench_function("dual_window_record_estimate", |b| {
        let mut est = DualWindow::default();
        let mut i = 0u64;
        b.iter(|| {
            est.record(sample(i));
            i += 1;
            black_box(est.estimate())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_estimators);
criterion_main!(benches);
