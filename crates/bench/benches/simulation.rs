//! Full-stack simulation slices: one bench per evaluated scheme/workload.
//!
//! Each bench runs a short slice of the exact workload behind the paper's
//! tables and figures (see DESIGN.md's experiment index); the `repro`
//! binary runs the full-length versions. Measuring slices keeps
//! `cargo bench` minutes-scale while still exercising every code path:
//!
//! * `table1_*` / `table2_*` — the testbed scenarios per scheme;
//! * `fig6_*` / `fig7_*` — the static/mobile cell scenarios per scheme;
//! * `fig10_mixed` — the 8 video + 8 data coexistence workload;
//! * `fig11_alpha` / `fig12_delta` — one sweep point each.

use criterion::{criterion_group, criterion_main, Criterion};
use flare_core::FlareConfig;
use flare_scenarios::{cell, sweeps, testbed, CellSim, SchemeKind};
use flare_sim::TimeDelta;
use std::hint::black_box;

const SLICE: TimeDelta = TimeDelta::from_secs(60);

fn bench_testbed(c: &mut Criterion) {
    let mut group = c.benchmark_group("testbed_slice");
    group.sample_size(10);
    for scheme in testbed::schemes() {
        let name = scheme.name().to_lowercase();
        let s1 = scheme.clone();
        group.bench_function(format!("table1_{name}"), move |b| {
            b.iter(|| {
                let cfg = testbed::static_config(s1.clone(), 1, SLICE);
                black_box(CellSim::new(cfg).run())
            });
        });
        let s2 = scheme.clone();
        group.bench_function(format!("table2_{name}"), move |b| {
            b.iter(|| {
                let cfg = testbed::dynamic_config(s2.clone(), 1, SLICE);
                black_box(CellSim::new(cfg).run())
            });
        });
    }
    group.finish();
}

fn bench_cell(c: &mut Criterion) {
    let mut group = c.benchmark_group("cell_slice");
    group.sample_size(10);
    for scheme in cell::schemes() {
        let name = scheme.name().to_lowercase();
        let s1 = scheme.clone();
        group.bench_function(format!("fig6_{name}"), move |b| {
            b.iter(|| black_box(cell::static_run(s1.clone(), 1, SLICE)));
        });
        let s2 = scheme.clone();
        group.bench_function(format!("fig7_{name}"), move |b| {
            b.iter(|| black_box(cell::mobile_run(s2.clone(), 1, SLICE)));
        });
    }
    group.bench_function("fig10_mixed", |b| {
        b.iter(|| {
            black_box(cell::mixed_run(
                SchemeKind::Flare(FlareConfig::default()),
                8,
                8,
                1,
                SLICE,
            ))
        });
    });
    group.finish();
}

fn bench_sweep_points(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep_point");
    group.sample_size(10);
    group.bench_function("fig11_alpha_1", |b| {
        b.iter(|| black_box(sweeps::alpha_sweep(&[1.0], 1, 4, 4, SLICE, 1, 1)));
    });
    group.bench_function("fig12_delta_4", |b| {
        b.iter(|| black_box(sweeps::delta_sweep(&[4], 1, SLICE, 1, 1)));
    });
    group.bench_function("fig8_relaxed_static", |b| {
        b.iter(|| black_box(sweeps::solver_comparison(false, 1, SLICE, 1, 1)));
    });
    group.finish();
}

criterion_group!(benches, bench_testbed, bench_cell, bench_sweep_points);
criterion_main!(benches);
