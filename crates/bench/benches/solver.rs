//! Per-BAI solver benchmarks — the workload behind Figure 9.
//!
//! The paper reports bitrate-selection times of a few milliseconds with
//! KNITRO at 32/64/128 clients; these benches measure our exact (greedy +
//! local search) and relaxed (KKT bisection) solvers on identically shaped
//! problems.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flare_scenarios::scaling::synthetic_problem;
use flare_solver::{round_down, solve_discrete, solve_relaxed};
use std::hint::black_box;

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_solver_scaling");
    group.sample_size(20);
    for &n in &[8usize, 32, 64, 128] {
        let spec = synthetic_problem(n, 42);
        group.bench_with_input(BenchmarkId::new("exact", n), &spec, |b, spec| {
            b.iter(|| black_box(solve_discrete(black_box(spec))));
        });
        group.bench_with_input(BenchmarkId::new("relaxed", n), &spec, |b, spec| {
            b.iter(|| {
                let relaxed = solve_relaxed(black_box(spec));
                black_box(round_down(spec, &relaxed))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
