//! Overhead of the trace recorder on the hot paths it instruments.
//!
//! The acceptance bar for `flare-trace` is that a *disabled* handle keeps
//! the per-TTI MAC path and the per-BAI solve path within noise of the
//! uninstrumented baseline, and that a registry-only handle (the default
//! every `CellSim` run carries) stays cheap. The recording configurations
//! quantify what full event capture costs.

use criterion::{criterion_group, criterion_main, Criterion};
use flare_core::{ClientInfo, FlareConfig, OneApiServer};
use flare_has::BitrateLadder;
use flare_lte::channel::StaticChannel;
use flare_lte::scheduler::PrioritySetScheduler;
use flare_lte::{CellConfig, ENodeB, FlowClass, Itbs};
use flare_sim::units::{ByteCount, Rate};
use flare_sim::Time;
use flare_trace::{Category, TraceConfig, TraceHandle};
use std::hint::black_box;

/// The recorder configurations under comparison.
fn handles() -> Vec<(&'static str, TraceHandle)> {
    vec![
        ("disabled", TraceHandle::disabled()),
        ("registry", TraceHandle::registry_only()),
        ("info", TraceHandle::new(TraceConfig::info())),
        ("debug", TraceHandle::new(TraceConfig::debug())),
    ]
}

fn build_cell(
    trace: TraceHandle,
    n_video: usize,
    n_data: usize,
) -> (ENodeB, Vec<flare_lte::FlowId>) {
    let mut enb = ENodeB::new(
        CellConfig::default(),
        Box::new(PrioritySetScheduler::default()),
    );
    enb.set_trace(trace);
    let mut videos = Vec::new();
    for i in 0..n_video {
        let f = enb.add_flow(
            FlowClass::Video,
            Box::new(StaticChannel::new(Itbs::new((4 + i % 20) as u8))),
        );
        enb.set_gbr(f, Some(Rate::from_kbps(500.0)));
        enb.push_backlog(f, ByteCount::new(u64::MAX / 4));
        videos.push(f);
    }
    for i in 0..n_data {
        // Data flows are modelled as always-backlogged; no push needed.
        enb.add_flow(
            FlowClass::Data,
            Box::new(StaticChannel::new(Itbs::new((2 + i % 24) as u8))),
        );
    }
    (enb, videos)
}

/// Per-TTI MAC scheduling with each recorder configuration attached.
fn bench_tti(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_tti");
    group.sample_size(20);
    for (name, handle) in handles() {
        group.bench_function(name, |b| {
            let (mut enb, _) = build_cell(handle.clone(), 4, 4);
            let mut ms = 0u64;
            b.iter(|| {
                let out = enb.step_tti(Time::from_millis(ms)).len();
                ms += 1;
                black_box(out)
            });
        });
    }
    group.finish();
}

/// Per-BAI solve (statistics report in, assignments out) per configuration.
fn bench_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_solve");
    group.sample_size(20);
    for (name, handle) in handles() {
        group.bench_function(name, |b| {
            let (mut enb, flows) = build_cell(handle.clone(), 8, 0);
            let mut server = OneApiServer::new(FlareConfig::default());
            server.set_trace(handle.clone());
            for &f in &flows {
                server.register_video(ClientInfo::new(f, BitrateLadder::simulation()));
            }
            for ms in 0..1000 {
                enb.step_tti(Time::from_millis(ms));
            }
            let report = enb.take_report(Time::from_millis(1000));
            let la = enb.link_adaptation().clone();
            b.iter(|| black_box(server.assign(&report, &la, 50)));
        });
    }
    group.finish();
}

/// Raw event-record throughput and JSONL export.
fn bench_record_export(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_record");
    group.sample_size(20);
    for (name, handle) in handles() {
        group.bench_function(name, |b| {
            let mut t = 0u64;
            b.iter(|| {
                handle.record(Time::from_millis(t), Category::Solver, "bench", |e| {
                    e.u64("i", t).f64("x", 0.5).str("tag", "payload");
                });
                t += 1;
            });
        });
    }
    group.finish();

    let handle = TraceHandle::new(TraceConfig::debug());
    for t in 0..10_000u64 {
        handle.record(Time::from_millis(t), Category::Mac, "tti", |e| {
            e.u64("rbs", 50).u64("sched", 8).u64("flows", 8);
        });
    }
    c.bench_function("trace_export_jsonl_10k", |b| {
        b.iter(|| black_box(handle.to_jsonl()))
    });
}

criterion_group!(benches, bench_tti, bench_solve, bench_record_export);
criterion_main!(benches);
