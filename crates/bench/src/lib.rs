//! Benchmark harness for the FLARE reproduction.
//!
//! Two entry points:
//!
//! * the **`repro` binary** (`cargo run --release -p flare-bench --bin
//!   repro -- <experiment>`) regenerates every table and figure of the
//!   paper's evaluation and prints the rows/series the paper reports;
//! * the **Criterion benches** (`cargo bench -p flare-bench`) measure the
//!   performance-sensitive components: the per-BAI solvers at the paper's
//!   32/64/128-client scale (Figure 9's workload), the per-TTI MAC
//!   schedulers, the throughput estimators, and a full-stack simulation
//!   slice per scheme.
//!
//! This library only hosts shared helpers for those targets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use flare_scenarios::experiments::ExperimentParams;
use flare_sim::TimeDelta;

/// Parses the common sizing flags used by `repro` and the benches:
/// `--quick`, `--runs N`, `--secs S`, `--seed K`, `--jobs N`.
///
/// Unrecognized arguments are returned for the caller to interpret.
pub fn parse_params(args: &[String]) -> (ExperimentParams, Vec<String>) {
    let mut params = ExperimentParams::paper();
    let mut jobs = None;
    let mut rest = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => {
                params = ExperimentParams::quick();
            }
            "--jobs" => {
                let v = it.next().expect("--jobs needs a value");
                jobs = Some(
                    v.parse()
                        .expect("--jobs must be an integer (0 = all cores)"),
                );
            }
            "--runs" => {
                let v = it.next().expect("--runs needs a value");
                params.runs = v.parse().expect("--runs must be an integer");
            }
            "--secs" => {
                let v = it.next().expect("--secs needs a value");
                let secs: u64 = v.parse().expect("--secs must be an integer");
                params.duration = TimeDelta::from_secs(secs);
                params.testbed_duration = TimeDelta::from_secs(secs);
            }
            "--seed" => {
                let v = it.next().expect("--seed needs a value");
                params.seed = v.parse().expect("--seed must be an integer");
            }
            other => rest.push(other.to_owned()),
        }
    }
    // `--quick` resets params, so the jobs override applies last.
    if let Some(jobs) = jobs {
        params.jobs = jobs;
    }
    (params, rest)
}

/// Fully parsed `repro` command line: sizing parameters, the optional
/// trace-export directory, and the experiment names.
#[derive(Debug, Clone)]
pub struct CliOptions {
    /// Experiment sizing (runs, durations, seed).
    pub params: ExperimentParams,
    /// Directory for per-experiment JSONL traces (`--trace DIR`), if any.
    pub trace_dir: Option<String>,
    /// Run the inline invariant battery on every simulation
    /// (`--check-invariants`): violations are recorded as trace events and
    /// abort the run.
    pub check_invariants: bool,
    /// Remaining positional arguments (experiment names).
    pub rest: Vec<String>,
}

/// Parses the full `repro` command line: everything [`parse_params`]
/// accepts plus `--trace DIR` and `--check-invariants`.
pub fn parse_cli(args: &[String]) -> CliOptions {
    let (params, unparsed) = parse_params(args);
    let mut trace_dir = None;
    let mut check_invariants = false;
    let mut rest = Vec::new();
    let mut it = unparsed.into_iter();
    while let Some(arg) = it.next() {
        if arg == "--trace" {
            trace_dir = Some(it.next().expect("--trace needs a directory"));
        } else if arg == "--check-invariants" {
            check_invariants = true;
        } else {
            rest.push(arg);
        }
    }
    CliOptions {
        params,
        trace_dir,
        check_invariants,
        rest,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn defaults_are_paper_scale() {
        let (p, rest) = parse_params(&args(&["table1"]));
        assert_eq!(p.runs, 20);
        assert_eq!(rest, vec!["table1".to_owned()]);
    }

    #[test]
    fn quick_flag_shrinks() {
        let (p, _) = parse_params(&args(&["--quick", "fig6"]));
        assert_eq!(p.runs, 2);
    }

    #[test]
    fn explicit_overrides() {
        let (p, rest) = parse_params(&args(&[
            "--runs", "5", "--secs", "300", "--seed", "9", "all",
        ]));
        assert_eq!(p.runs, 5);
        assert_eq!(p.duration, TimeDelta::from_secs(300));
        assert_eq!(p.testbed_duration, TimeDelta::from_secs(300));
        assert_eq!(p.seed, 9);
        assert_eq!(rest, vec!["all".to_owned()]);
    }

    #[test]
    #[should_panic(expected = "--runs needs a value")]
    fn missing_value_panics() {
        let _ = parse_params(&args(&["--runs"]));
    }

    #[test]
    fn jobs_flag_overrides_quick() {
        let (p, rest) = parse_params(&args(&["--jobs", "4", "--quick", "fig6"]));
        assert_eq!(p.jobs, 4);
        assert_eq!(p.runs, 2, "--quick still applies");
        assert_eq!(rest, vec!["fig6".to_owned()]);
        let (p, _) = parse_params(&args(&["table1"]));
        assert_eq!(p.jobs, 1, "serial by default");
    }

    #[test]
    fn check_invariants_flag_is_extracted() {
        let cli = parse_cli(&args(&["--check-invariants", "--quick", "fig6"]));
        assert!(cli.check_invariants);
        assert_eq!(cli.rest, vec!["fig6".to_owned()]);
        assert!(!parse_cli(&args(&["fig6"])).check_invariants);
    }

    #[test]
    fn trace_flag_is_extracted() {
        let cli = parse_cli(&args(&["--quick", "--trace", "out", "fig6", "fig7"]));
        assert_eq!(cli.params.runs, 2);
        assert_eq!(cli.trace_dir.as_deref(), Some("out"));
        assert_eq!(cli.rest, vec!["fig6".to_owned(), "fig7".to_owned()]);
    }

    #[test]
    fn trace_flag_defaults_off() {
        let cli = parse_cli(&args(&["table1"]));
        assert!(cli.trace_dir.is_none());
        assert_eq!(cli.rest, vec!["table1".to_owned()]);
    }

    #[test]
    #[should_panic(expected = "--trace needs a directory")]
    fn trace_without_dir_panics() {
        let _ = parse_cli(&args(&["fig6", "--trace"]));
    }
}
