//! Regenerates the paper's tables and figures.
//!
//! ```text
//! repro [--quick] [--runs N] [--secs S] [--seed K] [--jobs N]
//!       [--check-invariants] [--trace DIR] <experiment>...
//!
//! experiments:
//!   table1 table2        testbed scenario summaries
//!   fig4 fig5            testbed time series
//!   fig6 fig7            cell-scenario CDFs (static / mobile)
//!   fig8                 exact vs relaxed solver
//!   fig9                 solver computation-time scaling
//!   fig10                video/data coexistence
//!   fig11 fig12          alpha / delta sweeps
//!   ablation             dual-enforcement ablation
//!   faults               control-plane loss/outage robustness sweep
//!   all                  everything above
//! ```
//!
//! With no sizing flags the paper's scale is used (20 runs × 1200 s cell
//! simulations — several minutes in release). `--quick` shrinks everything
//! for a smoke pass.
//!
//! `--jobs N` fans independent runs across N worker threads (0 = all
//! cores) with bit-identical results; `--check-invariants` runs the inline
//! invariant battery on every simulation and aborts on the first violation.
//!
//! `--trace DIR` additionally re-runs one representative configuration of
//! each requested experiment with a structured trace recorder attached and
//! writes `DIR/<experiment>.jsonl` (inspect it with `inspect --trace`).

use flare_bench::parse_cli;
use flare_scenarios::experiments::{
    ablation_diversity, ablation_dual_enforcement, ablation_static_partition, fig10, fig11, fig12,
    fig4, fig5, fig6, fig7, fig8, fig9, legacy_coexistence, table1, table2, ExperimentParams,
};
use flare_scenarios::faults::faults;

fn run_one(name: &str, p: ExperimentParams) -> bool {
    match name {
        "table1" => println!("{}", table1(p).render()),
        "table2" => println!("{}", table2(p).render()),
        "fig4" => println!("{}", fig4(p).render(30.0)),
        "fig5" => println!("{}", fig5(p).render(30.0)),
        "fig6" => println!("{}", fig6(p).render()),
        "fig7" => println!("{}", fig7(p).render()),
        "fig8" => println!("{}", fig8(p).render()),
        "fig9" => {
            // Figure 9 measures per-solve wall time; iterations scale with
            // the requested run count.
            println!("{}", fig9(p.runs.max(2) * 25, p.seed, p.jobs).render());
        }
        "fig10" => println!("{}", fig10(p).render()),
        "fig11" => println!("{}", fig11(p).render()),
        "fig12" => println!("{}", fig12(p).render()),
        "ablation" => println!("{}", ablation_dual_enforcement(p).render()),
        "partition" => println!("{}", ablation_static_partition(p).render()),
        "diversity" => println!("{}", ablation_diversity(p).render()),
        "legacy" => println!("{}", legacy_coexistence(p).render()),
        "faults" => println!("{}", faults(p).render()),
        _ => return false,
    }
    true
}

const ALL: &[&str] = &[
    "table1",
    "table2",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "ablation",
    "partition",
    "diversity",
    "legacy",
    "faults",
];

/// Writes the representative trace of `name` to `dir/<name>.jsonl`.
fn export_trace(dir: &str, name: &str, params: ExperimentParams) {
    let Some(artifact) = flare_scenarios::tracing::representative_trace(name, &params) else {
        return;
    };
    std::fs::create_dir_all(dir).expect("create trace directory");
    let path = std::path::Path::new(dir).join(format!("{name}.jsonl"));
    std::fs::write(&path, &artifact.jsonl).expect("write trace file");
    eprintln!(
        "trace: {} ({} events, {} scheme) -> {}",
        name,
        artifact.events,
        artifact.scheme,
        path.display()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = parse_cli(&args);
    let params = cli.params;
    flare_scenarios::set_default_check_invariants(cli.check_invariants);
    if cli.rest.is_empty() {
        eprintln!(
            "usage: repro [--quick] [--runs N] [--secs S] [--seed K] [--jobs N] \
             [--check-invariants] [--trace DIR] <experiment>...\n\
             experiments: {} all",
            ALL.join(" ")
        );
        std::process::exit(2);
    }
    for name in &cli.rest {
        if name == "all" {
            for exp in ALL {
                eprintln!("== running {exp} ==");
                run_one(exp, params);
                if let Some(dir) = &cli.trace_dir {
                    export_trace(dir, exp, params);
                }
            }
        } else if run_one(name, params) {
            if let Some(dir) = &cli.trace_dir {
                export_trace(dir, name, params);
            }
        } else {
            eprintln!("unknown experiment: {name}");
            std::process::exit(2);
        }
    }
}
