//! Regenerates the paper's tables and figures.
//!
//! ```text
//! repro [--quick] [--runs N] [--secs S] [--seed K] <experiment>...
//!
//! experiments:
//!   table1 table2        testbed scenario summaries
//!   fig4 fig5            testbed time series
//!   fig6 fig7            cell-scenario CDFs (static / mobile)
//!   fig8                 exact vs relaxed solver
//!   fig9                 solver computation-time scaling
//!   fig10                video/data coexistence
//!   fig11 fig12          alpha / delta sweeps
//!   ablation             dual-enforcement ablation
//!   faults               control-plane loss/outage robustness sweep
//!   all                  everything above
//! ```
//!
//! With no sizing flags the paper's scale is used (20 runs × 1200 s cell
//! simulations — several minutes in release). `--quick` shrinks everything
//! for a smoke pass.

use flare_bench::parse_params;
use flare_scenarios::experiments::{
    ablation_diversity, ablation_dual_enforcement, ablation_static_partition, fig10, fig11, fig12,
    fig4, fig5, fig6, fig7, fig8, fig9, legacy_coexistence, table1, table2, ExperimentParams,
};
use flare_scenarios::faults::faults;

fn run_one(name: &str, p: ExperimentParams) -> bool {
    match name {
        "table1" => println!("{}", table1(p).render()),
        "table2" => println!("{}", table2(p).render()),
        "fig4" => println!("{}", fig4(p).render(30.0)),
        "fig5" => println!("{}", fig5(p).render(30.0)),
        "fig6" => println!("{}", fig6(p).render()),
        "fig7" => println!("{}", fig7(p).render()),
        "fig8" => println!("{}", fig8(p).render()),
        "fig9" => {
            // Figure 9 measures per-solve wall time; iterations scale with
            // the requested run count.
            println!("{}", fig9(p.runs.max(2) * 25, p.seed).render());
        }
        "fig10" => println!("{}", fig10(p).render()),
        "fig11" => println!("{}", fig11(p).render()),
        "fig12" => println!("{}", fig12(p).render()),
        "ablation" => println!("{}", ablation_dual_enforcement(p).render()),
        "partition" => println!("{}", ablation_static_partition(p).render()),
        "diversity" => println!("{}", ablation_diversity(p).render()),
        "legacy" => println!("{}", legacy_coexistence(p).render()),
        "faults" => println!("{}", faults(p).render()),
        _ => return false,
    }
    true
}

const ALL: &[&str] = &[
    "table1",
    "table2",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "ablation",
    "partition",
    "diversity",
    "legacy",
    "faults",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (params, rest) = parse_params(&args);
    if rest.is_empty() {
        eprintln!(
            "usage: repro [--quick] [--runs N] [--secs S] [--seed K] <experiment>...\n\
             experiments: {} all",
            ALL.join(" ")
        );
        std::process::exit(2);
    }
    for name in &rest {
        if name == "all" {
            for exp in ALL {
                eprintln!("== running {exp} ==");
                run_one(exp, params);
            }
        } else if !run_one(name, params) {
            eprintln!("unknown experiment: {name}");
            std::process::exit(2);
        }
    }
}
