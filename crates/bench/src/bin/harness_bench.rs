//! Measures the parallel-execution harness and records the result.
//!
//! ```text
//! harness_bench [--runs N] [--secs S] [--seed K] [--jobs N] [OUT.json]
//! ```
//!
//! Runs the same batch of independent cell simulations twice — serially and
//! on `--jobs` worker threads (default 4) — verifies the per-run JSONL
//! traces are byte-identical, and writes the measured wall-clock times to
//! `OUT.json` (default `BENCH_harness.json`). The speedup is whatever the
//! machine actually delivers: on a single-core container it is ~1x, and the
//! file records the core count so readers can interpret the number.

use std::time::Instant;

use flare_bench::parse_params;
use flare_harness::{effective_jobs, run_indexed, serial_parallel_divergence};
use flare_scenarios::cell::static_run;
use flare_scenarios::SchemeKind;
use flare_trace::{TraceConfig, TraceHandle};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (mut params, rest) = parse_params(&args);
    if params.runs == 20 {
        // Paper-scale defaults are oversized for a harness benchmark.
        params.runs = 8;
        params.duration = flare_sim::TimeDelta::from_secs(120);
    }
    let jobs = if params.jobs <= 1 { 4 } else { params.jobs };
    let out = rest
        .first()
        .cloned()
        .unwrap_or_else(|| "BENCH_harness.json".to_owned());

    let scheme = || SchemeKind::Flare(flare_core::FlareConfig::default());
    let run = |i: usize| static_run(scheme(), params.seed + i as u64, params.duration);
    // Trace-level determinism check: each job builds its own recorder and
    // simulation, so serial and parallel executions must produce the same
    // JSONL byte-for-byte.
    let traced = |i: usize| {
        let trace = TraceHandle::new(TraceConfig::info());
        let mut config = flare_scenarios::cell::cell_config(
            scheme(),
            flare_scenarios::ChannelKind::Static { itbs: 10 },
            4,
            0,
            params.seed + i as u64,
            flare_sim::TimeDelta::from_secs(60),
        );
        config.trace = trace.clone();
        let _ = flare_scenarios::CellSim::new(config).run();
        trace.to_jsonl()
    };
    let divergence = serial_parallel_divergence(params.runs, jobs, traced);
    assert!(
        divergence.is_none(),
        "serial/parallel trace divergence at run {divergence:?}"
    );

    let started = Instant::now();
    let serial = run_indexed(params.runs, 1, run);
    let serial_ms = started.elapsed().as_secs_f64() * 1000.0;
    let started = Instant::now();
    let parallel = run_indexed(params.runs, jobs, run);
    let parallel_ms = started.elapsed().as_secs_f64() * 1000.0;
    assert_eq!(serial.len(), parallel.len());
    for (a, b) in serial.iter().zip(&parallel) {
        for (va, vb) in a.videos.iter().zip(&b.videos) {
            assert_eq!(
                va.rate_series.points(),
                vb.rate_series.points(),
                "parallel run diverged from serial"
            );
        }
    }

    let cores = effective_jobs(0);
    let speedup = serial_ms / parallel_ms.max(1e-9);
    let json = format!(
        "{{\n  \"benchmark\": \"flare-harness parallel sweep\",\n  \
         \"cores\": {cores},\n  \"jobs\": {jobs},\n  \"runs\": {},\n  \
         \"run_secs\": {},\n  \"seed\": {},\n  \
         \"serial_ms\": {serial_ms:.1},\n  \"parallel_ms\": {parallel_ms:.1},\n  \
         \"speedup\": {speedup:.2},\n  \"traces_identical\": true\n}}\n",
        params.runs,
        params.duration.as_millis() / 1000,
        params.seed,
    );
    std::fs::write(&out, &json).expect("write benchmark file");
    println!("{json}");
    eprintln!("wrote {out}");
}
