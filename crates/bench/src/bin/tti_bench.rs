//! Measures end-to-end TTI throughput on the fig6 workload and records it.
//!
//! ```text
//! tti_bench [--runs N] [--secs S] [--seed K] [--jobs J]
//!           [--baseline TTIS_PER_SEC] [--floor TTIS_PER_SEC]
//!           [--cells N] [--cell-secs S] [OUT.json]
//! ```
//!
//! The workload is the paper's fig6 static-cell scenario (8 stationary
//! video UEs under FLARE), run serially: every simulated millisecond is one
//! `step_tti` plus the full player/controller loop around it, so the number
//! is an honest end-to-end TTI rate, not a scheduler microbenchmark.
//!
//! * `--baseline X` embeds a previously measured TTIs/sec (e.g. from running
//!   this binary at the pre-optimization commit) so the output records both
//!   sides of a before/after comparison.
//! * `--floor X` exits non-zero when the measured rate falls below `X` —
//!   the CI perf-smoke gate.
//! * `--cells N` additionally runs N cells of `--cell-secs` seconds through
//!   the sharded `MultiCellSim` engine (`--jobs` workers, BAI-barrier
//!   coordination) and records the aggregate rate — the multi-cell scaling
//!   demonstration. See `multicell_bench` for the full serial-vs-sharded
//!   comparison.
//!
//! Before measuring, the fig6 run is executed twice at a short duration and
//! the per-client rate series are compared, so the file never reports a
//! speed for a simulation that lost determinism.

use std::time::Instant;

use flare_bench::parse_params;
use flare_core::FlareConfig;
use flare_scenarios::cell::static_run;
use flare_scenarios::scaling::multi_cell_sweep;
use flare_scenarios::SchemeKind;
use flare_sim::TimeDelta;

fn scheme() -> SchemeKind {
    SchemeKind::Flare(FlareConfig::default())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (mut params, rest) = parse_params(&args);
    if params.runs == 20 {
        // Paper-scale defaults are oversized for a TTI throughput probe.
        params.runs = 4;
        params.duration = TimeDelta::from_secs(30);
    }

    let mut baseline: Option<f64> = None;
    let mut floor: Option<f64> = None;
    let mut cells: Option<usize> = None;
    let mut cell_secs: u64 = 120;
    let mut out = "BENCH_tti.json".to_owned();
    let mut it = rest.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--baseline" => {
                let v = it.next().expect("--baseline needs a TTIs/sec value");
                baseline = Some(v.parse().expect("--baseline must be a number"));
            }
            "--floor" => {
                let v = it.next().expect("--floor needs a TTIs/sec value");
                floor = Some(v.parse().expect("--floor must be a number"));
            }
            "--cells" => {
                let v = it.next().expect("--cells needs a value");
                cells = Some(v.parse().expect("--cells must be an integer"));
            }
            "--cell-secs" => {
                let v = it.next().expect("--cell-secs needs a value");
                cell_secs = v.parse().expect("--cell-secs must be an integer");
            }
            other => out = other.to_owned(),
        }
    }

    // Determinism gate: a fast simulation that drifts between reruns would
    // make the golden traces lie, so refuse to report a rate for one.
    let check = TimeDelta::from_secs(10);
    let a = static_run(scheme(), params.seed, check);
    let b = static_run(scheme(), params.seed, check);
    for (va, vb) in a.videos.iter().zip(&b.videos) {
        assert_eq!(
            va.rate_series.points(),
            vb.rate_series.points(),
            "fig6 run is not deterministic; refusing to benchmark"
        );
    }

    // Warm-up run (page in code, size caches), then the measured runs.
    let _ = static_run(scheme(), params.seed, params.duration);
    let started = Instant::now();
    for i in 0..params.runs {
        let r = static_run(scheme(), params.seed + i as u64, params.duration);
        assert!(!r.videos.is_empty(), "fig6 run must simulate its clients");
    }
    let wall = started.elapsed();
    let ttis = params.runs as u64 * params.duration.as_millis();
    let ttis_per_sec = ttis as f64 / wall.as_secs_f64().max(1e-9);

    let sweep = cells.map(|n| {
        multi_cell_sweep(
            n,
            TimeDelta::from_secs(cell_secs),
            params.seed,
            params.jobs.max(1),
        )
    });

    let mut json = format!(
        "{{\n  \"benchmark\": \"fig6 end-to-end TTI throughput\",\n  \
         \"workload\": \"static cell, FLARE, 8 video UEs, serial\",\n  \
         \"runs\": {},\n  \"run_secs\": {},\n  \"seed\": {},\n  \
         \"ttis\": {ttis},\n  \"wall_ms\": {:.1},\n  \
         \"ttis_per_sec\": {ttis_per_sec:.0},\n  \"deterministic\": true",
        params.runs,
        params.duration.as_millis() / 1000,
        params.seed,
        wall.as_secs_f64() * 1000.0,
    );
    if let Some(base) = baseline {
        let speedup = ttis_per_sec / base.max(1e-9);
        json.push_str(&format!(
            ",\n  \"baseline_ttis_per_sec\": {base:.0},\n  \"speedup\": {speedup:.2}"
        ));
    }
    if let Some(s) = &sweep {
        json.push_str(&format!(
            ",\n  \"multicell\": {{\n    \"cells\": {},\n    \"cell_secs\": {},\n    \
             \"jobs\": {},\n    \"coordinated\": {},\n    \"bai_barriers\": {},\n    \
             \"wall_ms\": {:.1},\n    \"ttis\": {},\n    \
             \"ttis_per_sec\": {:.0}\n  }}",
            s.cells,
            s.duration.as_millis() / 1000,
            s.jobs,
            s.coordinated,
            s.barriers,
            s.wall.as_secs_f64() * 1000.0,
            s.ttis,
            s.ttis_per_sec(),
        ));
    }
    json.push_str("\n}\n");
    std::fs::write(&out, &json).expect("write benchmark file");
    println!("{json}");
    eprintln!("wrote {out}");

    if let Some(min) = floor {
        assert!(
            ttis_per_sec >= min,
            "TTI throughput regressed: {ttis_per_sec:.0} TTIs/sec < floor {min:.0}"
        );
    }
}
