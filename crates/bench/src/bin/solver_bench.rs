//! Cold-vs-warm solver scaling benchmark.
//!
//! ```text
//! solver_bench [--quick] [--seed K] [OUT.json]
//! ```
//!
//! Runs the per-BAI exact solve over consecutive synthetic BAI sequences
//! (`synthetic_problem_sequence`: low inter-BAI churn, as a real cell
//! produces) at 32 to 512 clients, cold (`solve_discrete` from scratch
//! every BAI) and warm ([`WarmSolver`] carrying utility tables and the
//! last solution across BAIs). All timing is serial on the calling thread
//! — the same no-contention rule as `measure_solve_times`.
//!
//! Every warm solution is asserted bit-identical to the cold one before a
//! single number is reported (levels, `steps`, and the f64 bit patterns of
//! `r` and the objective), so the file can never contain a speedup bought
//! with drift.

use std::time::{Duration, Instant};

use flare_bench::parse_params;
use flare_scenarios::scaling::{as_millis, synthetic_problem_sequence};
use flare_solver::{solve_discrete, WarmSolver};

fn total_ms(times: &[Duration]) -> f64 {
    as_millis(times).iter().sum()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (params, rest) = parse_params(&args);
    let quick = args.iter().any(|a| a == "--quick");
    let mut out = "BENCH_solver.json".to_owned();
    for arg in rest {
        out = arg;
    }

    let seed = params.seed;
    let n_bais = if quick { 6 } else { 24 };
    // Between consecutive 10 s BAIs only a minority of channels move enough
    // to change a flow's RB cost; 20% churn is deliberately pessimistic.
    let churn = 0.2;
    let sizes: &[usize] = if quick {
        &[32, 256]
    } else {
        &[32, 64, 128, 256, 512]
    };

    let mut rows = Vec::new();
    for &n in sizes {
        eprintln!("{n} clients x {n_bais} BAIs (churn {churn}) ...");
        let specs = synthetic_problem_sequence(n, n_bais, seed, churn);

        // Cold: every BAI pays the full ascent from level 0.
        let mut cold_times = Vec::with_capacity(n_bais);
        let mut cold_solutions = Vec::with_capacity(n_bais);
        for spec in &specs {
            let started = Instant::now();
            let sol = solve_discrete(spec);
            cold_times.push(started.elapsed());
            cold_solutions.push(sol);
        }

        // Warm: tables and the previous solution carry across BAIs.
        let mut warm = WarmSolver::new();
        let mut warm_times = Vec::with_capacity(n_bais);
        for (i, spec) in specs.iter().enumerate() {
            // The clone stands in for the spec the server would build and
            // hand over; it stays outside the timed region.
            let owned = spec.clone();
            let started = Instant::now();
            let sol = warm.solve(owned);
            warm_times.push(started.elapsed());
            let cold = &cold_solutions[i];
            assert!(
                sol.levels == cold.levels
                    && sol.steps == cold.steps
                    && sol.r.to_bits() == cold.r.to_bits()
                    && sol.objective.to_bits() == cold.objective.to_bits(),
                "warm solve {i} at {n} clients deviates from cold; refusing to benchmark"
            );
        }

        let cold_ms = total_ms(&cold_times);
        let warm_ms = total_ms(&warm_times);
        rows.push(format!(
            "    {{ \"clients\": {n}, \"bais\": {n_bais}, \"cold_total_ms\": {cold_ms:.3}, \
             \"warm_total_ms\": {warm_ms:.3}, \"speedup\": {:.2}, \"warm_hits\": {}, \
             \"reseeded_flows\": {}, \"flow_slots\": {} }}",
            cold_ms / warm_ms.max(1e-9),
            warm.hits(),
            warm.reseeded_flows(),
            n * n_bais,
        ));
    }

    let json = format!(
        "{{\n  \"benchmark\": \"per-BAI exact solve, cold vs warm-start\",\n  \
         \"workload\": \"synthetic consecutive-BAI sequences, churn {churn}, serial timing\",\n  \
         \"seed\": {seed},\n  \"bit_identical\": true,\n  \"sizes\": [\n{}\n  ]\n}}\n",
        rows.join(",\n"),
    );
    std::fs::write(&out, &json).expect("write benchmark file");
    println!("{json}");
    eprintln!("wrote {out}");
}
