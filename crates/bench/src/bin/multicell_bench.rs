//! Serial-vs-sharded multi-cell scaling benchmark.
//!
//! ```text
//! multicell_bench [--quick] [--seed K] [--secs S] [OUT.json]
//! ```
//!
//! Compares the pre-existing serial path (sequential `CellSim::run`, one
//! cell after another) against the sharded [`MultiCellSim`] engine at 1, 2,
//! 4, and 8 workers, on 32-cell and 128-cell fleets of the fig6 static
//! workload (8 stationary video UEs under FLARE, 120 s per cell by
//! default; `--quick` shrinks both fleets and the duration for smoke use).
//!
//! Before timing anything, the determinism contract is re-proven on a
//! short traced fleet and the benchmark **refuses to report** otherwise
//! (the same pattern as `tti_bench`):
//!
//! 1. two same-seed 8-worker sharded runs must produce bit-identical
//!    per-cell JSONL traces, and
//! 2. the sharded traces must be byte-equal to a one-shard serial run.
//!
//! Honesty note: speedup is bounded by the physical cores of the host; the
//! output records `host_cores` so a reader can tell an engine limit from a
//! machine limit.

use flare_core::FlareConfig;
use flare_lte::mobility::MobilityConfig;
use flare_scenarios::cell::cell_config;
use flare_scenarios::scaling::{multi_cell_sweep, multi_cell_sweep_uncoordinated};
use flare_scenarios::{ChannelKind, MultiCellSim, SchemeKind, SimConfig};
use flare_sim::TimeDelta;

use flare_bench::parse_params;

/// The same per-cell shape the scaling sweeps simulate: fig6, seeded per
/// cell.
fn fleet_cell(seed: u64, cell: usize, secs: u64) -> SimConfig {
    cell_config(
        SchemeKind::Flare(FlareConfig::default()),
        ChannelKind::StationaryRandom(MobilityConfig::default()),
        8,
        0,
        seed + cell as u64,
        TimeDelta::from_secs(secs),
    )
}

/// Per-cell JSONL traces of a short fleet run at the given worker count.
fn traced_fleet(cells: usize, jobs: usize, seed: u64, secs: u64) -> Vec<String> {
    let outcome = MultiCellSim::new(cells, jobs, true, move |i| fleet_cell(seed, i, secs)).run();
    outcome
        .traces
        .into_iter()
        .map(|t| t.expect("tracing was requested"))
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (params, rest) = parse_params(&args);
    let quick = args.iter().any(|a| a == "--quick");
    let mut out = "BENCH_multicell.json".to_owned();
    for arg in rest {
        out = arg;
    }

    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let seed = params.seed;
    // The acceptance shape: 32 cells at 8 workers. Quick mode keeps the
    // cell count (the contract is about fan-out, not duration) but shrinks
    // the traced window.
    let gate_cells = 32;
    let gate_secs = if quick { 10 } else { 20 };

    eprintln!("determinism gate: {gate_cells} cells, {gate_secs} s, 8 workers, traced ...");
    let first = traced_fleet(gate_cells, 8, seed, gate_secs);
    let second = traced_fleet(gate_cells, 8, seed, gate_secs);
    assert_eq!(
        first, second,
        "two same-seed sharded runs diverged; refusing to benchmark"
    );
    let serial = traced_fleet(gate_cells, 1, seed, gate_secs);
    assert_eq!(
        first, serial,
        "sharded traces deviate from the serial path; refusing to benchmark"
    );
    eprintln!("determinism gate: ok ({gate_cells} bit-identical per-cell traces)");

    let fleets: &[(usize, u64)] = if quick {
        &[(8, 10), (16, 10)]
    } else {
        &[(32, 120), (128, 120)]
    };
    const JOBS: [usize; 4] = [1, 2, 4, 8];

    let mut fleet_json = Vec::new();
    for &(cells, secs) in fleets {
        let duration = TimeDelta::from_secs(secs);
        eprintln!("fleet {cells} x {secs} s: serial baseline ...");
        let base = multi_cell_sweep_uncoordinated(cells, duration, seed, 1);
        let mut sharded_json = Vec::new();
        for jobs in JOBS {
            eprintln!("fleet {cells} x {secs} s: sharded, {jobs} worker(s) ...");
            let s = multi_cell_sweep(cells, duration, seed, jobs);
            let speedup = base.wall.as_secs_f64() / s.wall.as_secs_f64().max(1e-9);
            sharded_json.push(format!(
                "        {{ \"jobs\": {jobs}, \"bai_barriers\": {}, \"wall_ms\": {:.1}, \
                 \"ttis_per_sec\": {:.0}, \"speedup_vs_serial\": {speedup:.2} }}",
                s.barriers,
                s.wall.as_secs_f64() * 1000.0,
                s.ttis_per_sec(),
            ));
        }
        fleet_json.push(format!(
            "    {{\n      \"cells\": {cells},\n      \"cell_secs\": {secs},\n      \
             \"ttis\": {},\n      \"serial\": {{ \"wall_ms\": {:.1}, \"ttis_per_sec\": {:.0} }},\n      \
             \"sharded\": [\n{}\n      ]\n    }}",
            base.ttis,
            base.wall.as_secs_f64() * 1000.0,
            base.ttis_per_sec(),
            sharded_json.join(",\n"),
        ));
    }

    let json = format!(
        "{{\n  \"benchmark\": \"multi-cell serial vs sharded (BAI-barrier) scaling\",\n  \
         \"workload\": \"fig6 static cell per shard: FLARE, 8 video UEs\",\n  \
         \"seed\": {seed},\n  \"host_cores\": {host_cores},\n  \
         \"note\": \"speedup_vs_serial is bounded by host_cores; on a 1-core host the \
         sharded engine can only demonstrate overhead, not parallel speedup\",\n  \
         \"determinism\": {{\n    \"gate_cells\": {gate_cells},\n    \"gate_secs\": {gate_secs},\n    \
         \"same_seed_sharded_bit_identical\": true,\n    \
         \"sharded_matches_serial_traces\": true\n  }},\n  \
         \"fleets\": [\n{}\n  ]\n}}\n",
        fleet_json.join(",\n"),
    );
    std::fs::write(&out, &json).expect("write benchmark file");
    println!("{json}");
    eprintln!("wrote {out}");
}
