//! Diagnostic: trace one FLARE cell run BAI by BAI.
//!
//! ```text
//! cargo run --release -p flare-bench --bin inspect -- [static|mobile] [secs]
//! ```

use flare_core::{ClientInfo, FlareConfig, OneApiServer};
use flare_has::BitrateLadder;
use flare_lte::channel::{ChannelModel, StaticChannel};
use flare_lte::mobility::{snr_to_itbs, MobilityChannel, MobilityConfig, Position};
use flare_lte::scheduler::PrioritySetScheduler;
use flare_lte::{CellConfig, ENodeB, FlowClass};
use flare_sim::rng::{standard_normal, stream};
use flare_sim::units::ByteCount;
use flare_sim::Time;
use rand::Rng;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mobile = args.first().map(String::as_str) == Some("mobile");
    let secs: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(300);
    let seed = 1;
    let n_video = 8;

    let mc = MobilityConfig::default();
    let mut enb = ENodeB::new(
        CellConfig::default(),
        Box::new(PrioritySetScheduler::default()),
    );
    let mut flows = Vec::new();
    for ue in 0..n_video {
        let ch: Box<dyn ChannelModel> = if mobile {
            Box::new(MobilityChannel::new(
                mc.clone(),
                stream(seed, "walk", ue),
                stream(seed, "fade", ue),
            ))
        } else {
            let mut rng = stream(seed, "position", ue);
            let pos = Position {
                x: rng.gen::<f64>() * mc.area.0,
                y: rng.gen::<f64>() * mc.area.1,
            };
            let enb_pos = Position {
                x: 1000.0,
                y: 1000.0,
            };
            let shadow = standard_normal(&mut rng) * mc.propagation.shadowing_sigma_db;
            let snr = mc.propagation.mean_snr_db(pos.distance_to(enb_pos)) + shadow;
            Box::new(StaticChannel::new(snr_to_itbs(snr)))
        };
        flows.push(enb.add_flow(FlowClass::Video, ch));
    }

    let ladder = BitrateLadder::simulation();
    let mut server = OneApiServer::new(FlareConfig::default());
    for &f in &flows {
        server.register_video(ClientInfo::new(f, ladder.clone()));
    }
    // Keep every flow fully backlogged so the MAC statistics reflect pure
    // channel capability (isolates the solver from player pacing).
    for &f in &flows {
        enb.push_backlog(f, ByteCount::new(u64::MAX / 4));
    }

    for bai in 0..secs / 10 {
        for ms in bai * 10_000..(bai + 1) * 10_000 {
            enb.step_tti(Time::from_millis(ms));
        }
        let report = enb.take_report(Time::from_millis((bai + 1) * 10_000));
        let la = enb.link_adaptation().clone();
        let assignments = server.assign(&report, &la, 50);
        let levels: Vec<usize> = assignments.iter().map(|a| a.level.index()).collect();
        let itbs: Vec<u8> = report.flows.iter().map(|f| f.itbs.index()).collect();
        let eff: Vec<i64> = report
            .flows
            .iter()
            .map(|f| f.bytes_per_rb().map(|b| (b * 8.0) as i64).unwrap_or(-1))
            .collect();
        let total_rbs = report.total_rbs();
        for a in assignments {
            enb.set_gbr(a.flow, Some(a.rate));
        }
        println!("bai {bai:>3}: levels {levels:?} itbs {itbs:?} bits/rb {eff:?} rbs {total_rbs}");
    }
}
