//! Trace inspector: digest a recorded structured trace, or run one traced
//! FLARE cell scenario live and digest that.
//!
//! ```text
//! inspect [static|mobile] [secs] [--emit FILE]   run live, digest the trace
//! inspect --trace FILE                           digest a recorded JSONL trace
//! ```
//!
//! The digest shows per-category event counts, the solver's BAI-by-BAI
//! timeline (chosen `r`, search steps, objective), and — for live runs —
//! the end-of-run registry summary. Recorded traces come from
//! `repro --trace DIR` or [`flare_trace::TraceHandle::to_jsonl`].

use std::collections::BTreeMap;

use flare_scenarios::experiments::ExperimentParams;
use flare_scenarios::tracing::representative_trace;
use flare_sim::TimeDelta;
use flare_trace::{Category, TraceEvent, Value};

/// Prints per-category/event counts and the solver timeline.
fn digest(events: &[TraceEvent]) {
    if events.is_empty() {
        println!("trace is empty");
        return;
    }
    let first = events.first().expect("non-empty").time_ms;
    let last = events.last().expect("non-empty").time_ms;
    println!(
        "{} events spanning {:.1} s of simulated time",
        events.len(),
        (last.saturating_sub(first)) as f64 / 1000.0
    );

    let mut counts: BTreeMap<(&str, &str), usize> = BTreeMap::new();
    for ev in events {
        *counts.entry((ev.category.as_str(), &ev.name)).or_default() += 1;
    }
    println!("\nevent counts:");
    for ((cat, name), n) in &counts {
        println!("  {cat:>8}/{name:<16} {n:>8}");
    }

    let solves: Vec<&TraceEvent> = events
        .iter()
        .filter(|e| e.category == Category::Solver && e.name == "solve")
        .collect();
    if !solves.is_empty() {
        println!("\nsolver timeline (one line per BAI):");
        for ev in solves {
            let field = |k: &str| {
                ev.field(k)
                    .map_or_else(|| "-".to_owned(), |v: &Value| v.to_string())
            };
            println!(
                "  t={:>7.1}s clients={} r={} steps={} mode={} objective={}",
                ev.time_ms as f64 / 1000.0,
                field("clients"),
                field("r"),
                field("steps"),
                field("mode"),
                field("objective"),
            );
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    // Replay mode: digest a recorded trace file.
    if let Some(pos) = args.iter().position(|a| a == "--trace") {
        let path = args.get(pos + 1).expect("--trace needs a file");
        let text = std::fs::read_to_string(path).expect("read trace file");
        let events = match flare_trace::parse_jsonl(&text) {
            Ok(events) => events,
            Err(e) => {
                eprintln!("{path}: {e}");
                std::process::exit(1);
            }
        };
        println!("trace: {path}");
        digest(&events);
        return;
    }

    // Live mode: one representative traced cell run.
    let mobile = args.first().map(String::as_str) == Some("mobile");
    let secs: u64 = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(300);
    let emit = args
        .iter()
        .position(|a| a == "--emit")
        .map(|i| args.get(i + 1).expect("--emit needs a file").clone());

    let mut params = ExperimentParams::quick();
    params.duration = TimeDelta::from_secs(secs);
    params.testbed_duration = TimeDelta::from_secs(secs);
    let experiment = if mobile { "fig7" } else { "fig6" };
    let artifact =
        representative_trace(experiment, &params).expect("fig6/fig7 are always traceable");

    println!(
        "live {} run ({} s, scheme {})",
        if mobile { "mobile" } else { "static" },
        secs,
        artifact.scheme
    );
    let events = flare_trace::parse_jsonl(&artifact.jsonl).expect("own trace must parse");
    digest(&events);
    println!("\nregistry:\n{}", artifact.summary);

    if let Some(path) = emit {
        std::fs::write(&path, &artifact.jsonl).expect("write trace file");
        eprintln!("wrote {} events to {path}", artifact.events);
    }
}
