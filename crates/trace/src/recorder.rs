//! The trace recorder: bounded event ring + per-category levels/sampling.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;
use std::time::Instant;

use flare_sim::Time;

use crate::event::{Category, EventBuilder, TraceEvent, TraceLevel, CATEGORY_COUNT};
use crate::registry::{Registry, RegistrySnapshot};

/// Per-category recording configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CategoryConfig {
    /// Verbosity threshold for this category.
    pub level: TraceLevel,
    /// Record only every N-th sampled tick (see [`TraceHandle::tick`]).
    ///
    /// Only the MAC layer consults this today (one `tti` summary per
    /// `sample_every` TTIs); categories that never call `tick` ignore it.
    pub sample_every: u64,
}

impl Default for CategoryConfig {
    fn default() -> Self {
        CategoryConfig {
            level: TraceLevel::Off,
            sample_every: 1,
        }
    }
}

/// Configuration for a live [`TraceHandle`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceConfig {
    /// Maximum number of events kept in the ring; older events are evicted
    /// (and counted in [`TraceHandle::dropped_events`]) once full.
    pub capacity: usize,
    /// Per-category levels and sampling, indexed by [`Category::index`].
    pub categories: [CategoryConfig; CATEGORY_COUNT],
}

impl TraceConfig {
    /// Registry only: all event categories off, but counters/gauges/
    /// histograms still accumulate. This is what `scenarios::runner`
    /// attaches when the caller did not ask for a trace.
    pub fn registry_only() -> Self {
        TraceConfig {
            capacity: 1 << 16,
            categories: [CategoryConfig::default(); CATEGORY_COUNT],
        }
    }

    /// Info level everywhere; MAC TTI summaries sampled 1-in-1000 (one per
    /// second of simulated time) so long runs do not flood the ring.
    pub fn info() -> Self {
        Self::registry_only()
            .with_level(TraceLevel::Info)
            .with_sampling(Category::Mac, 1000)
    }

    /// Debug level everywhere; MAC sampled 1-in-100.
    pub fn debug() -> Self {
        Self::registry_only()
            .with_level(TraceLevel::Debug)
            .with_sampling(Category::Mac, 100)
    }

    /// Sets every category to `level`.
    pub fn with_level(mut self, level: TraceLevel) -> Self {
        for c in &mut self.categories {
            c.level = level;
        }
        self
    }

    /// Sets one category's level.
    pub fn with_category(mut self, cat: Category, level: TraceLevel) -> Self {
        self.categories[cat.index()].level = level;
        self
    }

    /// Sets one category's sampling stride (must be >= 1).
    pub fn with_sampling(mut self, cat: Category, every: u64) -> Self {
        assert!(every >= 1, "sampling stride must be >= 1");
        self.categories[cat.index()].sample_every = every;
        self
    }

    /// Sets the ring capacity.
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity >= 1, "ring capacity must be >= 1");
        self.capacity = capacity;
        self
    }
}

#[derive(Debug)]
struct RecorderState {
    ring: VecDeque<TraceEvent>,
    seq: u64,
    dropped: u64,
    ticks: [u64; CATEGORY_COUNT],
}

#[derive(Debug)]
struct Inner {
    config: TraceConfig,
    state: RefCell<RecorderState>,
    registry: Registry,
}

/// Cheap, cloneable handle to a shared trace recorder.
///
/// A handle is either *attached* to a recorder (all clones share the same
/// ring and registry via `Rc`) or *disabled* ([`TraceHandle::disabled`], the
/// `Default`), in which case every method is a near-no-op: one `Option`
/// discriminant check, no allocation, no interior mutability traffic. The
/// instrumented hot paths (TTI loop, solver) rely on this — see
/// `crates/bench/benches/trace.rs`.
///
/// Determinism: events carry simulation [`Time`] and a record-order sequence
/// number only. Wall-clock durations (from [`TraceHandle::span`] or
/// [`TraceHandle::observe`]) go exclusively into the registry, never into
/// events, so the same seed always produces a byte-identical JSONL trace.
#[derive(Debug, Clone, Default)]
pub struct TraceHandle {
    inner: Option<Rc<Inner>>,
}

impl TraceHandle {
    /// A permanently disabled handle; records nothing, costs ~nothing.
    pub fn disabled() -> Self {
        TraceHandle { inner: None }
    }

    /// Creates a live recorder with the given configuration.
    pub fn new(config: TraceConfig) -> Self {
        TraceHandle {
            inner: Some(Rc::new(Inner {
                state: RefCell::new(RecorderState {
                    ring: VecDeque::with_capacity(config.capacity.min(1 << 12)),
                    seq: 0,
                    dropped: 0,
                    ticks: [0; CATEGORY_COUNT],
                }),
                config,
                registry: Registry::default(),
            })),
        }
    }

    /// A recorder that keeps metrics but records no events.
    pub fn registry_only() -> Self {
        Self::new(TraceConfig::registry_only())
    }

    /// True if this handle is attached to a recorder (even a registry-only
    /// one); false for [`TraceHandle::disabled`].
    pub fn is_attached(&self) -> bool {
        self.inner.is_some()
    }

    /// True if `cat` records info-level events.
    pub fn enabled(&self, cat: Category) -> bool {
        match &self.inner {
            Some(inner) => inner.config.categories[cat.index()].level >= TraceLevel::Info,
            None => false,
        }
    }

    /// True if `cat` records debug-level events.
    pub fn debug_enabled(&self, cat: Category) -> bool {
        match &self.inner {
            Some(inner) => inner.config.categories[cat.index()].level >= TraceLevel::Debug,
            None => false,
        }
    }

    /// Advances `cat`'s sampling counter and reports whether this tick is
    /// selected (`true` every `sample_every`-th call, starting with the
    /// first). Returns `false` without counting when the category is off, so
    /// sampling depends only on enabled ticks and stays deterministic.
    pub fn tick(&self, cat: Category) -> bool {
        let Some(inner) = &self.inner else {
            return false;
        };
        let cfg = inner.config.categories[cat.index()];
        if cfg.level < TraceLevel::Info {
            return false;
        }
        let mut st = inner.state.borrow_mut();
        let t = st.ticks[cat.index()];
        st.ticks[cat.index()] = t + 1;
        t % cfg.sample_every == 0
    }

    /// Records an info-level event; `build` attaches the payload.
    ///
    /// The closure only runs when the category is enabled, so field
    /// formatting costs nothing on disabled handles.
    pub fn record<F>(&self, now: Time, cat: Category, name: &str, build: F)
    where
        F: FnOnce(&mut EventBuilder),
    {
        self.record_at(TraceLevel::Info, now, cat, name, build);
    }

    /// Records a debug-level event (per-grant / per-message detail).
    pub fn record_debug<F>(&self, now: Time, cat: Category, name: &str, build: F)
    where
        F: FnOnce(&mut EventBuilder),
    {
        self.record_at(TraceLevel::Debug, now, cat, name, build);
    }

    fn record_at<F>(&self, level: TraceLevel, now: Time, cat: Category, name: &str, build: F)
    where
        F: FnOnce(&mut EventBuilder),
    {
        let Some(inner) = &self.inner else { return };
        if inner.config.categories[cat.index()].level < level {
            return;
        }
        let mut builder = EventBuilder::default();
        build(&mut builder);
        let mut st = inner.state.borrow_mut();
        let seq = st.seq;
        st.seq += 1;
        st.ring.push_back(TraceEvent {
            time_ms: now.as_millis(),
            seq,
            category: cat,
            name: name.to_string(),
            fields: builder.fields,
        });
        if st.ring.len() > inner.config.capacity {
            st.ring.pop_front();
            st.dropped += 1;
        }
    }

    /// Increments a registry counter.
    pub fn incr(&self, name: &str, by: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.incr(name, by);
        }
    }

    /// Sets a registry gauge (last write wins).
    pub fn gauge(&self, name: &str, v: f64) {
        if let Some(inner) = &self.inner {
            inner.registry.gauge(name, v);
        }
    }

    /// Adds an observation to a registry histogram.
    pub fn observe(&self, name: &str, v: f64) {
        if let Some(inner) = &self.inner {
            inner.registry.observe(name, v);
        }
    }

    /// Starts a wall-clock span; on drop, the elapsed milliseconds are
    /// observed into the `name` histogram. Registry only — wall time never
    /// enters the event stream (it would break trace determinism).
    pub fn span(&self, name: &'static str) -> SpanGuard {
        SpanGuard {
            inner: self
                .inner
                .as_ref()
                .map(|i| (Rc::clone(i), name, Instant::now())),
        }
    }

    /// Copies out all buffered events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        match &self.inner {
            Some(inner) => inner.state.borrow().ring.iter().cloned().collect(),
            None => Vec::new(),
        }
    }

    /// Number of events currently buffered.
    pub fn event_count(&self) -> usize {
        match &self.inner {
            Some(inner) => inner.state.borrow().ring.len(),
            None => 0,
        }
    }

    /// Number of events evicted from the ring because it was full.
    pub fn dropped_events(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.state.borrow().dropped,
            None => 0,
        }
    }

    /// Snapshot of the metrics registry (empty for disabled handles).
    pub fn snapshot(&self) -> RegistrySnapshot {
        match &self.inner {
            Some(inner) => inner.registry.snapshot(),
            None => RegistrySnapshot::default(),
        }
    }

    /// Exports all buffered events as JSONL (one event per line).
    pub fn to_jsonl(&self) -> String {
        crate::export::to_jsonl(&self.events())
    }

    /// Exports all buffered events as CSV (header + one row per event).
    pub fn to_csv(&self) -> String {
        crate::export::to_csv(&self.events())
    }
}

/// RAII wall-clock timer returned by [`TraceHandle::span`].
#[derive(Debug)]
pub struct SpanGuard {
    inner: Option<(Rc<Inner>, &'static str, Instant)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((inner, name, started)) = self.inner.take() {
            inner
                .registry
                .observe(name, started.elapsed().as_secs_f64() * 1e3);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> Time {
        Time::from_millis(ms)
    }

    #[test]
    fn disabled_handle_is_inert() {
        let h = TraceHandle::disabled();
        h.record(t(1), Category::Mac, "tti", |e| {
            e.u64("rbs", 50);
        });
        h.incr("c", 1);
        h.observe("h", 1.0);
        assert!(!h.is_attached());
        assert!(!h.tick(Category::Mac));
        assert_eq!(h.event_count(), 0);
        assert!(h.snapshot().is_empty());
        assert_eq!(h.to_jsonl(), "");
    }

    #[test]
    fn registry_only_keeps_metrics_but_no_events() {
        let h = TraceHandle::registry_only();
        h.record(t(1), Category::Solver, "solve", |e| {
            e.u64("clients", 4);
        });
        h.incr("solver.solves", 1);
        assert!(h.is_attached());
        assert!(!h.enabled(Category::Solver));
        assert_eq!(h.event_count(), 0);
        assert_eq!(h.snapshot().counter("solver.solves"), 1);
    }

    #[test]
    fn levels_gate_debug_events() {
        let h = TraceHandle::new(TraceConfig::info());
        h.record(t(1), Category::Control, "drop", |_| {});
        h.record_debug(t(1), Category::Control, "sent", |_| {});
        assert_eq!(h.event_count(), 1);
        let h = TraceHandle::new(TraceConfig::debug());
        h.record_debug(t(1), Category::Control, "sent", |_| {});
        assert_eq!(h.event_count(), 1);
    }

    #[test]
    fn sampling_selects_every_nth_tick() {
        let h = TraceHandle::new(TraceConfig::info().with_sampling(Category::Mac, 3));
        let picks: Vec<bool> = (0..7).map(|_| h.tick(Category::Mac)).collect();
        assert_eq!(picks, [true, false, false, true, false, false, true]);
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let h = TraceHandle::new(TraceConfig::info().with_capacity(3));
        for i in 0..5u64 {
            h.record(t(i), Category::Player, "request", |e| {
                e.u64("segment", i);
            });
        }
        assert_eq!(h.event_count(), 3);
        assert_eq!(h.dropped_events(), 2);
        let evs = h.events();
        assert_eq!(evs[0].u64_field("segment"), Some(2));
        assert_eq!(evs[2].u64_field("segment"), Some(4));
        // seq keeps counting across evictions
        assert_eq!(evs[2].seq, 4);
    }

    #[test]
    fn clones_share_the_recorder() {
        let h = TraceHandle::new(TraceConfig::info());
        let h2 = h.clone();
        h2.record(t(5), Category::Plugin, "install", |e| {
            e.u64("ue", 0);
        });
        h2.incr("plugin.installs", 1);
        assert_eq!(h.event_count(), 1);
        assert_eq!(h.snapshot().counter("plugin.installs"), 1);
    }

    #[test]
    fn span_observes_wall_time_into_registry_only() {
        let h = TraceHandle::new(TraceConfig::info());
        {
            let _g = h.span("solver.wall_ms");
        }
        let s = h.snapshot();
        assert_eq!(s.histogram("solver.wall_ms").unwrap().count, 1);
        assert_eq!(h.event_count(), 0);
    }
}
