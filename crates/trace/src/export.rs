//! JSONL / CSV trace export and the matching JSONL parser.
//!
//! The vendored `serde` stand-in is a no-op, so serialization here is
//! hand-rolled. The format is deliberately tiny: each line is one flat JSON
//! object with four reserved keys —
//!
//! ```json
//! {"t":10000,"seq":42,"cat":"solver","ev":"solve","clients":8,"r":0.42}
//! ```
//!
//! `t` (sim-time ms), `seq` (record order), `cat` (category short name), and
//! `ev` (event name) come first; the event's payload fields follow in
//! insertion order. Because field order, number formatting, and escaping are
//! all deterministic functions of the recorded events, the same seed yields a
//! byte-identical file ([`parse_jsonl`] ∘ [`to_jsonl`] is the identity on
//! event lists).

use std::fmt;

use crate::event::{Category, TraceEvent, Value};

/// Formats an `f64` so that it always round-trips back to `F64`.
///
/// Integral values below 2^53 get a forced `.1` decimal (`"3.0"`); anything
/// else uses Rust's shortest round-trip form, falling back to exponent
/// notation when that form would look like an integer (e.g. `1e16`). The
/// parser classifies a number as `F64` iff it contains `.`, `e`, or `E`.
pub(crate) fn fmt_f64(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9e15 {
        format!("{v:.1}")
    } else {
        let s = format!("{v}");
        if s.contains('.') || s.contains('e') || s.contains('E') {
            s
        } else {
            format!("{v:e}")
        }
    }
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_value(out: &mut String, v: &Value) {
    match v {
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => out.push_str(&fmt_f64(*n)),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Str(s) => push_json_str(out, s),
    }
}

/// Serializes one event as a single JSON line (no trailing newline).
pub fn to_json_line(ev: &TraceEvent) -> String {
    let mut out = String::with_capacity(64 + ev.fields.len() * 16);
    out.push_str("{\"t\":");
    out.push_str(&ev.time_ms.to_string());
    out.push_str(",\"seq\":");
    out.push_str(&ev.seq.to_string());
    out.push_str(",\"cat\":");
    push_json_str(&mut out, ev.category.as_str());
    out.push_str(",\"ev\":");
    push_json_str(&mut out, &ev.name);
    for (k, v) in &ev.fields {
        out.push(',');
        push_json_str(&mut out, k);
        out.push(':');
        push_value(&mut out, v);
    }
    out.push('}');
    out
}

/// Serializes events as JSONL, one event per line, newline-terminated.
pub fn to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&to_json_line(ev));
        out.push('\n');
    }
    out
}

/// Serializes events as CSV with a fixed header; payload fields are packed
/// into one `fields` column as `k=v` pairs joined by `;`. Lossy for string
/// values containing the delimiters — use JSONL for round-trips.
pub fn to_csv(events: &[TraceEvent]) -> String {
    let mut out = String::from("time_ms,seq,category,event,fields\n");
    for ev in events {
        let fields = ev
            .fields
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(";");
        let quoted = fields
            .replace('"', "\"\"")
            .replace('\n', "\\n")
            .replace('\r', "\\r");
        out.push_str(&format!(
            "{},{},{},{},\"{}\"\n",
            ev.time_ms,
            ev.seq,
            ev.category.as_str(),
            ev.name,
            quoted
        ));
    }
    out
}

/// Error from [`parse_jsonl`], with the 1-based line number it occurred on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace parse error on line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a JSONL trace produced by [`to_jsonl`] back into events.
///
/// Accepts any flat JSON object per line (string/number/bool values, no
/// nesting); blank lines are skipped. Numbers with `.`/`e`/`E` parse as
/// `F64`, ones with a leading `-` as `I64`, the rest as `U64` (falling back
/// to `F64` on overflow).
pub fn parse_jsonl(input: &str) -> Result<Vec<TraceEvent>, ParseError> {
    let mut events = Vec::new();
    for (idx, line) in input.lines().enumerate() {
        let line_no = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        events.push(parse_line(line, line_no)?);
    }
    Ok(events)
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!(
                "expected {:?}, found {:?}",
                b as char,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn parse_string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("bad \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(self.err(format!("unknown escape \\{}", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Consume one full UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => {
                self.take_literal("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.take_literal("false")?;
                Ok(Value::Bool(false))
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(self.err(format!(
                "expected value, found {:?}",
                other.map(|c| c as char)
            ))),
        }
    }

    fn take_literal(&mut self, lit: &str) -> Result<(), ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(format!("expected literal {lit:?}")))
        }
    }

    fn parse_number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let is_float = text.contains(['.', 'e', 'E']);
        if !is_float {
            if let Some(rest) = text.strip_prefix('-') {
                if rest.parse::<i64>().is_ok() {
                    return Ok(Value::I64(text.parse().unwrap()));
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err(format!("invalid number {text:?}")))
    }
}

fn parse_line(line: &str, line_no: usize) -> Result<TraceEvent, ParseError> {
    let mut cur = Cursor {
        bytes: line.as_bytes(),
        pos: 0,
        line: line_no,
    };
    cur.skip_ws();
    cur.expect(b'{')?;
    let mut time_ms = None;
    let mut seq = None;
    let mut category = None;
    let mut name = None;
    let mut fields = Vec::new();
    loop {
        cur.skip_ws();
        if cur.peek() == Some(b'}') {
            cur.pos += 1;
            break;
        }
        let key = cur.parse_string()?;
        cur.skip_ws();
        cur.expect(b':')?;
        cur.skip_ws();
        let value = cur.parse_value()?;
        match key.as_str() {
            "t" => match value {
                Value::U64(v) => time_ms = Some(v),
                _ => return Err(cur.err("\"t\" must be an unsigned integer")),
            },
            "seq" => match value {
                Value::U64(v) => seq = Some(v),
                _ => return Err(cur.err("\"seq\" must be an unsigned integer")),
            },
            "cat" => match value {
                Value::Str(s) => {
                    category = Some(
                        Category::parse(&s)
                            .ok_or_else(|| cur.err(format!("unknown category {s:?}")))?,
                    )
                }
                _ => return Err(cur.err("\"cat\" must be a string")),
            },
            "ev" => match value {
                Value::Str(s) => name = Some(s),
                _ => return Err(cur.err("\"ev\" must be a string")),
            },
            _ => fields.push((key, value)),
        }
        cur.skip_ws();
        match cur.peek() {
            Some(b',') => {
                cur.pos += 1;
            }
            Some(b'}') => {
                cur.pos += 1;
                break;
            }
            other => {
                return Err(cur.err(format!(
                    "expected ',' or '}}', found {:?}",
                    other.map(|c| c as char)
                )))
            }
        }
    }
    cur.skip_ws();
    if cur.pos != cur.bytes.len() {
        return Err(cur.err("trailing garbage after object"));
    }
    Ok(TraceEvent {
        time_ms: time_ms.ok_or_else(|| cur.err("missing \"t\""))?,
        seq: seq.ok_or_else(|| cur.err("missing \"seq\""))?,
        category: category.ok_or_else(|| cur.err("missing \"cat\""))?,
        name: name.ok_or_else(|| cur.err("missing \"ev\""))?,
        fields,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventBuilder;

    fn sample_events() -> Vec<TraceEvent> {
        let mut b = EventBuilder::default();
        b.u64("clients", 8)
            .i64("delta", -3)
            .f64("r", 0.4251)
            .f64("whole", 2.0)
            .f64("big", 1.0e16)
            .bool("deferred", true)
            .str("mode", "exact")
            .str("odd", "a\"b\\c\nd\tires\u{1}");
        vec![
            TraceEvent {
                time_ms: 10_000,
                seq: 0,
                category: Category::Solver,
                name: "solve".into(),
                fields: b.fields,
            },
            TraceEvent {
                time_ms: 10_000,
                seq: 1,
                category: Category::Mac,
                name: "tti".into(),
                fields: vec![("rbs".into(), Value::U64(50))],
            },
        ]
    }

    #[test]
    fn jsonl_round_trips_exactly() {
        let events = sample_events();
        let text = to_jsonl(&events);
        let parsed = parse_jsonl(&text).unwrap();
        assert_eq!(parsed, events);
        // And re-serialization is byte-identical.
        assert_eq!(to_jsonl(&parsed), text);
    }

    #[test]
    fn float_formatting_preserves_type() {
        for v in [0.0, -0.5, 2.0, 123.456, 1e-9, 9.0e15, 1.0e16, 1.0e20, -3.0] {
            let s = fmt_f64(v);
            assert!(
                s.contains(['.', 'e', 'E']) || s.parse::<u64>().is_err(),
                "{v} formatted as {s} would reparse as an integer"
            );
            assert_eq!(s.parse::<f64>().unwrap(), v, "{v} -> {s}");
        }
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse_jsonl("not json").is_err());
        assert!(parse_jsonl("{\"t\":1}").is_err()); // missing seq/cat/ev
        assert!(parse_jsonl("{\"t\":1,\"seq\":0,\"cat\":\"nope\",\"ev\":\"x\"}").is_err());
        let err =
            parse_jsonl("{\"t\":1,\"seq\":0,\"cat\":\"mac\",\"ev\":\"x\"}\n{oops}").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn parse_skips_blank_lines() {
        let text = "\n{\"t\":1,\"seq\":0,\"cat\":\"mac\",\"ev\":\"tti\"}\n\n";
        assert_eq!(parse_jsonl(text).unwrap().len(), 1);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = to_csv(&sample_events());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("time_ms,seq,"));
        assert!(lines[1].contains("solver"));
        assert!(lines[2].contains("rbs=50"));
    }
}
