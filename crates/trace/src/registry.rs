//! Counters, gauges, and histograms keyed by dotted metric names.
//!
//! The registry is the *aggregate* side of the observability layer: unlike
//! the event ring it keeps no per-event data, so it is always cheap enough to
//! leave on (see [`TraceHandle::registry_only`](crate::TraceHandle::registry_only)).
//! Histograms use power-of-two buckets, so quantiles are approximate (the
//! reported quantile is the upper bound of the bucket containing it); counts,
//! sums, minima, and maxima are exact.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;

#[derive(Debug, Default)]
pub(crate) struct Registry {
    state: RefCell<RegistryState>,
}

#[derive(Debug, Default)]
struct RegistryState {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// Exact count/sum/min/max plus log2-bucketed distribution.
#[derive(Debug, Clone, Default, PartialEq)]
struct Histogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    /// Bucket key `k` holds values `v` with `ceil(log2(v)) == k`; values
    /// `<= 0` land in the sentinel bucket `i16::MIN`.
    buckets: BTreeMap<i16, u64>,
}

impl Histogram {
    fn observe(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
        let key = if v > 0.0 {
            v.log2()
                .ceil()
                .clamp(i16::MIN as f64 + 1.0, i16::MAX as f64) as i16
        } else {
            i16::MIN
        };
        *self.buckets.entry(key).or_insert(0) += 1;
    }

    /// Approximate quantile: the upper bound of the bucket holding rank
    /// `q * count`, clamped to the observed `[min, max]` range.
    fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (&k, &n) in &self.buckets {
            seen += n;
            if seen >= rank {
                let upper = if k == i16::MIN {
                    self.min
                } else {
                    2f64.powi(k as i32)
                };
                return upper.clamp(self.min, self.max);
            }
        }
        self.max
    }
}

impl Registry {
    // The update paths below look up with `&str` and only materialize the
    // key `String` on first touch: counters and histograms sit on per-TTI
    // hot paths (player requests/deliveries), and the steady-state
    // allocation gate in `tests/alloc.rs` counts them.

    pub(crate) fn incr(&self, name: &str, by: u64) {
        let mut st = self.state.borrow_mut();
        match st.counters.get_mut(name) {
            Some(v) => *v += by,
            None => {
                st.counters.insert(name.to_string(), by);
            }
        }
    }

    pub(crate) fn gauge(&self, name: &str, v: f64) {
        let mut st = self.state.borrow_mut();
        match st.gauges.get_mut(name) {
            Some(slot) => *slot = v,
            None => {
                st.gauges.insert(name.to_string(), v);
            }
        }
    }

    pub(crate) fn observe(&self, name: &str, v: f64) {
        let mut st = self.state.borrow_mut();
        match st.histograms.get_mut(name) {
            Some(h) => h.observe(v),
            None => {
                st.histograms
                    .entry(name.to_string())
                    .or_default()
                    .observe(v);
            }
        }
    }

    pub(crate) fn snapshot(&self) -> RegistrySnapshot {
        let st = self.state.borrow();
        RegistrySnapshot {
            counters: st.counters.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            gauges: st.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            histograms: st
                .histograms
                .iter()
                .map(|(k, h)| {
                    (
                        k.clone(),
                        HistogramSummary {
                            count: h.count,
                            sum: h.sum,
                            min: h.min,
                            max: h.max,
                            mean: if h.count == 0 {
                                0.0
                            } else {
                                h.sum / h.count as f64
                            },
                            p50: h.quantile(0.50),
                            p95: h.quantile(0.95),
                        },
                    )
                })
                .collect(),
        }
    }
}

/// Summary statistics for one histogram in a [`RegistrySnapshot`].
///
/// `p50`/`p95` are approximate (power-of-two bucket upper bounds); the other
/// fields are exact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: f64,
    /// Smallest observation (0 if empty).
    pub min: f64,
    /// Largest observation (0 if empty).
    pub max: f64,
    /// Exact mean (0 if empty).
    pub mean: f64,
    /// Approximate median.
    pub p50: f64,
    /// Approximate 95th percentile.
    pub p95: f64,
}

/// Point-in-time copy of the metrics registry, sorted by metric name.
///
/// This is what `scenarios::runner` attaches to each `RunResult` as the
/// end-of-run telemetry summary.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegistrySnapshot {
    /// Monotonic event counters, e.g. `control.dropped`.
    pub counters: Vec<(String, u64)>,
    /// Last-write-wins gauges, e.g. `mac.flows`.
    pub gauges: Vec<(String, f64)>,
    /// Distribution summaries, e.g. `solver.wall_ms`.
    pub histograms: Vec<(String, HistogramSummary)>,
}

impl RegistrySnapshot {
    /// Value of a counter, or 0 if it was never incremented.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Value of a gauge, if it was ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }

    /// Summary of a histogram, if it has any observations.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
    }

    /// True if the snapshot holds no metrics at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Renders the snapshot as an aligned plain-text block.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let width = self
            .counters
            .iter()
            .map(|(k, _)| k.len())
            .chain(self.gauges.iter().map(|(k, _)| k.len()))
            .chain(self.histograms.iter().map(|(k, _)| k.len()))
            .max()
            .unwrap_or(0)
            .max(20);
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (k, v) in &self.counters {
                let _ = writeln!(out, "  {k:<width$} {v}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (k, v) in &self.gauges {
                let _ = writeln!(out, "  {k:<width$} {v:.3}");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms (count / mean / p95 / max):\n");
            for (k, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {k:<width$} {} / {:.4} / {:.4} / {:.4}",
                    h.count, h.mean, h.p95, h.max
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let r = Registry::default();
        r.incr("a", 1);
        r.incr("a", 2);
        r.incr("b", 5);
        let s = r.snapshot();
        assert_eq!(s.counter("a"), 3);
        assert_eq!(s.counter("b"), 5);
        assert_eq!(s.counter("missing"), 0);
    }

    #[test]
    fn gauges_last_write_wins() {
        let r = Registry::default();
        r.gauge("g", 1.0);
        r.gauge("g", 2.5);
        assert_eq!(r.snapshot().gauge("g"), Some(2.5));
        assert_eq!(r.snapshot().gauge("missing"), None);
    }

    #[test]
    fn histogram_stats_exact_parts() {
        let r = Registry::default();
        for v in [1.0, 2.0, 3.0, 10.0] {
            r.observe("h", v);
        }
        let s = r.snapshot();
        let h = s.histogram("h").unwrap();
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 16.0);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 10.0);
        assert_eq!(h.mean, 4.0);
        // p95 lands in the bucket holding 10.0: (8, 16] -> upper 16, clamped to max.
        assert_eq!(h.p95, 10.0);
    }

    #[test]
    fn histogram_handles_zero_and_negative() {
        let r = Registry::default();
        r.observe("h", 0.0);
        r.observe("h", -5.0);
        r.observe("h", 4.0);
        let h = r.snapshot();
        let h = h.histogram("h").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.min, -5.0);
        assert_eq!(h.max, 4.0);
        assert_eq!(h.p50, -5.0); // sentinel bucket reports min
    }

    #[test]
    fn render_lists_everything() {
        let r = Registry::default();
        r.incr("c.x", 2);
        r.gauge("g.y", 1.5);
        r.observe("h.z", 3.0);
        let text = r.snapshot().render();
        assert!(text.contains("c.x"));
        assert!(text.contains("g.y"));
        assert!(text.contains("h.z"));
    }
}
