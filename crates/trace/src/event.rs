//! Structured trace events: categories, levels, values, and the builder.

use std::fmt;

/// The subsystem a trace event belongs to.
///
/// Categories are the unit of filtering: each one has an independent
/// [`TraceLevel`](crate::TraceLevel) and sampling stride in the recorder
/// configuration, so a run can e.g. keep per-TTI MAC events heavily sampled
/// while recording every solver round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Category {
    /// eNodeB MAC layer: TTI scheduling rounds and per-UE RB/TBS grants.
    Mac,
    /// OneAPI server: BAI solve rounds, per-flow assignments, evictions.
    Solver,
    /// Control plane: message lifecycle (sent/dropped/delayed/reordered/lost).
    Control,
    /// Client plugin: assignment installs, stale rejections, fallback mode.
    Plugin,
    /// HAS player: segment requests, completed downloads, stalls.
    Player,
    /// Rate enforcement at the eNodeB: GBR settings, lease grants/expiries.
    Enforce,
    /// Runtime invariant checking: one event per detected violation of the
    /// paper's feasibility constraints (RB conservation, (4a)/(4b), buffer
    /// non-negativity, monotone installs).
    Invariant,
}

/// Number of distinct categories (size of per-category config arrays).
pub const CATEGORY_COUNT: usize = 7;

/// All categories, in canonical order (matches [`Category::index`]).
pub const ALL_CATEGORIES: [Category; CATEGORY_COUNT] = [
    Category::Mac,
    Category::Solver,
    Category::Control,
    Category::Plugin,
    Category::Player,
    Category::Enforce,
    Category::Invariant,
];

impl Category {
    /// Dense index of this category, in `0..CATEGORY_COUNT`.
    pub const fn index(self) -> usize {
        match self {
            Category::Mac => 0,
            Category::Solver => 1,
            Category::Control => 2,
            Category::Plugin => 3,
            Category::Player => 4,
            Category::Enforce => 5,
            Category::Invariant => 6,
        }
    }

    /// Short lowercase name used in exports (`"mac"`, `"solver"`, ...).
    pub const fn as_str(self) -> &'static str {
        match self {
            Category::Mac => "mac",
            Category::Solver => "solver",
            Category::Control => "control",
            Category::Plugin => "plugin",
            Category::Player => "player",
            Category::Enforce => "enforce",
            Category::Invariant => "invariant",
        }
    }

    /// Parses the short name produced by [`Category::as_str`].
    pub fn parse(s: &str) -> Option<Category> {
        ALL_CATEGORIES.iter().copied().find(|c| c.as_str() == s)
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Verbosity threshold for a category.
///
/// `Off < Info < Debug`: a category set to `Info` records info-level events
/// and drops debug-level ones; `Off` records nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TraceLevel {
    /// Record nothing for this category.
    Off,
    /// Record summary events only (one per BAI / per sampled TTI).
    Info,
    /// Record everything, including per-grant and per-message detail.
    Debug,
}

/// A typed field value attached to a trace event.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer (counts, indices, milliseconds).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Finite floating-point number (rates, objectives).
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// Short string (mode names, link labels).
    Str(String),
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::U64(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => f.write_str(&crate::export::fmt_f64(*v)),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Str(v) => f.write_str(v),
        }
    }
}

/// One recorded trace event.
///
/// Events are totally ordered by `(time_ms, seq)`: `seq` is a global
/// monotonically increasing counter assigned at record time, so events at the
/// same simulation instant keep their emission order.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Simulation time of the event, in milliseconds (never wall clock).
    pub time_ms: u64,
    /// Global record sequence number (ties within one `time_ms`).
    pub seq: u64,
    /// Subsystem that emitted the event.
    pub category: Category,
    /// Event name, unique within its category (e.g. `"solve"`, `"grant"`).
    pub name: String,
    /// Ordered key/value payload; insertion order is preserved in exports.
    pub fields: Vec<(String, Value)>,
}

impl TraceEvent {
    /// Looks up a field by key.
    pub fn field(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Returns a `u64` field, coercing from `I64` when non-negative.
    pub fn u64_field(&self, key: &str) -> Option<u64> {
        match self.field(key)? {
            Value::U64(v) => Some(*v),
            Value::I64(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// Returns a numeric field as `f64` (from `U64`, `I64`, or `F64`).
    pub fn f64_field(&self, key: &str) -> Option<f64> {
        match self.field(key)? {
            Value::U64(v) => Some(*v as f64),
            Value::I64(v) => Some(*v as f64),
            Value::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns a boolean field.
    pub fn bool_field(&self, key: &str) -> Option<bool> {
        match self.field(key)? {
            Value::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns a string field.
    pub fn str_field(&self, key: &str) -> Option<&str> {
        match self.field(key)? {
            Value::Str(v) => Some(v.as_str()),
            _ => None,
        }
    }
}

/// Chaining builder used inside [`TraceHandle::record`] closures.
///
/// ```
/// use flare_trace::{Category, TraceConfig, TraceHandle};
/// use flare_sim::Time;
///
/// let trace = TraceHandle::new(TraceConfig::info());
/// trace.record(Time::from_secs(10), Category::Solver, "solve", |e| {
///     e.u64("clients", 8).f64("r", 0.42).str("mode", "exact");
/// });
/// assert_eq!(trace.event_count(), 1);
/// ```
///
/// [`TraceHandle::record`]: crate::TraceHandle::record
#[derive(Debug, Default)]
pub struct EventBuilder {
    pub(crate) fields: Vec<(String, Value)>,
}

impl EventBuilder {
    /// Field names claimed by the JSONL envelope; custom fields must not
    /// shadow them or the export would carry duplicate JSON keys.
    pub const RESERVED_KEYS: [&'static str; 4] = ["t", "seq", "cat", "ev"];

    fn push(&mut self, key: &str, v: Value) {
        debug_assert!(
            !Self::RESERVED_KEYS.contains(&key),
            "trace field {key:?} shadows a reserved JSONL key"
        );
        self.fields.push((key.to_string(), v));
    }

    /// Attaches an unsigned integer field.
    pub fn u64(&mut self, key: &str, v: u64) -> &mut Self {
        self.push(key, Value::U64(v));
        self
    }

    /// Attaches a signed integer field.
    pub fn i64(&mut self, key: &str, v: i64) -> &mut Self {
        self.push(key, Value::I64(v));
        self
    }

    /// Attaches a floating-point field.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `v` is not finite: JSON has no encoding for
    /// NaN/infinity, and non-finite payloads would break the byte-identical
    /// round-trip guarantee. Guard at the call site (e.g. skip the field or
    /// record a boolean instead).
    pub fn f64(&mut self, key: &str, v: f64) -> &mut Self {
        debug_assert!(v.is_finite(), "trace field {key:?} is not finite: {v}");
        let v = if v.is_finite() { v } else { 0.0 };
        self.push(key, Value::F64(v));
        self
    }

    /// Attaches a boolean field.
    pub fn bool(&mut self, key: &str, v: bool) -> &mut Self {
        self.push(key, Value::Bool(v));
        self
    }

    /// Attaches a string field.
    pub fn str(&mut self, key: &str, v: impl Into<String>) -> &mut Self {
        self.push(key, Value::Str(v.into()));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_roundtrip() {
        for c in ALL_CATEGORIES {
            assert_eq!(Category::parse(c.as_str()), Some(c));
            assert_eq!(ALL_CATEGORIES[c.index()], c);
        }
        assert_eq!(Category::parse("bogus"), None);
    }

    #[test]
    fn level_ordering() {
        assert!(TraceLevel::Off < TraceLevel::Info);
        assert!(TraceLevel::Info < TraceLevel::Debug);
    }

    #[test]
    fn field_accessors() {
        let mut b = EventBuilder::default();
        b.u64("n", 3)
            .i64("d", -2)
            .f64("x", 1.5)
            .bool("ok", true)
            .str("mode", "exact");
        let ev = TraceEvent {
            time_ms: 10,
            seq: 0,
            category: Category::Solver,
            name: "solve".into(),
            fields: b.fields,
        };
        assert_eq!(ev.u64_field("n"), Some(3));
        assert_eq!(ev.f64_field("d"), Some(-2.0));
        assert_eq!(ev.f64_field("x"), Some(1.5));
        assert_eq!(ev.bool_field("ok"), Some(true));
        assert_eq!(ev.str_field("mode"), Some("exact"));
        assert_eq!(ev.field("missing"), None);
    }
}
