//! Deterministic structured tracing and metrics for the FLARE stack.
//!
//! FLARE's behaviour emerges from a closed loop spanning four layers —
//! client plugin → control plane → OneAPI solver → eNodeB MAC enforcement —
//! and this crate is the shared observability layer threaded through all of
//! them:
//!
//! * **Events** ([`TraceEvent`]): sim-time-stamped, typed, ordered records of
//!   what each subsystem did (TTI grants, BAI solve rounds, control-plane
//!   message fates, plugin installs/fallbacks, player stalls, GBR leases),
//!   buffered in a bounded ring with per-[`Category`] levels and sampling.
//! * **Registry** ([`RegistrySnapshot`]): counters, gauges, and log2-bucket
//!   histograms for aggregate, end-of-run telemetry — always cheap enough to
//!   leave on.
//! * **Spans** ([`SpanGuard`]): RAII wall-clock timers whose durations land
//!   in registry histograms only.
//!
//! # Determinism
//!
//! Events carry simulation [`flare_sim::Time`] and a record-order sequence
//! number — never wall-clock time. Wall-clock measurements (solver compute
//! time, span durations) are confined to the registry, which is excluded
//! from the event export. Consequently, the same seed produces a
//! byte-identical JSONL trace ([`to_jsonl`]), and [`parse_jsonl`] inverts it
//! exactly. This is enforced by `tests/observability.rs` at the workspace
//! root.
//!
//! # Overhead
//!
//! A [`TraceHandle::disabled`] handle reduces every call to an `Option`
//! discriminant check; `crates/bench/benches/trace.rs` verifies the
//! instrumented TTI and solve paths stay within noise of the
//! pre-instrumentation baseline when tracing is off.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod export;
mod recorder;
mod registry;

pub use event::{
    Category, EventBuilder, TraceEvent, TraceLevel, Value, ALL_CATEGORIES, CATEGORY_COUNT,
};
pub use export::{parse_jsonl, to_csv, to_json_line, to_jsonl, ParseError};
pub use recorder::{CategoryConfig, SpanGuard, TraceConfig, TraceHandle};
pub use registry::{HistogramSummary, RegistrySnapshot};

#[cfg(test)]
mod tests {
    use super::*;
    use flare_sim::Time;

    /// End-to-end: record through a handle, export, parse, compare.
    #[test]
    fn record_export_parse_round_trip() {
        let trace = TraceHandle::new(TraceConfig::debug());
        trace.record(Time::from_secs(10), Category::Solver, "solve", |e| {
            e.u64("clients", 8).f64("r", 0.4251).str("mode", "exact");
        });
        trace.record_debug(Time::from_secs(10), Category::Solver, "assign", |e| {
            e.u64("flow", 2).u64("applied", 3).bool("deferred", false);
        });
        trace.record(Time::from_millis(10_001), Category::Control, "drop", |e| {
            e.str("link", "down");
        });
        let text = trace.to_jsonl();
        let parsed = parse_jsonl(&text).expect("parse");
        assert_eq!(parsed, trace.events());
        assert_eq!(to_jsonl(&parsed), text);
    }

    /// Two identical recording sequences produce byte-identical exports.
    #[test]
    fn identical_sequences_are_byte_identical() {
        let run = || {
            let trace = TraceHandle::new(TraceConfig::info());
            for i in 0..100u64 {
                trace.record(Time::from_millis(i * 7), Category::Player, "segment", |e| {
                    e.u64("ue", i % 4)
                        .u64("segment", i)
                        .f64("buffer_ms", i as f64 * 1.5);
                });
            }
            trace.to_jsonl()
        };
        assert_eq!(run(), run());
    }
}
