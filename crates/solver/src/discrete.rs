//! Discrete solvers for the exact ladder-constrained problem.

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

use crate::spec::{FlowSpec, ProblemSpec};
use crate::utility::data_utility;
use crate::{finish, DiscreteSolution};

/// Precomputes `utility(ladder[l])` for every level of one flow.
///
/// The table holds the *same* `f64`s `FlowSpec::utility` would return (a
/// pure function of `(beta, theta, rate)`), so table-driven evaluation is
/// bit-identical to inline evaluation — it only trades repeated arithmetic
/// for a lookup. Note the table does not depend on the flow's `weight` (the
/// per-bit RB cost): channel churn between BAIs leaves it valid, which is
/// what [`crate::WarmSolver`] exploits.
pub(crate) fn level_utils(f: &FlowSpec) -> Vec<f64> {
    f.ladder().iter().map(|&rate| f.utility(rate)).collect()
}

/// Incremental evaluation state: video utility sum and RBs consumed.
///
/// `utils[i][l]` must equal `spec.flows()[i].utility(ladder[l])` (see
/// [`level_utils`]); `cur_penalty` caches `penalty(used_rbs)` for the
/// current state so `delta` does one penalty evaluation instead of two.
struct Eval<'a> {
    spec: &'a ProblemSpec,
    utils: &'a [Vec<f64>],
    levels: Vec<usize>,
    video_util: f64,
    used_rbs: f64,
    cur_penalty: f64,
}

impl<'a> Eval<'a> {
    fn new(spec: &'a ProblemSpec, utils: &'a [Vec<f64>]) -> Self {
        let levels: Vec<usize> = spec.flows().iter().map(|f| f.min_level()).collect();
        let mut e = Eval {
            spec,
            utils,
            levels,
            video_util: 0.0,
            used_rbs: 0.0,
            cur_penalty: 0.0,
        };
        for (i, f) in spec.flows().iter().enumerate() {
            let rate = f.ladder()[e.levels[i]];
            e.video_util += e.utils[i][e.levels[i]];
            e.used_rbs += f.weight() * rate;
        }
        e.cur_penalty = e.penalty(e.used_rbs);
        e
    }

    fn penalty(&self, used_rbs: f64) -> f64 {
        let r = used_rbs / self.spec.total_rbs();
        if r > self.spec.r_cap() + 1e-12 {
            return f64::NEG_INFINITY;
        }
        data_utility(self.spec.n_data(), self.spec.alpha(), r.clamp(0.0, 1.0))
    }

    fn objective(&self) -> f64 {
        self.video_util + self.cur_penalty
    }

    /// Objective change from moving flow `i` to `to_level`.
    fn delta(&self, i: usize, to_level: usize) -> f64 {
        let f = &self.spec.flows()[i];
        let from = f.ladder()[self.levels[i]];
        let to = f.ladder()[to_level];
        let new_used = self.used_rbs + f.weight() * (to - from);
        let new_pen = self.penalty(new_used);
        if new_pen == f64::NEG_INFINITY {
            return f64::NEG_INFINITY;
        }
        (self.utils[i][to_level] - self.utils[i][self.levels[i]]) + (new_pen - self.cur_penalty)
    }

    fn apply(&mut self, i: usize, to_level: usize) {
        let f = &self.spec.flows()[i];
        let from = f.ladder()[self.levels[i]];
        let to = f.ladder()[to_level];
        self.video_util += self.utils[i][to_level] - self.utils[i][self.levels[i]];
        self.used_rbs += f.weight() * (to - from);
        self.levels[i] = to_level;
        self.cur_penalty = self.penalty(self.used_rbs);
    }
}

/// A cached marginal gain for upgrading one flow a single ladder level,
/// ordered so the [`BinaryHeap`] pops the largest gain first and breaks
/// exact ties toward the lowest flow index (matching the strict `>` of the
/// linear scan this heap replaces).
struct Upgrade {
    delta: f64,
    flow: usize,
}

impl Ord for Upgrade {
    fn cmp(&self, other: &Self) -> Ordering {
        self.delta
            .total_cmp(&other.delta)
            .then_with(|| Reverse(self.flow).cmp(&Reverse(other.flow)))
    }
}

impl PartialOrd for Upgrade {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq for Upgrade {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Upgrade {}

/// Solves the exact discrete problem by greedy marginal-gain ascent followed
/// by a single-move and pairwise-swap local search.
///
/// Starting from every flow at its floor, the upgrade with the largest
/// positive objective gain is applied repeatedly; the polish phase then
/// tries single up/down moves and `(down_i, up_j)` swaps until none improve.
/// Property tests pin this against [`solve_exhaustive`] on randomized small
/// instances.
///
/// For an overloaded instance (floors already violate the RB cap) the floor
/// assignment is returned with a `-inf` objective, matching
/// [`crate::solve_relaxed`].
pub fn solve_discrete(spec: &ProblemSpec) -> DiscreteSolution {
    let utils: Vec<Vec<f64>> = spec.flows().iter().map(level_utils).collect();
    solve_core(spec, &utils)
}

/// The shared greedy-ascent + polish core behind [`solve_discrete`] (fresh
/// tables every call) and [`crate::WarmSolver`] (tables carried across
/// BAIs). `utils` must satisfy the [`level_utils`] contract for `spec`.
pub(crate) fn solve_core(spec: &ProblemSpec, utils: &[Vec<f64>]) -> DiscreteSolution {
    debug_assert_eq!(utils.len(), spec.flows().len());
    let mut eval = Eval::new(spec, utils);
    if spec.is_overloaded() {
        return finish(spec, eval.levels);
    }

    const EPS: f64 = 1e-12;
    // Accepted state transitions, reported as `DiscreteSolution::steps`.
    let mut steps: u64 = 0;

    // Greedy ascent on single-level upgrades, organised as a CELF-style
    // lazy-invalidation max-heap over cached marginal gains instead of an
    // O(n) rescan per accepted step. The data-utility penalty is concave in
    // used RBs and ladders ascend strictly, so accepting any upgrade only
    // *shrinks* every other flow's gain: cached keys are upper bounds, and
    // a popped entry whose freshly recomputed gain still tops the heap is
    // the true argmax. The accepted sequence (and thus `steps` and the
    // final levels) is identical to the scan's, step for step.
    let mut heap: BinaryHeap<Upgrade> = BinaryHeap::with_capacity(eval.levels.len());
    for i in 0..eval.levels.len() {
        if eval.levels[i] >= spec.flows()[i].max_level() {
            continue;
        }
        let delta = eval.delta(i, eval.levels[i] + 1);
        if delta > EPS {
            heap.push(Upgrade { delta, flow: i });
        }
    }
    while let Some(popped) = heap.pop() {
        let i = popped.flow;
        let delta = eval.delta(i, eval.levels[i] + 1);
        if delta > EPS {
            let fresh = Upgrade { delta, flow: i };
            if heap.peek().is_some_and(|top| *top > fresh) {
                // Stale: a rival's cached bound beats the fresh gain.
                heap.push(fresh);
            } else {
                let to = eval.levels[i] + 1;
                eval.apply(i, to);
                steps += 1;
                if eval.levels[i] < spec.flows()[i].max_level() {
                    let next = eval.delta(i, eval.levels[i] + 1);
                    if next > EPS {
                        heap.push(Upgrade {
                            delta: next,
                            flow: i,
                        });
                    }
                }
            }
        }
        // A non-positive fresh gain can never recover (monotone shrinkage),
        // so the flow simply leaves the ascent.
    }

    // Local-search polish: single moves and pairwise swaps.
    let n = eval.levels.len();
    loop {
        let mut improved = false;
        // Single up/down moves.
        for i in 0..n {
            let f = &spec.flows()[i];
            let candidates = [
                eval.levels[i]
                    .checked_sub(1)
                    .filter(|&l| l >= f.min_level()),
                Some(eval.levels[i] + 1).filter(|&l| l <= f.max_level()),
            ];
            for cand in candidates.into_iter().flatten() {
                if eval.delta(i, cand) > EPS {
                    eval.apply(i, cand);
                    improved = true;
                    steps += 1;
                }
            }
        }
        // Pairwise swaps: downgrade i to fund an upgrade of j. A swap is
        // kept when it strictly improves the objective, or keeps it equal
        // while strictly freeing resource blocks (the freed budget enables
        // later single-move upgrades; the lexicographic potential
        // (objective, −used RBs) strictly increases, so no cycles).
        for i in 0..n {
            for j in 0..n {
                // Re-check every iteration: a successful swap may have moved
                // flow i down to its floor already.
                if eval.levels[i] <= spec.flows()[i].min_level() {
                    break;
                }
                if i == j || eval.levels[j] >= spec.flows()[j].max_level() {
                    continue;
                }
                let before = eval.objective();
                let used_before = eval.used_rbs;
                let li = eval.levels[i];
                let lj = eval.levels[j];
                eval.apply(i, li - 1);
                eval.apply(j, lj + 1);
                let after = eval.objective();
                let keeps = after > before + EPS
                    || (after >= before - EPS && eval.used_rbs < used_before - 1e-9);
                if keeps {
                    improved = true;
                    steps += 1;
                } else {
                    eval.apply(j, lj);
                    eval.apply(i, li);
                }
            }
        }
        if !improved {
            break;
        }
    }

    let mut sol = finish(spec, eval.levels);
    sol.steps = steps;
    sol
}

/// Exhaustively enumerates every feasible level combination.
///
/// Intended for validating [`solve_discrete`] in tests and for tiny
/// instances only.
///
/// # Panics
///
/// Panics if the search space exceeds 2²² combinations.
pub fn solve_exhaustive(spec: &ProblemSpec) -> DiscreteSolution {
    let space: f64 = spec
        .flows()
        .iter()
        .map(|f| (f.max_level() - f.min_level() + 1) as f64)
        .product();
    assert!(
        space <= (1 << 22) as f64,
        "exhaustive search space too large: {space}"
    );

    let n = spec.flows().len();
    let mut best_levels: Vec<usize> = spec.flows().iter().map(|f| f.min_level()).collect();
    let mut best_obj = f64::NEG_INFINITY;
    let mut current = best_levels.clone();

    fn recurse(
        spec: &ProblemSpec,
        i: usize,
        n: usize,
        current: &mut Vec<usize>,
        best_levels: &mut Vec<usize>,
        best_obj: &mut f64,
    ) {
        if i == n {
            let rates: Vec<f64> = spec
                .flows()
                .iter()
                .zip(current.iter())
                .map(|(f, &l)| f.ladder()[l])
                .collect();
            let obj = spec.objective(&rates);
            if obj > *best_obj {
                *best_obj = obj;
                best_levels.clone_from(current);
            }
            return;
        }
        let f = &spec.flows()[i];
        for l in f.min_level()..=f.max_level() {
            current[i] = l;
            recurse(spec, i + 1, n, current, best_levels, best_obj);
        }
        current[i] = f.min_level();
    }

    recurse(spec, 0, n, &mut current, &mut best_levels, &mut best_obj);
    let mut sol = finish(spec, best_levels);
    sol.steps = space as u64;
    sol
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::FlowSpec;
    use proptest::prelude::*;

    const N: f64 = 500_000.0;

    fn paper_flow(bits_per_rb: f64, max_level: usize) -> FlowSpec {
        FlowSpec::new(
            vec![100e3, 250e3, 500e3, 1000e3, 2000e3, 3000e3],
            10.0,
            0.2e6,
            10.0 / bits_per_rb,
            max_level,
        )
    }

    #[test]
    fn underloaded_cell_saturates_all_flows() {
        let spec = ProblemSpec::builder()
            .total_rbs(N)
            .flow(paper_flow(1424.0, 5))
            .flow(paper_flow(1424.0, 5))
            .build()
            .unwrap();
        let sol = solve_discrete(&spec);
        assert_eq!(sol.levels, vec![5, 5]);
    }

    #[test]
    fn stability_cap_is_respected() {
        let spec = ProblemSpec::builder()
            .total_rbs(N)
            .flow(paper_flow(1424.0, 2))
            .build()
            .unwrap();
        let sol = solve_discrete(&spec);
        assert_eq!(sol.levels, vec![2]);
    }

    #[test]
    fn capacity_limits_levels() {
        // 32 bits/RB -> whole-cell capacity 1.6 Mbps: flows must share.
        let spec = ProblemSpec::builder()
            .total_rbs(N)
            .flow(paper_flow(32.0, 5))
            .flow(paper_flow(32.0, 5))
            .build()
            .unwrap();
        let sol = solve_discrete(&spec);
        assert!(sol.r <= 1.0 + 1e-9);
        // Best feasible split of 1.6 Mbps over the ladder is {500k, 1000k}
        // (utility 6 + 8), beating {250k, 1000k} (2 + 8) and any symmetric
        // pair; verify against brute force too.
        let mut sorted = sol.levels.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![2, 3]);
        let opt = solve_exhaustive(&spec);
        assert!((sol.objective - opt.objective).abs() < 1e-9);
    }

    #[test]
    fn data_flows_temper_the_assignment() {
        let without = ProblemSpec::builder()
            .total_rbs(N)
            .flow(paper_flow(256.0, 5))
            .build()
            .unwrap();
        let with = ProblemSpec::builder()
            .total_rbs(N)
            .data_flows(4, 1.0)
            .flow(paper_flow(256.0, 5))
            .build()
            .unwrap();
        assert!(solve_discrete(&with).levels[0] <= solve_discrete(&without).levels[0]);
    }

    #[test]
    fn matches_exhaustive_on_paper_shaped_instance() {
        let spec = ProblemSpec::builder()
            .total_rbs(N)
            .data_flows(2, 1.0)
            .flow(paper_flow(128.0, 5))
            .flow(paper_flow(328.0, 5))
            .flow(paper_flow(656.0, 5))
            .build()
            .unwrap();
        let greedy = solve_discrete(&spec);
        let opt = solve_exhaustive(&spec);
        assert!(
            greedy.objective >= opt.objective - 1e-9,
            "greedy {} < optimal {}",
            greedy.objective,
            opt.objective
        );
    }

    #[test]
    fn overloaded_returns_floors() {
        let f = FlowSpec::new(vec![5000e3, 6000e3], 10.0, 0.2e6, 10.0 / 16.0, 1);
        let spec = ProblemSpec::builder().total_rbs(N).flow(f).build().unwrap();
        let sol = solve_discrete(&spec);
        assert_eq!(sol.levels, vec![0]);
        assert_eq!(sol.objective, f64::NEG_INFINITY);
    }

    #[test]
    fn min_level_constraints_hold() {
        let f = paper_flow(128.0, 5).with_min_level(2);
        let spec = ProblemSpec::builder().total_rbs(N).flow(f).build().unwrap();
        let sol = solve_discrete(&spec);
        assert!(sol.levels[0] >= 2);
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn exhaustive_guards_search_space() {
        let flows: Vec<FlowSpec> = (0..10)
            .map(|_| {
                FlowSpec::new(
                    (1..=12).map(|k| k as f64 * 100e3).collect(),
                    10.0,
                    0.2e6,
                    1e-5,
                    11,
                )
            })
            .collect();
        let spec = ProblemSpec::builder()
            .total_rbs(N)
            .flows(flows)
            .build()
            .unwrap();
        let _ = solve_exhaustive(&spec);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn greedy_matches_exhaustive(
            bits_per_rb in prop::collection::vec(32.0f64..1424.0, 1..5),
            n_data in 0usize..5,
            alpha in 0.25f64..4.0,
            caps in prop::collection::vec(0usize..6, 1..5),
        ) {
            let flows: Vec<FlowSpec> = bits_per_rb
                .iter()
                .zip(caps.iter().cycle())
                .map(|(&b, &cap)| paper_flow(b, cap))
                .collect();
            let spec = ProblemSpec::builder()
                .total_rbs(N)
                .data_flows(n_data, alpha)
                .flows(flows)
                .build()
                .unwrap();
            let greedy = solve_discrete(&spec);
            let opt = solve_exhaustive(&spec);
            prop_assert!(
                greedy.objective >= opt.objective - 1e-9,
                "greedy {} < optimal {} (levels {:?} vs {:?})",
                greedy.objective, opt.objective, greedy.levels, opt.levels
            );
        }

        #[test]
        fn round_down_preserves_feasibility_and_never_beats_exact(
            bits_per_rb in prop::collection::vec(32.0f64..1424.0, 1..8),
            n_data in 0usize..6,
        ) {
            use crate::{round_down, solve_relaxed};
            let spec = ProblemSpec::builder()
                .total_rbs(N)
                .data_flows(n_data, 1.0)
                .flows(bits_per_rb.iter().map(|&b| paper_flow(b, 5)))
                .build()
                .unwrap();
            let relaxed = solve_relaxed(&spec);
            let rounded = round_down(&spec, &relaxed);
            // Rounding down only lowers rates, so the RB fraction shrinks.
            prop_assert!(rounded.r <= relaxed.r + 1e-9);
            for (f, &l) in spec.flows().iter().zip(&rounded.levels) {
                prop_assert!(l >= f.min_level() && l <= f.max_level());
            }
            // Algorithm 1's rounding is a heuristic: it can never beat the
            // exact discrete solver.
            let exact = solve_discrete(&spec);
            prop_assert!(exact.objective >= rounded.objective - 1e-9);
            // And the relaxation upper-bounds every discrete solution.
            if relaxed.feasible {
                prop_assert!(relaxed.objective >= exact.objective - 1e-9);
            }
        }

        #[test]
        fn output_satisfies_rb_budget_4a_within_one_rb(
            bits_per_rb in prop::collection::vec(32.0f64..1424.0, 1..10),
            n_data in 0usize..8,
            alpha in 0.25f64..4.0,
        ) {
            // Constraint (4a): Σ w_u·R_u ≤ r_cap·N. Recompute the left side
            // from the returned levels (not the solver's own bookkeeping)
            // and allow one RB of slack for float accumulation.
            let spec = ProblemSpec::builder()
                .total_rbs(N)
                .data_flows(n_data, alpha)
                .flows(bits_per_rb.iter().map(|&b| paper_flow(b, 5)))
                .build()
                .unwrap();
            let sol = solve_discrete(&spec);
            prop_assume!(!spec.is_overloaded());
            let used_rbs: f64 = spec
                .flows()
                .iter()
                .zip(&sol.levels)
                .map(|(f, &l)| f.weight() * f.ladder()[l])
                .sum();
            prop_assert!(
                used_rbs <= spec.r_cap() * spec.total_rbs() + 1.0,
                "(4a) violated: {used_rbs} RBs used of {} allowed",
                spec.r_cap() * spec.total_rbs()
            );
        }

        #[test]
        fn output_never_exceeds_one_step_up_4b(
            bits_per_rb in prop::collection::vec(32.0f64..1424.0, 1..10),
            prev_levels in prop::collection::vec(0usize..6, 1..10),
            n_data in 0usize..4,
        ) {
            // Constraint (4b): R_u ≤ ladder(L_prev + 1). The server encodes
            // it as each flow's max_level; the solution may never assign a
            // level (or rate) above one step over the previous BAI's.
            let ladder_len = 6usize;
            let flows: Vec<FlowSpec> = bits_per_rb
                .iter()
                .zip(prev_levels.iter().cycle())
                .map(|(&b, &prev)| paper_flow(b, (prev + 1).min(ladder_len - 1)))
                .collect();
            let spec = ProblemSpec::builder()
                .total_rbs(N)
                .data_flows(n_data, 1.0)
                .flows(flows)
                .build()
                .unwrap();
            let sol = solve_discrete(&spec);
            for ((f, &l), &prev) in
                spec.flows().iter().zip(&sol.levels).zip(prev_levels.iter().cycle())
            {
                prop_assert!(l <= prev + 1, "level {l} skips above prev {prev} + 1");
                let cap_rate = f.ladder()[(prev + 1).min(ladder_len - 1)];
                prop_assert!(f.ladder()[l] <= cap_rate + 1e-9);
            }
        }

        #[test]
        fn solutions_are_always_feasible(
            bits_per_rb in prop::collection::vec(32.0f64..1424.0, 1..10),
            n_data in 0usize..8,
        ) {
            let spec = ProblemSpec::builder()
                .total_rbs(N)
                .data_flows(n_data, 1.0)
                .flows(bits_per_rb.iter().map(|&b| paper_flow(b, 5)))
                .build()
                .unwrap();
            let sol = solve_discrete(&spec);
            for (f, &l) in spec.flows().iter().zip(&sol.levels) {
                prop_assert!(l >= f.min_level() && l <= f.max_level());
            }
            if !spec.is_overloaded() {
                prop_assert!(sol.r <= spec.r_cap() + 1e-9);
                prop_assert!(sol.objective.is_finite());
            }
        }
    }
}
