//! Optimization substrate for FLARE's per-BAI bitrate assignment.
//!
//! The paper solves, once per bitrate assignment interval (BAI):
//!
//! ```text
//! max_{r ∈ [0,1], R_u ∈ ladder_u}  Σ_u β_u (1 − θ_u/R_u) + n·α·log(1 − r)   (3)
//! s.t.  Σ_u w_u · R_u ≤ r · N,     R_u ≤ ladder_u(L_u^{prev} + 1)           (4)
//! ```
//!
//! where `w_u = B·n_u / bits_u` converts a bitrate into the resource blocks
//! flow `u` will need, extrapolating from the previous BAI's `(n_u, b_u)`
//! counters. The paper uses KNITRO; this crate replaces it with two solvers
//! that exploit the problem's structure:
//!
//! * [`solve_relaxed`] — the continuous relaxation of Proposition 1. Since
//!   the objective is strictly decreasing in `r`, the optimum sets
//!   `r = Σ w_u R_u / N`, leaving a separable concave program whose KKT
//!   conditions give `R_u(μ) = clamp(√(β_u θ_u / (w_u μ)), lo_u, hi_u)` for
//!   a scalar price `μ`; the right `μ` is found by bisection.
//! * [`solve_discrete`] — the exact problem over the ladder, solved by
//!   greedy marginal-gain ascent plus a local-search polish; property tests
//!   validate it against [`solve_exhaustive`] on small instances.
//!
//! [`round_down`] converts a relaxed solution into ladder levels the way
//! Algorithm 1 does (`L = max{k : r(k) ≤ R*}`).
//!
//! # Example
//!
//! ```
//! use flare_solver::{FlowSpec, ProblemSpec, solve_relaxed, solve_discrete, round_down};
//!
//! let spec = ProblemSpec::builder()
//!     .total_rbs(500_000.0)
//!     .data_flows(1, 1.0)
//!     .flow(FlowSpec::new(vec![200e3, 450e3, 790e3, 1100e3], 10.0, 200e3, 0.15, 3))
//!     .build()?;
//! let relaxed = solve_relaxed(&spec);
//! let rounded = round_down(&spec, &relaxed);
//! let exact = solve_discrete(&spec);
//! assert!(exact.objective + 1e-9 >= rounded.objective);
//! # Ok::<(), flare_solver::SpecError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod barrier;
mod discrete;
mod relaxed;
mod spec;
pub mod utility;
mod warm;

pub use barrier::{solve_barrier, BarrierOptions};
pub use discrete::{solve_discrete, solve_exhaustive};
pub use relaxed::{solve_relaxed, ContinuousSolution};
pub use spec::{FlowSpec, ProblemSpec, ProblemSpecBuilder, SpecError};
pub use warm::WarmSolver;

/// A discrete assignment: one ladder level per video flow.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscreteSolution {
    /// Chosen ladder index per flow, in `ProblemSpec` flow order.
    pub levels: Vec<usize>,
    /// The corresponding bitrates in bits/second.
    pub rates: Vec<f64>,
    /// The fraction of RBs handed to video flows.
    pub r: f64,
    /// The achieved objective value of (3).
    pub objective: f64,
    /// Solver work counter, for profiling/tracing: accepted state
    /// transitions for [`solve_discrete`], leaf evaluations for
    /// [`solve_exhaustive`], and the producing relaxation's bisection
    /// iterations for [`round_down`].
    pub steps: u64,
}

/// Rounds a relaxed solution down to ladder levels, as Algorithm 1 does:
/// `L_u = max{k : r_u(k) ≤ R_u*}` (falling back to the lowest level when
/// even it exceeds `R_u*`).
pub fn round_down(spec: &ProblemSpec, relaxed: &ContinuousSolution) -> DiscreteSolution {
    let levels: Vec<usize> = spec
        .flows()
        .iter()
        .zip(&relaxed.rates)
        .map(|(f, &r)| {
            let mut level = f.min_level();
            for k in f.min_level()..=f.max_level() {
                if f.ladder()[k] <= r + 1e-9 {
                    level = k;
                }
            }
            level
        })
        .collect();
    let mut sol = finish(spec, levels);
    sol.steps = relaxed.steps;
    sol
}

/// Builds a [`DiscreteSolution`] from levels, computing `r` and the
/// objective.
pub(crate) fn finish(spec: &ProblemSpec, levels: Vec<usize>) -> DiscreteSolution {
    let rates: Vec<f64> = spec
        .flows()
        .iter()
        .zip(&levels)
        .map(|(f, &l)| f.ladder()[l])
        .collect();
    let r = spec.video_fraction(&rates);
    let objective = spec.objective(&rates);
    DiscreteSolution {
        levels,
        rates,
        r,
        objective,
        steps: 0,
    }
}
