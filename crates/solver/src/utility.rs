//! The utility model of equation (1)/(2).

/// Video utility `β (1 − θ / R)` for one flow at bitrate `R` (bits/second).
///
/// `β` weighs how much this client values video; `θ` encodes the screen
/// size — a larger screen needs a higher bitrate before utility approaches
/// its ceiling of `β`. The paper takes `β = 10`, `θ = 0.2 Mbps` from
/// De Vleeschauwer et al.
///
/// # Example
///
/// ```
/// use flare_solver::utility::video_utility;
///
/// // At R = θ the utility crosses zero; it saturates towards β.
/// assert_eq!(video_utility(10.0, 200e3, 200e3), 0.0);
/// assert!(video_utility(10.0, 200e3, 3_000e3) > 9.0);
/// ```
///
/// # Panics
///
/// Panics in debug builds if `rate` is not positive.
pub fn video_utility(beta: f64, theta: f64, rate: f64) -> f64 {
    debug_assert!(rate > 0.0, "video utility needs a positive rate");
    beta * (1.0 - theta / rate)
}

/// Marginal video utility `dU/dR = β θ / R²`.
pub fn video_marginal(beta: f64, theta: f64, rate: f64) -> f64 {
    debug_assert!(rate > 0.0, "marginal utility needs a positive rate");
    beta * theta / (rate * rate)
}

/// Aggregate data utility `n · α · log(1 − r)` after Lemma 1's reduction,
/// where `r` is the fraction of RBs given to video and `n` the number of
/// data flows.
///
/// Returns zero when there are no data flows (no penalty term) and
/// `-inf` as `r → 1` with data flows present.
pub fn data_utility(n_data: usize, alpha: f64, r: f64) -> f64 {
    if n_data == 0 {
        return 0.0;
    }
    debug_assert!((0.0..=1.0).contains(&r), "r must be a fraction");
    n_data as f64 * alpha * (1.0 - r).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn video_utility_shape() {
        let beta = 10.0;
        let theta = 200e3;
        assert!(video_utility(beta, theta, 100e3) < 0.0);
        assert_eq!(video_utility(beta, theta, theta), 0.0);
        let u1 = video_utility(beta, theta, 1_000e3);
        let u2 = video_utility(beta, theta, 2_000e3);
        assert!(u2 > u1, "utility must increase in rate");
        assert!(u2 < beta, "utility is capped at beta");
    }

    #[test]
    fn diminishing_returns() {
        let beta = 10.0;
        let theta = 200e3;
        let gain_low = video_utility(beta, theta, 400e3) - video_utility(beta, theta, 200e3);
        let gain_high = video_utility(beta, theta, 2_200e3) - video_utility(beta, theta, 2_000e3);
        assert!(gain_low > gain_high);
    }

    #[test]
    fn marginal_matches_finite_difference() {
        let (beta, theta, r) = (10.0, 200e3, 900e3);
        let h = 1.0;
        let fd =
            (video_utility(beta, theta, r + h) - video_utility(beta, theta, r - h)) / (2.0 * h);
        let an = video_marginal(beta, theta, r);
        assert!((fd - an).abs() / an < 1e-6);
    }

    #[test]
    fn data_utility_shape() {
        assert_eq!(data_utility(0, 1.0, 0.9), 0.0);
        assert_eq!(data_utility(3, 1.0, 0.0), 0.0);
        let u1 = data_utility(3, 1.0, 0.5);
        let u2 = data_utility(3, 1.0, 0.8);
        assert!(u2 < u1, "more video RBs must hurt data utility");
        assert!(data_utility(3, 2.0, 0.5) < u1, "alpha scales the penalty");
        assert_eq!(data_utility(1, 1.0, 1.0), f64::NEG_INFINITY);
    }
}
