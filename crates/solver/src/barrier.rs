//! An independent barrier-method solver for the continuous relaxation.
//!
//! [`crate::solve_relaxed`] exploits the problem's KKT structure; this
//! module solves the *same* convex program by a structure-agnostic interior
//! point method: a logarithmic barrier on the resource-block budget plus
//! cyclic coordinate ascent (per-coordinate golden-section search), with
//! the barrier weight annealed towards zero. It exists as a dependability
//! cross-check — property tests assert both solvers land on the same
//! optimum — and as a fallback if the objective is ever generalized beyond
//! the closed-form-friendly `β(1 − θ/R)` shape.

use crate::relaxed::ContinuousSolution;
use crate::spec::ProblemSpec;
use crate::utility::{data_utility, video_utility};

/// Barrier-method tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BarrierOptions {
    /// Barrier weights, annealed in order (each is the `1/t` factor on the
    /// `ln(budget − used)` term, in objective units).
    pub weights: [f64; 5],
    /// Coordinate-ascent passes per barrier stage. Coordinate ascent
    /// zigzags slowly along the budget face when several flows share it, so
    /// this is deliberately generous — the barrier solver is a correctness
    /// cross-check, not the production path.
    pub passes_per_stage: usize,
    /// Golden-section iterations per coordinate (60 ≈ machine precision on
    /// a Mbps-scale interval).
    pub golden_iters: usize,
}

impl Default for BarrierOptions {
    fn default() -> Self {
        BarrierOptions {
            weights: [1.0, 1e-2, 1e-4, 1e-6, 1e-8],
            passes_per_stage: 400,
            golden_iters: 80,
        }
    }
}

/// Solves the continuous relaxation by an annealed log-barrier interior
/// point method with coordinate ascent.
///
/// Returns the same [`ContinuousSolution`] shape as
/// [`crate::solve_relaxed`] (with `price` reported as the data term's
/// shadow price at the solution). Overloaded instances return the floor
/// assignment, marked infeasible.
///
/// # Example
///
/// ```
/// use flare_solver::{solve_barrier, solve_relaxed, BarrierOptions, FlowSpec, ProblemSpec};
///
/// let spec = ProblemSpec::builder()
///     .total_rbs(500_000.0)
///     .data_flows(2, 1.0)
///     .flow(FlowSpec::new(vec![100e3, 500e3, 3000e3], 10.0, 200e3, 0.02, 2))
///     .build()?;
/// let a = solve_relaxed(&spec);
/// let b = solve_barrier(&spec, BarrierOptions::default());
/// assert!((a.objective - b.objective).abs() < 1e-4);
/// # Ok::<(), flare_solver::SpecError>(())
/// ```
pub fn solve_barrier(spec: &ProblemSpec, options: BarrierOptions) -> ContinuousSolution {
    let floors: Vec<f64> = spec.flows().iter().map(|f| f.bounds().0).collect();
    let budget = spec.r_cap() * spec.total_rbs();
    let floor_used: f64 = spec
        .flows()
        .iter()
        .zip(&floors)
        .map(|(f, &r)| f.weight() * r)
        .sum();
    if spec.is_overloaded() || floor_used >= budget {
        let r = spec.video_fraction(&floors);
        return ContinuousSolution {
            objective: if spec.is_overloaded() {
                f64::NEG_INFINITY
            } else {
                spec.objective(&floors)
            },
            r,
            rates: floors,
            feasible: !spec.is_overloaded(),
            price: f64::INFINITY,
            steps: 0,
        };
    }

    let n = spec.total_rbs();
    let n_data = spec.n_data();
    let alpha = spec.alpha();

    // Barrier objective pieces, evaluated incrementally around `used`.
    let barrier_obj = |spec: &ProblemSpec, rates: &[f64], used: f64, w: f64| -> f64 {
        if used >= budget {
            return f64::NEG_INFINITY;
        }
        let video: f64 = spec
            .flows()
            .iter()
            .zip(rates)
            .map(|(f, &r)| video_utility(f.beta(), f.theta(), r))
            .sum();
        video + data_utility(n_data, alpha, (used / n).min(1.0)) + w * (budget - used).ln()
    };

    let mut rates = floors;
    let mut used = floor_used;
    let golden = (5f64.sqrt() - 1.0) / 2.0;
    // Coordinate-ascent line searches performed, reported as `steps`.
    let mut steps: u64 = 0;

    for &w in &options.weights {
        for _ in 0..options.passes_per_stage {
            let mut moved = false;
            for i in 0..rates.len() {
                let f = &spec.flows()[i];
                let (lo, hi) = f.bounds();
                let used_others = used - f.weight() * rates[i];
                // Stay strictly inside the barrier domain.
                let cap = if f.weight() > 0.0 {
                    ((budget - used_others) / f.weight()).min(hi)
                } else {
                    hi
                };
                if cap <= lo {
                    continue;
                }
                let eval = |x: f64| {
                    let mut probe = rates.clone();
                    probe[i] = x;
                    barrier_obj(spec, &probe, used_others + f.weight() * x, w)
                };
                let (mut a, mut b) = (lo, cap);
                steps += 1;
                for _ in 0..options.golden_iters {
                    let c = b - golden * (b - a);
                    let d = a + golden * (b - a);
                    if eval(c) < eval(d) {
                        a = c;
                    } else {
                        b = d;
                    }
                }
                let x = 0.5 * (a + b);
                if (x - rates[i]).abs() > 1e-6 {
                    moved = true;
                }
                used = used_others + f.weight() * x;
                rates[i] = x;
            }
            if !moved {
                break;
            }
        }
    }

    let r = spec.video_fraction(&rates);
    let penalty = n_data as f64 * alpha;
    let price = if penalty > 0.0 {
        penalty / (n * (1.0 - r).max(1e-12))
    } else {
        0.0
    };
    ContinuousSolution {
        objective: spec.objective(&rates),
        r,
        rates,
        feasible: true,
        price,
        steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relaxed::solve_relaxed;
    use crate::spec::FlowSpec;
    use proptest::prelude::*;

    const N: f64 = 500_000.0;

    fn paper_flow(bits_per_rb: f64) -> FlowSpec {
        FlowSpec::new(
            vec![100e3, 250e3, 500e3, 1000e3, 2000e3, 3000e3],
            10.0,
            0.2e6,
            10.0 / bits_per_rb,
            5,
        )
    }

    #[test]
    fn agrees_with_kkt_solver_on_a_paper_instance() {
        let spec = ProblemSpec::builder()
            .total_rbs(N)
            .data_flows(3, 1.0)
            .flow(paper_flow(128.0))
            .flow(paper_flow(328.0))
            .flow(paper_flow(656.0))
            .build()
            .unwrap();
        let kkt = solve_relaxed(&spec);
        let barrier = solve_barrier(&spec, BarrierOptions::default());
        assert!(
            (kkt.objective - barrier.objective).abs() < 1e-4,
            "objectives diverge: kkt {} vs barrier {}",
            kkt.objective,
            barrier.objective
        );
    }

    #[test]
    fn handles_capacity_bound_instances() {
        // No data flows: the optimum sits on the budget face, which is the
        // regime a naive box-projected coordinate method jams in.
        let spec = ProblemSpec::builder()
            .total_rbs(N)
            .flow(paper_flow(32.0))
            .flow(paper_flow(714.0))
            .build()
            .unwrap();
        let kkt = solve_relaxed(&spec);
        let barrier = solve_barrier(&spec, BarrierOptions::default());
        assert!(
            (kkt.objective - barrier.objective).abs() < 1e-3,
            "kkt {} vs barrier {}",
            kkt.objective,
            barrier.objective
        );
        assert!(barrier.r <= spec.r_cap() + 1e-9);
    }

    #[test]
    fn overloaded_matches_kkt_behaviour() {
        let f = FlowSpec::new(vec![5000e3, 6000e3], 10.0, 0.2e6, 10.0 / 16.0, 1);
        let spec = ProblemSpec::builder().total_rbs(N).flow(f).build().unwrap();
        let barrier = solve_barrier(&spec, BarrierOptions::default());
        assert!(!barrier.feasible);
        assert_eq!(barrier.objective, f64::NEG_INFINITY);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn two_solvers_agree(
            bits_per_rb in prop::collection::vec(32.0f64..1424.0, 1..6),
            n_data in 0usize..6,
            alpha in 0.25f64..4.0,
        ) {
            let spec = ProblemSpec::builder()
                .total_rbs(N)
                .data_flows(n_data, alpha)
                .flows(bits_per_rb.iter().map(|&b| paper_flow(b)))
                .build()
                .unwrap();
            let kkt = solve_relaxed(&spec);
            let barrier = solve_barrier(&spec, BarrierOptions::default());
            // The program is convex: any gap means one solver is wrong.
            prop_assert!(
                (kkt.objective - barrier.objective).abs() <= 1e-3_f64.max(kkt.objective.abs() * 1e-4),
                "kkt {} vs barrier {}", kkt.objective, barrier.objective
            );
            prop_assert!(barrier.r <= spec.r_cap() + 1e-6);
        }
    }
}
