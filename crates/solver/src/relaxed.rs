//! The continuous relaxation solver (Proposition 1).
//!
//! Replacing `R_u ∈ ladder_u` with `r_u(1) ≤ R_u ≤ r_u(M_u)` yields a convex
//! program. Because the objective strictly decreases in `r`, the optimal `r`
//! is the smallest feasible one, `r = Σ w_u R_u / N`, and the problem
//! becomes: maximize `Σ β_u(1 − θ_u/R_u) + n·α·log(1 − Σ w_u R_u / N)` over
//! a box. The KKT stationarity condition introduces a single scalar price
//! `μ` on resource-block consumption:
//!
//! ```text
//! β_u θ_u / R_u² = w_u · μ          ⇒   R_u(μ) = clamp(√(β_u θ_u / (w_u μ)), lo_u, hi_u)
//! μ = n·α / (N·(1 − r(μ)))          (from the data term)
//! ```
//!
//! `μ ↦ μ·N·(1 − r(μ)) − n·α` is strictly increasing, so the fixed point is
//! found by bisection; a second bisection enforces the hard cap `r ≤ r_cap`
//! when it binds (always the case when there are no data flows).

use crate::spec::ProblemSpec;

/// A solution of the continuous relaxation.
#[derive(Debug, Clone, PartialEq)]
pub struct ContinuousSolution {
    /// Optimal (continuous) bitrate per flow, in spec order.
    pub rates: Vec<f64>,
    /// The implied video RB fraction `r`.
    pub r: f64,
    /// The objective (3) at this point (`-inf` when the instance is
    /// overloaded).
    pub objective: f64,
    /// `false` when even the all-minimum assignment violates the RB cap; the
    /// returned rates are then the per-flow floors.
    pub feasible: bool,
    /// The RB shadow price `μ` at the optimum (0 when no constraint binds).
    pub price: f64,
    /// Bisection iterations performed, for profiling/tracing (0 when the
    /// instance is solved without any bisection).
    pub steps: u64,
}

const BISECT_ITERS: usize = 200;

/// Per-flow stationary point at price `mu`, clamped into the box.
fn rate_at_price(lo: f64, hi: f64, beta: f64, theta: f64, weight: f64, mu: f64) -> f64 {
    if weight <= 0.0 {
        // The flow consumes no RBs per unit rate: saturate it.
        return hi;
    }
    let num = beta * theta;
    if num <= 0.0 {
        // No marginal utility at any rate: keep the floor.
        return lo;
    }
    if mu <= 0.0 {
        return hi;
    }
    (num / (weight * mu)).sqrt().clamp(lo, hi)
}

fn rates_at_price(spec: &ProblemSpec, mu: f64) -> Vec<f64> {
    spec.flows()
        .iter()
        .map(|f| {
            let (lo, hi) = f.bounds();
            rate_at_price(lo, hi, f.beta(), f.theta(), f.weight(), mu)
        })
        .collect()
}

fn fraction_at_price(spec: &ProblemSpec, mu: f64) -> f64 {
    spec.video_fraction(&rates_at_price(spec, mu))
}

/// Finds `mu` such that `r(mu) ≈ target` (assuming `r(0) > target`).
/// Adds the iterations performed to `steps`.
fn price_for_fraction(spec: &ProblemSpec, target: f64, steps: &mut u64) -> f64 {
    let mut lo = 0.0;
    let mut hi = 1.0;
    while fraction_at_price(spec, hi) > target {
        hi *= 4.0;
        *steps += 1;
        if hi > 1e30 {
            break;
        }
    }
    for _ in 0..BISECT_ITERS {
        let mid = 0.5 * (lo + hi);
        *steps += 1;
        if fraction_at_price(spec, mid) > target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    hi
}

/// Solves the continuous relaxation of (3)–(4).
///
/// Runs in `O(flows · iterations)` with two nested bisections at most; for
/// the paper's 128-client scaling experiment this is tens of microseconds.
///
/// # Example
///
/// ```
/// use flare_solver::{FlowSpec, ProblemSpec, solve_relaxed};
///
/// let spec = ProblemSpec::builder()
///     .total_rbs(500_000.0)
///     .data_flows(2, 1.0)
///     .flow(FlowSpec::new(vec![100e3, 500e3, 3000e3], 10.0, 200e3, 0.2, 2))
///     .build()?;
/// let sol = solve_relaxed(&spec);
/// assert!(sol.feasible);
/// assert!(sol.rates[0] >= 100e3 && sol.rates[0] <= 3000e3);
/// # Ok::<(), flare_solver::SpecError>(())
/// ```
pub fn solve_relaxed(spec: &ProblemSpec) -> ContinuousSolution {
    if spec.is_overloaded() {
        let rates: Vec<f64> = spec.flows().iter().map(|f| f.bounds().0).collect();
        let r = spec.video_fraction(&rates);
        return ContinuousSolution {
            objective: f64::NEG_INFINITY,
            r,
            rates,
            feasible: false,
            price: f64::INFINITY,
            steps: 0,
        };
    }

    let n = spec.total_rbs();
    let penalty = spec.n_data() as f64 * spec.alpha();
    let mut steps: u64 = 0;

    let mut mu = if penalty > 0.0 {
        // Fixed point of g(mu) = mu*N*(1 - r(mu)) - n*alpha, strictly
        // increasing in mu.
        let g = |mu: f64| mu * n * (1.0 - fraction_at_price(spec, mu)) - penalty;
        let mut lo = 0.0;
        let mut hi = 1.0;
        while g(hi) < 0.0 {
            hi *= 4.0;
            steps += 1;
            if hi > 1e30 {
                break;
            }
        }
        for _ in 0..BISECT_ITERS {
            let mid = 0.5 * (lo + hi);
            steps += 1;
            if g(mid) < 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    } else {
        0.0
    };

    // Enforce the hard cap r <= r_cap if it still binds.
    if fraction_at_price(spec, mu) > spec.r_cap() {
        mu = mu.max(price_for_fraction(spec, spec.r_cap(), &mut steps));
    }

    let rates = rates_at_price(spec, mu);
    let r = spec.video_fraction(&rates);
    let objective = spec.objective(&rates);
    ContinuousSolution {
        rates,
        r,
        objective,
        feasible: true,
        price: mu,
        steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::FlowSpec;
    use crate::utility::video_marginal;
    use proptest::prelude::*;

    /// Paper-style flow: ladder 100..3000 kbps, beta 10, theta 0.2 Mbps.
    fn paper_flow(weight: f64) -> FlowSpec {
        FlowSpec::new(
            vec![100e3, 250e3, 500e3, 1000e3, 2000e3, 3000e3],
            10.0,
            0.2e6,
            weight,
            5,
        )
    }

    /// A BAI of 10 s at 50 RB/TTI.
    const N: f64 = 500_000.0;

    /// Weight for a flow whose link sustains `bits_per_rb` bits per RB over
    /// a 10 s BAI: w = B / bits_per_rb = 10 / bits_per_rb.
    fn weight(bits_per_rb: f64) -> f64 {
        10.0 / bits_per_rb
    }

    #[test]
    fn saturates_when_cell_is_underloaded() {
        // One video flow on a great channel (656 bits/RB), no data flows:
        // capacity = 656*50k/10s = 3.28 Mbps > max ladder rate.
        let spec = ProblemSpec::builder()
            .total_rbs(N)
            .flow(paper_flow(weight(656.0)))
            .build()
            .unwrap();
        let sol = solve_relaxed(&spec);
        assert!(sol.feasible);
        assert_eq!(sol.rates[0], 3000e3);
        assert!(sol.r < 1.0);
    }

    #[test]
    fn capacity_cap_binds_without_data_flows() {
        // Poor channel: 32 bits/RB -> whole-cell capacity = 1.6 Mbps, below
        // the 3 Mbps ladder top, so the r <= 1 cap must bind.
        let spec = ProblemSpec::builder()
            .total_rbs(N)
            .flow(paper_flow(weight(32.0)))
            .build()
            .unwrap();
        let sol = solve_relaxed(&spec);
        assert!(sol.feasible);
        assert!(
            (sol.r - 1.0).abs() < 1e-6,
            "r should hit the cap, got {}",
            sol.r
        );
        assert!((sol.rates[0] - 1600e3).abs() < 1e3, "rate {}", sol.rates[0]);
    }

    #[test]
    fn data_flows_pull_video_rates_down() {
        let mk = |n_data| {
            let spec = ProblemSpec::builder()
                .total_rbs(N)
                .data_flows(n_data, 1.0)
                .flow(paper_flow(weight(128.0)))
                .build()
                .unwrap();
            solve_relaxed(&spec)
        };
        let none = mk(0);
        let some = mk(2);
        let many = mk(8);
        assert!(some.rates[0] < none.rates[0]);
        assert!(many.rates[0] < some.rates[0]);
        assert!(many.r < some.r);
    }

    #[test]
    fn alpha_trades_video_for_data() {
        let mk = |alpha: f64| {
            let spec = ProblemSpec::builder()
                .total_rbs(N)
                .data_flows(4, alpha)
                .flow(paper_flow(weight(128.0)))
                .build()
                .unwrap();
            solve_relaxed(&spec)
        };
        let low = mk(0.25);
        let high = mk(4.0);
        assert!(
            high.rates[0] < low.rates[0],
            "higher alpha must lower video rates"
        );
        assert!(high.r < low.r);
    }

    #[test]
    fn kkt_stationarity_holds_for_interior_flows() {
        let spec = ProblemSpec::builder()
            .total_rbs(N)
            .data_flows(4, 1.0)
            .flow(paper_flow(weight(128.0)))
            .flow(paper_flow(weight(256.0)))
            .build()
            .unwrap();
        let sol = solve_relaxed(&spec);
        for (f, &rate) in spec.flows().iter().zip(&sol.rates) {
            let (lo, hi) = f.bounds();
            if rate > lo * 1.0001 && rate < hi * 0.9999 {
                // marginal utility == weight * price
                let lhs = video_marginal(f.beta(), f.theta(), rate);
                let rhs = f.weight() * sol.price;
                assert!(
                    (lhs - rhs).abs() / rhs < 1e-6,
                    "stationarity violated: {lhs} vs {rhs}"
                );
            }
        }
        // Fixed point of the data term.
        let want = spec.n_data() as f64 * spec.alpha() / (N * (1.0 - sol.r));
        assert!((sol.price - want).abs() / want < 1e-6);
    }

    #[test]
    fn overloaded_instance_returns_floors() {
        // Terrible channel and a huge ladder floor: even minimum rates
        // exceed the cell.
        let f = FlowSpec::new(vec![5000e3, 6000e3], 10.0, 0.2e6, weight(16.0), 1);
        let spec = ProblemSpec::builder().total_rbs(N).flow(f).build().unwrap();
        let sol = solve_relaxed(&spec);
        assert!(!sol.feasible);
        assert_eq!(sol.rates, vec![5000e3]);
        assert_eq!(sol.objective, f64::NEG_INFINITY);
    }

    #[test]
    fn no_video_flows_is_trivially_solved() {
        let spec = ProblemSpec::builder()
            .total_rbs(N)
            .data_flows(3, 1.0)
            .build()
            .unwrap();
        let sol = solve_relaxed(&spec);
        assert!(sol.feasible);
        assert!(sol.rates.is_empty());
        assert_eq!(sol.r, 0.0);
        assert_eq!(sol.objective, 0.0);
    }

    #[test]
    fn solution_beats_grid_search() {
        // Brute-force the 2-flow relaxation on a grid and confirm the solver
        // is at least as good (within tolerance).
        let spec = ProblemSpec::builder()
            .total_rbs(N)
            .data_flows(3, 1.0)
            .flow(paper_flow(weight(128.0)))
            .flow(paper_flow(weight(328.0)))
            .build()
            .unwrap();
        let sol = solve_relaxed(&spec);
        let mut best = f64::NEG_INFINITY;
        let steps = 200;
        for i in 0..=steps {
            for j in 0..=steps {
                let r0 = 100e3 + (3000e3 - 100e3) * i as f64 / steps as f64;
                let r1 = 100e3 + (3000e3 - 100e3) * j as f64 / steps as f64;
                best = best.max(spec.objective(&[r0, r1]));
            }
        }
        assert!(
            sol.objective >= best - 1e-6,
            "solver {} worse than grid {}",
            sol.objective,
            best
        );
    }

    proptest! {
        #[test]
        fn feasibility_and_bounds_always_hold(
            bits_per_rb in prop::collection::vec(32.0f64..1424.0, 1..12),
            n_data in 0usize..8,
            alpha in 0.1f64..4.0,
        ) {
            let spec = ProblemSpec::builder()
                .total_rbs(N)
                .data_flows(n_data, alpha)
                .flows(bits_per_rb.iter().map(|&b| paper_flow(weight(b))))
                .build()
                .unwrap();
            let sol = solve_relaxed(&spec);
            prop_assert!(sol.feasible);
            prop_assert!(sol.r <= spec.r_cap() + 1e-6);
            for (f, &rate) in spec.flows().iter().zip(&sol.rates) {
                let (lo, hi) = f.bounds();
                prop_assert!(rate >= lo - 1e-9 && rate <= hi + 1e-9);
            }
        }

        #[test]
        fn local_perturbations_never_improve(
            bits_per_rb in prop::collection::vec(32.0f64..1424.0, 1..6),
            n_data in 1usize..6,
        ) {
            let spec = ProblemSpec::builder()
                .total_rbs(N)
                .data_flows(n_data, 1.0)
                .flows(bits_per_rb.iter().map(|&b| paper_flow(weight(b))))
                .build()
                .unwrap();
            let sol = solve_relaxed(&spec);
            for i in 0..sol.rates.len() {
                for delta in [-1e3, 1e3] {
                    let mut rates = sol.rates.clone();
                    let (lo, hi) = spec.flows()[i].bounds();
                    rates[i] = (rates[i] + delta).clamp(lo, hi);
                    prop_assert!(
                        spec.objective(&rates) <= sol.objective + 1e-7,
                        "perturbation improved the objective"
                    );
                }
            }
        }
    }
}
