//! Warm-started exact solves for consecutive per-BAI problems.
//!
//! The OneAPI server solves one discrete problem per cell per BAI, and the
//! problems it feeds the solver are highly repetitive: the ABR ladder and
//! utility shape (`beta`, `theta`) almost never change, channel churn moves
//! only some flows' `weight` (RB cost per bit), and in a settled cell the
//! whole spec is frequently *identical* to the previous BAI's.
//!
//! [`WarmSolver`] exploits both levels of repetition while staying
//! **bit-identical** to a cold [`solve_discrete`](crate::solve_discrete)
//! call — levels, rates, `r`, objective, *and* the `steps` work counter
//! (which is recorded in golden traces):
//!
//! 1. **Whole-solution reuse.** If the spec equals the previous one
//!    exactly, the cached [`DiscreteSolution`] is returned without
//!    re-running the ascent. Equality of inputs to a deterministic solver
//!    implies bit-equality of outputs, so this is just memoization.
//! 2. **Per-flow utility tables.** Otherwise the shared solve core runs on
//!    per-flow `utility(ladder[l])` tables that are re-seeded only for
//!    flows whose utility basis `(ladder, beta, theta)` changed. Tables
//!    hold exactly the values inline evaluation would compute, and they do
//!    not depend on `weight` or `max_level`, so inter-BAI channel churn
//!    and one-step-up cap movement leave them valid.
//!
//! What is deliberately *not* carried over: the greedy ascent's gain heap.
//! Reusing it would start the ascent from a different state, changing the
//! accepted-step sequence (and `steps`) even when the final levels agree —
//! which would break the byte-identity contract between warm and cold
//! solves. The equivalence is pinned by a proptest over perturbed
//! consecutive BAI sequences below.

use crate::discrete::{level_utils, solve_core};
use crate::spec::ProblemSpec;
use crate::DiscreteSolution;

/// The inputs a flow's utility table depends on. `weight` and the level
/// bounds are deliberately excluded: they change per BAI without affecting
/// `utility(ladder[l])`.
#[derive(Debug, Clone, PartialEq)]
struct UtilityBasis {
    ladder: Vec<f64>,
    beta: f64,
    theta: f64,
}

/// An exact solver that carries reusable state across consecutive solves.
/// See the module docs for the contract; construct one per coordination
/// entity (e.g. per OneAPI server) and call [`WarmSolver::solve`] each BAI.
#[derive(Debug, Default)]
pub struct WarmSolver {
    last: Option<(ProblemSpec, DiscreteSolution)>,
    basis: Vec<UtilityBasis>,
    utils: Vec<Vec<f64>>,
    hits: u64,
    misses: u64,
    reseeded_flows: u64,
}

impl WarmSolver {
    /// Creates a cold solver; the first solve seeds every table.
    pub fn new() -> Self {
        WarmSolver::default()
    }

    /// Solves `spec`, reusing whatever carried state is still exact.
    /// The result is bit-identical to `solve_discrete(&spec)` in every
    /// field, including `steps`.
    ///
    /// Takes the spec by value: callers build a fresh spec every BAI, and
    /// taking ownership lets the memo store it without re-cloning every
    /// flow's ladder — at 512 clients that clone would cost more than the
    /// table reuse saves.
    pub fn solve(&mut self, spec: ProblemSpec) -> DiscreteSolution {
        if let Some((prev, sol)) = &self.last {
            if *prev == spec {
                self.hits += 1;
                return sol.clone();
            }
        }
        self.misses += 1;
        let n = spec.flows().len();
        self.basis.truncate(n);
        self.utils.truncate(n);
        for (i, f) in spec.flows().iter().enumerate() {
            // Compare against the stored basis without materializing a
            // candidate: in the common no-churn case this loop must stay
            // allocation-free or it eats the warm-up saving at high client
            // counts.
            let unchanged = self.basis.get(i).is_some_and(|b| {
                b.ladder == f.ladder() && b.beta == f.beta() && b.theta == f.theta()
            });
            if unchanged {
                continue;
            }
            self.reseeded_flows += 1;
            let basis = UtilityBasis {
                ladder: f.ladder().to_vec(),
                beta: f.beta(),
                theta: f.theta(),
            };
            let utils = level_utils(f);
            if i < self.basis.len() {
                self.basis[i] = basis;
                self.utils[i] = utils;
            } else {
                self.basis.push(basis);
                self.utils.push(utils);
            }
        }
        let sol = solve_core(&spec, &self.utils);
        self.last = Some((spec, sol.clone()));
        sol
    }

    /// Solves served straight from the previous BAI's cached solution.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Solves that ran the core (with whatever tables were still valid).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Per-flow utility tables rebuilt because `(ladder, beta, theta)`
    /// changed (or the flow was new). Low churn keeps this near zero after
    /// the first solve.
    pub fn reseeded_flows(&self) -> u64 {
        self.reseeded_flows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve_discrete;
    use crate::spec::FlowSpec;
    use proptest::prelude::*;

    const N: f64 = 500_000.0;
    const LADDER: [f64; 6] = [100e3, 250e3, 500e3, 1000e3, 2000e3, 3000e3];

    fn paper_flow(bits_per_rb: f64, max_level: usize) -> FlowSpec {
        FlowSpec::new(LADDER.to_vec(), 10.0, 0.2e6, 10.0 / bits_per_rb, max_level)
    }

    fn spec_of(flows: &[(f64, usize)]) -> ProblemSpec {
        ProblemSpec::builder()
            .total_rbs(N)
            .data_flows(4, 1.0)
            .flows(flows.iter().map(|&(b, cap)| paper_flow(b, cap)))
            .build()
            .unwrap()
    }

    fn assert_bit_identical(warm: &DiscreteSolution, cold: &DiscreteSolution) {
        assert_eq!(warm.levels, cold.levels);
        assert_eq!(warm.steps, cold.steps, "work counters must match too");
        assert!(warm.rates.iter().zip(&cold.rates).all(|(a, b)| a == b));
        assert_eq!(warm.r.to_bits(), cold.r.to_bits());
        assert_eq!(warm.objective.to_bits(), cold.objective.to_bits());
    }

    #[test]
    fn identical_consecutive_specs_hit_the_cache() {
        let mut warm = WarmSolver::new();
        let spec = spec_of(&[(700.0, 5), (300.0, 4), (90.0, 3)]);
        let first = warm.solve(spec.clone());
        let second = warm.solve(spec.clone());
        assert_eq!(warm.hits(), 1);
        assert_eq!(warm.misses(), 1);
        assert_bit_identical(&second, &first);
        assert_bit_identical(&first, &solve_discrete(&spec));
    }

    #[test]
    fn weight_churn_keeps_utility_tables() {
        let mut warm = WarmSolver::new();
        warm.solve(spec_of(&[(700.0, 5), (300.0, 4)]));
        assert_eq!(warm.reseeded_flows(), 2, "first solve seeds every flow");
        // Channel moved (weights changed), caps moved: tables stay valid.
        let next = spec_of(&[(650.0, 4), (310.0, 5)]);
        let got = warm.solve(next.clone());
        assert_eq!(warm.reseeded_flows(), 2, "no basis changed, no reseed");
        assert_bit_identical(&got, &solve_discrete(&next));
    }

    #[test]
    fn ladder_change_reseeds_that_flow() {
        let mut warm = WarmSolver::new();
        warm.solve(spec_of(&[(700.0, 5), (300.0, 4)]));
        let changed = FlowSpec::new(vec![200e3, 400e3, 800e3], 10.0, 0.2e6, 10.0 / 700.0, 2);
        let next = ProblemSpec::builder()
            .total_rbs(N)
            .data_flows(4, 1.0)
            .flow(changed)
            .flow(paper_flow(300.0, 4))
            .build()
            .unwrap();
        let got = warm.solve(next.clone());
        assert_eq!(warm.reseeded_flows(), 3, "only the changed flow reseeds");
        assert_bit_identical(&got, &solve_discrete(&next));
    }

    #[test]
    fn client_count_can_shrink_and_grow() {
        let mut warm = WarmSolver::new();
        warm.solve(spec_of(&[(700.0, 5), (300.0, 4), (90.0, 3)]));
        let fewer = spec_of(&[(700.0, 5)]);
        assert_bit_identical(&warm.solve(fewer.clone()), &solve_discrete(&fewer));
        let more = spec_of(&[(700.0, 5), (301.0, 4), (95.0, 2), (1400.0, 5)]);
        assert_bit_identical(&warm.solve(more.clone()), &solve_discrete(&more));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        /// The satellite equivalence contract: over perturbed consecutive
        /// BAI specs (weight/cap churn on a random subset of flows each
        /// step, as a real cell produces), every warm solve is bit-identical
        /// to a cold solve of the same spec.
        #[test]
        fn warm_equals_cold_over_perturbed_bai_sequences(
            base in prop::collection::vec((32.0f64..1424.0, 0usize..6), 1..8),
            churn in prop::collection::vec(
                prop::collection::vec((0.0f64..1.0, 32.0f64..1424.0, 0usize..6), 1..8),
                1..6,
            ),
        ) {
            let mut warm = WarmSolver::new();
            let mut flows = base;
            for step in churn {
                for (flow, (select, bits, cap)) in flows.iter_mut().zip(step) {
                    // ~40% of flows churn per BAI; the rest carry over.
                    if select < 0.4 {
                        *flow = (bits, cap);
                    }
                }
                let spec = spec_of(&flows);
                let got = warm.solve(spec.clone());
                let cold = solve_discrete(&spec);
                prop_assert_eq!(&got.levels, &cold.levels);
                prop_assert_eq!(got.steps, cold.steps);
                prop_assert_eq!(got.r.to_bits(), cold.r.to_bits());
                prop_assert_eq!(got.objective.to_bits(), cold.objective.to_bits());
            }
        }
    }
}
