//! Problem specification: flows, parameters, and validation.

use std::fmt;

use crate::utility::{data_utility, video_utility};

/// One video flow's contribution to the assignment problem.
///
/// All rates are plain `f64` bits/second — the solver is deliberately
/// decoupled from the simulation crates so it can be tested and benchmarked
/// in isolation.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowSpec {
    ladder: Vec<f64>,
    beta: f64,
    theta: f64,
    weight: f64,
    max_level: usize,
    min_level: usize,
}

impl FlowSpec {
    /// Creates a flow spec.
    ///
    /// * `ladder` — ascending positive bitrates (bits/second).
    /// * `beta`, `theta` — utility parameters (see
    ///   [`crate::utility::video_utility`]).
    /// * `weight` — `w_u = B·n_u / bits_u`: RBs this flow needs per unit of
    ///   assigned bitrate, extrapolated from the previous BAI.
    /// * `max_level` — the stability cap `L_u^{prev} + 1`, clamped to the
    ///   ladder.
    ///
    /// # Panics
    ///
    /// Panics if the ladder is empty/unsorted/non-positive, or any parameter
    /// is non-finite or negative.
    pub fn new(ladder: Vec<f64>, beta: f64, theta: f64, weight: f64, max_level: usize) -> Self {
        assert!(!ladder.is_empty(), "ladder must be non-empty");
        assert!(ladder[0] > 0.0, "bitrates must be positive");
        assert!(
            ladder.windows(2).all(|w| w[0] < w[1]),
            "ladder must be strictly ascending"
        );
        for v in [beta, theta, weight] {
            assert!(
                v.is_finite() && v >= 0.0,
                "parameters must be finite and non-negative"
            );
        }
        let max_level = max_level.min(ladder.len() - 1);
        FlowSpec {
            ladder,
            beta,
            theta,
            weight,
            max_level,
            min_level: 0,
        }
    }

    /// Restricts the flow to levels at or above `min_level` (a client-side
    /// constraint, e.g. a floor the user configured). Clamped to
    /// `max_level`.
    pub fn with_min_level(mut self, min_level: usize) -> Self {
        self.min_level = min_level.min(self.max_level);
        self
    }

    /// The ladder in bits/second, ascending.
    pub fn ladder(&self) -> &[f64] {
        &self.ladder
    }

    /// Utility weight `β_u`.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Screen-size parameter `θ_u` (bits/second).
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// RBs needed per unit bitrate (`w_u`).
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// Highest permitted ladder index (stability cap and client caps).
    pub fn max_level(&self) -> usize {
        self.max_level
    }

    /// Lowest permitted ladder index.
    pub fn min_level(&self) -> usize {
        self.min_level
    }

    /// The continuous box `[lo, hi]` for the relaxation.
    pub fn bounds(&self) -> (f64, f64) {
        (self.ladder[self.min_level], self.ladder[self.max_level])
    }

    /// Video utility at `rate`.
    pub fn utility(&self, rate: f64) -> f64 {
        video_utility(self.beta, self.theta, rate)
    }
}

/// An invalid [`ProblemSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The RB budget is not positive.
    NonPositiveBudget,
    /// `alpha` is negative or not finite.
    InvalidAlpha,
    /// The video-RB fraction cap is outside `(0, 1]`.
    InvalidRCap,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::NonPositiveBudget => write!(f, "total RB budget must be positive"),
            SpecError::InvalidAlpha => write!(f, "alpha must be finite and non-negative"),
            SpecError::InvalidRCap => write!(f, "r_cap must lie in (0, 1]"),
        }
    }
}

impl std::error::Error for SpecError {}

/// The full per-BAI assignment problem.
#[derive(Debug, Clone, PartialEq)]
pub struct ProblemSpec {
    flows: Vec<FlowSpec>,
    n_data: usize,
    alpha: f64,
    total_rbs: f64,
    r_cap: f64,
}

impl ProblemSpec {
    /// Starts building a spec.
    pub fn builder() -> ProblemSpecBuilder {
        ProblemSpecBuilder::default()
    }

    /// The video flows.
    pub fn flows(&self) -> &[FlowSpec] {
        &self.flows
    }

    /// Number of data flows (`n`).
    pub fn n_data(&self) -> usize {
        self.n_data
    }

    /// Data-vs-video priority knob (`α`).
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Total RBs available over the BAI (`N`).
    pub fn total_rbs(&self) -> f64 {
        self.total_rbs
    }

    /// Hard ceiling on the video fraction `r` (1.0 means video may take the
    /// whole cell when no data flows exist).
    pub fn r_cap(&self) -> f64 {
        self.r_cap
    }

    /// The video fraction `r = Σ w_u R_u / N` implied by `rates`.
    pub fn video_fraction(&self, rates: &[f64]) -> f64 {
        let used: f64 = self
            .flows
            .iter()
            .zip(rates)
            .map(|(f, &r)| f.weight() * r)
            .sum();
        used / self.total_rbs
    }

    /// The objective (3) at the given rates, taking `r` at its minimum
    /// feasible value. Returns `-inf` for infeasible rate vectors
    /// (`r > r_cap`).
    pub fn objective(&self, rates: &[f64]) -> f64 {
        assert_eq!(rates.len(), self.flows.len(), "one rate per flow");
        let r = self.video_fraction(rates);
        if r > self.r_cap + 1e-12 {
            return f64::NEG_INFINITY;
        }
        let video: f64 = self
            .flows
            .iter()
            .zip(rates)
            .map(|(f, &rate)| f.utility(rate))
            .sum();
        video + data_utility(self.n_data, self.alpha, r.min(1.0))
    }

    /// `true` when the all-minimum assignment already violates the cap — the
    /// cell is overloaded and the solvers will return the floor assignment.
    pub fn is_overloaded(&self) -> bool {
        let floor: Vec<f64> = self.flows.iter().map(|f| f.bounds().0).collect();
        self.video_fraction(&floor) > self.r_cap
    }
}

/// Builder for [`ProblemSpec`].
#[derive(Debug, Clone)]
pub struct ProblemSpecBuilder {
    flows: Vec<FlowSpec>,
    n_data: usize,
    alpha: f64,
    total_rbs: f64,
    r_cap: Option<f64>,
}

impl Default for ProblemSpecBuilder {
    fn default() -> Self {
        ProblemSpecBuilder {
            flows: Vec::new(),
            n_data: 0,
            alpha: 1.0,
            total_rbs: 0.0,
            r_cap: None,
        }
    }
}

impl ProblemSpecBuilder {
    /// Adds one video flow.
    pub fn flow(mut self, flow: FlowSpec) -> Self {
        self.flows.push(flow);
        self
    }

    /// Adds many video flows.
    pub fn flows(mut self, flows: impl IntoIterator<Item = FlowSpec>) -> Self {
        self.flows.extend(flows);
        self
    }

    /// Sets the data-flow count `n` and priority `α`.
    pub fn data_flows(mut self, n: usize, alpha: f64) -> Self {
        self.n_data = n;
        self.alpha = alpha;
        self
    }

    /// Sets the RB budget `N` for the BAI.
    pub fn total_rbs(mut self, n: f64) -> Self {
        self.total_rbs = n;
        self
    }

    /// Overrides the ceiling on the video fraction `r`.
    pub fn r_cap(mut self, cap: f64) -> Self {
        self.r_cap = Some(cap);
        self
    }

    /// Validates and builds the spec.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] when the budget, `α`, or `r_cap` is invalid.
    pub fn build(self) -> Result<ProblemSpec, SpecError> {
        // NaN budgets must fail too, hence the inverted comparison.
        if self.total_rbs.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(SpecError::NonPositiveBudget);
        }
        if !self.alpha.is_finite() || self.alpha < 0.0 {
            return Err(SpecError::InvalidAlpha);
        }
        // With data flows present, log(1-r) forbids r = 1 anyway; keep a
        // hair of margin for numerical safety. Without them video may take
        // the entire cell.
        let default_cap = if self.n_data > 0 { 0.999 } else { 1.0 };
        let r_cap = self.r_cap.unwrap_or(default_cap);
        if !(r_cap > 0.0 && r_cap <= 1.0) {
            return Err(SpecError::InvalidRCap);
        }
        Ok(ProblemSpec {
            flows: self.flows,
            n_data: self.n_data,
            alpha: self.alpha,
            total_rbs: self.total_rbs,
            r_cap,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow() -> FlowSpec {
        FlowSpec::new(vec![100e3, 250e3, 500e3, 1000e3], 10.0, 200e3, 0.2, 3)
    }

    #[test]
    fn flow_spec_accessors() {
        let f = flow();
        assert_eq!(f.ladder().len(), 4);
        assert_eq!(f.bounds(), (100e3, 1000e3));
        assert_eq!(f.max_level(), 3);
        assert_eq!(f.min_level(), 0);
        assert!((f.utility(200e3)).abs() < 1e-12);
    }

    #[test]
    fn max_level_clamps_to_ladder() {
        let f = FlowSpec::new(vec![100e3, 250e3], 10.0, 200e3, 0.2, 99);
        assert_eq!(f.max_level(), 1);
    }

    #[test]
    fn min_level_clamps_to_max() {
        let f = flow().with_min_level(99);
        assert_eq!(f.min_level(), f.max_level());
        let g = flow().with_min_level(1);
        assert_eq!(g.bounds(), (250e3, 1000e3));
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_ladder_panics() {
        let _ = FlowSpec::new(vec![500e3, 100e3], 10.0, 200e3, 0.2, 1);
    }

    #[test]
    fn builder_validates() {
        assert_eq!(
            ProblemSpec::builder().build().unwrap_err(),
            SpecError::NonPositiveBudget
        );
        assert_eq!(
            ProblemSpec::builder()
                .total_rbs(100.0)
                .data_flows(1, -1.0)
                .build()
                .unwrap_err(),
            SpecError::InvalidAlpha
        );
        assert_eq!(
            ProblemSpec::builder()
                .total_rbs(100.0)
                .r_cap(0.0)
                .build()
                .unwrap_err(),
            SpecError::InvalidRCap
        );
        assert!(ProblemSpec::builder().total_rbs(100.0).build().is_ok());
    }

    #[test]
    fn default_r_cap_depends_on_data_flows() {
        let with_data = ProblemSpec::builder()
            .total_rbs(100.0)
            .data_flows(2, 1.0)
            .build()
            .unwrap();
        assert!(with_data.r_cap() < 1.0);
        let without = ProblemSpec::builder().total_rbs(100.0).build().unwrap();
        assert_eq!(without.r_cap(), 1.0);
    }

    #[test]
    fn video_fraction_and_objective() {
        let spec = ProblemSpec::builder()
            .total_rbs(1000.0)
            .data_flows(2, 1.0)
            .flow(flow())
            .build()
            .unwrap();
        // weight 0.2 at 1 Mbps = 200,000 RBs?? No: weight is per bps, so
        // 0.2e-3 would be realistic; use the numbers as plain math here.
        let r = spec.video_fraction(&[500e3]);
        assert_eq!(r, 0.2 * 500e3 / 1000.0);
        assert_eq!(spec.objective(&[500e3]), f64::NEG_INFINITY);
    }

    #[test]
    fn objective_combines_video_and_data_terms() {
        let f = FlowSpec::new(vec![100e3, 500e3], 10.0, 200e3, 1e-3, 1);
        let spec = ProblemSpec::builder()
            .total_rbs(1000.0)
            .data_flows(1, 1.0)
            .flow(f)
            .build()
            .unwrap();
        // r = 1e-3 * 500e3 / 1000 = 0.5.
        let got = spec.objective(&[500e3]);
        let want = 10.0 * (1.0 - 200e3 / 500e3) + (0.5f64).ln();
        assert!((got - want).abs() < 1e-12);
    }

    #[test]
    fn overload_detection() {
        let f = FlowSpec::new(vec![100e3], 10.0, 200e3, 1.0, 0);
        let spec = ProblemSpec::builder()
            .total_rbs(1000.0)
            .flow(f)
            .build()
            .unwrap();
        assert!(spec.is_overloaded());
    }
}
