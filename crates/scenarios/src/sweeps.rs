//! Parameter sweeps: α (Figure 11), δ (Figure 12), and the exact-vs-relaxed
//! solver comparison (Figure 8).

use flare_core::{FlareConfig, SolveMode};
use flare_has::BitrateLadder;
use flare_lte::mobility::MobilityConfig;
use flare_metrics::Summary;
use flare_sim::TimeDelta;

use crate::config::{ChannelKind, SchemeKind, SimConfig};
use crate::runner::{CellSim, RunResult};

/// One α operating point: the throughput each flow class achieved.
#[derive(Debug, Clone)]
pub struct AlphaPoint {
    /// The α value.
    pub alpha: f64,
    /// Per-video-flow average throughput (kbps) across runs.
    pub video_throughput: Summary,
    /// Per-data-flow average throughput (kbps) across runs.
    pub data_throughput: Summary,
}

/// Sweeps α over FLARE runs with coexisting video and data flows
/// (Figure 11: α from 0.25 to 4 doubling; 8 video + 8 data UEs).
#[allow(clippy::too_many_arguments)]
pub fn alpha_sweep(
    alphas: &[f64],
    n_runs: usize,
    n_video: usize,
    n_data: usize,
    duration: TimeDelta,
    seed0: u64,
    jobs: usize,
) -> Vec<AlphaPoint> {
    alphas
        .iter()
        .map(|&alpha| {
            let runs = flare_harness::run_indexed(n_runs, jobs, |i| {
                let config = FlareConfig::default().with_alpha(alpha);
                let sim = SimConfig::builder()
                    .seed(seed0 + i as u64)
                    .duration(duration)
                    .videos(n_video)
                    .data_flows(n_data)
                    .channel(ChannelKind::StationaryRandom(MobilityConfig::default()))
                    .scheme(SchemeKind::Flare(config))
                    .build();
                CellSim::new(sim).run()
            });
            let mut video = Vec::new();
            let mut data = Vec::new();
            for r in &runs {
                video.extend(r.videos.iter().map(|v| v.average_throughput.as_kbps()));
                data.extend(r.data.iter().map(|d| d.average_throughput.as_kbps()));
            }
            AlphaPoint {
                alpha,
                video_throughput: Summary::of(&video),
                data_throughput: Summary::of(&data),
            }
        })
        .collect()
}

/// One δ operating point: bitrate and stability.
#[derive(Debug, Clone)]
pub struct DeltaPoint {
    /// The δ value.
    pub delta: u32,
    /// Per-client average bitrate (kbps) across runs.
    pub average_rate: Summary,
    /// Per-client bitrate-change count across runs.
    pub bitrate_changes: Summary,
}

/// Sweeps δ over FLARE runs (Figure 12: δ from 1 to 12). Run on the mobile
/// scenario so that the stability filter actually has variation to damp.
pub fn delta_sweep(
    deltas: &[u32],
    n_runs: usize,
    duration: TimeDelta,
    seed0: u64,
    jobs: usize,
) -> Vec<DeltaPoint> {
    deltas
        .iter()
        .map(|&delta| {
            let runs = flare_harness::run_indexed(n_runs, jobs, |i| {
                let config = FlareConfig::default().with_delta(delta);
                let sim = SimConfig::builder()
                    .seed(seed0 + i as u64)
                    .duration(duration)
                    .videos(8)
                    .data_flows(0)
                    .channel(ChannelKind::Mobile(MobilityConfig::default()))
                    .scheme(SchemeKind::Flare(config))
                    .build();
                CellSim::new(sim).run()
            });
            let mut rates = Vec::new();
            let mut changes = Vec::new();
            for r in &runs {
                rates.extend(r.videos.iter().map(|v| v.stats.average_rate.as_kbps()));
                changes.extend(r.videos.iter().map(|v| v.stats.bitrate_changes as f64));
            }
            DeltaPoint {
                delta,
                average_rate: Summary::of(&rates),
                bitrate_changes: Summary::of(&changes),
            }
        })
        .collect()
}

/// A FLARE run pair for Figure 8: the same scenario solved exactly and via
/// the continuous relaxation (with the fine-grained {100..1200} ladder the
/// figure uses).
#[derive(Debug, Clone)]
pub struct SolverComparison {
    /// Scenario label ("static" / "mobile").
    pub scenario: &'static str,
    /// Runs with the exact discrete solver.
    pub exact: Vec<RunResult>,
    /// Runs with the continuous relaxation + rounding.
    pub relaxed: Vec<RunResult>,
}

/// Runs the exact-vs-relaxed comparison on one scenario kind.
pub fn solver_comparison(
    mobile: bool,
    n_runs: usize,
    duration: TimeDelta,
    seed0: u64,
    jobs: usize,
) -> SolverComparison {
    let channel = || {
        if mobile {
            ChannelKind::Mobile(MobilityConfig::default())
        } else {
            ChannelKind::StationaryRandom(MobilityConfig::default())
        }
    };
    let run = |mode: SolveMode, seed: u64| {
        let config = FlareConfig::default().with_solve_mode(mode);
        let sim = SimConfig::builder()
            .seed(seed)
            .duration(duration)
            .videos(8)
            .data_flows(0)
            .ladder(BitrateLadder::fine_grained())
            .channel(channel())
            .scheme(SchemeKind::Flare(config))
            .build();
        CellSim::new(sim).run()
    };
    SolverComparison {
        scenario: if mobile { "mobile" } else { "static" },
        exact: flare_harness::run_indexed(n_runs, jobs, |i| {
            run(SolveMode::Exact, seed0 + i as u64)
        }),
        relaxed: flare_harness::run_indexed(n_runs, jobs, |i| {
            run(SolveMode::Relaxed, seed0 + i as u64)
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::pooled_rates;

    const SHORT: TimeDelta = TimeDelta::from_secs(200);

    #[test]
    fn alpha_trades_video_for_data() {
        let points = alpha_sweep(&[0.25, 4.0], 1, 4, 4, SHORT, 21, 1);
        assert_eq!(points.len(), 2);
        // Raising alpha must raise data throughput and lower video's.
        assert!(
            points[1].data_throughput.mean >= points[0].data_throughput.mean,
            "data: {} vs {}",
            points[1].data_throughput.mean,
            points[0].data_throughput.mean
        );
        assert!(
            points[1].video_throughput.mean <= points[0].video_throughput.mean,
            "video: {} vs {}",
            points[1].video_throughput.mean,
            points[0].video_throughput.mean
        );
    }

    #[test]
    fn delta_increases_stability() {
        let points = delta_sweep(&[1, 12], 1, SHORT, 22, 1);
        assert!(
            points[1].bitrate_changes.mean <= points[0].bitrate_changes.mean,
            "changes: {} vs {}",
            points[1].bitrate_changes.mean,
            points[0].bitrate_changes.mean
        );
        assert!(
            points[1].average_rate.mean <= points[0].average_rate.mean + 1.0,
            "rate: {} vs {}",
            points[1].average_rate.mean,
            points[0].average_rate.mean
        );
    }

    #[test]
    fn relaxation_stays_close_to_exact() {
        let cmp = solver_comparison(false, 1, SHORT, 23, 2);
        let exact = flare_metrics::Summary::of(&pooled_rates(&cmp.exact)).mean;
        let relaxed = flare_metrics::Summary::of(&pooled_rates(&cmp.relaxed)).mean;
        // Paper: the relaxation loses at most ~15% average bitrate.
        assert!(
            relaxed >= exact * 0.7,
            "relaxed {relaxed} too far below exact {exact}"
        );
        assert!(
            relaxed <= exact * 1.15,
            "relaxed {relaxed} unexpectedly above exact {exact}"
        );
    }
}
