//! Solver computation-time scaling (Figure 9).
//!
//! The paper plots CDFs of the per-BAI bitrate-selection time with 32, 64,
//! and 128 video clients in a cell, reporting times far below a segment
//! duration (≤ ~12 ms with KNITRO). We measure our solvers the same way:
//! per-BAI problems whose weights come from seeded, realistically
//! distributed channel states.

use std::time::{Duration, Instant};

use flare_core::{FlareConfig, SolveMode};
use flare_lte::mobility::MobilityConfig;
use flare_sim::rng::stream;
use flare_sim::TimeDelta;
use flare_solver::{round_down, solve_discrete, solve_relaxed, FlowSpec, ProblemSpec};
use rand::Rng;

use crate::cell::{cell_config, static_run};
use crate::config::{ChannelKind, SchemeKind};
use crate::multicell::MultiCellSim;

/// Builds one per-BAI assignment problem with `n_clients` video flows whose
/// channel efficiencies are drawn from the full iTbs range.
pub fn synthetic_problem(n_clients: usize, seed: u64) -> ProblemSpec {
    let mut rng = stream(seed, "scaling", n_clients as u64);
    let ladder: Vec<f64> = vec![100e3, 250e3, 500e3, 1000e3, 2000e3, 3000e3];
    let flows: Vec<FlowSpec> = (0..n_clients)
        .map(|_| {
            // Bits per RB spanning iTbs 0..=26 with 2x MIMO: 32..=1424.
            let bits_per_rb = rng.gen_range(32.0..1424.0);
            let weight = 10.0 / bits_per_rb;
            let max_level = rng.gen_range(0..ladder.len());
            FlowSpec::new(ladder.clone(), 10.0, 0.2e6, weight, max_level)
        })
        .collect();
    ProblemSpec::builder()
        .total_rbs(500_000.0)
        .data_flows(4, 1.0)
        .flows(flows)
        .build()
        .expect("valid synthetic spec")
}

/// Builds `n_bais` *consecutive* per-BAI problems for the same `n_clients`
/// flows, where each step re-draws only a `churn` fraction of the flows
/// (channel moved enough to change `bits_per_rb`, or the ABR ladder cap
/// `max_level` shifted) and leaves the rest byte-identical.
///
/// This is the inter-BAI workload the warm-start solver exploits: churn in
/// a real cell is small between consecutive 10 s BAIs, so most per-flow
/// state carries over unchanged.
pub fn synthetic_problem_sequence(
    n_clients: usize,
    n_bais: usize,
    seed: u64,
    churn: f64,
) -> Vec<ProblemSpec> {
    assert!((0.0..=1.0).contains(&churn), "churn is a probability");
    let mut rng = stream(seed, "scaling-seq", n_clients as u64);
    let ladder: Vec<f64> = vec![100e3, 250e3, 500e3, 1000e3, 2000e3, 3000e3];
    let draw = |rng: &mut rand::rngs::SmallRng| {
        let bits_per_rb: f64 = rng.gen_range(32.0..1424.0);
        let max_level = rng.gen_range(0..6usize);
        (bits_per_rb, max_level)
    };
    let mut flows: Vec<(f64, usize)> = (0..n_clients).map(|_| draw(&mut rng)).collect();
    let mut specs = Vec::with_capacity(n_bais);
    for _ in 0..n_bais {
        let flow_specs: Vec<FlowSpec> = flows
            .iter()
            .map(|&(bits_per_rb, max_level)| {
                FlowSpec::new(ladder.clone(), 10.0, 0.2e6, 10.0 / bits_per_rb, max_level)
            })
            .collect();
        specs.push(
            ProblemSpec::builder()
                .total_rbs(500_000.0)
                .data_flows(4, 1.0)
                .flows(flow_specs)
                .build()
                .expect("valid synthetic spec"),
        );
        for flow in &mut flows {
            if rng.gen_bool(churn) {
                *flow = draw(&mut rng);
            }
        }
    }
    specs
}

/// Measures `iterations` per-BAI solves with `n_clients` flows, returning
/// one wall-clock duration per solve.
///
/// Timing samples are **always collected serially on the calling thread**:
/// with `jobs > 1`, a first pass fans the solves across workers for their
/// *results* only (and the serially-timed solutions are asserted identical
/// to them, making the jobs-independence contract executable), then a
/// dedicated serial pass takes the wall-clock samples. Timing inside the
/// worker pool would let core contention inflate the Figure 9 numbers.
pub fn measure_solve_times(
    n_clients: usize,
    iterations: usize,
    mode: SolveMode,
    seed: u64,
    jobs: usize,
) -> Vec<Duration> {
    let solve = move |spec: &ProblemSpec| -> Vec<usize> {
        match mode {
            SolveMode::Exact => solve_discrete(spec).levels,
            SolveMode::Relaxed => round_down(spec, &solve_relaxed(spec)).levels,
        }
    };
    let parallel_levels = (jobs > 1).then(|| {
        flare_harness::run_indexed(iterations, jobs, |i| {
            solve(&synthetic_problem(n_clients, seed + i as u64))
        })
    });
    let mut times = Vec::with_capacity(iterations);
    for i in 0..iterations {
        let spec = synthetic_problem(n_clients, seed + i as u64);
        let started = Instant::now();
        let levels = solve(&spec);
        times.push(started.elapsed());
        if let Some(parallel) = &parallel_levels {
            assert_eq!(
                levels, parallel[i],
                "solve {i}: parallel result diverged from the serially timed one"
            );
        }
    }
    times
}

/// Milliseconds as `f64` for CDF construction.
pub fn as_millis(times: &[Duration]) -> Vec<f64> {
    times.iter().map(|t| t.as_secs_f64() * 1000.0).collect()
}

/// Outcome of one multi-cell scaling sweep: `cells` FLARE cells (the fig6
/// static workload) simulated on up to `jobs` worker threads.
///
/// This is the COMETS-style many-cell headroom demonstration: wall-clock to
/// simulate N cells, and the aggregate TTI rate the machine sustained.
#[derive(Debug, Clone)]
pub struct MultiCellScaling {
    /// Number of cells simulated.
    pub cells: usize,
    /// Simulated duration of each cell.
    pub duration: TimeDelta,
    /// Worker threads used (`0` = all cores, `1` = serial).
    pub jobs: usize,
    /// Whether cells ran under the BAI-barrier coordination loop
    /// ([`MultiCellSim`]) or as fully independent uncoordinated runs.
    pub coordinated: bool,
    /// BAI barriers executed (0 for the uncoordinated path).
    pub barriers: u64,
    /// Total wall-clock time for the whole sweep.
    pub wall: Duration,
    /// Total TTIs simulated across all cells (1 TTI per simulated ms).
    pub ttis: u64,
}

impl MultiCellScaling {
    /// Aggregate simulated TTIs per wall-clock second.
    pub fn ttis_per_sec(&self) -> f64 {
        self.ttis as f64 / self.wall.as_secs_f64().max(1e-9)
    }
}

/// The per-cell configuration both sweeps simulate: the fig6 static
/// scenario (8 stationary video UEs under FLARE), seeded per cell.
fn sweep_cell_config(seed: u64, cell: usize, duration: TimeDelta) -> crate::config::SimConfig {
    cell_config(
        SchemeKind::Flare(FlareConfig::default()),
        ChannelKind::StationaryRandom(MobilityConfig::default()),
        8,
        0,
        seed + cell as u64,
        duration,
    )
}

/// Simulates `cells` FLARE cells of `duration` each (seeds
/// `seed..seed+cells`) through the sharded [`MultiCellSim`] engine —
/// concurrent shards with a deterministic barrier at every BAI boundary —
/// and reports the aggregate TTI throughput.
///
/// Results are bit-identical to `jobs = 1` per the engine's determinism
/// contract (DESIGN.md §12), so only the wall clock moves with `jobs`.
pub fn multi_cell_sweep(
    cells: usize,
    duration: TimeDelta,
    seed: u64,
    jobs: usize,
) -> MultiCellScaling {
    let started = Instant::now();
    let outcome = MultiCellSim::new(cells, jobs, false, move |i| {
        sweep_cell_config(seed, i, duration)
    })
    .run();
    let wall = started.elapsed();
    assert_eq!(
        outcome.results.len(),
        cells,
        "pool must complete every cell"
    );
    // A run that produced no video samples would mean the sweep measured an
    // empty simulation; guard against benchmarking a no-op.
    assert!(
        outcome.results.iter().all(|r| !r.videos.is_empty()),
        "every cell must simulate its video clients"
    );
    MultiCellScaling {
        cells,
        duration,
        jobs,
        coordinated: true,
        barriers: outcome.barriers,
        wall,
        ttis: cells as u64 * duration.as_millis(),
    }
}

/// The pre-`MultiCellSim` path: `cells` fully independent runs fanned
/// through [`flare_harness::run_indexed`] with **no coordination barrier**
/// between them.
///
/// Kept (and named accordingly) so its numbers cannot be misread as a
/// coordination result: each cell runs start-to-finish on whatever worker
/// picks it up, which is an upper bound no barrier-synchronised engine can
/// beat. Use [`multi_cell_sweep`] for the coordinated figure.
pub fn multi_cell_sweep_uncoordinated(
    cells: usize,
    duration: TimeDelta,
    seed: u64,
    jobs: usize,
) -> MultiCellScaling {
    let started = Instant::now();
    let runs = flare_harness::run_indexed(cells, jobs, |i| {
        static_run(
            SchemeKind::Flare(FlareConfig::default()),
            seed + i as u64,
            duration,
        )
    });
    let wall = started.elapsed();
    assert_eq!(runs.len(), cells, "pool must complete every cell");
    assert!(
        runs.iter().all(|r| !r.videos.is_empty()),
        "every cell must simulate its video clients"
    );
    MultiCellScaling {
        cells,
        duration,
        jobs,
        coordinated: false,
        barriers: 0,
        wall,
        ttis: cells as u64 * duration.as_millis(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_problems_are_solvable() {
        for &n in &[32usize, 64, 128] {
            let spec = synthetic_problem(n, 5);
            assert_eq!(spec.flows().len(), n);
            let sol = solve_discrete(&spec);
            assert_eq!(sol.levels.len(), n);
            assert!(sol.objective.is_finite());
        }
    }

    #[test]
    fn solve_times_scale_but_stay_below_segment_duration() {
        let t32 = as_millis(&measure_solve_times(32, 10, SolveMode::Exact, 1, 1));
        let t128 = as_millis(&measure_solve_times(128, 10, SolveMode::Exact, 1, 1));
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        // The paper's headline: far below a segment duration (seconds).
        assert!(
            mean(&t128) < 1000.0,
            "128-client solve too slow: {} ms",
            mean(&t128)
        );
        // And not absurdly non-monotone (allow noise at these tiny times).
        assert!(mean(&t128) >= mean(&t32) * 0.2);
    }

    #[test]
    fn multi_cell_sweep_counts_every_tti() {
        let sweep = multi_cell_sweep(2, TimeDelta::from_secs(20), 11, 2);
        assert_eq!(sweep.cells, 2);
        assert_eq!(sweep.ttis, 40_000);
        assert!(sweep.coordinated);
        assert_eq!(sweep.barriers, 2, "20 s at a 10 s BAI");
        assert!(sweep.wall > Duration::ZERO);
        assert!(sweep.ttis_per_sec() > 0.0);
    }

    #[test]
    fn uncoordinated_sweep_is_flagged_as_such() {
        let sweep = multi_cell_sweep_uncoordinated(2, TimeDelta::from_secs(5), 11, 2);
        assert!(!sweep.coordinated);
        assert_eq!(sweep.barriers, 0);
        assert_eq!(sweep.ttis, 10_000);
    }

    #[test]
    fn problem_sequences_churn_as_requested() {
        let frozen = synthetic_problem_sequence(16, 5, 3, 0.0);
        assert_eq!(frozen.len(), 5);
        assert!(
            frozen.iter().all(|s| *s == frozen[0]),
            "zero churn must repeat the same spec"
        );
        let churned = synthetic_problem_sequence(16, 5, 3, 1.0);
        assert!(
            churned.windows(2).all(|w| w[0] != w[1]),
            "full churn must perturb every BAI"
        );
        // Every spec in a sequence stays solvable.
        for spec in churned.iter().chain(frozen.iter()) {
            assert!(solve_discrete(spec).objective.is_finite());
        }
    }

    #[test]
    fn relaxed_mode_measures_too() {
        let times = measure_solve_times(64, 5, SolveMode::Relaxed, 9, 2);
        assert_eq!(times.len(), 5);
        assert!(as_millis(&times).iter().all(|&ms| ms < 1000.0));
    }
}
