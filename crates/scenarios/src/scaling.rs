//! Solver computation-time scaling (Figure 9).
//!
//! The paper plots CDFs of the per-BAI bitrate-selection time with 32, 64,
//! and 128 video clients in a cell, reporting times far below a segment
//! duration (≤ ~12 ms with KNITRO). We measure our solvers the same way:
//! per-BAI problems whose weights come from seeded, realistically
//! distributed channel states.

use std::time::{Duration, Instant};

use flare_core::SolveMode;
use flare_sim::rng::stream;
use flare_solver::{round_down, solve_discrete, solve_relaxed, FlowSpec, ProblemSpec};
use rand::Rng;

/// Builds one per-BAI assignment problem with `n_clients` video flows whose
/// channel efficiencies are drawn from the full iTbs range.
pub fn synthetic_problem(n_clients: usize, seed: u64) -> ProblemSpec {
    let mut rng = stream(seed, "scaling", n_clients as u64);
    let ladder: Vec<f64> = vec![100e3, 250e3, 500e3, 1000e3, 2000e3, 3000e3];
    let flows: Vec<FlowSpec> = (0..n_clients)
        .map(|_| {
            // Bits per RB spanning iTbs 0..=26 with 2x MIMO: 32..=1424.
            let bits_per_rb = rng.gen_range(32.0..1424.0);
            let weight = 10.0 / bits_per_rb;
            let max_level = rng.gen_range(0..ladder.len());
            FlowSpec::new(ladder.clone(), 10.0, 0.2e6, weight, max_level)
        })
        .collect();
    ProblemSpec::builder()
        .total_rbs(500_000.0)
        .data_flows(4, 1.0)
        .flows(flows)
        .build()
        .expect("valid synthetic spec")
}

/// Measures `iterations` per-BAI solves with `n_clients` flows, returning
/// one wall-clock duration per solve.
///
/// `jobs > 1` fans the solves across worker threads. Solutions are
/// seed-deterministic either way; only the wall-clock samples move (and
/// contended cores inflate them), so timing-sensitive figures should
/// measure serially and use `jobs` when they just need the sweep done.
pub fn measure_solve_times(
    n_clients: usize,
    iterations: usize,
    mode: SolveMode,
    seed: u64,
    jobs: usize,
) -> Vec<Duration> {
    flare_harness::run_indexed(iterations, jobs, |i| {
        let spec = synthetic_problem(n_clients, seed + i as u64);
        let started = Instant::now();
        match mode {
            SolveMode::Exact => {
                let _ = solve_discrete(&spec);
            }
            SolveMode::Relaxed => {
                let relaxed = solve_relaxed(&spec);
                let _ = round_down(&spec, &relaxed);
            }
        }
        started.elapsed()
    })
}

/// Milliseconds as `f64` for CDF construction.
pub fn as_millis(times: &[Duration]) -> Vec<f64> {
    times.iter().map(|t| t.as_secs_f64() * 1000.0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_problems_are_solvable() {
        for &n in &[32usize, 64, 128] {
            let spec = synthetic_problem(n, 5);
            assert_eq!(spec.flows().len(), n);
            let sol = solve_discrete(&spec);
            assert_eq!(sol.levels.len(), n);
            assert!(sol.objective.is_finite());
        }
    }

    #[test]
    fn solve_times_scale_but_stay_below_segment_duration() {
        let t32 = as_millis(&measure_solve_times(32, 10, SolveMode::Exact, 1, 1));
        let t128 = as_millis(&measure_solve_times(128, 10, SolveMode::Exact, 1, 1));
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        // The paper's headline: far below a segment duration (seconds).
        assert!(
            mean(&t128) < 1000.0,
            "128-client solve too slow: {} ms",
            mean(&t128)
        );
        // And not absurdly non-monotone (allow noise at these tiny times).
        assert!(mean(&t128) >= mean(&t32) * 0.2);
    }

    #[test]
    fn relaxed_mode_measures_too() {
        let times = measure_solve_times(64, 5, SolveMode::Relaxed, 9, 2);
        assert_eq!(times.len(), 5);
        assert!(as_millis(&times).iter().all(|&ms| ms < 1000.0));
    }
}
