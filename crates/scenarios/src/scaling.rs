//! Solver computation-time scaling (Figure 9).
//!
//! The paper plots CDFs of the per-BAI bitrate-selection time with 32, 64,
//! and 128 video clients in a cell, reporting times far below a segment
//! duration (≤ ~12 ms with KNITRO). We measure our solvers the same way:
//! per-BAI problems whose weights come from seeded, realistically
//! distributed channel states.

use std::time::{Duration, Instant};

use flare_core::{FlareConfig, SolveMode};
use flare_sim::rng::stream;
use flare_sim::TimeDelta;
use flare_solver::{round_down, solve_discrete, solve_relaxed, FlowSpec, ProblemSpec};
use rand::Rng;

use crate::cell::static_run;
use crate::config::SchemeKind;

/// Builds one per-BAI assignment problem with `n_clients` video flows whose
/// channel efficiencies are drawn from the full iTbs range.
pub fn synthetic_problem(n_clients: usize, seed: u64) -> ProblemSpec {
    let mut rng = stream(seed, "scaling", n_clients as u64);
    let ladder: Vec<f64> = vec![100e3, 250e3, 500e3, 1000e3, 2000e3, 3000e3];
    let flows: Vec<FlowSpec> = (0..n_clients)
        .map(|_| {
            // Bits per RB spanning iTbs 0..=26 with 2x MIMO: 32..=1424.
            let bits_per_rb = rng.gen_range(32.0..1424.0);
            let weight = 10.0 / bits_per_rb;
            let max_level = rng.gen_range(0..ladder.len());
            FlowSpec::new(ladder.clone(), 10.0, 0.2e6, weight, max_level)
        })
        .collect();
    ProblemSpec::builder()
        .total_rbs(500_000.0)
        .data_flows(4, 1.0)
        .flows(flows)
        .build()
        .expect("valid synthetic spec")
}

/// Measures `iterations` per-BAI solves with `n_clients` flows, returning
/// one wall-clock duration per solve.
///
/// `jobs > 1` fans the solves across worker threads. Solutions are
/// seed-deterministic either way; only the wall-clock samples move (and
/// contended cores inflate them), so timing-sensitive figures should
/// measure serially and use `jobs` when they just need the sweep done.
pub fn measure_solve_times(
    n_clients: usize,
    iterations: usize,
    mode: SolveMode,
    seed: u64,
    jobs: usize,
) -> Vec<Duration> {
    flare_harness::run_indexed(iterations, jobs, |i| {
        let spec = synthetic_problem(n_clients, seed + i as u64);
        let started = Instant::now();
        match mode {
            SolveMode::Exact => {
                let _ = solve_discrete(&spec);
            }
            SolveMode::Relaxed => {
                let relaxed = solve_relaxed(&spec);
                let _ = round_down(&spec, &relaxed);
            }
        }
        started.elapsed()
    })
}

/// Milliseconds as `f64` for CDF construction.
pub fn as_millis(times: &[Duration]) -> Vec<f64> {
    times.iter().map(|t| t.as_secs_f64() * 1000.0).collect()
}

/// Outcome of one multi-cell scaling sweep: `cells` independent FLARE cells
/// (the fig6 static workload) fanned through the harness worker pool.
///
/// This is the COMETS-style many-cell headroom demonstration: wall-clock to
/// simulate N cells, and the aggregate TTI rate the machine sustained.
#[derive(Debug, Clone)]
pub struct MultiCellScaling {
    /// Number of independent cells simulated.
    pub cells: usize,
    /// Simulated duration of each cell.
    pub duration: TimeDelta,
    /// Worker threads used (`0` = all cores, `1` = serial).
    pub jobs: usize,
    /// Total wall-clock time for the whole sweep.
    pub wall: Duration,
    /// Total TTIs simulated across all cells (1 TTI per simulated ms).
    pub ttis: u64,
}

impl MultiCellScaling {
    /// Aggregate simulated TTIs per wall-clock second.
    pub fn ttis_per_sec(&self) -> f64 {
        self.ttis as f64 / self.wall.as_secs_f64().max(1e-9)
    }
}

/// Simulates `cells` independent FLARE cells of `duration` each (seeds
/// `seed..seed+cells`) on up to `jobs` worker threads and reports the
/// aggregate TTI throughput.
///
/// Each cell is the fig6 static scenario (8 stationary video UEs); results
/// are seed-deterministic and bit-identical to a serial loop per the
/// [`flare_harness::run_indexed`] contract, so only the wall clock moves.
pub fn multi_cell_sweep(
    cells: usize,
    duration: TimeDelta,
    seed: u64,
    jobs: usize,
) -> MultiCellScaling {
    let started = Instant::now();
    let runs = flare_harness::run_indexed(cells, jobs, |i| {
        static_run(
            SchemeKind::Flare(FlareConfig::default()),
            seed + i as u64,
            duration,
        )
    });
    let wall = started.elapsed();
    assert_eq!(runs.len(), cells, "pool must complete every cell");
    // A run that produced no video samples would mean the sweep measured an
    // empty simulation; guard against benchmarking a no-op.
    assert!(
        runs.iter().all(|r| !r.videos.is_empty()),
        "every cell must simulate its video clients"
    );
    MultiCellScaling {
        cells,
        duration,
        jobs,
        wall,
        ttis: cells as u64 * duration.as_millis(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_problems_are_solvable() {
        for &n in &[32usize, 64, 128] {
            let spec = synthetic_problem(n, 5);
            assert_eq!(spec.flows().len(), n);
            let sol = solve_discrete(&spec);
            assert_eq!(sol.levels.len(), n);
            assert!(sol.objective.is_finite());
        }
    }

    #[test]
    fn solve_times_scale_but_stay_below_segment_duration() {
        let t32 = as_millis(&measure_solve_times(32, 10, SolveMode::Exact, 1, 1));
        let t128 = as_millis(&measure_solve_times(128, 10, SolveMode::Exact, 1, 1));
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        // The paper's headline: far below a segment duration (seconds).
        assert!(
            mean(&t128) < 1000.0,
            "128-client solve too slow: {} ms",
            mean(&t128)
        );
        // And not absurdly non-monotone (allow noise at these tiny times).
        assert!(mean(&t128) >= mean(&t32) * 0.2);
    }

    #[test]
    fn multi_cell_sweep_counts_every_tti() {
        let sweep = multi_cell_sweep(2, TimeDelta::from_secs(5), 11, 2);
        assert_eq!(sweep.cells, 2);
        assert_eq!(sweep.ttis, 10_000);
        assert!(sweep.wall > Duration::ZERO);
        assert!(sweep.ttis_per_sec() > 0.0);
    }

    #[test]
    fn relaxed_mode_measures_too() {
        let times = measure_solve_times(64, 5, SolveMode::Relaxed, 9, 2);
        assert_eq!(times.len(), 5);
        assert!(as_millis(&times).iter().all(|&ms| ms < 1000.0));
    }
}
