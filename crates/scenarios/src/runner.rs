//! The single-cell simulation engine.

use std::time::Duration;

use flare_abr::avis::AvisAllocator;
use flare_abr::{
    BufferBased, CoordinationMode, Festive, Google, RateBased, SharedAssignment,
    VersionedAssignment,
};
use flare_core::messages::StatsReportMsg;
use flare_core::{
    ClientInfo, ControlPlane, FaultModel, FlarePlugin, OneApiServer, ResilientPlugin,
    RobustnessConfig,
};
use flare_has::{Level, Mpd, Player, PlayerStats, RateAdapter};
use flare_lte::channel::{ChannelModel, StaticChannel, TraceChannel, TriangleWave};
use flare_lte::mobility::{snr_to_itbs, MobilityChannel, Position};
use flare_lte::scheduler::{
    MacScheduler, PrioritySetScheduler, ProportionalFair, RoundRobin, StrictGbrPartition,
    TwoPhaseGbr,
};
use flare_lte::{ENodeB, FlowClass, FlowId};
use flare_metrics::{jain_index, QoeInputs, TimeSeries};
use flare_sim::rng::{standard_normal, stream};
use flare_sim::units::{ByteCount, Rate};
use flare_sim::{Time, TimeDelta, TTI};
use flare_trace::{Category, RegistrySnapshot, TraceHandle};
use rand::Rng;

use crate::config::{ChannelKind, SchedulerKind, SchemeKind, SimConfig};

/// Per-video-flow outcome of a run.
#[derive(Debug, Clone)]
pub struct VideoFlowResult {
    /// Index among the video UEs (0-based).
    pub index: usize,
    /// Player QoE statistics.
    pub stats: PlayerStats,
    /// Selected bitrate over time (kbps, stepped at segment requests).
    pub rate_series: TimeSeries,
    /// Buffered media over time (seconds, sampled each second).
    pub buffer_series: TimeSeries,
    /// Delivered MAC throughput over time (kbps, per second).
    pub throughput_series: TimeSeries,
    /// Average MAC throughput over the run.
    pub average_throughput: Rate,
}

impl VideoFlowResult {
    /// Inputs for the composite QoE model over this client's session.
    ///
    /// Returns `None` if the client never completed a segment.
    pub fn qoe_inputs(&self, session: TimeDelta) -> Option<QoeInputs> {
        if self.rate_series.is_empty() || session.is_zero() {
            return None;
        }
        let rates: Vec<f64> = self.rate_series.points().iter().map(|(_, r)| *r).collect();
        Some(QoeInputs::from_session(
            &rates,
            self.stats.underflow_time.as_secs_f64(),
            session.as_secs_f64(),
        ))
    }
}

/// Per-data-flow outcome of a run.
#[derive(Debug, Clone)]
pub struct DataFlowResult {
    /// Index among the data UEs (0-based).
    pub index: usize,
    /// Delivered throughput over time (kbps, per second).
    pub throughput_series: TimeSeries,
    /// Average throughput over the run.
    pub average_throughput: Rate,
}

/// Control-plane and degradation telemetry from a message-path run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RobustnessReport {
    /// Control-plane messages delivered.
    pub delivered: u64,
    /// Messages dropped by the loss process.
    pub dropped: u64,
    /// Uplink reports lost to server outage windows.
    pub lost_to_outage: u64,
    /// Messages held back by the reordering process.
    pub reordered: u64,
    /// Client-BAIs spent in fallback mode (summed over clients).
    pub fallback_bais: u64,
    /// Assignments rejected as stale/reordered (summed over clients).
    pub stale_rejections: u64,
    /// Assignments installed by clients (summed over clients).
    pub installs: u64,
    /// GBR leases that expired unrenewed at the eNodeB.
    pub expired_leases: u64,
    /// Clients the server evicted for statistics silence.
    pub evicted_clients: u64,
}

/// The outcome of one simulated run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The scheme that produced it.
    pub scheme: String,
    /// Simulated length.
    pub duration: TimeDelta,
    /// Per-video outcomes, in UE order.
    pub videos: Vec<VideoFlowResult>,
    /// Per-data-flow outcomes, in UE order.
    pub data: Vec<DataFlowResult>,
    /// Wall-clock solver times, one per BAI (network-side schemes only).
    pub solve_times: Vec<Duration>,
    /// Control-plane telemetry (message-path FLARE runs only).
    pub robustness: Option<RobustnessReport>,
    /// End-of-run counters, gauges, and timing histograms from the trace
    /// registry. Always populated: runs without an attached recorder use an
    /// internal registry-only one.
    pub telemetry: RegistrySnapshot,
}

impl RunResult {
    /// Mean of the per-client average video bitrates, in kbps.
    pub fn average_video_rate_kbps(&self) -> f64 {
        if self.videos.is_empty() {
            return 0.0;
        }
        self.videos
            .iter()
            .map(|v| v.stats.average_rate.as_kbps())
            .sum::<f64>()
            / self.videos.len() as f64
    }

    /// Mean number of bitrate changes per client.
    pub fn average_bitrate_changes(&self) -> f64 {
        if self.videos.is_empty() {
            return 0.0;
        }
        self.videos
            .iter()
            .map(|v| v.stats.bitrate_changes as f64)
            .sum::<f64>()
            / self.videos.len() as f64
    }

    /// Mean buffer-underflow time per client, in seconds.
    pub fn average_underflow_secs(&self) -> f64 {
        if self.videos.is_empty() {
            return 0.0;
        }
        self.videos
            .iter()
            .map(|v| v.stats.underflow_time.as_secs_f64())
            .sum::<f64>()
            / self.videos.len() as f64
    }

    /// Jain's fairness index over the clients' average video bitrates.
    pub fn jain_of_video_rates(&self) -> f64 {
        let rates: Vec<f64> = self
            .videos
            .iter()
            .map(|v| v.stats.average_rate.as_kbps())
            .collect();
        jain_index(&rates)
    }

    /// Mean composite QoE score across clients (kbps-denominated; see
    /// [`flare_metrics::qoe_score`]).
    pub fn average_qoe(&self, weights: flare_metrics::QoeWeights) -> f64 {
        let scores: Vec<f64> = self
            .videos
            .iter()
            .filter_map(|v| v.qoe_inputs(self.duration))
            .map(|i| flare_metrics::qoe_score(i, weights))
            .collect();
        if scores.is_empty() {
            return 0.0;
        }
        scores.iter().sum::<f64>() / scores.len() as f64
    }

    /// Mean data-flow throughput, in kbps.
    pub fn average_data_throughput_kbps(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data
            .iter()
            .map(|d| d.average_throughput.as_kbps())
            .sum::<f64>()
            / self.data.len() as f64
    }
}

/// Client-side assignment cells of a message-path FLARE run.
enum MsgCells {
    /// Naive: last-write-wins cells, persistent GBRs — the paper's FLARE
    /// run unchanged over a (possibly faulty) control plane.
    Naive(Vec<SharedAssignment>),
    /// Resilient: versioned cells with staleness fallback, GBR leases.
    Versioned(Vec<VersionedAssignment>),
}

// One live instance per simulation; the size spread between variants is
// irrelevant next to boxing noise.
#[allow(clippy::large_enum_variant)]
enum Controller {
    None,
    Flare {
        server: OneApiServer,
        cells: Vec<SharedAssignment>,
        gbr_only: bool,
    },
    /// FLARE with its coordination loop carried over an explicit (fault-
    /// injectable) control plane instead of lossless in-process calls.
    FlareMsg {
        server: OneApiServer,
        control: ControlPlane,
        cells: MsgCells,
        /// Freshest statistics report delivered to the server so far and
        /// not yet consumed by a solve.
        latest_report: Option<StatsReportMsg>,
        robustness: Option<RobustnessConfig>,
    },
    Avis(AvisAllocator),
}

/// A fully wired single-cell simulation. Construct with [`CellSim::new`],
/// execute with [`CellSim::run`].
pub struct CellSim {
    config: SimConfig,
    enb: ENodeB,
    video_flows: Vec<FlowId>,
    data_flows: Vec<FlowId>,
    players: Vec<Player>,
    controller: Controller,
    /// Per-UE RNG streams for transport request jitter.
    jitter_rngs: Vec<rand::rngs::SmallRng>,
    /// Segment payloads in transport flight: delivered to the cell at .0.
    pending_requests: Vec<(Time, usize, ByteCount)>,
    /// Shared trace recorder: the user's handle when one was attached via
    /// [`SimConfig::trace`], otherwise an internal registry-only recorder
    /// so counters back [`RunResult::telemetry`] in every run.
    trace: TraceHandle,
}

impl CellSim {
    /// Builds the cell, UEs, players, and (for coordinated schemes) the
    /// network-side controller described by `config`.
    pub fn new(config: SimConfig) -> Self {
        let scheduler: Box<dyn MacScheduler> = match config.scheduler {
            SchedulerKind::ProportionalFair => Box::new(ProportionalFair::default()),
            SchedulerKind::TwoPhaseGbr => Box::new(TwoPhaseGbr::default()),
            SchedulerKind::PrioritySet => Box::new(PrioritySetScheduler::default()),
            SchedulerKind::StrictPartition => Box::new(StrictGbrPartition::default()),
            SchedulerKind::RoundRobin => Box::new(RoundRobin::new()),
        };
        let trace = if config.trace.is_attached() {
            config.trace.clone()
        } else {
            TraceHandle::registry_only()
        };
        let mut enb = ENodeB::new(config.cell.clone(), scheduler);
        enb.set_trace(trace.clone());

        let n_total = config.n_video + config.n_data;
        let mut channels: Vec<Box<dyn ChannelModel>> = (0..n_total)
            .map(|i| Self::make_channel(&config, i as u64))
            .collect();

        let video_flows: Vec<FlowId> = (0..config.n_video)
            .map(|_| enb.add_flow(FlowClass::Video, channels.remove(0)))
            .collect();
        let data_flows: Vec<FlowId> = (0..config.n_data)
            .map(|_| enb.add_flow(FlowClass::Data, channels.remove(0)))
            .collect();

        // Media comfortably outlasting the run keeps every player busy.
        let media = config.duration + config.segment.times(4);
        let mpd = |i: usize| {
            Mpd::new(
                format!("video-{i}"),
                config.ladder.clone(),
                config.segment,
                media,
            )
        };

        // The first `coordinated` video UEs follow the configured scheme;
        // any trailing `legacy_video` UEs run a conventional FESTIVE player
        // that a FLARE deployment services as plain data traffic.
        let coordinated = config.n_video - config.legacy_video;

        // FLARE runs take the message path (explicit control plane) as soon
        // as either faults or robustness are configured. With neither, the
        // legacy in-process path keeps the paper's lossless semantics
        // bit-for-bit.
        let robustness = match &config.scheme {
            SchemeKind::Flare(fc) => fc.robustness,
            _ => None,
        };
        let msg_path = matches!(config.scheme, SchemeKind::Flare(_))
            && (config.faults.is_some() || robustness.is_some());

        let mut cells: Vec<SharedAssignment> = Vec::new();
        let mut versioned_cells: Vec<VersionedAssignment> = Vec::new();
        let players: Vec<Player> = (0..config.n_video)
            .map(|i| {
                let adapter: Box<dyn RateAdapter> = if i >= coordinated {
                    Box::new(Festive::default())
                } else {
                    match &config.scheme {
                        SchemeKind::Festive => Box::new(Festive::default()),
                        SchemeKind::Google => Box::new(Google::default()),
                        SchemeKind::BufferBased => Box::new(BufferBased::default()),
                        SchemeKind::Flare(_) => {
                            if let Some(r) = robustness {
                                let cell = VersionedAssignment::new(r.stale_bais, r.rejoin_bais);
                                versioned_cells.push(cell.clone());
                                Box::new(ResilientPlugin::new(cell)) as Box<dyn RateAdapter>
                            } else {
                                let cell = SharedAssignment::new();
                                cells.push(cell.clone());
                                Box::new(FlarePlugin::new(cell)) as Box<dyn RateAdapter>
                            }
                        }
                        SchemeKind::FlareGbrOnly(_) | SchemeKind::Avis(_) => {
                            Box::new(RateBased::default())
                        }
                    }
                };
                Player::new(mpd(i), config.player.clone(), adapter)
            })
            .collect();

        let controller = match &config.scheme {
            SchemeKind::Festive | SchemeKind::Google | SchemeKind::BufferBased => Controller::None,
            SchemeKind::Flare(fc) | SchemeKind::FlareGbrOnly(fc) => {
                let gbr_only = matches!(config.scheme, SchemeKind::FlareGbrOnly(_));
                let mut server = OneApiServer::new(fc.clone().with_bai(config.bai));
                server.set_trace(trace.clone());
                for (i, &flow) in video_flows.iter().enumerate().take(coordinated) {
                    let mut info = ClientInfo::new(flow, config.ladder.clone());
                    if let Some(Some(prefs)) = config.prefs.get(i) {
                        info = info.with_prefs(prefs.clone());
                    }
                    server.register_video(info);
                }
                // Legacy players are serviced like data: registered at the
                // PCRF as best-effort flows, never assigned a GBR.
                for &flow in video_flows.iter().skip(coordinated) {
                    server.register_data(flow);
                }
                for &flow in &data_flows {
                    server.register_data(flow);
                }
                if msg_path {
                    let faults = config.faults.clone().unwrap_or_else(FaultModel::perfect);
                    Controller::FlareMsg {
                        server,
                        control: ControlPlane::new(faults, config.seed).with_trace(trace.clone()),
                        cells: if robustness.is_some() {
                            MsgCells::Versioned(versioned_cells)
                        } else {
                            MsgCells::Naive(cells)
                        },
                        latest_report: None,
                        robustness,
                    }
                } else {
                    if gbr_only {
                        cells.clear();
                    }
                    Controller::Flare {
                        server,
                        cells,
                        gbr_only,
                    }
                }
            }
            SchemeKind::Avis(ac) => Controller::Avis(AvisAllocator::new(ac.clone())),
        };

        let jitter_rngs = (0..config.n_video as u64)
            .map(|ue| stream(config.seed, "jitter", ue))
            .collect();
        let mut players = players;
        for (i, player) in players.iter_mut().enumerate() {
            player.set_trace(trace.clone(), i as u64);
        }
        CellSim {
            config,
            enb,
            video_flows,
            data_flows,
            players,
            controller,
            jitter_rngs,
            pending_requests: Vec::new(),
            trace,
        }
    }

    fn make_channel(config: &SimConfig, ue: u64) -> Box<dyn ChannelModel> {
        match &config.channel {
            ChannelKind::Static { itbs } => {
                Box::new(StaticChannel::new(flare_lte::Itbs::new(*itbs)))
            }
            ChannelKind::Triangle { min, max, period } => {
                let n = (config.n_video + config.n_data) as u64;
                let offset = TimeDelta::from_millis(period.as_millis() * ue / n.max(1));
                Box::new(TriangleWave::new(
                    flare_lte::Itbs::new(*min),
                    flare_lte::Itbs::new(*max),
                    *period,
                    offset,
                ))
            }
            ChannelKind::StationaryRandom(mc) => {
                let mut rng = stream(config.seed, "position", ue);
                let pos = Position {
                    x: rng.gen::<f64>() * mc.area.0,
                    y: rng.gen::<f64>() * mc.area.1,
                };
                let enb_pos = Position {
                    x: mc.area.0 / 2.0,
                    y: mc.area.1 / 2.0,
                };
                let shadow = standard_normal(&mut rng) * mc.propagation.shadowing_sigma_db;
                let snr = mc.propagation.mean_snr_db(pos.distance_to(enb_pos)) + shadow;
                Box::new(StaticChannel::new(snr_to_itbs(snr)))
            }
            ChannelKind::Mobile(mc) => Box::new(MobilityChannel::new(
                mc.clone(),
                stream(config.seed, "walk", ue),
                stream(config.seed, "fade", ue),
            )),
            ChannelKind::Traces(docs) => {
                assert!(!docs.is_empty(), "trace channel list must be non-empty");
                let doc = &docs[(ue as usize) % docs.len()];
                Box::new(
                    TraceChannel::from_csv(doc)
                        .expect("trace documents must be valid (TraceChannel::from_csv)"),
                )
            }
        }
    }

    /// Runs the simulation to completion and returns the collected results.
    pub fn run(mut self) -> RunResult {
        let duration_ms = self.config.duration.as_millis();
        let bai_ms = self.config.bai.as_millis();
        let n_video = self.video_flows.len();
        let n_data = self.data_flows.len();

        let mut rate_series: Vec<TimeSeries> = (0..n_video)
            .map(|i| TimeSeries::new(format!("video-{i} rate (kbps)")))
            .collect();
        let mut buffer_series: Vec<TimeSeries> = (0..n_video)
            .map(|i| TimeSeries::new(format!("video-{i} buffer (s)")))
            .collect();
        let mut video_tput: Vec<TimeSeries> = (0..n_video)
            .map(|i| TimeSeries::new(format!("video-{i} throughput (kbps)")))
            .collect();
        let mut data_tput: Vec<TimeSeries> = (0..n_data)
            .map(|i| TimeSeries::new(format!("data-{i} throughput (kbps)")))
            .collect();
        let mut second_bytes = vec![0u64; n_video + n_data];
        let mut total_bytes = vec![0u64; n_video + n_data];
        let mut solve_times = Vec::new();

        for ms in 0..duration_ms {
            let tti_start = Time::from_millis(ms);
            let tti_end = Time::from_millis(ms + 1);

            // 1. Players play back 1 ms and may issue a segment request.
            let jitter_ms = self.config.request_jitter.as_millis();
            for (i, player) in self.players.iter_mut().enumerate() {
                if let Some(req) = player.step(tti_end, TTI) {
                    if jitter_ms == 0 {
                        self.enb.push_backlog(self.video_flows[i], req.bytes);
                    } else {
                        // The request spends a transport-dependent time in
                        // flight before bytes appear at the eNodeB.
                        let delay = self.jitter_rngs[i].gen_range(0..=jitter_ms);
                        self.pending_requests.push((
                            tti_end + TimeDelta::from_millis(delay),
                            i,
                            req.bytes,
                        ));
                    }
                    rate_series[i].push(
                        tti_end.as_secs_f64(),
                        self.config.ladder.rate(req.level).as_kbps(),
                    );
                }
            }
            if !self.pending_requests.is_empty() {
                let due: Vec<(Time, usize, ByteCount)> = {
                    let (due, rest): (Vec<_>, Vec<_>) = self
                        .pending_requests
                        .drain(..)
                        .partition(|(at, _, _)| *at <= tti_end);
                    self.pending_requests = rest;
                    due
                };
                for (_, i, bytes) in due {
                    self.enb.push_backlog(self.video_flows[i], bytes);
                }
            }

            // 2. One TTI of MAC scheduling and delivery.
            for d in self.enb.step_tti(tti_start) {
                let idx = d.flow.index();
                second_bytes[idx] += d.bytes.as_u64();
                total_bytes[idx] += d.bytes.as_u64();
                if idx < n_video {
                    self.players[idx].on_delivered(tti_end, d.bytes);
                }
            }

            // 3. Per-second sampling.
            if (ms + 1) % 1000 == 0 {
                let t = tti_end.as_secs_f64();
                for i in 0..n_video {
                    buffer_series[i].push(t, self.players[i].buffer_level().as_secs_f64());
                    video_tput[i]
                        .push(t, ByteCount::new(second_bytes[i]).as_bits() as f64 / 1000.0);
                    second_bytes[i] = 0;
                }
                for i in 0..n_data {
                    data_tput[i].push(
                        t,
                        ByteCount::new(second_bytes[n_video + i]).as_bits() as f64 / 1000.0,
                    );
                    second_bytes[n_video + i] = 0;
                }
            }

            // 4. Control-plane deliveries (delayed/reordered messages land
            // between BAIs), then the BAI boundary itself.
            self.poll_control(tti_end);
            if (ms + 1) % bai_ms == 0 {
                self.run_bai(tti_end, &mut solve_times);
                // A perfect (zero-delay) control plane delivers this BAI's
                // messages within the same tick.
                self.poll_control(tti_end);
                // Client-side staleness clocks advance once per BAI, after
                // all deliveries due in it.
                if let Controller::FlareMsg {
                    cells: MsgCells::Versioned(cs),
                    ..
                } = &self.controller
                {
                    for (i, cell) in cs.iter().enumerate() {
                        let before = cell.mode();
                        cell.end_bai();
                        let after = cell.mode();
                        if after == CoordinationMode::Fallback {
                            self.trace.incr("plugin.fallback_bais", 1);
                        }
                        if before != after {
                            let name = match after {
                                CoordinationMode::Fallback => "fallback_enter",
                                CoordinationMode::Coordinated => "fallback_exit",
                            };
                            self.trace.record(tti_end, Category::Plugin, name, |e| {
                                e.u64("ue", i as u64)
                                    .u64("stale_bais", u64::from(cell.bais_since_fresh()));
                            });
                        }
                    }
                }
            }
        }

        let videos = (0..n_video)
            .map(|i| {
                let stats: PlayerStats = self.players[i].stats();
                VideoFlowResult {
                    index: i,
                    stats,
                    rate_series: std::mem::replace(&mut rate_series[i], TimeSeries::new("")),
                    buffer_series: std::mem::replace(&mut buffer_series[i], TimeSeries::new("")),
                    throughput_series: std::mem::replace(&mut video_tput[i], TimeSeries::new("")),
                    average_throughput: ByteCount::new(total_bytes[i])
                        .rate_over(self.config.duration),
                }
            })
            .collect();
        let data = (0..n_data)
            .map(|i| DataFlowResult {
                index: i,
                throughput_series: std::mem::replace(&mut data_tput[i], TimeSeries::new("")),
                average_throughput: ByteCount::new(total_bytes[n_video + i])
                    .rate_over(self.config.duration),
            })
            .collect();

        // The degradation report is read back from the trace registry: the
        // instrumented components (control plane, plugins, eNodeB PCEF,
        // server) mirror their counters into it as they run, so a single
        // snapshot replaces the per-component accessor sweep.
        let telemetry = self.trace.snapshot();
        let robustness = match &self.controller {
            Controller::FlareMsg { .. } => Some(RobustnessReport {
                delivered: telemetry.counter("control.delivered"),
                dropped: telemetry.counter("control.dropped"),
                lost_to_outage: telemetry.counter("control.lost_to_outage"),
                reordered: telemetry.counter("control.reordered"),
                fallback_bais: telemetry.counter("plugin.fallback_bais"),
                stale_rejections: telemetry.counter("plugin.stale_rejections"),
                installs: telemetry.counter("plugin.installs"),
                expired_leases: telemetry.counter("enforce.lease_expiries"),
                evicted_clients: telemetry.counter("server.evicted"),
            }),
            _ => None,
        };

        RunResult {
            scheme: self.config.scheme.name().to_owned(),
            duration: self.config.duration,
            videos,
            data,
            solve_times,
            robustness,
            telemetry,
        }
    }

    /// Delivers every control-plane message due by `now`: reports reach the
    /// server's inbox, assignments reach the plugins' cells and the eNodeB's
    /// PCEF. No-op for controllers without a message path.
    fn poll_control(&mut self, now: Time) {
        let Controller::FlareMsg {
            control,
            cells,
            latest_report,
            robustness,
            ..
        } = &mut self.controller
        else {
            return;
        };
        for r in control.recv_reports(now) {
            // Keep only the freshest interval: a reordered old report must
            // not overwrite newer counters.
            if latest_report
                .as_ref()
                .is_none_or(|cur| r.end_ms >= cur.end_ms)
            {
                *latest_report = Some(r);
            }
        }
        for a in control.recv_assignments(now) {
            let Some(idx) = self
                .video_flows
                .iter()
                .position(|f| f.index() as u32 == a.flow_id)
            else {
                continue;
            };
            let flow = self.video_flows[idx];
            let rate = Rate::from_kbps(f64::from(a.gbr_kbps));
            let level = Level::new(a.level as usize);
            match cells {
                MsgCells::Naive(cs) => {
                    // Last write wins, GBRs persist — exactly the lossless-
                    // world behaviour, now exposed to faults.
                    cs[idx].set(level);
                    self.enb.set_gbr(flow, Some(rate));
                    self.trace
                        .record_debug(now, Category::Plugin, "apply", |e| {
                            e.u64("ue", idx as u64)
                                .u64("level", u64::from(a.level))
                                .u64("gbr_kbps", u64::from(a.gbr_kbps));
                        });
                }
                MsgCells::Versioned(cs) => {
                    // Client and PCEF share the versioned view: a stale
                    // assignment neither moves the plugin nor touches QoS.
                    if cs[idx].install(a.seq, a.issued_ms, level) {
                        let lease_bais = robustness.unwrap_or_default().lease_bais;
                        let lease = TimeDelta::from_millis(
                            self.config.bai.as_millis() * u64::from(lease_bais),
                        );
                        self.enb.set_gbr_lease(flow, rate, now + lease);
                        self.trace.incr("plugin.installs", 1);
                        self.trace.record(now, Category::Plugin, "install", |e| {
                            e.u64("ue", idx as u64)
                                .u64("assign_seq", a.seq)
                                .u64("level", u64::from(a.level))
                                .u64("gbr_kbps", u64::from(a.gbr_kbps));
                        });
                    } else {
                        self.trace.incr("plugin.stale_rejections", 1);
                        self.trace
                            .record(now, Category::Plugin, "stale_reject", |e| {
                                e.u64("ue", idx as u64).u64("assign_seq", a.seq);
                            });
                    }
                }
            }
        }
    }

    fn run_bai(&mut self, now: Time, solve_times: &mut Vec<Duration>) {
        let report = self.enb.take_report(now);
        match &mut self.controller {
            Controller::None => {}
            Controller::FlareMsg {
                server,
                control,
                latest_report,
                robustness,
                ..
            } => {
                let rbs = self.enb.config().rbs_per_tti;
                let la = self.enb.link_adaptation().clone();
                // eNodeB -> server: this BAI's statistics, via the (possibly
                // faulty) control plane.
                control.send_report(now, StatsReportMsg::from(&report));
                for r in control.recv_reports(now) {
                    if latest_report
                        .as_ref()
                        .is_none_or(|cur| r.end_ms >= cur.end_ms)
                    {
                        *latest_report = Some(r);
                    }
                }
                // Server side: during an outage window the server is down
                // and issues nothing; clients notice via staleness.
                if !control.in_outage(now) {
                    let msgs = if robustness.is_some() {
                        server.bai_tick(now, latest_report.take().as_ref(), &la, rbs)
                    } else {
                        match latest_report.take() {
                            Some(r) => server.assign_msg(&r, &la, rbs),
                            None => Vec::new(),
                        }
                    };
                    if !msgs.is_empty() {
                        if let Some(t) = server.last_solve_time() {
                            solve_times.push(t);
                        }
                        control.send_assignments(now, msgs);
                    }
                }
                // Deliveries due right now are applied by the caller's
                // poll_control immediately after this returns.
            }
            Controller::Flare {
                server,
                cells,
                gbr_only,
            } => {
                let rbs = self.enb.config().rbs_per_tti;
                // The link adaptation table is cloned to satisfy borrowing;
                // it is a tiny value object.
                let la = self.enb.link_adaptation().clone();
                let assignments = server.assign(&report, &la, rbs);
                if let Some(t) = server.last_solve_time() {
                    solve_times.push(t);
                }
                for a in assignments {
                    self.enb.set_gbr(a.flow, Some(a.rate));
                    if !*gbr_only {
                        let video_idx = self
                            .video_flows
                            .iter()
                            .position(|&f| f == a.flow)
                            .expect("assignment for unknown flow");
                        cells[video_idx].set(a.level);
                    }
                }
            }
            Controller::Avis(alloc) => {
                let rbs = self.enb.config().rbs_per_tti;
                let la = self.enb.link_adaptation().clone();
                for a in alloc.assign(&report, &la, rbs) {
                    self.enb.set_gbr(a.flow, Some(a.gbr));
                    self.enb.set_mbr(a.flow, Some(a.mbr));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flare_core::FlareConfig;
    use flare_lte::mobility::MobilityConfig;

    fn base(scheme: SchemeKind) -> SimConfig {
        SimConfig::builder()
            .seed(3)
            .duration(TimeDelta::from_secs(120))
            .bai(TimeDelta::from_secs(10))
            .videos(2)
            .data_flows(1)
            .channel(ChannelKind::Static { itbs: 10 })
            .scheme(scheme)
            .build()
    }

    #[test]
    fn festive_run_produces_complete_results() {
        let result = CellSim::new(base(SchemeKind::Festive)).run();
        assert_eq!(result.scheme, "FESTIVE");
        assert_eq!(result.videos.len(), 2);
        assert_eq!(result.data.len(), 1);
        assert!(result.videos[0].stats.segments > 3);
        assert!(result.average_video_rate_kbps() > 0.0);
        assert!(result.average_data_throughput_kbps() > 0.0);
        assert!(
            result.solve_times.is_empty(),
            "client-side scheme never solves"
        );
        // 120 s run -> 120 per-second samples.
        assert_eq!(result.videos[0].buffer_series.len(), 120);
        assert_eq!(result.data[0].throughput_series.len(), 120);
    }

    #[test]
    fn flare_run_assigns_and_enforces() {
        let result = CellSim::new(base(SchemeKind::Flare(FlareConfig::default()))).run();
        assert_eq!(result.scheme, "FLARE");
        // 120 s / 10 s BAI = 12 solves.
        assert_eq!(result.solve_times.len(), 12);
        assert!(result.videos.iter().all(|v| v.stats.segments > 0));
    }

    #[test]
    fn avis_run_caps_flows() {
        let result = CellSim::new(base(SchemeKind::Avis(Default::default()))).run();
        assert_eq!(result.scheme, "AVIS");
        assert!(result.videos.iter().all(|v| v.stats.segments > 0));
    }

    #[test]
    fn runs_are_deterministic() {
        let a = CellSim::new(base(SchemeKind::Flare(FlareConfig::default()))).run();
        let b = CellSim::new(base(SchemeKind::Flare(FlareConfig::default()))).run();
        assert_eq!(
            a.videos[0].rate_series.points(),
            b.videos[0].rate_series.points()
        );
        assert_eq!(
            a.data[0].throughput_series.points(),
            b.data[0].throughput_series.points()
        );
    }

    #[test]
    fn mobile_channel_runs() {
        let config = SimConfig::builder()
            .seed(5)
            .duration(TimeDelta::from_secs(60))
            .videos(2)
            .data_flows(0)
            .channel(ChannelKind::Mobile(MobilityConfig::default()))
            .scheme(SchemeKind::Festive)
            .build();
        let result = CellSim::new(config).run();
        assert!(result.videos[0].stats.segments > 0);
    }

    #[test]
    fn qoe_scoring_is_consistent_with_its_inputs() {
        let r = CellSim::new(base(SchemeKind::Flare(FlareConfig::default()))).run();
        let w = flare_metrics::QoeWeights::default();
        let score = r.average_qoe(w);
        // FLARE never stalls in this scenario and holds steady rates, so
        // the score sits below the average nominal rate by exactly the
        // (small) switching penalty.
        assert!(score > 0.0 && score <= r.average_video_rate_kbps() + 1e-9);
        let inputs = r.videos[0].qoe_inputs(r.duration).unwrap();
        assert_eq!(inputs.rebuffer_ratio, 0.0);
    }

    #[test]
    fn request_jitter_destabilizes_estimating_clients_but_not_flare() {
        // With per-request transport jitter, FESTIVE's throughput samples
        // get noisy and its selections flap more; FLARE's plugin ignores
        // client estimates entirely, so its stability budget is untouched.
        let mk = |scheme: SchemeKind, jitter_ms: u64| {
            let cfg = SimConfig::builder()
                .seed(13)
                .duration(TimeDelta::from_secs(400))
                .videos(4)
                .data_flows(0)
                .channel(ChannelKind::Static { itbs: 6 })
                .request_jitter(TimeDelta::from_millis(jitter_ms))
                .scheme(scheme)
                .build();
            CellSim::new(cfg).run()
        };
        let festive_ideal = mk(SchemeKind::Festive, 0);
        let festive_jitter = mk(SchemeKind::Festive, 1500);
        assert!(
            festive_jitter.average_bitrate_changes() >= festive_ideal.average_bitrate_changes(),
            "jitter should not stabilize FESTIVE: {} vs {}",
            festive_jitter.average_bitrate_changes(),
            festive_ideal.average_bitrate_changes()
        );
        let flare_ideal = mk(SchemeKind::Flare(FlareConfig::default()), 0);
        let flare_jitter = mk(SchemeKind::Flare(FlareConfig::default()), 1500);
        assert!(
            flare_jitter.average_bitrate_changes() <= flare_ideal.average_bitrate_changes() + 1.0,
            "FLARE must stay stable under jitter: {} vs {}",
            flare_jitter.average_bitrate_changes(),
            flare_ideal.average_bitrate_changes()
        );
        // And jittered FLARE still never stalls (GBR pacing absorbs it).
        assert_eq!(flare_jitter.average_underflow_secs(), 0.0);
    }

    #[test]
    fn recorded_traces_replay_identically_to_live_mobility() {
        use flare_lte::mobility::generate_trace;
        use flare_sim::rng::stream;

        // Record each UE's live mobility process to CSV, then run the same
        // scenario once live and once from the recorded traces: identical
        // channels must produce identical results.
        let mc = MobilityConfig::default();
        let n = 3usize;
        let seed = 6;
        let duration = TimeDelta::from_secs(90);
        let docs: Vec<String> = (0..n as u64)
            .map(|ue| {
                generate_trace(
                    &mc,
                    duration,
                    stream(seed, "walk", ue),
                    stream(seed, "fade", ue),
                )
                .to_csv()
            })
            .collect();
        let mk = |channel: ChannelKind| {
            SimConfig::builder()
                .seed(seed)
                .duration(duration)
                .videos(n)
                .data_flows(0)
                .channel(channel)
                .scheme(SchemeKind::Festive)
                .build()
        };
        let live = CellSim::new(mk(ChannelKind::Mobile(mc.clone()))).run();
        let replay = CellSim::new(mk(ChannelKind::Traces(docs))).run();
        for (a, b) in live.videos.iter().zip(&replay.videos) {
            assert_eq!(a.rate_series.points(), b.rate_series.points());
            assert_eq!(a.throughput_series.points(), b.throughput_series.points());
        }
    }

    #[test]
    fn jain_index_is_high_for_symmetric_clients() {
        let result = CellSim::new(base(SchemeKind::Flare(FlareConfig::default()))).run();
        assert!(result.jain_of_video_rates() > 0.9);
    }

    #[test]
    fn perfect_message_path_matches_legacy_flare_bit_for_bit() {
        // Routing the coordination loop through a zero-fault control plane
        // must not change a single decision: the acceptance bar for the
        // message-path refactor.
        let legacy = CellSim::new(base(SchemeKind::Flare(FlareConfig::default()))).run();
        let cfg = SimConfig::builder()
            .seed(3)
            .duration(TimeDelta::from_secs(120))
            .bai(TimeDelta::from_secs(10))
            .videos(2)
            .data_flows(1)
            .channel(ChannelKind::Static { itbs: 10 })
            .scheme(SchemeKind::Flare(FlareConfig::default()))
            .faults(flare_core::FaultModel::perfect())
            .build();
        let msg = CellSim::new(cfg).run();
        assert_eq!(msg.scheme, "FLARE");
        for (a, b) in legacy.videos.iter().zip(&msg.videos) {
            assert_eq!(a.rate_series.points(), b.rate_series.points());
            assert_eq!(a.throughput_series.points(), b.throughput_series.points());
            assert_eq!(a.stats.bitrate_changes, b.stats.bitrate_changes);
        }
        assert_eq!(
            legacy.data[0].throughput_series.points(),
            msg.data[0].throughput_series.points()
        );
        let r = msg.robustness.expect("message path reports telemetry");
        assert_eq!(r.dropped, 0);
        assert_eq!(r.fallback_bais, 0);
    }

    #[test]
    fn resilient_flare_survives_total_control_plane_loss() {
        let cfg = SimConfig::builder()
            .seed(3)
            .duration(TimeDelta::from_secs(200))
            .bai(TimeDelta::from_secs(10))
            .videos(2)
            .data_flows(0)
            .channel(ChannelKind::Static { itbs: 10 })
            .scheme(SchemeKind::Flare(
                FlareConfig::default().with_robustness(flare_core::RobustnessConfig::default()),
            ))
            .faults(flare_core::FaultModel::perfect().with_drop_prob(1.0))
            .build();
        let result = CellSim::new(cfg).run();
        assert_eq!(result.scheme, "FLARE-R");
        let r = result.robustness.unwrap();
        assert_eq!(r.installs, 0, "nothing can get through");
        assert!(r.dropped > 0);
        assert!(r.fallback_bais > 0, "clients must notice the dead loop");
        // Playback continues on the fallback policy.
        assert!(result.videos.iter().all(|v| v.stats.segments > 3));
    }

    #[test]
    fn faulty_runs_are_deterministic_per_seed() {
        let mk = || {
            let cfg = SimConfig::builder()
                .seed(11)
                .duration(TimeDelta::from_secs(150))
                .bai(TimeDelta::from_secs(10))
                .videos(3)
                .data_flows(1)
                .channel(ChannelKind::Static { itbs: 10 })
                .scheme(SchemeKind::Flare(
                    FlareConfig::default().with_robustness(flare_core::RobustnessConfig::default()),
                ))
                .faults(
                    flare_core::FaultModel::perfect()
                        .with_drop_prob(0.3)
                        .with_jitter(TimeDelta::from_millis(800)),
                )
                .build();
            CellSim::new(cfg).run()
        };
        let (a, b) = (mk(), mk());
        assert_eq!(a.robustness, b.robustness);
        for (va, vb) in a.videos.iter().zip(&b.videos) {
            assert_eq!(va.rate_series.points(), vb.rate_series.points());
        }
    }
}
