//! The ns-3-style cell simulation scenarios (Section IV-B).
//!
//! Table III settings: 1200 s runs, a 2000 m × 2000 m area with random UE
//! placement, trace-based channels, 10 s segments, the {100, 250, 500,
//! 1000, 2000, 3000} kbps ladder, and the Priority Set Scheduler. Eight
//! clients per run, twenty runs per plot (= 160 client samples for the
//! CDFs). Three schemes are compared: FLARE, AVIS, and FESTIVE.

use flare_abr::avis::AvisConfig;
use flare_core::FlareConfig;
use flare_lte::mobility::MobilityConfig;
use flare_sim::TimeDelta;

use crate::config::{ChannelKind, SchemeKind, SimConfig};
use crate::runner::{CellSim, RunResult};

/// The three schemes the simulation study compares, in paper order.
pub fn schemes() -> Vec<SchemeKind> {
    vec![
        SchemeKind::Flare(FlareConfig::default()),
        SchemeKind::Avis(AvisConfig::default()),
        SchemeKind::Festive,
    ]
}

/// Base Table III configuration for a scheme, a channel, and a flow mix.
pub fn cell_config(
    scheme: SchemeKind,
    channel: ChannelKind,
    n_video: usize,
    n_data: usize,
    seed: u64,
    duration: TimeDelta,
) -> SimConfig {
    SimConfig::builder()
        .seed(seed)
        .duration(duration)
        .videos(n_video)
        .data_flows(n_data)
        .channel(channel)
        .scheme(scheme)
        .build()
}

/// One static-scenario run: stationary UEs at seeded random positions.
pub fn static_run(scheme: SchemeKind, seed: u64, duration: TimeDelta) -> RunResult {
    let channel = ChannelKind::StationaryRandom(MobilityConfig::default());
    CellSim::new(cell_config(scheme, channel, 8, 0, seed, duration)).run()
}

/// One mobile-scenario run: vehicular random-waypoint UEs.
pub fn mobile_run(scheme: SchemeKind, seed: u64, duration: TimeDelta) -> RunResult {
    let channel = ChannelKind::Mobile(MobilityConfig::default());
    CellSim::new(cell_config(scheme, channel, 8, 0, seed, duration)).run()
}

/// One mixed run with video and data flows (Figure 10: 8 + 8).
pub fn mixed_run(
    scheme: SchemeKind,
    n_video: usize,
    n_data: usize,
    seed: u64,
    duration: TimeDelta,
) -> RunResult {
    let channel = ChannelKind::StationaryRandom(MobilityConfig::default());
    CellSim::new(cell_config(
        scheme, channel, n_video, n_data, seed, duration,
    ))
    .run()
}

/// Executes `n_runs` independent runs (seeds `seed0..seed0+n_runs`) on up
/// to `jobs` worker threads (`0` = all cores, `1` = serial).
///
/// Each job builds its whole simulation inside the closure, so runs share
/// nothing and the result vector is bit-identical to a serial loop — the
/// harness contract [`flare_harness::run_indexed`] enforces.
pub fn repeat(
    n_runs: usize,
    seed0: u64,
    jobs: usize,
    one: impl Fn(u64) -> RunResult + Sync,
) -> Vec<RunResult> {
    flare_harness::run_indexed(n_runs, jobs, |i| one(seed0 + i as u64))
}

/// Pools every client's average bitrate (kbps) across runs — the sample
/// behind the paper's "CDF over 160 clients".
pub fn pooled_rates(runs: &[RunResult]) -> Vec<f64> {
    runs.iter()
        .flat_map(|r| r.videos.iter().map(|v| v.stats.average_rate.as_kbps()))
        .collect()
}

/// Pools every client's bitrate-change count across runs.
pub fn pooled_changes(runs: &[RunResult]) -> Vec<f64> {
    runs.iter()
        .flat_map(|r| r.videos.iter().map(|v| v.stats.bitrate_changes as f64))
        .collect()
}

/// Pools every video flow's average MAC throughput (kbps).
pub fn pooled_video_throughput(runs: &[RunResult]) -> Vec<f64> {
    runs.iter()
        .flat_map(|r| r.videos.iter().map(|v| v.average_throughput.as_kbps()))
        .collect()
}

/// Pools every data flow's average throughput (kbps).
pub fn pooled_data_throughput(runs: &[RunResult]) -> Vec<f64> {
    runs.iter()
        .flat_map(|r| r.data.iter().map(|d| d.average_throughput.as_kbps()))
        .collect()
}

/// Mean Jain's fairness index across runs.
pub fn mean_jain(runs: &[RunResult]) -> f64 {
    if runs.is_empty() {
        return 1.0;
    }
    runs.iter().map(|r| r.jain_of_video_rates()).sum::<f64>() / runs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    const SHORT: TimeDelta = TimeDelta::from_secs(200);

    #[test]
    fn static_runs_pool_correctly() {
        let runs = repeat(2, 40, 2, |s| static_run(SchemeKind::Festive, s, SHORT));
        assert_eq!(runs.len(), 2);
        assert_eq!(pooled_rates(&runs).len(), 16);
        assert_eq!(pooled_changes(&runs).len(), 16);
        assert!(pooled_rates(&runs).iter().all(|&r| r >= 100.0));
        assert!(mean_jain(&runs) > 0.3);
    }

    #[test]
    fn different_seeds_differ() {
        let a = static_run(SchemeKind::Festive, 1, SHORT);
        let b = static_run(SchemeKind::Festive, 2, SHORT);
        // Random UE placement means per-client channels differ, which shows
        // up in download *timing* (per-second delivered bytes) even when an
        // underloaded cell lets both runs fetch identical segment totals.
        assert_ne!(
            a.videos[0].throughput_series.points(),
            b.videos[0].throughput_series.points()
        );
    }

    #[test]
    fn flare_beats_festive_on_stability_in_mobile_runs() {
        let flare = mobile_run(SchemeKind::Flare(FlareConfig::default()), 7, SHORT);
        let festive = mobile_run(SchemeKind::Festive, 7, SHORT);
        assert!(
            flare.average_bitrate_changes() <= festive.average_bitrate_changes(),
            "flare {} vs festive {}",
            flare.average_bitrate_changes(),
            festive.average_bitrate_changes()
        );
    }

    #[test]
    fn mixed_run_balances_classes() {
        let r = mixed_run(SchemeKind::Flare(FlareConfig::default()), 4, 4, 9, SHORT);
        assert_eq!(r.videos.len(), 4);
        assert_eq!(r.data.len(), 4);
        assert!(r.average_data_throughput_kbps() > 0.0);
        assert!(r.average_video_rate_kbps() > 0.0);
    }
}
