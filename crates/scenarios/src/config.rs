//! Simulation configuration: who streams what, over which cell, under
//! which adaptation scheme.

use flare_abr::avis::AvisConfig;
use flare_core::{ClientPrefs, FaultModel, FlareConfig};
use flare_has::{BitrateLadder, PlayerConfig};
use flare_lte::mobility::MobilityConfig;
use flare_lte::CellConfig;
use flare_sim::TimeDelta;
use flare_trace::TraceHandle;
use std::sync::atomic::{AtomicBool, Ordering};

/// Process-wide default for [`SimConfig::check_invariants`], read once by
/// each new [`SimConfigBuilder`]. `repro --check-invariants` flips it so
/// every run an experiment constructs — however deep in the call chain —
/// gets the runtime invariant battery without per-callsite plumbing.
static DEFAULT_CHECK_INVARIANTS: AtomicBool = AtomicBool::new(false);

/// Sets the process-wide default for [`SimConfig::check_invariants`].
///
/// Affects builders created *after* the call; explicit
/// [`SimConfigBuilder::check_invariants`] calls always win.
pub fn set_default_check_invariants(on: bool) {
    DEFAULT_CHECK_INVARIANTS.store(on, Ordering::Relaxed);
}

/// The current process-wide invariant-checking default.
pub fn default_check_invariants() -> bool {
    DEFAULT_CHECK_INVARIANTS.load(Ordering::Relaxed)
}

/// How each UE's channel evolves.
#[derive(Debug, Clone)]
pub enum ChannelKind {
    /// Every UE pinned at the same iTbs (the testbed static scenario).
    Static {
        /// The operating point.
        itbs: u8,
    },
    /// Triangle-wave iTbs sweep with per-UE phase offsets (the testbed
    /// dynamic scenario: 1 → 12 → 1 over 4 minutes).
    Triangle {
        /// Lowest index of the sweep.
        min: u8,
        /// Highest index of the sweep.
        max: u8,
        /// Full cycle length.
        period: TimeDelta,
    },
    /// Stationary UEs at random positions: iTbs fixed per UE from path loss
    /// at its (seeded) random position — the ns-3 static scenarios.
    StationaryRandom(MobilityConfig),
    /// Vehicular random-waypoint mobility with shadowing — the ns-3 mobile
    /// scenarios ("trace based model").
    Mobile(MobilityConfig),
    /// Replay recorded per-UE channel traces (CSV documents in
    /// [`flare_lte::channel::TraceChannel::from_csv`] format). UE `i` plays
    /// trace `i % len`; must be non-empty.
    Traces(Vec<String>),
}

/// Which adaptation scheme controls the video flows.
#[derive(Debug, Clone)]
pub enum SchemeKind {
    /// Client-side FESTIVE on every video UE.
    Festive,
    /// The reference MPEG-DASH player ("GOOGLE") on every video UE.
    Google,
    /// A BBA-0-style buffer-based controller (extension baseline).
    BufferBased,
    /// FLARE: OneAPI server + plugins + GBR enforcement.
    Flare(FlareConfig),
    /// Ablation: the FLARE server assigns GBRs, but clients self-adapt with
    /// a rate-based controller instead of obeying the plugin — an
    /// AVIS-ified FLARE that demonstrates why dual enforcement matters.
    FlareGbrOnly(FlareConfig),
    /// AVIS: network-side allocator setting GBR/MBR, rate-based clients.
    Avis(AvisConfig),
}

impl SchemeKind {
    /// Short name for tables.
    pub fn name(&self) -> &'static str {
        match self {
            SchemeKind::Festive => "FESTIVE",
            SchemeKind::Google => "GOOGLE",
            SchemeKind::BufferBased => "BBA",
            // Robustness configured -> the graceful-degradation variant
            // (versioned assignments, fallback plugin, GBR leases).
            SchemeKind::Flare(fc) if fc.robustness.is_some() => "FLARE-R",
            SchemeKind::Flare(_) => "FLARE",
            SchemeKind::FlareGbrOnly(_) => "FLARE-GBR-ONLY",
            SchemeKind::Avis(_) => "AVIS",
        }
    }
}

/// Which MAC scheduler the cell runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Legacy proportional fair (no QoS awareness).
    ProportionalFair,
    /// The femtocell's two-phase GBR scheduler (testbed experiments).
    TwoPhaseGbr,
    /// The ns-3 Priority Set Scheduler (simulation experiments).
    PrioritySet,
    /// Static slicing: GBR flows keep their reservation even when idle
    /// (original-AVIS ablation).
    StrictPartition,
    /// Channel-blind round robin (multi-user-diversity ablation).
    RoundRobin,
}

/// Full configuration of one simulated cell run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Master seed; every stochastic component derives from it.
    pub seed: u64,
    /// Simulated wall-clock length.
    pub duration: TimeDelta,
    /// Bitrate assignment interval for network-side schemes.
    pub bai: TimeDelta,
    /// Radio configuration.
    pub cell: CellConfig,
    /// MAC scheduling policy.
    pub scheduler: SchedulerKind,
    /// Encodings available to every video.
    pub ladder: BitrateLadder,
    /// Segment length.
    pub segment: TimeDelta,
    /// Player timing knobs.
    pub player: PlayerConfig,
    /// Number of video UEs.
    pub n_video: usize,
    /// Number of greedy data UEs.
    pub n_data: usize,
    /// Channel processes.
    pub channel: ChannelKind,
    /// Adaptation scheme.
    pub scheme: SchemeKind,
    /// Optional per-client preferences (index-aligned with video UEs;
    /// missing entries mean no preferences).
    pub prefs: Vec<Option<ClientPrefs>>,
    /// Number of trailing video UEs that run a *conventional* (FESTIVE)
    /// player instead of the configured coordinated scheme. The paper's
    /// deployment discussion (Section V): FLARE services such players like
    /// other data traffic, with no bitrate guarantees. Only meaningful when
    /// the scheme is FLARE; ignored otherwise.
    pub legacy_video: usize,
    /// Transport-layer request jitter: each segment request reaches the
    /// media path after a uniformly random delay in `[0, request_jitter]`
    /// (seeded per UE). Zero models the ideal transport; a few hundred ms
    /// approximates per-request HTTP/TCP variability (DNS, handshakes, slow
    /// start), which is the noise source that destabilizes throughput-
    /// estimating clients on real testbeds — see EXPERIMENTS.md.
    pub request_jitter: TimeDelta,
    /// Control-plane fault model for coordinated (FLARE) schemes: when set,
    /// statistics reports and assignments travel through a fault-injectable
    /// [`flare_core::ControlPlane`] instead of being exchanged losslessly.
    /// `None` keeps the paper's lossless in-process exchange (and the
    /// bit-exact legacy code path). Ignored by client-side schemes, which
    /// have no control plane.
    pub faults: Option<FaultModel>,
    /// Trace recorder shared by every instrumented component of the run.
    /// Defaults to a detached handle, in which case the simulation attaches
    /// an internal registry-only recorder (counters and histograms, no
    /// event ring) so end-of-run telemetry is always available. Attach a
    /// recording handle (e.g. `TraceHandle::new(TraceConfig::info())`) to
    /// capture the structured event stream as well.
    pub trace: TraceHandle,
    /// Runs the `flare-harness` runtime invariant battery inline: per-TTI RB
    /// conservation and lease return, Eq. (4a)/(4b) checks on every solve,
    /// player buffer/stall sanity, and monotone versioned installs. A
    /// violation panics the run (hard-fail) after recording a structured
    /// `invariant` trace event. Defaults to the process-wide setting
    /// ([`set_default_check_invariants`]), normally off.
    pub check_invariants: bool,
}

impl SimConfig {
    /// Starts a builder with Table III-style defaults: 1200 s, 10 s
    /// segments and BAI, the {100..3000} kbps ladder, 8 video UEs, the
    /// Priority Set Scheduler, and FLARE with Table IV parameters.
    pub fn builder() -> SimConfigBuilder {
        SimConfigBuilder::default()
    }
}

/// Builder for [`SimConfig`].
#[derive(Debug, Clone)]
pub struct SimConfigBuilder {
    config: SimConfig,
}

impl Default for SimConfigBuilder {
    fn default() -> Self {
        SimConfigBuilder {
            config: SimConfig {
                seed: 1,
                duration: TimeDelta::from_secs(1200),
                bai: TimeDelta::from_secs(10),
                cell: CellConfig::default(),
                scheduler: SchedulerKind::PrioritySet,
                ladder: BitrateLadder::simulation(),
                segment: TimeDelta::from_secs(10),
                player: PlayerConfig::default(),
                n_video: 8,
                n_data: 0,
                channel: ChannelKind::StationaryRandom(MobilityConfig::default()),
                scheme: SchemeKind::Flare(FlareConfig::default()),
                prefs: Vec::new(),
                legacy_video: 0,
                request_jitter: TimeDelta::ZERO,
                faults: None,
                trace: TraceHandle::disabled(),
                check_invariants: default_check_invariants(),
            },
        }
    }
}

impl SimConfigBuilder {
    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the simulated duration.
    pub fn duration(mut self, duration: TimeDelta) -> Self {
        self.config.duration = duration;
        self
    }

    /// Sets the bitrate assignment interval.
    pub fn bai(mut self, bai: TimeDelta) -> Self {
        self.config.bai = bai;
        self
    }

    /// Sets the MAC scheduler.
    pub fn scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.config.scheduler = scheduler;
        self
    }

    /// Sets the bitrate ladder.
    pub fn ladder(mut self, ladder: BitrateLadder) -> Self {
        self.config.ladder = ladder;
        self
    }

    /// Sets the segment duration.
    pub fn segment(mut self, segment: TimeDelta) -> Self {
        self.config.segment = segment;
        self
    }

    /// Sets the player configuration.
    pub fn player(mut self, player: PlayerConfig) -> Self {
        self.config.player = player;
        self
    }

    /// Sets the number of video UEs.
    pub fn videos(mut self, n: usize) -> Self {
        self.config.n_video = n;
        self
    }

    /// Sets the number of data UEs.
    pub fn data_flows(mut self, n: usize) -> Self {
        self.config.n_data = n;
        self
    }

    /// Sets the channel model.
    pub fn channel(mut self, channel: ChannelKind) -> Self {
        self.config.channel = channel;
        self
    }

    /// Sets the adaptation scheme.
    pub fn scheme(mut self, scheme: SchemeKind) -> Self {
        self.config.scheme = scheme;
        self
    }

    /// Sets preferences for one video UE (index into the video list).
    pub fn prefs_for(mut self, video_index: usize, prefs: ClientPrefs) -> Self {
        if self.config.prefs.len() <= video_index {
            self.config.prefs.resize(video_index + 1, None);
        }
        self.config.prefs[video_index] = Some(prefs);
        self
    }

    /// Makes the last `n` video UEs conventional (FESTIVE) players that the
    /// FLARE server services as best-effort data traffic.
    pub fn legacy_video(mut self, n: usize) -> Self {
        self.config.legacy_video = n;
        self
    }

    /// Sets the transport request jitter (maximum per-segment delay).
    pub fn request_jitter(mut self, jitter: TimeDelta) -> Self {
        self.config.request_jitter = jitter;
        self
    }

    /// Routes the coordination loop through a fault-injectable control
    /// plane with the given fault model.
    pub fn faults(mut self, faults: FaultModel) -> Self {
        self.config.faults = Some(faults);
        self
    }

    /// Attaches a trace recorder: every instrumented component (MAC
    /// scheduler, solver, control plane, plugins, players) records into it,
    /// and the run's `RunResult::telemetry` is read from its registry.
    pub fn trace(mut self, trace: TraceHandle) -> Self {
        self.config.trace = trace;
        self
    }

    /// Enables (or disables) the inline runtime invariant battery for this
    /// run, overriding the process-wide default.
    pub fn check_invariants(mut self, on: bool) -> Self {
        self.config.check_invariants = on;
        self
    }

    /// Finalizes the configuration.
    ///
    /// # Panics
    ///
    /// Panics on degenerate settings (zero duration, zero BAI, no flows, or
    /// more legacy players than video UEs).
    pub fn build(self) -> SimConfig {
        let c = &self.config;
        assert!(!c.duration.is_zero(), "duration must be non-zero");
        assert!(!c.bai.is_zero(), "BAI must be non-zero");
        assert!(!c.segment.is_zero(), "segment must be non-zero");
        assert!(c.n_video + c.n_data > 0, "need at least one flow");
        assert!(
            c.legacy_video <= c.n_video,
            "legacy players cannot exceed video UEs"
        );
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_iii() {
        let c = SimConfig::builder().build();
        assert_eq!(c.duration, TimeDelta::from_secs(1200));
        assert_eq!(c.segment, TimeDelta::from_secs(10));
        assert_eq!(c.n_video, 8);
        assert_eq!(c.ladder.len(), 6);
        assert_eq!(c.scheduler, SchedulerKind::PrioritySet);
    }

    #[test]
    fn builder_overrides() {
        let c = SimConfig::builder()
            .seed(9)
            .videos(3)
            .data_flows(1)
            .scheme(SchemeKind::Google)
            .scheduler(SchedulerKind::TwoPhaseGbr)
            .build();
        assert_eq!(c.seed, 9);
        assert_eq!(c.n_video, 3);
        assert_eq!(c.n_data, 1);
        assert_eq!(c.scheme.name(), "GOOGLE");
    }

    #[test]
    fn scheme_names() {
        assert_eq!(SchemeKind::Festive.name(), "FESTIVE");
        assert_eq!(SchemeKind::Flare(FlareConfig::default()).name(), "FLARE");
        assert_eq!(SchemeKind::Avis(AvisConfig::default()).name(), "AVIS");
        assert_eq!(
            SchemeKind::FlareGbrOnly(FlareConfig::default()).name(),
            "FLARE-GBR-ONLY"
        );
        assert_eq!(
            SchemeKind::Flare(
                FlareConfig::default().with_robustness(flare_core::RobustnessConfig::default())
            )
            .name(),
            "FLARE-R"
        );
    }

    #[test]
    fn faults_knob_defaults_off() {
        assert!(SimConfig::builder().build().faults.is_none());
        let c = SimConfig::builder()
            .faults(FaultModel::perfect().with_drop_prob(0.2))
            .build();
        assert_eq!(c.faults.unwrap().drop_prob, 0.2);
    }

    #[test]
    fn check_invariants_defaults_off_and_overrides() {
        assert!(!SimConfig::builder().build().check_invariants);
        assert!(
            SimConfig::builder()
                .check_invariants(true)
                .build()
                .check_invariants
        );
    }

    #[test]
    fn prefs_assignment() {
        let c = SimConfig::builder()
            .videos(3)
            .prefs_for(2, ClientPrefs::default())
            .build();
        assert_eq!(c.prefs.len(), 3);
        assert!(c.prefs[2].is_some());
        assert!(c.prefs[0].is_none());
    }

    #[test]
    #[should_panic(expected = "at least one flow")]
    fn empty_cell_panics() {
        let _ = SimConfig::builder().videos(0).data_flows(0).build();
    }
}
