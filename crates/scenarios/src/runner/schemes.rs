//! Per-scheme plugin dispatch: adapter selection, controller construction,
//! and the BAI/control-plane handlers for each adaptation scheme.
//!
//! Moved out of the main runner so [`CellSim`](super::CellSim)'s TTI loop
//! stays readable from harness call sites; the types and control flow are
//! unchanged. The only additions are the `flare-harness` invariant
//! observations (guarded by `SimConfig::check_invariants`) at the solve and
//! install checkpoints.

use std::time::Duration;

use flare_abr::avis::AvisAllocator;
use flare_abr::{BufferBased, Festive, Google, RateBased, SharedAssignment, VersionedAssignment};
use flare_core::messages::StatsReportMsg;
use flare_core::{
    ClientInfo, ControlPlane, FaultModel, FlarePlugin, OneApiServer, ResilientPlugin,
    RobustnessConfig,
};
use flare_harness::Observation;
use flare_has::{Level, RateAdapter};
use flare_lte::FlowId;
use flare_sim::units::Rate;
use flare_sim::{Time, TimeDelta};
use flare_trace::{Category, TraceHandle};

use super::CellSim;
use crate::config::{SchemeKind, SimConfig};

/// Client-side assignment cells of a message-path FLARE run.
pub(super) enum MsgCells {
    /// Naive: last-write-wins cells, persistent GBRs — the paper's FLARE
    /// run unchanged over a (possibly faulty) control plane.
    Naive(Vec<SharedAssignment>),
    /// Resilient: versioned cells with staleness fallback, GBR leases.
    Versioned(Vec<VersionedAssignment>),
}

// One live instance per simulation; the size spread between variants is
// irrelevant next to boxing noise.
#[allow(clippy::large_enum_variant)]
pub(super) enum Controller {
    None,
    Flare {
        server: OneApiServer,
        cells: Vec<SharedAssignment>,
        gbr_only: bool,
    },
    /// FLARE with its coordination loop carried over an explicit (fault-
    /// injectable) control plane instead of lossless in-process calls.
    FlareMsg {
        server: OneApiServer,
        control: ControlPlane,
        cells: MsgCells,
        /// Freshest statistics report delivered to the server so far and
        /// not yet consumed by a solve.
        latest_report: Option<StatsReportMsg>,
        robustness: Option<RobustnessConfig>,
    },
    Avis(AvisAllocator),
}

/// The robustness configuration a scheme carries, if any.
pub(super) fn robustness_of(scheme: &SchemeKind) -> Option<RobustnessConfig> {
    match scheme {
        SchemeKind::Flare(fc) => fc.robustness,
        _ => None,
    }
}

/// Builds the rate adapter one video player runs under `scheme`.
///
/// `legacy` players always get a conventional FESTIVE adapter (a FLARE
/// deployment services them as plain data traffic). FLARE plugins register
/// their shared assignment cell into `cells`/`versioned_cells` so the
/// controller can write to them.
pub(super) fn player_adapter(
    scheme: &SchemeKind,
    legacy: bool,
    robustness: Option<RobustnessConfig>,
    cells: &mut Vec<SharedAssignment>,
    versioned_cells: &mut Vec<VersionedAssignment>,
) -> Box<dyn RateAdapter> {
    if legacy {
        return Box::new(Festive::default());
    }
    match scheme {
        SchemeKind::Festive => Box::new(Festive::default()),
        SchemeKind::Google => Box::new(Google::default()),
        SchemeKind::BufferBased => Box::new(BufferBased::default()),
        SchemeKind::Flare(_) => {
            if let Some(r) = robustness {
                let cell = VersionedAssignment::new(r.stale_bais, r.rejoin_bais);
                versioned_cells.push(cell.clone());
                Box::new(ResilientPlugin::new(cell)) as Box<dyn RateAdapter>
            } else {
                let cell = SharedAssignment::new();
                cells.push(cell.clone());
                Box::new(FlarePlugin::new(cell)) as Box<dyn RateAdapter>
            }
        }
        SchemeKind::FlareGbrOnly(_) | SchemeKind::Avis(_) => Box::new(RateBased::default()),
    }
}

/// Builds the network-side controller for `config`'s scheme.
#[allow(clippy::too_many_arguments)]
pub(super) fn build_controller(
    config: &SimConfig,
    trace: &TraceHandle,
    video_flows: &[FlowId],
    data_flows: &[FlowId],
    coordinated: usize,
    msg_path: bool,
    robustness: Option<RobustnessConfig>,
    mut cells: Vec<SharedAssignment>,
    versioned_cells: Vec<VersionedAssignment>,
) -> Controller {
    match &config.scheme {
        SchemeKind::Festive | SchemeKind::Google | SchemeKind::BufferBased => Controller::None,
        SchemeKind::Flare(fc) | SchemeKind::FlareGbrOnly(fc) => {
            let gbr_only = matches!(config.scheme, SchemeKind::FlareGbrOnly(_));
            let mut server = OneApiServer::new(fc.clone().with_bai(config.bai));
            server.set_trace(trace.clone());
            for (i, &flow) in video_flows.iter().enumerate().take(coordinated) {
                let mut info = ClientInfo::new(flow, config.ladder.clone());
                if let Some(Some(prefs)) = config.prefs.get(i) {
                    info = info.with_prefs(prefs.clone());
                }
                server.register_video(info);
            }
            // Legacy players are serviced like data: registered at the
            // PCRF as best-effort flows, never assigned a GBR.
            for &flow in video_flows.iter().skip(coordinated) {
                server.register_data(flow);
            }
            for &flow in data_flows {
                server.register_data(flow);
            }
            if msg_path {
                let faults = config.faults.clone().unwrap_or_else(FaultModel::perfect);
                Controller::FlareMsg {
                    server,
                    control: ControlPlane::new(faults, config.seed).with_trace(trace.clone()),
                    cells: if robustness.is_some() {
                        MsgCells::Versioned(versioned_cells)
                    } else {
                        MsgCells::Naive(cells)
                    },
                    latest_report: None,
                    robustness,
                }
            } else {
                if gbr_only {
                    cells.clear();
                }
                Controller::Flare {
                    server,
                    cells,
                    gbr_only,
                }
            }
        }
        SchemeKind::Avis(ac) => Controller::Avis(AvisAllocator::new(ac.clone())),
    }
}

impl CellSim {
    /// Delivers every control-plane message due by `now`: reports reach the
    /// server's inbox, assignments reach the plugins' cells and the eNodeB's
    /// PCEF. No-op for controllers without a message path.
    pub(super) fn poll_control(&mut self, now: Time) {
        let Controller::FlareMsg {
            control,
            cells,
            latest_report,
            robustness,
            ..
        } = &mut self.controller
        else {
            return;
        };
        for r in control.recv_reports(now) {
            // Keep only the freshest interval: a reordered old report must
            // not overwrite newer counters.
            if latest_report
                .as_ref()
                .is_none_or(|cur| r.end_ms >= cur.end_ms)
            {
                *latest_report = Some(r);
            }
        }
        for a in control.recv_assignments(now) {
            let Some(idx) = self
                .video_flows
                .iter()
                .position(|f| f.index() as u32 == a.flow_id)
            else {
                continue;
            };
            let flow = self.video_flows[idx];
            let rate = Rate::from_kbps(f64::from(a.gbr_kbps));
            let level = Level::new(a.level as usize);
            match cells {
                MsgCells::Naive(cs) => {
                    // Last write wins, GBRs persist — exactly the lossless-
                    // world behaviour, now exposed to faults.
                    cs[idx].set(level);
                    self.enb.set_gbr(flow, Some(rate));
                    self.trace
                        .record_debug(now, Category::Plugin, "apply", |e| {
                            e.u64("ue", idx as u64)
                                .u64("level", u64::from(a.level))
                                .u64("gbr_kbps", u64::from(a.gbr_kbps));
                        });
                }
                MsgCells::Versioned(cs) => {
                    // Client and PCEF share the versioned view: a stale
                    // assignment neither moves the plugin nor touches QoS.
                    let prev_seq = cs[idx].seq();
                    let accepted = cs[idx].install(a.seq, a.issued_ms, level);
                    if let Some(inv) = self.invariants.as_mut() {
                        inv.observe(
                            now,
                            &Observation::Install {
                                ue: idx as u64,
                                seq: a.seq,
                                prev_seq,
                                accepted,
                            },
                        );
                    }
                    if accepted {
                        let lease_bais = robustness.unwrap_or_default().lease_bais;
                        let lease = TimeDelta::from_millis(
                            self.config.bai.as_millis() * u64::from(lease_bais),
                        );
                        self.enb.set_gbr_lease(flow, rate, now + lease);
                        self.trace.incr("plugin.installs", 1);
                        self.trace.record(now, Category::Plugin, "install", |e| {
                            e.u64("ue", idx as u64)
                                .u64("assign_seq", a.seq)
                                .u64("level", u64::from(a.level))
                                .u64("gbr_kbps", u64::from(a.gbr_kbps));
                        });
                    } else {
                        self.trace.incr("plugin.stale_rejections", 1);
                        self.trace
                            .record(now, Category::Plugin, "stale_reject", |e| {
                                e.u64("ue", idx as u64).u64("assign_seq", a.seq);
                            });
                    }
                }
            }
        }
    }

    pub(super) fn run_bai(&mut self, now: Time, solve_times: &mut Vec<Duration>) {
        let report = self.enb.take_report(now);
        let check = self.invariants.is_some();
        let max_level = self.config.ladder.len().saturating_sub(1);
        match &mut self.controller {
            Controller::None => {}
            Controller::FlareMsg {
                server,
                control,
                latest_report,
                robustness,
                ..
            } => {
                let rbs = self.enb.config().rbs_per_tti;
                let la = self.enb.link_adaptation().clone();
                // eNodeB -> server: this BAI's statistics, via the (possibly
                // faulty) control plane.
                control.send_report(now, StatsReportMsg::from(&report));
                for r in control.recv_reports(now) {
                    if latest_report
                        .as_ref()
                        .is_none_or(|cur| r.end_ms >= cur.end_ms)
                    {
                        *latest_report = Some(r);
                    }
                }
                // Server side: during an outage window the server is down
                // and issues nothing; clients notice via staleness.
                if !control.in_outage(now) {
                    // Eq. (4b) is a server-side constraint: snapshot the
                    // server's own pre-solve levels, not the (possibly
                    // stale) client cells.
                    let prev_levels: Vec<Option<Level>> = if check {
                        self.video_flows
                            .iter()
                            .map(|&f| server.current_level(f))
                            .collect()
                    } else {
                        Vec::new()
                    };
                    let msgs = if robustness.is_some() {
                        server.bai_tick(now, latest_report.take().as_ref(), &la, rbs)
                    } else {
                        match latest_report.take() {
                            Some(r) => server.assign_msg(&r, &la, rbs),
                            None => Vec::new(),
                        }
                    };
                    if let Some(inv) = self.invariants.as_mut() {
                        for m in &msgs {
                            let Some(idx) = self
                                .video_flows
                                .iter()
                                .position(|f| f.index() as u32 == m.flow_id)
                            else {
                                continue;
                            };
                            inv.observe(
                                now,
                                &Observation::Assignment {
                                    flow: u64::from(m.flow_id),
                                    prev_level: prev_levels[idx].map(Level::index),
                                    new_level: m.level as usize,
                                    max_level,
                                },
                            );
                        }
                    }
                    if !msgs.is_empty() {
                        if let Some(t) = server.last_solve_time() {
                            solve_times.push(t);
                        }
                        control.send_assignments(now, msgs);
                    }
                }
                // Deliveries due right now are applied by the caller's
                // poll_control immediately after this returns.
            }
            Controller::Flare {
                server,
                cells,
                gbr_only,
            } => {
                let rbs = self.enb.config().rbs_per_tti;
                // The link adaptation table is cloned to satisfy borrowing;
                // it is a tiny value object.
                let la = self.enb.link_adaptation().clone();
                let prev_levels: Vec<Option<Level>> = if check {
                    self.video_flows
                        .iter()
                        .map(|&f| server.current_level(f))
                        .collect()
                } else {
                    Vec::new()
                };
                let assignments = server.assign(&report, &la, rbs);
                if let Some(t) = server.last_solve_time() {
                    solve_times.push(t);
                }
                for a in &assignments {
                    self.enb.set_gbr(a.flow, Some(a.rate));
                    if !*gbr_only {
                        let video_idx = self
                            .video_flows
                            .iter()
                            .position(|&f| f == a.flow)
                            .expect("assignment for unknown flow");
                        cells[video_idx].set(a.level);
                    }
                }
                if let Some(inv) = self.invariants.as_mut() {
                    // Recompute Eq. (4a) from the very statistics the server
                    // solved against: weight w_u = BAI / (8 b_u / n_u), rate
                    // R_u from the assignment, budget N = rbs_per_tti * BAI
                    // TTIs (see `OneApiServer::assign`).
                    let bai_secs = report.duration().as_secs_f64();
                    let total_rbs = f64::from(rbs) * report.duration().as_millis() as f64;
                    let mut used = 0.0;
                    for a in &assignments {
                        let idx = self.video_flows.iter().position(|&f| f == a.flow);
                        if let Some(idx) = idx {
                            inv.observe(
                                now,
                                &Observation::Assignment {
                                    flow: a.flow.index() as u64,
                                    prev_level: prev_levels[idx].map(Level::index),
                                    new_level: a.level.index(),
                                    max_level,
                                },
                            );
                        }
                        if let Some(stats) = report.flow(a.flow) {
                            let bits_per_rb = stats
                                .bytes_per_rb()
                                .map(|b| b * 8.0)
                                .unwrap_or_else(|| la.bits_per_rb(stats.itbs))
                                .max(1.0);
                            used += (bai_secs / bits_per_rb) * a.rate.as_bps();
                        }
                    }
                    if !assignments.is_empty() && total_rbs > 0.0 {
                        // The PCRF registers legacy players as data flows, so
                        // they count towards the r_cap < 1 headroom rule.
                        let has_data = self.config.n_data + self.config.legacy_video > 0;
                        inv.observe(
                            now,
                            &Observation::RateBudget {
                                used_fraction: used / total_rbs,
                                r_cap: if has_data { 0.999 } else { 1.0 },
                                tolerance: 1e-6,
                            },
                        );
                    }
                }
            }
            Controller::Avis(alloc) => {
                let rbs = self.enb.config().rbs_per_tti;
                let la = self.enb.link_adaptation().clone();
                for a in alloc.assign(&report, &la, rbs) {
                    self.enb.set_gbr(a.flow, Some(a.gbr));
                    self.enb.set_mbr(a.flow, Some(a.mbr));
                }
            }
        }
    }
}
