//! The single-cell simulation engine.
//!
//! [`CellSim`] owns the TTI loop and result collection; the per-scheme
//! plugin dispatch (adapter selection, controller construction, BAI and
//! control-plane handling) lives in [`schemes`].

mod schemes;

use std::time::Duration;

use flare_abr::CoordinationMode;
use flare_harness::{InvariantSet, Observation};
use flare_has::{Mpd, Player, PlayerStats};
use flare_lte::channel::{ChannelModel, StaticChannel, TraceChannel, TriangleWave};
use flare_lte::mobility::{snr_to_itbs, MobilityChannel, Position};
use flare_lte::scheduler::{
    MacScheduler, PrioritySetScheduler, ProportionalFair, RoundRobin, StrictGbrPartition,
    TwoPhaseGbr,
};
use flare_lte::{ENodeB, FlowClass, FlowId};
use flare_metrics::{jain_index, QoeInputs, TimeSeries};
use flare_sim::rng::{standard_normal, stream};
use flare_sim::units::{ByteCount, Rate};
use flare_sim::{Time, TimeDelta, TTI};
use flare_trace::{Category, RegistrySnapshot, TraceHandle};
use rand::Rng;

use crate::config::{ChannelKind, SchedulerKind, SchemeKind, SimConfig};
use schemes::{Controller, MsgCells};

/// Per-video-flow outcome of a run.
#[derive(Debug, Clone)]
pub struct VideoFlowResult {
    /// Index among the video UEs (0-based).
    pub index: usize,
    /// Player QoE statistics.
    pub stats: PlayerStats,
    /// Selected bitrate over time (kbps, stepped at segment requests).
    pub rate_series: TimeSeries,
    /// Buffered media over time (seconds, sampled each second).
    pub buffer_series: TimeSeries,
    /// Delivered MAC throughput over time (kbps, per second).
    pub throughput_series: TimeSeries,
    /// Average MAC throughput over the run.
    pub average_throughput: Rate,
}

impl VideoFlowResult {
    /// Inputs for the composite QoE model over this client's session.
    ///
    /// Returns `None` if the client never completed a segment.
    pub fn qoe_inputs(&self, session: TimeDelta) -> Option<QoeInputs> {
        if self.rate_series.is_empty() || session.is_zero() {
            return None;
        }
        let rates: Vec<f64> = self.rate_series.points().iter().map(|(_, r)| *r).collect();
        Some(QoeInputs::from_session(
            &rates,
            self.stats.underflow_time.as_secs_f64(),
            session.as_secs_f64(),
        ))
    }
}

/// Per-data-flow outcome of a run.
#[derive(Debug, Clone)]
pub struct DataFlowResult {
    /// Index among the data UEs (0-based).
    pub index: usize,
    /// Delivered throughput over time (kbps, per second).
    pub throughput_series: TimeSeries,
    /// Average throughput over the run.
    pub average_throughput: Rate,
}

/// Control-plane and degradation telemetry from a message-path run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RobustnessReport {
    /// Control-plane messages delivered.
    pub delivered: u64,
    /// Messages dropped by the loss process.
    pub dropped: u64,
    /// Uplink reports lost to server outage windows.
    pub lost_to_outage: u64,
    /// Messages held back by the reordering process.
    pub reordered: u64,
    /// Client-BAIs spent in fallback mode (summed over clients).
    pub fallback_bais: u64,
    /// Assignments rejected as stale/reordered (summed over clients).
    pub stale_rejections: u64,
    /// Assignments installed by clients (summed over clients).
    pub installs: u64,
    /// GBR leases that expired unrenewed at the eNodeB.
    pub expired_leases: u64,
    /// Clients the server evicted for statistics silence.
    pub evicted_clients: u64,
}

/// The outcome of one simulated run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The scheme that produced it.
    pub scheme: String,
    /// Simulated length.
    pub duration: TimeDelta,
    /// Per-video outcomes, in UE order.
    pub videos: Vec<VideoFlowResult>,
    /// Per-data-flow outcomes, in UE order.
    pub data: Vec<DataFlowResult>,
    /// Wall-clock solver times, one per BAI (network-side schemes only).
    pub solve_times: Vec<Duration>,
    /// Control-plane telemetry (message-path FLARE runs only).
    pub robustness: Option<RobustnessReport>,
    /// End-of-run counters, gauges, and timing histograms from the trace
    /// registry. Always populated: runs without an attached recorder use an
    /// internal registry-only one.
    pub telemetry: RegistrySnapshot,
}

impl RunResult {
    /// Mean of the per-client average video bitrates, in kbps.
    pub fn average_video_rate_kbps(&self) -> f64 {
        if self.videos.is_empty() {
            return 0.0;
        }
        self.videos
            .iter()
            .map(|v| v.stats.average_rate.as_kbps())
            .sum::<f64>()
            / self.videos.len() as f64
    }

    /// Mean number of bitrate changes per client.
    pub fn average_bitrate_changes(&self) -> f64 {
        if self.videos.is_empty() {
            return 0.0;
        }
        self.videos
            .iter()
            .map(|v| v.stats.bitrate_changes as f64)
            .sum::<f64>()
            / self.videos.len() as f64
    }

    /// Mean buffer-underflow time per client, in seconds.
    pub fn average_underflow_secs(&self) -> f64 {
        if self.videos.is_empty() {
            return 0.0;
        }
        self.videos
            .iter()
            .map(|v| v.stats.underflow_time.as_secs_f64())
            .sum::<f64>()
            / self.videos.len() as f64
    }

    /// Jain's fairness index over the clients' average video bitrates.
    pub fn jain_of_video_rates(&self) -> f64 {
        let rates: Vec<f64> = self
            .videos
            .iter()
            .map(|v| v.stats.average_rate.as_kbps())
            .collect();
        jain_index(&rates)
    }

    /// Mean composite QoE score across clients (kbps-denominated; see
    /// [`flare_metrics::qoe_score`]).
    pub fn average_qoe(&self, weights: flare_metrics::QoeWeights) -> f64 {
        let scores: Vec<f64> = self
            .videos
            .iter()
            .filter_map(|v| v.qoe_inputs(self.duration))
            .map(|i| flare_metrics::qoe_score(i, weights))
            .collect();
        if scores.is_empty() {
            return 0.0;
        }
        scores.iter().sum::<f64>() / scores.len() as f64
    }

    /// Mean data-flow throughput, in kbps.
    pub fn average_data_throughput_kbps(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data
            .iter()
            .map(|d| d.average_throughput.as_kbps())
            .sum::<f64>()
            / self.data.len() as f64
    }
}

/// A fully wired single-cell simulation. Construct with [`CellSim::new`],
/// execute with [`CellSim::run`].
pub struct CellSim {
    config: SimConfig,
    enb: ENodeB,
    video_flows: Vec<FlowId>,
    data_flows: Vec<FlowId>,
    players: Vec<Player>,
    controller: Controller,
    /// Per-UE RNG streams for transport request jitter.
    jitter_rngs: Vec<rand::rngs::SmallRng>,
    /// Segment payloads in transport flight: delivered to the cell at .0.
    pending_requests: Vec<(Time, usize, ByteCount)>,
    /// Shared trace recorder: the user's handle when one was attached via
    /// [`SimConfig::trace`], otherwise an internal registry-only recorder
    /// so counters back [`RunResult::telemetry`] in every run.
    trace: TraceHandle,
    /// Inline runtime invariant battery ([`SimConfig::check_invariants`]);
    /// hard-fail: the first violation panics the run after recording a
    /// structured trace event.
    invariants: Option<InvariantSet>,
    /// Per-video-flow GBR lease expiries snapshotted just before each TTI,
    /// so the lease-return invariant can observe expiries the TTI performs.
    lease_watch: Vec<Option<Time>>,
    /// Reusable observation buffer for the invariant battery, so checked
    /// runs do not allocate once the per-TTI observation set has reached
    /// its steady-state size.
    obs_scratch: Vec<Observation>,
}

impl CellSim {
    /// Builds the cell, UEs, players, and (for coordinated schemes) the
    /// network-side controller described by `config`.
    pub fn new(config: SimConfig) -> Self {
        let scheduler: Box<dyn MacScheduler> = match config.scheduler {
            SchedulerKind::ProportionalFair => Box::new(ProportionalFair::default()),
            SchedulerKind::TwoPhaseGbr => Box::new(TwoPhaseGbr::default()),
            SchedulerKind::PrioritySet => Box::new(PrioritySetScheduler::default()),
            SchedulerKind::StrictPartition => Box::new(StrictGbrPartition::default()),
            SchedulerKind::RoundRobin => Box::new(RoundRobin::new()),
        };
        let trace = if config.trace.is_attached() {
            config.trace.clone()
        } else {
            TraceHandle::registry_only()
        };
        let mut enb = ENodeB::new(config.cell.clone(), scheduler);
        enb.set_trace(trace.clone());

        let n_total = config.n_video + config.n_data;
        let mut channels: Vec<Box<dyn ChannelModel>> = (0..n_total)
            .map(|i| Self::make_channel(&config, i as u64))
            .collect();

        let video_flows: Vec<FlowId> = (0..config.n_video)
            .map(|_| enb.add_flow(FlowClass::Video, channels.remove(0)))
            .collect();
        let data_flows: Vec<FlowId> = (0..config.n_data)
            .map(|_| enb.add_flow(FlowClass::Data, channels.remove(0)))
            .collect();

        // Media comfortably outlasting the run keeps every player busy.
        let media = config.duration + config.segment.times(4);
        let mpd = |i: usize| {
            Mpd::new(
                format!("video-{i}"),
                config.ladder.clone(),
                config.segment,
                media,
            )
        };

        // The first `coordinated` video UEs follow the configured scheme;
        // any trailing `legacy_video` UEs run a conventional FESTIVE player
        // that a FLARE deployment services as plain data traffic.
        let coordinated = config.n_video - config.legacy_video;

        // FLARE runs take the message path (explicit control plane) as soon
        // as either faults or robustness are configured. With neither, the
        // legacy in-process path keeps the paper's lossless semantics
        // bit-for-bit.
        let robustness = schemes::robustness_of(&config.scheme);
        let msg_path = matches!(config.scheme, SchemeKind::Flare(_))
            && (config.faults.is_some() || robustness.is_some());

        let mut cells = Vec::new();
        let mut versioned_cells = Vec::new();
        let mut players: Vec<Player> = (0..config.n_video)
            .map(|i| {
                let adapter = schemes::player_adapter(
                    &config.scheme,
                    i >= coordinated,
                    robustness,
                    &mut cells,
                    &mut versioned_cells,
                );
                Player::new(mpd(i), config.player.clone(), adapter)
            })
            .collect();

        let controller = schemes::build_controller(
            &config,
            &trace,
            &video_flows,
            &data_flows,
            coordinated,
            msg_path,
            robustness,
            cells,
            versioned_cells,
        );

        let jitter_rngs = (0..config.n_video as u64)
            .map(|ue| stream(config.seed, "jitter", ue))
            .collect();
        for (i, player) in players.iter_mut().enumerate() {
            player.set_trace(trace.clone(), i as u64);
        }
        let invariants = config.check_invariants.then(|| {
            InvariantSet::standard()
                .with_trace(trace.clone())
                .with_hard_fail(true)
        });
        let lease_watch = vec![None; config.n_video];
        // One segment per `segment` interval per player bounds the record
        // count; reserving it up front keeps steady-state stepping
        // allocation-free (see `tests/alloc.rs`).
        for player in &mut players {
            player.reserve_records(player.mpd().segment_count() as usize);
        }
        CellSim {
            config,
            enb,
            video_flows,
            data_flows,
            players,
            controller,
            jitter_rngs,
            pending_requests: Vec::new(),
            trace,
            invariants,
            lease_watch,
            obs_scratch: Vec::new(),
        }
    }

    /// Test-only access to the eNodeB, for injecting deliberate violations
    /// (e.g. [`ENodeB::debug_inflate_reported_grants`]) into invariant
    /// tests. Not part of the public API.
    #[doc(hidden)]
    pub fn debug_enb_mut(&mut self) -> &mut ENodeB {
        &mut self.enb
    }

    fn make_channel(config: &SimConfig, ue: u64) -> Box<dyn ChannelModel> {
        match &config.channel {
            ChannelKind::Static { itbs } => {
                Box::new(StaticChannel::new(flare_lte::Itbs::new(*itbs)))
            }
            ChannelKind::Triangle { min, max, period } => {
                let n = (config.n_video + config.n_data) as u64;
                let offset = TimeDelta::from_millis(period.as_millis() * ue / n.max(1));
                Box::new(TriangleWave::new(
                    flare_lte::Itbs::new(*min),
                    flare_lte::Itbs::new(*max),
                    *period,
                    offset,
                ))
            }
            ChannelKind::StationaryRandom(mc) => {
                let mut rng = stream(config.seed, "position", ue);
                let pos = Position {
                    x: rng.gen::<f64>() * mc.area.0,
                    y: rng.gen::<f64>() * mc.area.1,
                };
                let enb_pos = Position {
                    x: mc.area.0 / 2.0,
                    y: mc.area.1 / 2.0,
                };
                let shadow = standard_normal(&mut rng) * mc.propagation.shadowing_sigma_db;
                let snr = mc.propagation.mean_snr_db(pos.distance_to(enb_pos)) + shadow;
                Box::new(StaticChannel::new(snr_to_itbs(snr)))
            }
            ChannelKind::Mobile(mc) => Box::new(MobilityChannel::new(
                mc.clone(),
                stream(config.seed, "walk", ue),
                stream(config.seed, "fade", ue),
            )),
            ChannelKind::Traces(docs) => {
                assert!(!docs.is_empty(), "trace channel list must be non-empty");
                let doc = &docs[(ue as usize) % docs.len()];
                Box::new(
                    TraceChannel::from_csv(doc)
                        .expect("trace documents must be valid (TraceChannel::from_csv)"),
                )
            }
        }
    }

    /// Runs the simulation to completion and returns the collected results.
    ///
    /// Equivalent to driving [`CellSim::into_stepper`] by hand: advance to
    /// each BAI boundary, execute it, repeat until the duration is
    /// exhausted. The sharded multi-cell engine runs exactly this loop with
    /// a barrier between the two calls, which is why sharded execution is
    /// byte-identical to this serial path.
    pub fn run(self) -> RunResult {
        let mut stepper = self.into_stepper();
        while stepper.advance_to_bai().is_some() {
            stepper.bai_boundary();
        }
        stepper.into_result()
    }

    /// Converts the simulation into an incrementally driven [`CellStepper`]
    /// so a coordinator can interleave this cell's TTIs with other cells'
    /// at BAI granularity.
    pub fn into_stepper(self) -> CellStepper {
        let duration_ms = self.config.duration.as_millis();
        let bai_ms = self.config.bai.as_millis();
        let n_video = self.video_flows.len();
        let n_data = self.data_flows.len();

        // Pre-size every sampling vector for the whole run so steady-state
        // stepping never reallocates (the sharded alloc gate measures this
        // path; BAI boundaries are allowed to allocate, TTIs are not).
        let secs = (duration_ms / 1000 + 2) as usize;
        let series = |label: String| {
            let mut ts = TimeSeries::new(label);
            ts.reserve(secs);
            ts
        };
        let rate_series: Vec<TimeSeries> = (0..n_video)
            .map(|i| series(format!("video-{i} rate (kbps)")))
            .collect();
        let buffer_series: Vec<TimeSeries> = (0..n_video)
            .map(|i| series(format!("video-{i} buffer (s)")))
            .collect();
        let video_tput: Vec<TimeSeries> = (0..n_video)
            .map(|i| series(format!("video-{i} throughput (kbps)")))
            .collect();
        let data_tput: Vec<TimeSeries> = (0..n_data)
            .map(|i| series(format!("data-{i} throughput (kbps)")))
            .collect();
        let solve_times = Vec::with_capacity((duration_ms / bai_ms + 1) as usize);

        CellStepper {
            sim: self,
            duration_ms,
            bai_ms,
            ms: 0,
            // Countdown instead of `(ms + 1) % bai_ms`: the modulo is a
            // genuine 64-bit division against a runtime value, once per
            // simulated TTI.
            bai_countdown: bai_ms,
            pending_bai: None,
            rate_series,
            buffer_series,
            video_tput,
            data_tput,
            second_bytes: vec![0u64; n_video + n_data],
            total_bytes: vec![0u64; n_video + n_data],
            solve_times,
        }
    }

    /// Advances every versioned client's staleness clock at the end of a
    /// BAI, after all deliveries due in it.
    fn end_bai_clients(&mut self, now: Time) {
        if let Controller::FlareMsg {
            cells: MsgCells::Versioned(cs),
            ..
        } = &self.controller
        {
            for (i, cell) in cs.iter().enumerate() {
                let before = cell.mode();
                cell.end_bai();
                let after = cell.mode();
                if after == CoordinationMode::Fallback {
                    self.trace.incr("plugin.fallback_bais", 1);
                }
                if before != after {
                    let name = match after {
                        CoordinationMode::Fallback => "fallback_enter",
                        CoordinationMode::Coordinated => "fallback_exit",
                    };
                    self.trace.record(now, Category::Plugin, name, |e| {
                        e.u64("ue", i as u64)
                            .u64("stale_bais", u64::from(cell.bais_since_fresh()));
                    });
                }
            }
        }
    }

    /// Feeds the per-TTI observations (RB conservation, lease return,
    /// player sanity) to the invariant battery. Caller guarantees
    /// `self.invariants` is populated.
    fn observe_tti(&mut self, tti_start: Time, tti_end: Time) {
        self.obs_scratch.clear();
        self.obs_scratch.push(Observation::TtiGrant {
            granted: self.enb.last_tti_granted_rbs(),
            budget: self.enb.config().rbs_per_tti,
        });
        for (i, &flow) in self.video_flows.iter().enumerate() {
            let Some(expiry) = self.lease_watch[i] else {
                continue;
            };
            if tti_start >= expiry {
                // The lease was due this TTI: the reservation must be gone
                // (observed before any control-plane delivery can renew it).
                let gbr_cleared =
                    self.enb.qos(flow).gbr.is_none() && self.enb.lease_expiry(flow).is_none();
                self.obs_scratch.push(Observation::LeaseExpiry {
                    flow: flow.index() as u64,
                    gbr_cleared,
                });
            }
        }
        let resume_threshold_ms = self.config.player.resume_threshold.as_millis() as i64;
        for (i, player) in self.players.iter().enumerate() {
            self.obs_scratch.push(Observation::PlayerState {
                ue: i as u64,
                buffer_ms: player.buffer_level().as_millis() as i64,
                stalled: player.stalled(),
                rebuffer_events: player.rebuffer_events(),
                resume_threshold_ms,
                finished: player.finished(),
            });
        }
        let inv = self.invariants.as_mut().expect("caller checked");
        for o in &self.obs_scratch {
            inv.observe(tti_end, o);
        }
    }
}

/// A [`CellSim`] broken open at BAI granularity.
///
/// [`CellStepper::advance_to_bai`] runs the per-TTI work (playback, MAC
/// scheduling, per-second sampling, control-plane deliveries) up to and
/// including the TTI that closes a BAI, then pauses and reports the
/// boundary time; [`CellStepper::bai_boundary`] executes the coordination
/// step for that boundary (server solve, assignment installs, client
/// staleness clocks). Splitting the two lets a multi-cell coordinator
/// barrier all shards between them while keeping the statement order —
/// and therefore every trace byte and RNG draw — identical to
/// [`CellSim::run`].
pub struct CellStepper {
    sim: CellSim,
    duration_ms: u64,
    bai_ms: u64,
    /// Next TTI to simulate, in ms since the start of the run.
    ms: u64,
    bai_countdown: u64,
    /// Set when a BAI boundary has been reached but not yet executed.
    pending_bai: Option<Time>,
    rate_series: Vec<TimeSeries>,
    buffer_series: Vec<TimeSeries>,
    video_tput: Vec<TimeSeries>,
    data_tput: Vec<TimeSeries>,
    second_bytes: Vec<u64>,
    total_bytes: Vec<u64>,
    solve_times: Vec<Duration>,
}

impl CellStepper {
    /// Simulates TTIs until the next BAI boundary and returns its time, or
    /// `None` once the configured duration is exhausted (any trailing
    /// partial BAI is still simulated before `None` is returned).
    ///
    /// A returned boundary must be executed with
    /// [`CellStepper::bai_boundary`] before advancing further.
    pub fn advance_to_bai(&mut self) -> Option<Time> {
        assert!(
            self.pending_bai.is_none(),
            "advance_to_bai called with an unexecuted BAI boundary pending"
        );
        let n_video = self.sim.video_flows.len();
        let n_data = self.sim.data_flows.len();
        while self.ms < self.duration_ms {
            let ms = self.ms;
            self.ms += 1;
            let tti_start = Time::from_millis(ms);
            let tti_end = Time::from_millis(ms + 1);

            // 1. Players play back 1 ms and may issue a segment request.
            let jitter_ms = self.sim.config.request_jitter.as_millis();
            for (i, player) in self.sim.players.iter_mut().enumerate() {
                if let Some(req) = player.step(tti_end, TTI) {
                    if jitter_ms == 0 {
                        self.sim
                            .enb
                            .push_backlog(self.sim.video_flows[i], req.bytes);
                    } else {
                        // The request spends a transport-dependent time in
                        // flight before bytes appear at the eNodeB.
                        let delay = self.sim.jitter_rngs[i].gen_range(0..=jitter_ms);
                        self.sim.pending_requests.push((
                            tti_end + TimeDelta::from_millis(delay),
                            i,
                            req.bytes,
                        ));
                    }
                    self.rate_series[i].push(
                        tti_end.as_secs_f64(),
                        self.sim.config.ladder.rate(req.level).as_kbps(),
                    );
                }
            }
            if !self.sim.pending_requests.is_empty() {
                let due: Vec<(Time, usize, ByteCount)> = {
                    let (due, rest): (Vec<_>, Vec<_>) = self
                        .sim
                        .pending_requests
                        .drain(..)
                        .partition(|(at, _, _)| *at <= tti_end);
                    self.sim.pending_requests = rest;
                    due
                };
                for (_, i, bytes) in due {
                    self.sim.enb.push_backlog(self.sim.video_flows[i], bytes);
                }
            }

            // 2. One TTI of MAC scheduling and delivery. When invariants are
            // on, lease expiries performed inside the TTI are observed
            // against the pre-TTI snapshot.
            if self.sim.invariants.is_some() {
                for (i, &flow) in self.sim.video_flows.iter().enumerate() {
                    self.sim.lease_watch[i] = self.sim.enb.lease_expiry(flow);
                }
            }
            for d in self.sim.enb.step_tti(tti_start) {
                let idx = d.flow.index();
                self.second_bytes[idx] += d.bytes.as_u64();
                self.total_bytes[idx] += d.bytes.as_u64();
                if idx < n_video {
                    self.sim.players[idx].on_delivered(tti_end, d.bytes);
                }
            }
            if self.sim.invariants.is_some() {
                self.sim.observe_tti(tti_start, tti_end);
            }

            // 3. Per-second sampling.
            if (ms + 1).is_multiple_of(1000) {
                let t = tti_end.as_secs_f64();
                for i in 0..n_video {
                    self.buffer_series[i].push(t, self.sim.players[i].buffer_level().as_secs_f64());
                    self.video_tput[i].push(
                        t,
                        ByteCount::new(self.second_bytes[i]).as_bits() as f64 / 1000.0,
                    );
                    self.second_bytes[i] = 0;
                }
                for i in 0..n_data {
                    self.data_tput[i].push(
                        t,
                        ByteCount::new(self.second_bytes[n_video + i]).as_bits() as f64 / 1000.0,
                    );
                    self.second_bytes[n_video + i] = 0;
                }
            }

            // 4. Control-plane deliveries (delayed/reordered messages land
            // between BAIs), then — at a boundary — hand control back to
            // the caller so a coordinator can run the barrier step.
            self.sim.poll_control(tti_end);
            self.bai_countdown -= 1;
            if self.bai_countdown == 0 {
                self.bai_countdown = self.bai_ms;
                self.pending_bai = Some(tti_end);
                return self.pending_bai;
            }
        }
        None
    }

    /// Executes the BAI boundary reached by the last
    /// [`CellStepper::advance_to_bai`]: the coordination solve, the
    /// same-tick control-plane deliveries a perfect (zero-delay) plane
    /// makes, and the per-BAI client staleness clocks.
    pub fn bai_boundary(&mut self) {
        let now = self
            .pending_bai
            .take()
            .expect("bai_boundary called with no BAI boundary pending");
        self.sim.run_bai(now, &mut self.solve_times);
        // A perfect (zero-delay) control plane delivers this BAI's
        // messages within the same tick.
        self.sim.poll_control(now);
        // Client-side staleness clocks advance once per BAI, after all
        // deliveries due in it.
        self.sim.end_bai_clients(now);
    }

    /// Sim time at the start of the next TTI to be simulated.
    pub fn now(&self) -> Time {
        Time::from_millis(self.ms)
    }

    /// Consumes the stepper and assembles the [`RunResult`].
    pub fn into_result(mut self) -> RunResult {
        let n_video = self.sim.video_flows.len();
        let n_data = self.sim.data_flows.len();
        let videos = (0..n_video)
            .map(|i| {
                let stats: PlayerStats = self.sim.players[i].stats();
                VideoFlowResult {
                    index: i,
                    stats,
                    rate_series: std::mem::replace(&mut self.rate_series[i], TimeSeries::new("")),
                    buffer_series: std::mem::replace(
                        &mut self.buffer_series[i],
                        TimeSeries::new(""),
                    ),
                    throughput_series: std::mem::replace(
                        &mut self.video_tput[i],
                        TimeSeries::new(""),
                    ),
                    average_throughput: ByteCount::new(self.total_bytes[i])
                        .rate_over(self.sim.config.duration),
                }
            })
            .collect();
        let data = (0..n_data)
            .map(|i| DataFlowResult {
                index: i,
                throughput_series: std::mem::replace(&mut self.data_tput[i], TimeSeries::new("")),
                average_throughput: ByteCount::new(self.total_bytes[n_video + i])
                    .rate_over(self.sim.config.duration),
            })
            .collect();

        // The degradation report is read back from the trace registry: the
        // instrumented components (control plane, plugins, eNodeB PCEF,
        // server) mirror their counters into it as they run, so a single
        // snapshot replaces the per-component accessor sweep.
        let telemetry = self.sim.trace.snapshot();
        let robustness = match &self.sim.controller {
            Controller::FlareMsg { .. } => Some(RobustnessReport {
                delivered: telemetry.counter("control.delivered"),
                dropped: telemetry.counter("control.dropped"),
                lost_to_outage: telemetry.counter("control.lost_to_outage"),
                reordered: telemetry.counter("control.reordered"),
                fallback_bais: telemetry.counter("plugin.fallback_bais"),
                stale_rejections: telemetry.counter("plugin.stale_rejections"),
                installs: telemetry.counter("plugin.installs"),
                expired_leases: telemetry.counter("enforce.lease_expiries"),
                evicted_clients: telemetry.counter("server.evicted"),
            }),
            _ => None,
        };

        RunResult {
            scheme: self.sim.config.scheme.name().to_owned(),
            duration: self.sim.config.duration,
            videos,
            data,
            solve_times: self.solve_times,
            robustness,
            telemetry,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flare_core::FlareConfig;
    use flare_lte::mobility::MobilityConfig;
    use flare_trace::TraceConfig;

    fn base(scheme: SchemeKind) -> SimConfig {
        SimConfig::builder()
            .seed(3)
            .duration(TimeDelta::from_secs(120))
            .bai(TimeDelta::from_secs(10))
            .videos(2)
            .data_flows(1)
            .channel(ChannelKind::Static { itbs: 10 })
            .scheme(scheme)
            .build()
    }

    fn base_checked(scheme: SchemeKind) -> SimConfig {
        SimConfig::builder()
            .seed(3)
            .duration(TimeDelta::from_secs(120))
            .bai(TimeDelta::from_secs(10))
            .videos(2)
            .data_flows(1)
            .channel(ChannelKind::Static { itbs: 10 })
            .scheme(scheme)
            .check_invariants(true)
            .build()
    }

    #[test]
    fn festive_run_produces_complete_results() {
        let result = CellSim::new(base(SchemeKind::Festive)).run();
        assert_eq!(result.scheme, "FESTIVE");
        assert_eq!(result.videos.len(), 2);
        assert_eq!(result.data.len(), 1);
        assert!(result.videos[0].stats.segments > 3);
        assert!(result.average_video_rate_kbps() > 0.0);
        assert!(result.average_data_throughput_kbps() > 0.0);
        assert!(
            result.solve_times.is_empty(),
            "client-side scheme never solves"
        );
        // 120 s run -> 120 per-second samples.
        assert_eq!(result.videos[0].buffer_series.len(), 120);
        assert_eq!(result.data[0].throughput_series.len(), 120);
    }

    #[test]
    fn flare_run_assigns_and_enforces() {
        let result = CellSim::new(base(SchemeKind::Flare(FlareConfig::default()))).run();
        assert_eq!(result.scheme, "FLARE");
        // 120 s / 10 s BAI = 12 solves.
        assert_eq!(result.solve_times.len(), 12);
        assert!(result.videos.iter().all(|v| v.stats.segments > 0));
    }

    #[test]
    fn avis_run_caps_flows() {
        let result = CellSim::new(base(SchemeKind::Avis(Default::default()))).run();
        assert_eq!(result.scheme, "AVIS");
        assert!(result.videos.iter().all(|v| v.stats.segments > 0));
    }

    #[test]
    fn runs_are_deterministic() {
        let a = CellSim::new(base(SchemeKind::Flare(FlareConfig::default()))).run();
        let b = CellSim::new(base(SchemeKind::Flare(FlareConfig::default()))).run();
        assert_eq!(
            a.videos[0].rate_series.points(),
            b.videos[0].rate_series.points()
        );
        assert_eq!(
            a.data[0].throughput_series.points(),
            b.data[0].throughput_series.points()
        );
    }

    #[test]
    fn mobile_channel_runs() {
        let config = SimConfig::builder()
            .seed(5)
            .duration(TimeDelta::from_secs(60))
            .videos(2)
            .data_flows(0)
            .channel(ChannelKind::Mobile(MobilityConfig::default()))
            .scheme(SchemeKind::Festive)
            .build();
        let result = CellSim::new(config).run();
        assert!(result.videos[0].stats.segments > 0);
    }

    #[test]
    fn qoe_scoring_is_consistent_with_its_inputs() {
        let r = CellSim::new(base(SchemeKind::Flare(FlareConfig::default()))).run();
        let w = flare_metrics::QoeWeights::default();
        let score = r.average_qoe(w);
        // FLARE never stalls in this scenario and holds steady rates, so
        // the score sits below the average nominal rate by exactly the
        // (small) switching penalty.
        assert!(score > 0.0 && score <= r.average_video_rate_kbps() + 1e-9);
        let inputs = r.videos[0].qoe_inputs(r.duration).unwrap();
        assert_eq!(inputs.rebuffer_ratio, 0.0);
    }

    #[test]
    fn request_jitter_destabilizes_estimating_clients_but_not_flare() {
        // With per-request transport jitter, FESTIVE's throughput samples
        // get noisy and its selections flap more; FLARE's plugin ignores
        // client estimates entirely, so its stability budget is untouched.
        let mk = |scheme: SchemeKind, jitter_ms: u64| {
            let cfg = SimConfig::builder()
                .seed(13)
                .duration(TimeDelta::from_secs(400))
                .videos(4)
                .data_flows(0)
                .channel(ChannelKind::Static { itbs: 6 })
                .request_jitter(TimeDelta::from_millis(jitter_ms))
                .scheme(scheme)
                .build();
            CellSim::new(cfg).run()
        };
        let festive_ideal = mk(SchemeKind::Festive, 0);
        let festive_jitter = mk(SchemeKind::Festive, 1500);
        assert!(
            festive_jitter.average_bitrate_changes() >= festive_ideal.average_bitrate_changes(),
            "jitter should not stabilize FESTIVE: {} vs {}",
            festive_jitter.average_bitrate_changes(),
            festive_ideal.average_bitrate_changes()
        );
        let flare_ideal = mk(SchemeKind::Flare(FlareConfig::default()), 0);
        let flare_jitter = mk(SchemeKind::Flare(FlareConfig::default()), 1500);
        assert!(
            flare_jitter.average_bitrate_changes() <= flare_ideal.average_bitrate_changes() + 1.0,
            "FLARE must stay stable under jitter: {} vs {}",
            flare_jitter.average_bitrate_changes(),
            flare_ideal.average_bitrate_changes()
        );
        // And jittered FLARE still never stalls (GBR pacing absorbs it).
        assert_eq!(flare_jitter.average_underflow_secs(), 0.0);
    }

    #[test]
    fn recorded_traces_replay_identically_to_live_mobility() {
        use flare_lte::mobility::generate_trace;
        use flare_sim::rng::stream;

        // Record each UE's live mobility process to CSV, then run the same
        // scenario once live and once from the recorded traces: identical
        // channels must produce identical results.
        let mc = MobilityConfig::default();
        let n = 3usize;
        let seed = 6;
        let duration = TimeDelta::from_secs(90);
        let docs: Vec<String> = (0..n as u64)
            .map(|ue| {
                generate_trace(
                    &mc,
                    duration,
                    stream(seed, "walk", ue),
                    stream(seed, "fade", ue),
                )
                .to_csv()
            })
            .collect();
        let mk = |channel: ChannelKind| {
            SimConfig::builder()
                .seed(seed)
                .duration(duration)
                .videos(n)
                .data_flows(0)
                .channel(channel)
                .scheme(SchemeKind::Festive)
                .build()
        };
        let live = CellSim::new(mk(ChannelKind::Mobile(mc.clone()))).run();
        let replay = CellSim::new(mk(ChannelKind::Traces(docs))).run();
        for (a, b) in live.videos.iter().zip(&replay.videos) {
            assert_eq!(a.rate_series.points(), b.rate_series.points());
            assert_eq!(a.throughput_series.points(), b.throughput_series.points());
        }
    }

    #[test]
    fn jain_index_is_high_for_symmetric_clients() {
        let result = CellSim::new(base(SchemeKind::Flare(FlareConfig::default()))).run();
        assert!(result.jain_of_video_rates() > 0.9);
    }

    #[test]
    fn perfect_message_path_matches_legacy_flare_bit_for_bit() {
        // Routing the coordination loop through a zero-fault control plane
        // must not change a single decision: the acceptance bar for the
        // message-path refactor.
        let legacy = CellSim::new(base(SchemeKind::Flare(FlareConfig::default()))).run();
        let cfg = SimConfig::builder()
            .seed(3)
            .duration(TimeDelta::from_secs(120))
            .bai(TimeDelta::from_secs(10))
            .videos(2)
            .data_flows(1)
            .channel(ChannelKind::Static { itbs: 10 })
            .scheme(SchemeKind::Flare(FlareConfig::default()))
            .faults(flare_core::FaultModel::perfect())
            .build();
        let msg = CellSim::new(cfg).run();
        assert_eq!(msg.scheme, "FLARE");
        for (a, b) in legacy.videos.iter().zip(&msg.videos) {
            assert_eq!(a.rate_series.points(), b.rate_series.points());
            assert_eq!(a.throughput_series.points(), b.throughput_series.points());
            assert_eq!(a.stats.bitrate_changes, b.stats.bitrate_changes);
        }
        assert_eq!(
            legacy.data[0].throughput_series.points(),
            msg.data[0].throughput_series.points()
        );
        let r = msg.robustness.expect("message path reports telemetry");
        assert_eq!(r.dropped, 0);
        assert_eq!(r.fallback_bais, 0);
    }

    #[test]
    fn resilient_flare_survives_total_control_plane_loss() {
        let cfg = SimConfig::builder()
            .seed(3)
            .duration(TimeDelta::from_secs(200))
            .bai(TimeDelta::from_secs(10))
            .videos(2)
            .data_flows(0)
            .channel(ChannelKind::Static { itbs: 10 })
            .scheme(SchemeKind::Flare(
                FlareConfig::default().with_robustness(flare_core::RobustnessConfig::default()),
            ))
            .faults(flare_core::FaultModel::perfect().with_drop_prob(1.0))
            .build();
        let result = CellSim::new(cfg).run();
        assert_eq!(result.scheme, "FLARE-R");
        let r = result.robustness.unwrap();
        assert_eq!(r.installs, 0, "nothing can get through");
        assert!(r.dropped > 0);
        assert!(r.fallback_bais > 0, "clients must notice the dead loop");
        // Playback continues on the fallback policy.
        assert!(result.videos.iter().all(|v| v.stats.segments > 3));
    }

    #[test]
    fn faulty_runs_are_deterministic_per_seed() {
        let mk = || {
            let cfg = SimConfig::builder()
                .seed(11)
                .duration(TimeDelta::from_secs(150))
                .bai(TimeDelta::from_secs(10))
                .videos(3)
                .data_flows(1)
                .channel(ChannelKind::Static { itbs: 10 })
                .scheme(SchemeKind::Flare(
                    FlareConfig::default().with_robustness(flare_core::RobustnessConfig::default()),
                ))
                .faults(
                    flare_core::FaultModel::perfect()
                        .with_drop_prob(0.3)
                        .with_jitter(TimeDelta::from_millis(800)),
                )
                .build();
            CellSim::new(cfg).run()
        };
        let (a, b) = (mk(), mk());
        assert_eq!(a.robustness, b.robustness);
        for (va, vb) in a.videos.iter().zip(&b.videos) {
            assert_eq!(va.rate_series.points(), vb.rate_series.points());
        }
    }

    #[test]
    fn every_scheme_runs_clean_under_invariants() {
        // The standard invariant battery (RB conservation, lease return,
        // (4a)/(4b), player sanity, monotone installs) hard-fails, so simply
        // finishing these runs is the assertion.
        for scheme in [
            SchemeKind::Festive,
            SchemeKind::Google,
            SchemeKind::BufferBased,
            SchemeKind::Flare(FlareConfig::default()),
            SchemeKind::FlareGbrOnly(FlareConfig::default()),
            SchemeKind::Avis(Default::default()),
        ] {
            let name = scheme.name();
            let result = CellSim::new(base_checked(scheme)).run();
            assert!(result.videos[0].stats.segments > 0, "{name} run degenerate");
        }
    }

    #[test]
    fn faulty_resilient_run_is_clean_under_invariants() {
        // The message path exercises the install and lease-return checks:
        // drops and reordering must produce stale *rejections*, never an
        // out-of-order install or a leaked lease.
        let cfg = SimConfig::builder()
            .seed(11)
            .duration(TimeDelta::from_secs(150))
            .bai(TimeDelta::from_secs(10))
            .videos(3)
            .data_flows(1)
            .channel(ChannelKind::Static { itbs: 10 })
            .scheme(SchemeKind::Flare(
                FlareConfig::default().with_robustness(flare_core::RobustnessConfig::default()),
            ))
            .faults(
                flare_core::FaultModel::perfect()
                    .with_drop_prob(0.3)
                    .with_jitter(TimeDelta::from_millis(800)),
            )
            .check_invariants(true)
            .build();
        let result = CellSim::new(cfg).run();
        assert!(result.robustness.unwrap().installs > 0);
    }

    #[test]
    #[should_panic(expected = "rb_conservation")]
    fn injected_over_grant_trips_rb_conservation() {
        // The test-only hook distorts only what the eNodeB *reports* to the
        // invariant layer, so this exercises exactly the detection path.
        let mut sim = CellSim::new(base_checked(SchemeKind::Festive));
        sim.debug_enb_mut().debug_inflate_reported_grants(51);
        let _ = sim.run();
    }

    #[test]
    fn injected_violation_is_recorded_as_a_trace_event_before_failing() {
        let trace = TraceHandle::new(TraceConfig::info());
        let cfg = SimConfig::builder()
            .seed(3)
            .duration(TimeDelta::from_secs(5))
            .videos(1)
            .data_flows(0)
            .channel(ChannelKind::Static { itbs: 10 })
            .scheme(SchemeKind::Festive)
            .trace(trace.clone())
            .check_invariants(true)
            .build();
        let mut sim = CellSim::new(cfg);
        sim.debug_enb_mut().debug_inflate_reported_grants(51);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sim.run()));
        assert!(outcome.is_err(), "hard-fail mode must panic");
        let recorded = trace.events().into_iter().any(|e| {
            e.category == Category::Invariant
                && e.name == "violation"
                && e.str_field("inv") == Some("rb_conservation")
        });
        assert!(recorded, "violation must surface as a structured event");
        assert_eq!(trace.snapshot().counter("invariant.violations"), 1);
    }

    #[test]
    fn invariant_checking_does_not_change_results() {
        // The observation path is read-only: a checked run and an unchecked
        // run of the same seed must be bit-identical.
        let plain = CellSim::new(base(SchemeKind::Flare(FlareConfig::default()))).run();
        let checked = CellSim::new(base_checked(SchemeKind::Flare(FlareConfig::default()))).run();
        for (a, b) in plain.videos.iter().zip(&checked.videos) {
            assert_eq!(a.rate_series.points(), b.rate_series.points());
            assert_eq!(a.throughput_series.points(), b.throughput_series.points());
        }
    }
}
