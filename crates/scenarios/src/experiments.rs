//! One reproduction entry point per paper table and figure.
//!
//! Each function returns a typed result with a `render()` method producing
//! the rows/series the paper reports. [`ExperimentParams::paper`] uses the
//! paper's run counts and durations; [`ExperimentParams::quick`] shrinks
//! them for smoke tests and CI.

use flare_core::SolveMode;
use flare_metrics::{Cdf, Summary, TimeSeries};
use flare_sim::TimeDelta;

use crate::cell::{
    mean_jain, mixed_run, mobile_run, pooled_changes, pooled_data_throughput, pooled_rates,
    pooled_video_throughput, repeat, static_run,
};
use crate::config::SchemeKind;
use crate::runner::RunResult;
use crate::scaling::{as_millis, measure_solve_times};
use crate::sweeps::{alpha_sweep, delta_sweep, solver_comparison, AlphaPoint, DeltaPoint};
use crate::testbed;

/// Sizing knobs shared by all experiments.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentParams {
    /// Independent runs per scheme/point.
    pub runs: usize,
    /// Simulated duration of cell-simulation runs.
    pub duration: TimeDelta,
    /// Simulated duration of testbed runs.
    pub testbed_duration: TimeDelta,
    /// Base seed.
    pub seed: u64,
    /// Worker threads for independent runs (`0` = all cores, `1` = serial).
    /// Parallel execution is bit-identical to serial: every run owns its
    /// seeded RNG streams and trace recorder (see `flare_harness`).
    pub jobs: usize,
}

impl ExperimentParams {
    /// The paper's sizes: 20 runs × 1200 s (cell), 600 s (testbed).
    pub fn paper() -> Self {
        ExperimentParams {
            runs: 20,
            duration: TimeDelta::from_secs(1200),
            testbed_duration: TimeDelta::from_secs(600),
            seed: 1,
            jobs: 1,
        }
    }

    /// Shrunk sizes for smoke tests.
    pub fn quick() -> Self {
        ExperimentParams {
            runs: 2,
            duration: TimeDelta::from_secs(200),
            testbed_duration: TimeDelta::from_secs(200),
            seed: 1,
            jobs: 1,
        }
    }

    /// Returns these params with `jobs` worker threads.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }
}

// ---------------------------------------------------------------------------
// Tables I and II
// ---------------------------------------------------------------------------

/// One scheme's row in Table I/II.
#[derive(Debug, Clone)]
pub struct SchemeSummaryRow {
    /// Scheme name.
    pub scheme: String,
    /// Average video rate (kbps).
    pub average_rate_kbps: f64,
    /// Average buffer-underflow time (seconds).
    pub underflow_secs: f64,
    /// Average number of bitrate changes.
    pub bitrate_changes: f64,
    /// Jain's fairness index of average video rates.
    pub jain: f64,
    /// Average throughput of the data flow (kbps).
    pub data_throughput_kbps: f64,
}

impl SchemeSummaryRow {
    fn from_runs(scheme: &str, runs: &[RunResult]) -> Self {
        let n = runs.len() as f64;
        SchemeSummaryRow {
            scheme: scheme.to_owned(),
            average_rate_kbps: runs
                .iter()
                .map(RunResult::average_video_rate_kbps)
                .sum::<f64>()
                / n,
            underflow_secs: runs
                .iter()
                .map(RunResult::average_underflow_secs)
                .sum::<f64>()
                / n,
            bitrate_changes: runs
                .iter()
                .map(RunResult::average_bitrate_changes)
                .sum::<f64>()
                / n,
            jain: runs.iter().map(RunResult::jain_of_video_rates).sum::<f64>() / n,
            data_throughput_kbps: runs
                .iter()
                .map(RunResult::average_data_throughput_kbps)
                .sum::<f64>()
                / n,
        }
    }
}

/// A Table I/II-style result.
#[derive(Debug, Clone)]
pub struct SchemeSummaryTable {
    /// Table title.
    pub title: String,
    /// One row per scheme, paper order.
    pub rows: Vec<SchemeSummaryRow>,
}

impl SchemeSummaryTable {
    /// Renders the table as aligned text.
    pub fn render(&self) -> String {
        let mut out = format!("{}\n", self.title);
        out.push_str(&format!(
            "{:<34}{:>10}{:>10}{:>10}\n",
            "metric",
            self.rows.first().map(|r| r.scheme.as_str()).unwrap_or(""),
            self.rows.get(1).map(|r| r.scheme.as_str()).unwrap_or(""),
            self.rows.get(2).map(|r| r.scheme.as_str()).unwrap_or(""),
        ));
        let metric = |label: &str, f: &dyn Fn(&SchemeSummaryRow) -> String| {
            let mut line = format!("{label:<34}");
            for row in &self.rows {
                line.push_str(&format!("{:>10}", f(row)));
            }
            line.push('\n');
            line
        };
        out.push_str(&metric("Average video rate (Kbps)", &|r| {
            format!("{:.0}", r.average_rate_kbps)
        }));
        out.push_str(&metric("Avg. buffer underflow time (sec)", &|r| {
            format!("{:.1}", r.underflow_secs)
        }));
        out.push_str(&metric("Average number of bitrate changes", &|r| {
            format!("{:.1}", r.bitrate_changes)
        }));
        out.push_str(&metric("Jain's fairness index", &|r| {
            format!("{:.3}", r.jain)
        }));
        out.push_str(&metric("Avg. data flow throughput (Kbps)", &|r| {
            format!("{:.0}", r.data_throughput_kbps)
        }));
        out
    }
}

/// Table I: the static testbed scenario summary.
pub fn table1(p: ExperimentParams) -> SchemeSummaryTable {
    let rows = testbed::schemes()
        .into_iter()
        .map(|scheme| {
            let name = scheme.name().to_owned();
            let runs: Vec<RunResult> = flare_harness::run_indexed(p.runs, p.jobs, |i| {
                crate::runner::CellSim::new(testbed::static_config(
                    scheme.clone(),
                    p.seed + i as u64,
                    p.testbed_duration,
                ))
                .run()
            });
            SchemeSummaryRow::from_runs(&name, &runs)
        })
        .collect();
    SchemeSummaryTable {
        title: "Table I: static testbed scenario".to_owned(),
        rows,
    }
}

/// Table II: the dynamic testbed scenario summary.
pub fn table2(p: ExperimentParams) -> SchemeSummaryTable {
    let rows = testbed::schemes()
        .into_iter()
        .map(|scheme| {
            let name = scheme.name().to_owned();
            let runs: Vec<RunResult> = flare_harness::run_indexed(p.runs, p.jobs, |i| {
                crate::runner::CellSim::new(testbed::dynamic_config(
                    scheme.clone(),
                    p.seed + i as u64,
                    p.testbed_duration,
                ))
                .run()
            });
            SchemeSummaryRow::from_runs(&name, &runs)
        })
        .collect();
    SchemeSummaryTable {
        title: "Table II: dynamic testbed scenario".to_owned(),
        rows,
    }
}

// ---------------------------------------------------------------------------
// Figures 4 and 5: testbed time series
// ---------------------------------------------------------------------------

/// One scheme's panel in Figure 4/5.
#[derive(Debug, Clone)]
pub struct TimeSeriesPanel {
    /// Scheme name.
    pub scheme: String,
    /// Selected video rate per video UE.
    pub video_rates: Vec<TimeSeries>,
    /// Buffered media per video UE.
    pub buffers: Vec<TimeSeries>,
    /// Data flow throughput.
    pub data_throughput: Vec<TimeSeries>,
}

/// A Figure 4/5-style result.
#[derive(Debug, Clone)]
pub struct TimeSeriesFigure {
    /// Figure title.
    pub title: String,
    /// One panel per scheme.
    pub panels: Vec<TimeSeriesPanel>,
}

impl TimeSeriesFigure {
    /// Renders each panel, sampling the series every `step_secs`.
    pub fn render(&self, step_secs: f64) -> String {
        let mut out = format!("{}\n", self.title);
        for panel in &self.panels {
            out.push_str(&format!("-- {} --\n", panel.scheme));
            out.push_str("t(s)      video rates (kbps)          buffers (s)      data (kbps)\n");
            let end = panel
                .buffers
                .first()
                .and_then(|b| b.points().last().map(|p| p.0))
                .unwrap_or(0.0);
            let mut t = step_secs;
            while t <= end + 1e-9 {
                let rates: Vec<String> = panel
                    .video_rates
                    .iter()
                    .map(|s| format!("{:>5.0}", s.value_at(t).unwrap_or(0.0)))
                    .collect();
                let bufs: Vec<String> = panel
                    .buffers
                    .iter()
                    .map(|s| format!("{:>5.1}", s.value_at(t).unwrap_or(0.0)))
                    .collect();
                let data: Vec<String> = panel
                    .data_throughput
                    .iter()
                    .map(|s| format!("{:>6.0}", s.value_at(t).unwrap_or(0.0)))
                    .collect();
                out.push_str(&format!(
                    "{:>5.0}  {}   {}   {}\n",
                    t,
                    rates.join(" "),
                    bufs.join(" "),
                    data.join(" ")
                ));
                t += step_secs;
            }
        }
        out
    }
}

fn timeseries_figure(title: &str, dynamic: bool, p: ExperimentParams) -> TimeSeriesFigure {
    let panels = testbed::schemes()
        .into_iter()
        .map(|scheme| {
            let name = scheme.name().to_owned();
            let cfg = if dynamic {
                testbed::dynamic_config(scheme, p.seed, p.testbed_duration)
            } else {
                testbed::static_config(scheme, p.seed, p.testbed_duration)
            };
            let r = crate::runner::CellSim::new(cfg).run();
            TimeSeriesPanel {
                scheme: name,
                video_rates: r.videos.iter().map(|v| v.rate_series.clone()).collect(),
                buffers: r.videos.iter().map(|v| v.buffer_series.clone()).collect(),
                data_throughput: r.data.iter().map(|d| d.throughput_series.clone()).collect(),
            }
        })
        .collect();
    TimeSeriesFigure {
        title: title.to_owned(),
        panels,
    }
}

/// Figure 4: static testbed time series (rates, buffers, data throughput).
pub fn fig4(p: ExperimentParams) -> TimeSeriesFigure {
    timeseries_figure("Figure 4: static testbed time series", false, p)
}

/// Figure 5: dynamic testbed time series.
pub fn fig5(p: ExperimentParams) -> TimeSeriesFigure {
    timeseries_figure("Figure 5: dynamic testbed time series", true, p)
}

// ---------------------------------------------------------------------------
// Figures 6, 7, 10: CDFs over pooled clients
// ---------------------------------------------------------------------------

/// One scheme's CDF pair in Figure 6/7.
#[derive(Debug, Clone)]
pub struct CdfPanel {
    /// Scheme name.
    pub scheme: String,
    /// CDF of per-client average bitrate (kbps).
    pub rate_cdf: Cdf,
    /// CDF of per-client bitrate changes.
    pub changes_cdf: Cdf,
    /// Mean Jain's fairness index across runs.
    pub jain: f64,
}

/// A Figure 6/7-style result.
#[derive(Debug, Clone)]
pub struct CdfFigure {
    /// Figure title.
    pub title: String,
    /// One panel per scheme.
    pub panels: Vec<CdfPanel>,
}

impl CdfFigure {
    /// Renders per-scheme percentiles of both CDFs.
    pub fn render(&self) -> String {
        let mut out = format!("{}\n", self.title);
        out.push_str(&format!(
            "{:<10}{:>9}{:>9}{:>9}{:>9} |{:>8}{:>8}{:>8} |{:>7}\n",
            "scheme", "rate p10", "p50", "p90", "mean", "chg p10", "p50", "p90", "jain"
        ));
        for panel in &self.panels {
            out.push_str(&format!(
                "{:<10}{:>9.0}{:>9.0}{:>9.0}{:>9.0} |{:>8.1}{:>8.1}{:>8.1} |{:>7.3}\n",
                panel.scheme,
                panel.rate_cdf.percentile(10.0),
                panel.rate_cdf.percentile(50.0),
                panel.rate_cdf.percentile(90.0),
                panel.rate_cdf.mean(),
                panel.changes_cdf.percentile(10.0),
                panel.changes_cdf.percentile(50.0),
                panel.changes_cdf.percentile(90.0),
                panel.jain,
            ));
        }
        out
    }
}

fn cdf_figure(title: &str, mobile: bool, p: ExperimentParams) -> CdfFigure {
    let panels = crate::cell::schemes()
        .into_iter()
        .map(|scheme| {
            let name = scheme.name().to_owned();
            let runs = repeat(p.runs, p.seed, p.jobs, |s| {
                if mobile {
                    mobile_run(scheme.clone(), s, p.duration)
                } else {
                    static_run(scheme.clone(), s, p.duration)
                }
            });
            CdfPanel {
                scheme: name,
                rate_cdf: Cdf::from_samples(pooled_rates(&runs)),
                changes_cdf: Cdf::from_samples(pooled_changes(&runs)),
                jain: mean_jain(&runs),
            }
        })
        .collect();
    CdfFigure {
        title: title.to_owned(),
        panels,
    }
}

/// Figure 6: static cell scenario CDFs over pooled clients.
pub fn fig6(p: ExperimentParams) -> CdfFigure {
    cdf_figure("Figure 6: static cell scenario CDFs", false, p)
}

/// Figure 7: mobile cell scenario CDFs over pooled clients.
pub fn fig7(p: ExperimentParams) -> CdfFigure {
    cdf_figure("Figure 7: mobile cell scenario CDFs", true, p)
}

/// Figure 10's result: video/data coexistence under FLARE.
#[derive(Debug, Clone)]
pub struct CoexistenceFigure {
    /// CDF of per-video-flow throughput (kbps).
    pub video_throughput_cdf: Cdf,
    /// CDF of per-data-flow throughput (kbps).
    pub data_throughput_cdf: Cdf,
    /// CDF of per-client bitrate changes.
    pub changes_cdf: Cdf,
}

impl CoexistenceFigure {
    /// Renders throughput and stability percentiles.
    pub fn render(&self) -> String {
        format!(
            "Figure 10: FLARE with 8 video + 8 data flows\n\
             video tput kbps: p10 {:.0}  p50 {:.0}  p90 {:.0}  mean {:.0}\n\
             data tput kbps:  p10 {:.0}  p50 {:.0}  p90 {:.0}  mean {:.0}\n\
             bitrate changes: p10 {:.1}  p50 {:.1}  p90 {:.1}  mean {:.1}\n",
            self.video_throughput_cdf.percentile(10.0),
            self.video_throughput_cdf.percentile(50.0),
            self.video_throughput_cdf.percentile(90.0),
            self.video_throughput_cdf.mean(),
            self.data_throughput_cdf.percentile(10.0),
            self.data_throughput_cdf.percentile(50.0),
            self.data_throughput_cdf.percentile(90.0),
            self.data_throughput_cdf.mean(),
            self.changes_cdf.percentile(10.0),
            self.changes_cdf.percentile(50.0),
            self.changes_cdf.percentile(90.0),
            self.changes_cdf.mean(),
        )
    }
}

/// Figure 10: throughput balance with 8 video and 8 data clients.
pub fn fig10(p: ExperimentParams) -> CoexistenceFigure {
    let runs = repeat(p.runs, p.seed, p.jobs, |s| {
        mixed_run(
            SchemeKind::Flare(flare_core::FlareConfig::default()),
            8,
            8,
            s,
            p.duration,
        )
    });
    CoexistenceFigure {
        video_throughput_cdf: Cdf::from_samples(pooled_video_throughput(&runs)),
        data_throughput_cdf: Cdf::from_samples(pooled_data_throughput(&runs)),
        changes_cdf: Cdf::from_samples(pooled_changes(&runs)),
    }
}

// ---------------------------------------------------------------------------
// Figure 8: continuous relaxation fidelity
// ---------------------------------------------------------------------------

/// Figure 8's result: exact vs relaxed FLARE on both scenarios.
#[derive(Debug, Clone)]
pub struct RelaxationFigure {
    /// Per-scenario panels: (scenario, exact CDFs, relaxed CDFs).
    pub panels: Vec<RelaxationPanel>,
}

/// One scenario's exact/relaxed comparison.
#[derive(Debug, Clone)]
pub struct RelaxationPanel {
    /// "static" or "mobile".
    pub scenario: &'static str,
    /// Exact-solver per-client rate CDF (kbps).
    pub exact_rates: Cdf,
    /// Relaxed-solver per-client rate CDF (kbps).
    pub relaxed_rates: Cdf,
    /// Exact-solver change-count CDF.
    pub exact_changes: Cdf,
    /// Relaxed-solver change-count CDF.
    pub relaxed_changes: Cdf,
}

impl RelaxationFigure {
    /// Renders the mean rate/stability loss per scenario.
    pub fn render(&self) -> String {
        let mut out = "Figure 8: FLARE with continuous bitrate optimization\n".to_owned();
        for p in &self.panels {
            let loss = 100.0 * (1.0 - p.relaxed_rates.mean() / p.exact_rates.mean().max(1e-9));
            out.push_str(&format!(
                "{:<8} rate mean: exact {:.0} kbps, relaxed {:.0} kbps ({:+.1}% loss); \
                 changes mean: exact {:.1}, relaxed {:.1}\n",
                p.scenario,
                p.exact_rates.mean(),
                p.relaxed_rates.mean(),
                loss,
                p.exact_changes.mean(),
                p.relaxed_changes.mean(),
            ));
        }
        out
    }
}

/// Figure 8: exact vs relaxed solver, static and mobile scenarios.
pub fn fig8(p: ExperimentParams) -> RelaxationFigure {
    let panels = [false, true]
        .into_iter()
        .map(|mobile| {
            let cmp = solver_comparison(mobile, p.runs, p.duration, p.seed, p.jobs);
            RelaxationPanel {
                scenario: cmp.scenario,
                exact_rates: Cdf::from_samples(pooled_rates(&cmp.exact)),
                relaxed_rates: Cdf::from_samples(pooled_rates(&cmp.relaxed)),
                exact_changes: Cdf::from_samples(pooled_changes(&cmp.exact)),
                relaxed_changes: Cdf::from_samples(pooled_changes(&cmp.relaxed)),
            }
        })
        .collect();
    RelaxationFigure { panels }
}

// ---------------------------------------------------------------------------
// Figure 9: computation-time scaling
// ---------------------------------------------------------------------------

/// Figure 9's result: per-BAI solve-time CDFs by client count.
#[derive(Debug, Clone)]
pub struct ScalingFigure {
    /// `(client count, exact-solver CDF in ms, relaxed-solver CDF in ms)`.
    pub points: Vec<(usize, Cdf, Cdf)>,
}

impl ScalingFigure {
    /// Renders solve-time percentiles per client count.
    pub fn render(&self) -> String {
        let mut out = "Figure 9: bitrate-selection computation time (ms)\n".to_owned();
        out.push_str(&format!(
            "{:<10}{:>12}{:>12}{:>12}{:>14}\n",
            "clients", "exact p50", "exact p99", "relaxed p50", "relaxed p99"
        ));
        for (n, exact, relaxed) in &self.points {
            out.push_str(&format!(
                "{:<10}{:>12.3}{:>12.3}{:>12.3}{:>14.3}\n",
                n,
                exact.percentile(50.0),
                exact.percentile(99.0),
                relaxed.percentile(50.0),
                relaxed.percentile(99.0),
            ));
        }
        out
    }
}

/// Figure 9: solve-time CDFs for 32, 64, and 128 video clients.
///
/// Timing samples are always taken serially on the calling thread, even
/// with `jobs > 1` (see [`measure_solve_times`]), so the CDFs are free of
/// worker-pool contention at any jobs setting.
pub fn fig9(iterations: usize, seed: u64, jobs: usize) -> ScalingFigure {
    let points = [32usize, 64, 128]
        .into_iter()
        .map(|n| {
            let exact = as_millis(&measure_solve_times(
                n,
                iterations,
                SolveMode::Exact,
                seed,
                jobs,
            ));
            let relaxed = as_millis(&measure_solve_times(
                n,
                iterations,
                SolveMode::Relaxed,
                seed,
                jobs,
            ));
            (n, Cdf::from_samples(exact), Cdf::from_samples(relaxed))
        })
        .collect();
    ScalingFigure { points }
}

// ---------------------------------------------------------------------------
// Figures 11 and 12: parameter sweeps
// ---------------------------------------------------------------------------

/// Figure 11's result.
#[derive(Debug, Clone)]
pub struct AlphaFigure {
    /// One point per α.
    pub points: Vec<AlphaPoint>,
}

impl AlphaFigure {
    /// Renders mean ± std throughput for each flow class per α.
    pub fn render(&self) -> String {
        let mut out = "Figure 11: flow throughputs vs alpha\n".to_owned();
        out.push_str(&format!(
            "{:<8}{:>24}{:>24}\n",
            "alpha", "video tput (kbps)", "data tput (kbps)"
        ));
        for p in &self.points {
            out.push_str(&format!(
                "{:<8}{:>24}{:>24}\n",
                p.alpha,
                p.video_throughput.to_string(),
                p.data_throughput.to_string()
            ));
        }
        out
    }
}

/// Figure 11: α sweep (0.25 → 4), 8 video + 8 data UEs.
pub fn fig11(p: ExperimentParams) -> AlphaFigure {
    AlphaFigure {
        points: alpha_sweep(
            &[0.25, 0.5, 1.0, 2.0, 4.0],
            p.runs,
            8,
            8,
            p.duration,
            p.seed,
            p.jobs,
        ),
    }
}

/// Figure 12's result.
#[derive(Debug, Clone)]
pub struct DeltaFigure {
    /// One point per δ.
    pub points: Vec<DeltaPoint>,
}

impl DeltaFigure {
    /// Renders mean bitrate and change count per δ.
    pub fn render(&self) -> String {
        let mut out = "Figure 12: bitrate and stability vs delta\n".to_owned();
        out.push_str(&format!(
            "{:<8}{:>24}{:>24}\n",
            "delta", "avg bitrate (kbps)", "bitrate changes"
        ));
        for p in &self.points {
            out.push_str(&format!(
                "{:<8}{:>24}{:>24}\n",
                p.delta,
                p.average_rate.to_string(),
                p.bitrate_changes.to_string()
            ));
        }
        out
    }
}

/// Figure 12: δ sweep (1 → 12).
pub fn fig12(p: ExperimentParams) -> DeltaFigure {
    DeltaFigure {
        points: delta_sweep(&[1, 2, 4, 6, 8, 10, 12], p.runs, p.duration, p.seed, p.jobs),
    }
}

// ---------------------------------------------------------------------------
// Ablation: dual enforcement
// ---------------------------------------------------------------------------

/// The dual-enforcement ablation: full FLARE vs GBR-only FLARE.
#[derive(Debug, Clone)]
pub struct DualEnforcementAblation {
    /// Per-client change-count summary for full FLARE.
    pub full_changes: Summary,
    /// Per-client change-count summary when only GBR is enforced.
    pub gbr_only_changes: Summary,
    /// Per-client average-rate summary for full FLARE (kbps).
    pub full_rates: Summary,
    /// Per-client average-rate summary for GBR-only FLARE (kbps).
    pub gbr_only_rates: Summary,
    /// Mean stalled seconds per client for full FLARE.
    pub full_underflow_secs: f64,
    /// Mean stalled seconds per client for GBR-only FLARE (the nominal-rate
    /// overshoot of the uncoordinated client shows up here).
    pub gbr_only_underflow_secs: f64,
}

impl DualEnforcementAblation {
    /// Renders the comparison.
    pub fn render(&self) -> String {
        format!(
            "Ablation: dual enforcement (plugin + GBR) vs GBR-only\n\
             full FLARE:  rate {} kbps, changes {}, stalled {:.1} s/client\n\
             GBR only:    rate {} kbps, changes {}, stalled {:.1} s/client\n",
            self.full_rates,
            self.full_changes,
            self.full_underflow_secs,
            self.gbr_only_rates,
            self.gbr_only_changes,
            self.gbr_only_underflow_secs,
        )
    }
}

/// Runs the dual-enforcement ablation on the mobile scenario.
pub fn ablation_dual_enforcement(p: ExperimentParams) -> DualEnforcementAblation {
    let full = repeat(p.runs, p.seed, p.jobs, |s| {
        mobile_run(
            SchemeKind::Flare(flare_core::FlareConfig::default()),
            s,
            p.duration,
        )
    });
    let gbr_only = repeat(p.runs, p.seed, p.jobs, |s| {
        mobile_run(
            SchemeKind::FlareGbrOnly(flare_core::FlareConfig::default()),
            s,
            p.duration,
        )
    });
    let mean_underflow = |runs: &[RunResult]| {
        runs.iter()
            .map(RunResult::average_underflow_secs)
            .sum::<f64>()
            / runs.len() as f64
    };
    DualEnforcementAblation {
        full_changes: Summary::of(&pooled_changes(&full)),
        gbr_only_changes: Summary::of(&pooled_changes(&gbr_only)),
        full_rates: Summary::of(&pooled_rates(&full)),
        gbr_only_rates: Summary::of(&pooled_rates(&gbr_only)),
        full_underflow_secs: mean_underflow(&full),
        gbr_only_underflow_secs: mean_underflow(&gbr_only),
    }
}

// ---------------------------------------------------------------------------
// Deployment: coexistence with conventional HAS players (Section V)
// ---------------------------------------------------------------------------

/// The legacy-coexistence result: FLARE and conventional players sharing a
/// cell, with the conventional players serviced as best-effort data.
#[derive(Debug, Clone)]
pub struct LegacyCoexistence {
    /// Per-client average rate (kbps) of the FLARE-coordinated players.
    pub flare_rates: Summary,
    /// Per-client average rate (kbps) of the conventional players.
    pub legacy_rates: Summary,
    /// Per-client change counts of the FLARE players.
    pub flare_changes: Summary,
    /// Per-client change counts of the conventional players.
    pub legacy_changes: Summary,
    /// Total stalled seconds of the FLARE players.
    pub flare_underflow_secs: f64,
}

impl LegacyCoexistence {
    /// Renders the comparison.
    pub fn render(&self) -> String {
        format!(
            "Deployment: FLARE clients coexisting with conventional players\n\
             FLARE clients:  rate {} kbps, changes {}, stalled {:.1} s\n\
             legacy clients: rate {} kbps, changes {}\n",
            self.flare_rates,
            self.flare_changes,
            self.flare_underflow_secs,
            self.legacy_rates,
            self.legacy_changes,
        )
    }
}

/// Runs the Section V deployment scenario: half the video UEs use FLARE
/// plugins (GBR-protected), half run conventional FESTIVE players serviced
/// like data traffic.
pub fn legacy_coexistence(p: ExperimentParams) -> LegacyCoexistence {
    use crate::config::{ChannelKind, SimConfig};
    use flare_lte::mobility::MobilityConfig;

    let runs = flare_harness::run_indexed(p.runs, p.jobs, |i| {
        let config = SimConfig::builder()
            .seed(p.seed + i as u64)
            .duration(p.duration)
            .videos(8)
            .legacy_video(4)
            .data_flows(0)
            .channel(ChannelKind::StationaryRandom(MobilityConfig::default()))
            .scheme(SchemeKind::Flare(flare_core::FlareConfig::default()))
            .build();
        crate::runner::CellSim::new(config).run()
    });
    let mut flare_rates = Vec::new();
    let mut legacy_rates = Vec::new();
    let mut flare_changes = Vec::new();
    let mut legacy_changes = Vec::new();
    let mut flare_underflow = 0.0;
    for r in &runs {
        for v in &r.videos {
            if v.index < 4 {
                flare_rates.push(v.stats.average_rate.as_kbps());
                flare_changes.push(v.stats.bitrate_changes as f64);
                flare_underflow += v.stats.underflow_time.as_secs_f64();
            } else {
                legacy_rates.push(v.stats.average_rate.as_kbps());
                legacy_changes.push(v.stats.bitrate_changes as f64);
            }
        }
    }
    LegacyCoexistence {
        flare_rates: Summary::of(&flare_rates),
        legacy_rates: Summary::of(&legacy_rates),
        flare_changes: Summary::of(&flare_changes),
        legacy_changes: Summary::of(&legacy_changes),
        flare_underflow_secs: flare_underflow,
    }
}

// ---------------------------------------------------------------------------
// Ablation: static partitioning vs unified allocation
// ---------------------------------------------------------------------------

/// The static-partitioning ablation: the same FLARE assignment enforced by
/// the opportunistic two-phase scheduler vs an AVIS-style static slice.
#[derive(Debug, Clone)]
pub struct PartitionAblation {
    /// Mean data-flow throughput (kbps) under the opportunistic scheduler.
    pub unified_data_kbps: f64,
    /// Mean data-flow throughput (kbps) under static slicing.
    pub partitioned_data_kbps: f64,
    /// Mean video rate (kbps) under the opportunistic scheduler.
    pub unified_video_kbps: f64,
    /// Mean video rate (kbps) under static slicing.
    pub partitioned_video_kbps: f64,
}

impl PartitionAblation {
    /// Renders the comparison.
    pub fn render(&self) -> String {
        format!(
            "Ablation: unified allocation vs static partitioning\n\
             unified (two-phase):  video {:.0} kbps, data {:.0} kbps\n\
             static partitioning:  video {:.0} kbps, data {:.0} kbps\n",
            self.unified_video_kbps,
            self.unified_data_kbps,
            self.partitioned_video_kbps,
            self.partitioned_data_kbps,
        )
    }
}

/// Runs FLARE with the opportunistic two-phase scheduler vs static slicing
/// (Section I-B's critique of AVIS-style partitioning: reserved-but-unused
/// blocks starve data flows).
pub fn ablation_static_partition(p: ExperimentParams) -> PartitionAblation {
    use crate::config::{ChannelKind, SchedulerKind, SimConfig};

    let run = |scheduler: SchedulerKind, seed: u64| {
        let config = SimConfig::builder()
            .seed(seed)
            .duration(p.duration)
            .videos(4)
            .data_flows(4)
            .scheduler(scheduler)
            .channel(ChannelKind::Static { itbs: 8 })
            .scheme(SchemeKind::Flare(flare_core::FlareConfig::default()))
            .build();
        crate::runner::CellSim::new(config).run()
    };
    let pairs = flare_harness::run_indexed(p.runs, p.jobs, |i| {
        (
            run(SchedulerKind::TwoPhaseGbr, p.seed + i as u64),
            run(SchedulerKind::StrictPartition, p.seed + i as u64),
        )
    });
    let mut unified_data = Vec::new();
    let mut part_data = Vec::new();
    let mut unified_video = Vec::new();
    let mut part_video = Vec::new();
    for (u, s) in &pairs {
        unified_data.push(u.average_data_throughput_kbps());
        part_data.push(s.average_data_throughput_kbps());
        unified_video.push(u.average_video_rate_kbps());
        part_video.push(s.average_video_rate_kbps());
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    PartitionAblation {
        unified_data_kbps: mean(&unified_data),
        partitioned_data_kbps: mean(&part_data),
        unified_video_kbps: mean(&unified_video),
        partitioned_video_kbps: mean(&part_video),
    }
}

// ---------------------------------------------------------------------------
// Ablation: multi-user diversity (PF vs round robin)
// ---------------------------------------------------------------------------

/// The scheduler-diversity ablation: the same client-side workload over
/// proportional fair vs channel-blind round robin.
#[derive(Debug, Clone)]
pub struct DiversityAblation {
    /// Aggregate delivered video throughput (kbps) under proportional fair.
    pub pf_total_kbps: f64,
    /// Aggregate delivered video throughput (kbps) under round robin.
    pub rr_total_kbps: f64,
}

impl DiversityAblation {
    /// Renders the comparison.
    pub fn render(&self) -> String {
        format!(
            "Ablation: multi-user diversity (PF vs round robin)\n\
             proportional fair: {:.0} kbps aggregate video throughput\n\
             round robin:       {:.0} kbps aggregate video throughput\n",
            self.pf_total_kbps, self.rr_total_kbps,
        )
    }
}

/// Quantifies the multi-user-diversity gain PF extracts from heterogeneous
/// mobile channels — the capacity pool every scheme in the paper draws
/// from (and part of why GBR pacing trades aggregate rate for guarantees).
pub fn ablation_diversity(p: ExperimentParams) -> DiversityAblation {
    use crate::config::{ChannelKind, SchedulerKind, SimConfig};
    use flare_lte::mobility::MobilityConfig;

    let run = |scheduler: SchedulerKind, seed: u64| {
        let config = SimConfig::builder()
            .seed(seed)
            .duration(p.duration)
            .videos(8)
            .data_flows(0)
            .scheduler(scheduler)
            .channel(ChannelKind::Mobile(MobilityConfig::default()))
            .scheme(SchemeKind::Festive)
            .build();
        crate::runner::CellSim::new(config).run()
    };
    let total = |r: &RunResult| {
        r.videos
            .iter()
            .map(|v| v.average_throughput.as_kbps())
            .sum::<f64>()
    };
    let pairs = flare_harness::run_indexed(p.runs, p.jobs, |i| {
        (
            total(&run(SchedulerKind::ProportionalFair, p.seed + i as u64)),
            total(&run(SchedulerKind::RoundRobin, p.seed + i as u64)),
        )
    });
    let mut pf = 0.0;
    let mut rr = 0.0;
    for (a, b) in &pairs {
        pf += a;
        rr += b;
    }
    DiversityAblation {
        pf_total_kbps: pf / p.runs as f64,
        rr_total_kbps: rr / p.runs as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pf_extracts_diversity_gain_over_round_robin() {
        let p = ExperimentParams {
            runs: 1,
            duration: TimeDelta::from_secs(300),
            testbed_duration: TimeDelta::from_secs(120),
            seed: 4,
            jobs: 1,
        };
        let a = ablation_diversity(p);
        assert!(
            a.pf_total_kbps >= a.rr_total_kbps,
            "PF must not lose to round robin: {} vs {}",
            a.pf_total_kbps,
            a.rr_total_kbps
        );
        assert!(a.render().contains("round robin"));
    }

    #[test]
    fn legacy_coexistence_keeps_flare_clients_whole() {
        let p = ExperimentParams {
            runs: 1,
            duration: TimeDelta::from_secs(300),
            testbed_duration: TimeDelta::from_secs(120),
            seed: 7,
            jobs: 1,
        };
        let r = legacy_coexistence(p);
        // FLARE clients keep their GBR protection: no stalls, and their
        // rates are not collapsed by the legacy players' presence.
        assert_eq!(r.flare_underflow_secs, 0.0);
        assert!(r.flare_rates.mean > 0.0);
        assert!(r.legacy_rates.mean > 0.0);
        assert!(r.render().contains("legacy clients"));
    }

    #[test]
    fn static_partitioning_starves_data() {
        let p = ExperimentParams {
            runs: 1,
            duration: TimeDelta::from_secs(300),
            testbed_duration: TimeDelta::from_secs(120),
            seed: 8,
            jobs: 1,
        };
        let a = ablation_static_partition(p);
        assert!(
            a.partitioned_data_kbps <= a.unified_data_kbps,
            "static slicing must not help data flows: {} vs {}",
            a.partitioned_data_kbps,
            a.unified_data_kbps
        );
    }

    #[test]
    fn table1_quick_has_three_schemes() {
        let t = table1(ExperimentParams::quick());
        assert_eq!(t.rows.len(), 3);
        assert_eq!(t.rows[0].scheme, "FESTIVE");
        assert_eq!(t.rows[2].scheme, "FLARE");
        let rendered = t.render();
        assert!(rendered.contains("Average video rate"));
        assert!(rendered.contains("FLARE"));
    }

    #[test]
    fn fig9_renders() {
        let f = fig9(5, 3, 1);
        assert_eq!(f.points.len(), 3);
        let rendered = f.render();
        assert!(rendered.contains("128"));
    }

    #[test]
    fn fig12_quick_is_monotone_enough() {
        let p = ExperimentParams {
            runs: 1,
            duration: TimeDelta::from_secs(200),
            testbed_duration: TimeDelta::from_secs(120),
            seed: 5,
            jobs: 1,
        };
        let f = fig12(p);
        assert_eq!(f.points.len(), 7);
        assert!(f.render().contains("delta"));
    }
}
