//! Control-plane robustness experiment: FLARE under an unreliable
//! coordination loop.
//!
//! The paper assumes the OneAPI exchange (statistics reports up,
//! assignments down) is lossless and instantaneous. This experiment drops
//! that assumption: the same workload runs with the coordination loop
//! routed through a fault-injectable [`flare_core::ControlPlane`], sweeping
//! message loss and a mid-run server outage, and compares
//!
//! * **FLARE-R** — FLARE with the graceful-degradation extensions
//!   (versioned assignments, staleness fallback, GBR leases, stats aging
//!   and eviction),
//! * **FLARE** — the paper's design exposed naively to the same faults
//!   (assignments applied whenever they arrive, GBRs persist forever), and
//! * **FESTIVE** — a client-side scheme with no control plane at all,
//!   which bounds how well pure local adaptation does.
//!
//! Reported per point: the Table I/II QoE metrics plus degradation
//! telemetry — the fraction of client-BAIs spent in fallback, stale
//! rejections, expired GBR leases, and server-side evictions.

use flare_core::{FaultModel, FlareConfig, OutageWindow, RobustnessConfig};
use flare_sim::{Time, TimeDelta};

use crate::config::{ChannelKind, SchemeKind, SimConfig};
use crate::experiments::ExperimentParams;
use crate::runner::{CellSim, RobustnessReport, RunResult};
use flare_lte::mobility::MobilityConfig;

/// One scheme's averaged outcome at one fault point.
#[derive(Debug, Clone)]
pub struct FaultRow {
    /// Scheme name ("FLARE-R", "FLARE", "FESTIVE").
    pub scheme: String,
    /// Average video rate (kbps).
    pub average_rate_kbps: f64,
    /// Average buffer-underflow time per client (seconds).
    pub underflow_secs: f64,
    /// Average number of bitrate changes per client.
    pub bitrate_changes: f64,
    /// Mean fraction of client-BAIs spent in fallback mode (0 for schemes
    /// without a fallback policy).
    pub fallback_fraction: f64,
    /// Mean stale/reordered assignments rejected per run.
    pub stale_rejections: f64,
    /// Mean control-plane messages dropped or lost to outages per run.
    pub lost_messages: f64,
    /// Mean GBR leases expired unrenewed per run.
    pub expired_leases: f64,
    /// Mean clients evicted by the server for statistics silence per run.
    pub evicted_clients: f64,
}

/// One fault point: a label plus one row per scheme.
#[derive(Debug, Clone)]
pub struct FaultPoint {
    /// Human-readable description of the injected faults.
    pub label: String,
    /// One row per scheme, FLARE-R first.
    pub rows: Vec<FaultRow>,
}

/// The robustness experiment's result: a loss sweep plus an outage point.
#[derive(Debug, Clone)]
pub struct FaultFigure {
    /// One entry per fault point, loss sweep first.
    pub points: Vec<FaultPoint>,
}

impl FaultFigure {
    /// Renders the sweep as aligned text.
    pub fn render(&self) -> String {
        let mut out = "Robustness: FLARE under an unreliable control plane\n".to_owned();
        for point in &self.points {
            out.push_str(&format!("-- {} --\n", point.label));
            out.push_str(&format!(
                "{:<16}{:>10}{:>10}{:>9}{:>10}{:>8}{:>8}{:>8}{:>8}\n",
                "scheme",
                "rate",
                "underflow",
                "changes",
                "fallback",
                "stale",
                "lost",
                "leases",
                "evicted"
            ));
            for row in &point.rows {
                out.push_str(&format!(
                    "{:<16}{:>10.0}{:>10.1}{:>9.1}{:>9.0}%{:>8.1}{:>8.1}{:>8.1}{:>8.1}\n",
                    row.scheme,
                    row.average_rate_kbps,
                    row.underflow_secs,
                    row.bitrate_changes,
                    100.0 * row.fallback_fraction,
                    row.stale_rejections,
                    row.lost_messages,
                    row.expired_leases,
                    row.evicted_clients,
                ));
            }
        }
        out
    }
}

/// The three schemes compared at every fault point, FLARE-R first.
fn schemes() -> Vec<SchemeKind> {
    vec![
        SchemeKind::Flare(FlareConfig::default().with_robustness(RobustnessConfig::default())),
        SchemeKind::Flare(FlareConfig::default()),
        SchemeKind::Festive,
    ]
}

fn faulty_config(
    scheme: SchemeKind,
    faults: &FaultModel,
    seed: u64,
    duration: TimeDelta,
) -> SimConfig {
    // Mobile channels make staleness *costly*: an assignment computed for
    // last BAI's radio conditions can be far too aggressive for this one,
    // which is exactly the regime the fallback policy exists for. On a
    // static channel stale assignments stay valid and naive FLARE never
    // pays for them.
    SimConfig::builder()
        .seed(seed)
        .duration(duration)
        .videos(8)
        .data_flows(0)
        .channel(ChannelKind::Mobile(MobilityConfig::default()))
        .scheme(scheme)
        .faults(faults.clone())
        .build()
}

fn row_from_runs(name: &str, bais_per_run: f64, n_video: f64, runs: &[RunResult]) -> FaultRow {
    let n = runs.len() as f64;
    // Note: the empty f64 sum is -0.0, so schemes without telemetry need an
    // explicit zero.
    let reports: Vec<&RobustnessReport> =
        runs.iter().filter_map(|r| r.robustness.as_ref()).collect();
    let mean_robust = |f: &dyn Fn(&RobustnessReport) -> u64| {
        if reports.is_empty() {
            0.0
        } else {
            reports.iter().map(|rb| f(rb) as f64).sum::<f64>() / n
        }
    };
    let client_bais = (bais_per_run * n_video).max(1.0);
    FaultRow {
        scheme: name.to_owned(),
        average_rate_kbps: runs
            .iter()
            .map(RunResult::average_video_rate_kbps)
            .sum::<f64>()
            / n,
        underflow_secs: runs
            .iter()
            .map(RunResult::average_underflow_secs)
            .sum::<f64>()
            / n,
        bitrate_changes: runs
            .iter()
            .map(RunResult::average_bitrate_changes)
            .sum::<f64>()
            / n,
        fallback_fraction: mean_robust(&|rb| rb.fallback_bais) / client_bais,
        stale_rejections: mean_robust(&|rb| rb.stale_rejections),
        lost_messages: mean_robust(&|rb| rb.dropped + rb.lost_to_outage),
        expired_leases: mean_robust(&|rb| rb.expired_leases),
        evicted_clients: mean_robust(&|rb| rb.evicted_clients),
    }
}

fn fault_point(label: String, faults: &FaultModel, p: ExperimentParams) -> FaultPoint {
    let bais_per_run = p.duration.as_millis() as f64 / 10_000.0;
    let rows = schemes()
        .into_iter()
        .map(|scheme| {
            let name = scheme.name().to_owned();
            let runs: Vec<RunResult> = flare_harness::run_indexed(p.runs, p.jobs, |i| {
                CellSim::new(faulty_config(
                    scheme.clone(),
                    faults,
                    p.seed + i as u64,
                    p.duration,
                ))
                .run()
            });
            row_from_runs(&name, bais_per_run, 8.0, &runs)
        })
        .collect();
    FaultPoint { label, rows }
}

/// The loss rates swept by [`faults`].
pub const LOSS_RATES: [f64; 4] = [0.0, 0.1, 0.2, 0.4];

/// Runs the robustness experiment: a control-plane loss sweep
/// ([`LOSS_RATES`]) plus a 60 s server outage in the middle of the run,
/// comparing FLARE-R, naive FLARE, and FESTIVE at every point.
pub fn faults(p: ExperimentParams) -> FaultFigure {
    let mut points: Vec<FaultPoint> = LOSS_RATES
        .iter()
        .map(|&loss| {
            fault_point(
                format!("message loss {:.0}%", 100.0 * loss),
                &FaultModel::perfect().with_drop_prob(loss),
                p,
            )
        })
        .collect();

    // A 60 s server outage starting halfway through (clamped so it fits
    // even under --quick durations).
    let start_ms = p.duration.as_millis() / 2;
    let outage_len = TimeDelta::from_secs(60).min(TimeDelta::from_millis(
        (p.duration.as_millis() - start_ms).max(1),
    ));
    let outage = OutageWindow::new(
        Time::ZERO + TimeDelta::from_millis(start_ms),
        Time::ZERO + TimeDelta::from_millis(start_ms) + outage_len,
    );
    points.push(fault_point(
        format!("server outage {} s", outage_len.as_millis() / 1000),
        &FaultModel::perfect().with_outage(outage),
        p,
    ));
    FaultFigure { points }
}

/// Convenience: the control-plane counters of a single faulty run, for
/// tests and notebooks that want raw telemetry rather than the averaged
/// figure.
pub fn single_run_telemetry(
    scheme: SchemeKind,
    faults_model: &FaultModel,
    seed: u64,
    duration: TimeDelta,
) -> Option<RobustnessReport> {
    CellSim::new(faulty_config(scheme, faults_model, seed, duration))
        .run()
        .robustness
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ExperimentParams {
        ExperimentParams {
            runs: 1,
            duration: TimeDelta::from_secs(200),
            testbed_duration: TimeDelta::from_secs(120),
            seed: 11,
            jobs: 1,
        }
    }

    #[test]
    fn figure_has_loss_sweep_plus_outage() {
        let f = faults(quick());
        assert_eq!(f.points.len(), LOSS_RATES.len() + 1);
        for point in &f.points {
            assert_eq!(point.rows.len(), 3);
            assert_eq!(point.rows[0].scheme, "FLARE-R");
            assert_eq!(point.rows[1].scheme, "FLARE");
            assert_eq!(point.rows[2].scheme, "FESTIVE");
        }
        let rendered = f.render();
        assert!(rendered.contains("message loss 0%"));
        assert!(rendered.contains("server outage"));
        assert!(rendered.contains("FLARE-R"));
    }

    #[test]
    fn zero_loss_point_has_no_degradation() {
        let point = fault_point("perfect".into(), &FaultModel::perfect(), quick());
        let flare_r = &point.rows[0];
        assert_eq!(flare_r.fallback_fraction, 0.0);
        assert_eq!(flare_r.stale_rejections, 0.0);
        assert_eq!(flare_r.lost_messages, 0.0);
    }

    #[test]
    fn heavy_loss_puts_resilient_flare_into_fallback() {
        let point = fault_point(
            "heavy".into(),
            &FaultModel::perfect().with_drop_prob(0.9),
            quick(),
        );
        let flare_r = &point.rows[0];
        assert!(
            flare_r.fallback_fraction > 0.0,
            "90% loss must force fallback BAIs, got {}",
            flare_r.fallback_fraction
        );
        assert!(flare_r.lost_messages > 0.0);
        // The fallback policy must keep video flowing.
        assert!(flare_r.average_rate_kbps > 0.0);
    }

    #[test]
    fn single_run_telemetry_present_only_for_flare() {
        let fm = FaultModel::perfect().with_drop_prob(0.5);
        let d = TimeDelta::from_secs(120);
        assert!(
            single_run_telemetry(SchemeKind::Flare(FlareConfig::default()), &fm, 3, d).is_some()
        );
        assert!(single_run_telemetry(SchemeKind::Festive, &fm, 3, d).is_none());
    }
}
