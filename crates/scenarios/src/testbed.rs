//! The LTE femtocell testbed scenarios (Section IV-A).
//!
//! Three video UEs and one Iperf data UE share a 10 MHz cell (50 RB/TTI).
//! The video is encoded at {200, 310, 450, 790, 1100, 1320, 2280, 2750}
//! kbps. Two channel profiles are studied:
//!
//! * **static** — every UE pinned at iTbs 2;
//! * **dynamic** — iTbs swept 1 → 12 → 1 over four minutes, each UE phase-
//!   shifted.
//!
//! The runs last ten minutes. The GOOGLE player requests the next segment
//! when its buffer drops below 15 s in the static scenario and 40 s in the
//! dynamic one (the paper's modification to curb its rebuffering).
//!
//! *Substitution note:* the femtocell paper does not state its segment
//! length; we use 2-second segments and a 2-second BAI, which reproduces
//! the ~100 s conservative ramp of Figure 4c under the default δ = 4.

use flare_core::FlareConfig;
use flare_has::{BitrateLadder, PlayerConfig};
use flare_sim::TimeDelta;

use crate::config::{ChannelKind, SchedulerKind, SchemeKind, SimConfig};
use crate::runner::{CellSim, RunResult};

/// Testbed segment length (and BAI).
pub fn segment() -> TimeDelta {
    TimeDelta::from_secs(2)
}

/// Player timing for a scheme in the testbed.
///
/// `google_threshold_secs` is 15 in the static scenario and 40 in the
/// dynamic one; the other players keep the 30 s default.
fn player_config(scheme: &SchemeKind, google_threshold_secs: u64) -> PlayerConfig {
    let request_threshold = match scheme {
        SchemeKind::Google => TimeDelta::from_secs(google_threshold_secs),
        _ => TimeDelta::from_secs(30),
    };
    PlayerConfig {
        startup_threshold: segment(),
        resume_threshold: segment(),
        request_threshold,
    }
}

/// The FLARE configuration used on the femtocell: Table IV parameters with
/// the testbed's 2-second BAI.
pub fn flare_config() -> FlareConfig {
    FlareConfig::default().with_bai(segment())
}

/// Builds the static-scenario configuration (iTbs pinned at 2) for a
/// scheme.
pub fn static_config(scheme: SchemeKind, seed: u64, duration: TimeDelta) -> SimConfig {
    let player = player_config(&scheme, 15);
    SimConfig::builder()
        .seed(seed)
        .duration(duration)
        .bai(segment())
        .segment(segment())
        .ladder(BitrateLadder::testbed())
        .scheduler(SchedulerKind::TwoPhaseGbr)
        .player(player)
        .videos(3)
        .data_flows(1)
        .channel(ChannelKind::Static { itbs: 2 })
        .scheme(scheme)
        .build()
}

/// Builds the dynamic-scenario configuration (iTbs 1 → 12 → 1 over four
/// minutes, per-UE offsets) for a scheme.
pub fn dynamic_config(scheme: SchemeKind, seed: u64, duration: TimeDelta) -> SimConfig {
    let player = player_config(&scheme, 40);
    SimConfig::builder()
        .seed(seed)
        .duration(duration)
        .bai(segment())
        .segment(segment())
        .ladder(BitrateLadder::testbed())
        .scheduler(SchedulerKind::TwoPhaseGbr)
        .player(player)
        .videos(3)
        .data_flows(1)
        .channel(ChannelKind::Triangle {
            min: 1,
            max: 12,
            period: TimeDelta::from_secs(240),
        })
        .scheme(scheme)
        .build()
}

/// Runs the full 10-minute static scenario for a scheme.
pub fn run_static(scheme: SchemeKind, seed: u64) -> RunResult {
    CellSim::new(static_config(scheme, seed, TimeDelta::from_secs(600))).run()
}

/// Runs the full 10-minute dynamic scenario for a scheme.
pub fn run_dynamic(scheme: SchemeKind, seed: u64) -> RunResult {
    CellSim::new(dynamic_config(scheme, seed, TimeDelta::from_secs(600))).run()
}

/// The three schemes Table I/II compare, in paper order.
pub fn schemes() -> Vec<SchemeKind> {
    vec![
        SchemeKind::Festive,
        SchemeKind::Google,
        SchemeKind::Flare(flare_config()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn short(scheme: SchemeKind, dynamic: bool) -> RunResult {
        let cfg = if dynamic {
            dynamic_config(scheme, 11, TimeDelta::from_secs(180))
        } else {
            static_config(scheme, 11, TimeDelta::from_secs(180))
        };
        CellSim::new(cfg).run()
    }

    #[test]
    fn static_flare_converges_to_one_level() {
        let r = short(SchemeKind::Flare(flare_config()), false);
        // After the conservative ramp, FLARE should sit on a single level:
        // very few changes in the steady half of the run.
        for v in &r.videos {
            let late: Vec<f64> = v
                .rate_series
                .points()
                .iter()
                .filter(|(t, _)| *t > 90.0)
                .map(|(_, rate)| *rate)
                .collect();
            let distinct: std::collections::HashSet<u64> = late.iter().map(|r| *r as u64).collect();
            assert!(
                distinct.len() <= 2,
                "FLARE should be near-constant late in the run: {distinct:?}"
            );
        }
        assert_eq!(r.average_underflow_secs(), 0.0, "FLARE must not rebuffer");
    }

    #[test]
    fn static_festive_is_less_stable_than_flare() {
        let festive = short(SchemeKind::Festive, false);
        let flare = short(SchemeKind::Flare(flare_config()), false);
        assert!(
            festive.average_bitrate_changes() >= flare.average_bitrate_changes(),
            "festive {} vs flare {}",
            festive.average_bitrate_changes(),
            flare.average_bitrate_changes()
        );
    }

    #[test]
    fn static_google_is_most_aggressive() {
        let google = short(SchemeKind::Google, false);
        let festive = short(SchemeKind::Festive, false);
        assert!(
            google.average_video_rate_kbps() > festive.average_video_rate_kbps(),
            "google {} vs festive {}",
            google.average_video_rate_kbps(),
            festive.average_video_rate_kbps()
        );
        // The flip side: GOOGLE leaves the least throughput for data.
        assert!(google.average_data_throughput_kbps() < festive.average_data_throughput_kbps());
    }

    #[test]
    fn dynamic_scenario_tracks_the_channel() {
        let r = short(SchemeKind::Flare(flare_config()), true);
        // Under the triangle sweep the selected rates must actually vary.
        let v = &r.videos[0];
        let distinct: std::collections::HashSet<u64> = v
            .rate_series
            .points()
            .iter()
            .map(|(_, rate)| *rate as u64)
            .collect();
        assert!(
            distinct.len() >= 2,
            "dynamic FLARE should adapt: {distinct:?}"
        );
    }

    #[test]
    fn fairness_is_high_across_schemes() {
        for scheme in schemes() {
            let r = short(scheme, false);
            assert!(
                r.jain_of_video_rates() > 0.85,
                "{} unfair: {}",
                r.scheme,
                r.jain_of_video_rates()
            );
        }
    }
}
