//! Sharded multi-cell engine: N cells stepped concurrently with a
//! deterministic barrier at every BAI boundary.
//!
//! The paper's OneAPI entity oversees many cells at once, but each cell's
//! per-BAI solve is independent (Section II-A), which makes the BAI
//! boundary the *only* point where coordination work happens. The engine
//! exploits exactly that structure:
//!
//! 1. Every cell is a [`CellStepper`] shard owned by a persistent worker
//!    on a [`ShardPool`] (cells are `!Send`; workers build and keep them).
//! 2. A round of `advance_to_bai` steps every shard to its next BAI
//!    boundary. The pool's full barrier guarantees no shard runs ahead.
//! 3. A round of `bai_boundary` executes the coordination step — the
//!    per-cell `solve_discrete` calls fan out across the same workers —
//!    and installs assignments before any shard enters the next BAI.
//!
//! # Determinism contract
//!
//! Sharded execution is **byte-identical** to serial (`jobs = 1`)
//! execution: each cell draws from its own seeded RNG streams, records
//! into its own [`TraceHandle`], and never reads another cell's state, so
//! the worker count only changes *where* a cell is stepped, never *what*
//! it computes. Results and traces are merged in cell-index order. The
//! contract is pinned by `tests/sharded.rs` (byte-equal JSONL per cell)
//! and re-asserted by `multicell_bench` before it reports any speedup.
//! See DESIGN.md §12.

use flare_harness::ShardPool;
use flare_sim::Time;
use flare_trace::{TraceConfig, TraceHandle};

use crate::config::SimConfig;
use crate::runner::{CellSim, CellStepper, RunResult};

/// One worker-owned cell: the stepper plus the recording trace handle (if
/// per-cell traces were requested) used to export JSONL at the end.
struct Shard {
    stepper: CellStepper,
    trace: Option<TraceHandle>,
}

/// The merged outcome of a multi-cell run, in cell-index order.
#[derive(Debug)]
pub struct MultiCellOutcome {
    /// Per-cell results, index `i` = cell `i` (identical to running cell
    /// `i`'s config through [`CellSim::run`] on its own).
    pub results: Vec<RunResult>,
    /// Per-cell JSONL traces when tracing was requested, else `None`s.
    pub traces: Vec<Option<String>>,
    /// Number of BAI barriers executed (same for every cell by lockstep).
    pub barriers: u64,
    /// Worker threads that actually stepped shards (1 = serial reference).
    pub workers: usize,
}

/// N concurrently stepped [`CellSim`] shards with a deterministic BAI
/// barrier. See the module docs for the contract.
pub struct MultiCellSim {
    pool: ShardPool<Shard>,
}

impl MultiCellSim {
    /// Builds `cells` shards on up to `jobs` workers (`0` = all cores,
    /// `<= 1` = serial on the caller thread — the reference execution).
    ///
    /// `config_of(i)` produces cell `i`'s [`SimConfig`] *on the worker
    /// that owns the shard*; it must be deterministic in `i` and give every
    /// cell the same `duration` and `bai` (the lockstep barrier asserts
    /// this at run time). When `record_traces` is set, each cell gets its
    /// own recording [`TraceHandle`] (any handle already present in the
    /// config is replaced) whose JSONL lands in
    /// [`MultiCellOutcome::traces`].
    pub fn new<C>(cells: usize, jobs: usize, record_traces: bool, config_of: C) -> Self
    where
        C: Fn(usize) -> SimConfig + Send + Sync + 'static,
    {
        let pool = ShardPool::build(cells, jobs, move |i| {
            let mut config = config_of(i);
            let trace = record_traces.then(|| {
                let trace = TraceHandle::new(TraceConfig::info());
                config.trace = trace.clone();
                trace
            });
            Shard {
                stepper: CellSim::new(config).into_stepper(),
                trace,
            }
        });
        MultiCellSim { pool }
    }

    /// Runs every cell to completion, barriering at each BAI boundary, and
    /// returns the merged outcome.
    ///
    /// # Panics
    ///
    /// Panics if the cells fall out of lockstep (mismatched `duration` or
    /// `bai` across configs), or if any shard panics (the payload is
    /// re-raised on this thread).
    pub fn run(mut self) -> MultiCellOutcome {
        let mut barriers = 0u64;
        loop {
            let boundaries: Vec<Option<Time>> =
                self.pool.each(|_, shard| shard.stepper.advance_to_bai());
            let Some(&first) = boundaries.first() else {
                break; // zero cells
            };
            for (cell, boundary) in boundaries.iter().enumerate() {
                assert_eq!(
                    *boundary, first,
                    "cells out of lockstep: cell 0 at {first:?}, cell {cell} at {boundary:?} \
                     (all cells must share `duration` and `bai`)"
                );
            }
            if first.is_none() {
                break; // every cell exhausted its duration
            }
            barriers += 1;
            // The coordination step: per-cell solves run on the same
            // workers, and every assignment is installed before any shard
            // can enter the next BAI (the `each` barrier).
            self.pool.each(|_, shard| shard.stepper.bai_boundary());
        }
        let workers = self.pool.workers();
        let merged = self.pool.finish(|_, shard| {
            let jsonl = shard.trace.as_ref().map(|t| t.to_jsonl());
            (shard.stepper.into_result(), jsonl)
        });
        let mut results = Vec::with_capacity(merged.len());
        let mut traces = Vec::with_capacity(merged.len());
        for (result, jsonl) in merged {
            results.push(result);
            traces.push(jsonl);
        }
        MultiCellOutcome {
            results,
            traces,
            barriers,
            workers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flare_core::FlareConfig;
    use flare_lte::mobility::MobilityConfig;
    use flare_sim::TimeDelta;

    use crate::cell::cell_config;
    use crate::config::{ChannelKind, SchemeKind};

    fn fig6_cell(seed: u64, secs: u64) -> SimConfig {
        cell_config(
            SchemeKind::Flare(FlareConfig::default()),
            ChannelKind::StationaryRandom(MobilityConfig::default()),
            8,
            0,
            seed,
            TimeDelta::from_secs(secs),
        )
    }

    #[test]
    fn sharded_matches_serial_cellsim_exactly() {
        let direct: Vec<RunResult> = (0..3)
            .map(|i| CellSim::new(fig6_cell(40 + i, 30)).run())
            .collect();
        for jobs in [1, 3] {
            let outcome = MultiCellSim::new(3, jobs, false, |i| fig6_cell(40 + i as u64, 30)).run();
            assert_eq!(outcome.results.len(), 3);
            assert_eq!(outcome.barriers, 3, "30 s at a 10 s BAI");
            for (cell, (a, b)) in direct.iter().zip(outcome.results.iter()).enumerate() {
                assert_eq!(
                    a.average_video_rate_kbps(),
                    b.average_video_rate_kbps(),
                    "cell {cell} diverged at jobs={jobs}"
                );
                assert_eq!(a.videos.len(), b.videos.len());
                for (va, vb) in a.videos.iter().zip(b.videos.iter()) {
                    assert_eq!(va.rate_series.points(), vb.rate_series.points());
                    assert_eq!(va.buffer_series.points(), vb.buffer_series.points());
                }
            }
        }
    }

    #[test]
    fn traces_are_recorded_per_cell() {
        let outcome = MultiCellSim::new(2, 2, true, |i| fig6_cell(7 + i as u64, 20)).run();
        assert_eq!(outcome.traces.len(), 2);
        for (cell, jsonl) in outcome.traces.iter().enumerate() {
            let jsonl = jsonl.as_ref().expect("tracing was requested");
            assert!(!jsonl.is_empty(), "cell {cell} recorded nothing");
        }
        // Different seeds must yield different traces (cells are distinct).
        assert_ne!(outcome.traces[0], outcome.traces[1]);
    }

    #[test]
    fn zero_cells_is_a_clean_noop() {
        let outcome = MultiCellSim::new(0, 4, true, |i| fig6_cell(i as u64, 10)).run();
        assert!(outcome.results.is_empty());
        assert_eq!(outcome.barriers, 0);
    }

    #[test]
    #[should_panic(expected = "out of lockstep")]
    fn mismatched_durations_are_rejected() {
        MultiCellSim::new(2, 1, false, |i| fig6_cell(1, 10 + 10 * i as u64)).run();
    }
}
