//! Experiment harness for the FLARE reproduction.
//!
//! This crate glues the substrates together — the LTE cell
//! ([`flare_lte::ENodeB`]), HAS players ([`flare_has::Player`]), the
//! adaptation algorithms ([`flare_abr`], [`flare_core`]) — into runnable
//! scenarios, and exposes one entry point per table and figure of the
//! paper's evaluation (Section IV). See `DESIGN.md` for the experiment
//! index.
//!
//! * [`SimConfig`] / [`CellSim`] — the generic single-cell simulation.
//! * [`testbed`] — the femtocell experiments (Tables I–II, Figures 4–5).
//! * [`cell`] — the ns-3-style experiments (Figures 6, 7, 10).
//! * [`sweeps`] — the α and δ parameter sweeps (Figures 11–12) and the
//!   relaxed-solver comparison (Figure 8).
//! * [`scaling`] — solver computation-time scaling (Figure 9).
//! * [`multicell`] — the sharded multi-cell engine (N cells stepped
//!   concurrently with a deterministic BAI barrier).
//! * [`experiments`] — typed result tables with text rendering, one per
//!   paper artifact.
//!
//! # Example
//!
//! ```
//! use flare_scenarios::{CellSim, ChannelKind, SchedulerKind, SchemeKind, SimConfig};
//! use flare_sim::TimeDelta;
//!
//! let config = SimConfig::builder()
//!     .seed(7)
//!     .duration(TimeDelta::from_secs(60))
//!     .videos(2)
//!     .data_flows(1)
//!     .channel(ChannelKind::Static { itbs: 10 })
//!     .scheme(SchemeKind::Festive)
//!     .build();
//! let result = CellSim::new(config).run();
//! assert_eq!(result.videos.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cell;
mod config;
pub mod experiments;
pub mod faults;
pub mod multicell;
mod runner;
pub mod scaling;
pub mod sweeps;
pub mod testbed;
pub mod tracing;

pub use config::{
    default_check_invariants, set_default_check_invariants, ChannelKind, SchedulerKind, SchemeKind,
    SimConfig, SimConfigBuilder,
};
pub use multicell::{MultiCellOutcome, MultiCellSim};
pub use runner::{CellSim, CellStepper, RobustnessReport, RunResult, VideoFlowResult};
