//! Representative traced runs, one per paper experiment.
//!
//! The repro harness regenerates a whole table or figure from many runs;
//! exporting the event stream of every one of them would be noise. Instead
//! [`representative_trace`] re-runs a *single* representative configuration
//! of the requested experiment with a recording [`TraceHandle`] attached
//! and returns the structured trace (JSONL) plus the registry summary.
//!
//! Traces are deterministic: the recorder timestamps events with simulated
//! time only, so the same experiment at the same seed yields a byte-
//! identical JSONL document (see `flare_trace` crate docs).

use flare_core::{FaultModel, FlareConfig, RobustnessConfig};
use flare_lte::mobility::MobilityConfig;
use flare_trace::{TraceConfig, TraceHandle};

use crate::cell::cell_config;
use crate::config::{ChannelKind, SchemeKind, SimConfig};
use crate::experiments::ExperimentParams;
use crate::runner::CellSim;
use crate::testbed::{dynamic_config, static_config};

/// The structured trace of one representative run.
#[derive(Debug, Clone)]
pub struct TraceArtifact {
    /// Experiment the run represents (e.g. `"fig6"`).
    pub experiment: String,
    /// Scheme the traced run used.
    pub scheme: String,
    /// The event stream as JSON Lines (one event per line).
    pub jsonl: String,
    /// Number of events in the stream.
    pub events: usize,
    /// Events evicted from the bounded ring (0 unless the run outgrew it).
    pub dropped: u64,
    /// Rendered registry summary (counters, gauges, histograms).
    pub summary: String,
}

/// Experiments [`representative_trace`] knows how to trace.
pub const TRACEABLE: &[&str] = &[
    "table1",
    "table2",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "ablation",
    "partition",
    "diversity",
    "legacy",
    "faults",
];

/// Picks the representative configuration of `experiment`.
///
/// Solver-centric experiments (fig8/9/11/12) trace the FLARE static cell
/// their sweeps are built from; `fig9` has no cell run at all, so its
/// trace shows the solve events of that same scenario.
fn representative_config(experiment: &str, p: &ExperimentParams) -> Option<SimConfig> {
    let flare = SchemeKind::Flare(FlareConfig::default());
    let static_cell = |scheme: SchemeKind, n_video: usize, n_data: usize| {
        cell_config(
            scheme,
            ChannelKind::StationaryRandom(MobilityConfig::default()),
            n_video,
            n_data,
            p.seed,
            p.duration,
        )
    };
    Some(match experiment {
        "table1" | "fig4" => static_config(flare, p.seed, p.testbed_duration),
        "table2" | "fig5" => dynamic_config(flare, p.seed, p.testbed_duration),
        "fig6" | "fig8" | "fig9" | "fig11" | "fig12" => static_cell(flare, 8, 0),
        "fig7" => cell_config(
            flare,
            ChannelKind::Mobile(MobilityConfig::default()),
            8,
            0,
            p.seed,
            p.duration,
        ),
        "fig10" => static_cell(flare, 4, 4),
        "ablation" | "partition" | "diversity" => {
            static_cell(SchemeKind::FlareGbrOnly(FlareConfig::default()), 8, 0)
        }
        "legacy" => {
            let mut cfg = static_cell(flare, 8, 0);
            cfg.legacy_video = 2;
            cfg
        }
        "faults" => {
            let mut cfg = static_cell(
                SchemeKind::Flare(
                    FlareConfig::default().with_robustness(RobustnessConfig::default()),
                ),
                8,
                0,
            );
            cfg.faults = Some(
                FaultModel::perfect()
                    .with_drop_prob(0.3)
                    .with_jitter(flare_sim::TimeDelta::from_millis(800)),
            );
            cfg
        }
        _ => return None,
    })
}

/// Runs one representative configuration of `experiment` with an attached
/// recorder and returns its trace, or `None` for unknown experiments.
pub fn representative_trace(experiment: &str, p: &ExperimentParams) -> Option<TraceArtifact> {
    let mut config = representative_config(experiment, p)?;
    let trace = TraceHandle::new(TraceConfig::info());
    config.trace = trace.clone();
    let scheme = config.scheme.name().to_owned();
    let result = CellSim::new(config).run();
    Some(TraceArtifact {
        experiment: experiment.to_owned(),
        scheme,
        jsonl: trace.to_jsonl(),
        events: trace.event_count(),
        dropped: trace.dropped_events(),
        summary: result.telemetry.render(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ExperimentParams {
        let mut p = ExperimentParams::quick();
        p.duration = flare_sim::TimeDelta::from_secs(60);
        p.testbed_duration = flare_sim::TimeDelta::from_secs(60);
        p
    }

    #[test]
    fn unknown_experiment_yields_none() {
        assert!(representative_trace("nope", &quick()).is_none());
    }

    #[test]
    fn every_traceable_experiment_has_a_config() {
        let p = quick();
        for exp in TRACEABLE {
            assert!(
                representative_config(exp, &p).is_some(),
                "no representative config for {exp}"
            );
        }
    }

    #[test]
    fn traced_run_produces_parseable_events() {
        let artifact = representative_trace("fig6", &quick()).expect("fig6 is traceable");
        assert!(artifact.events > 0, "trace must not be empty");
        assert_eq!(artifact.scheme, "FLARE");
        let events = flare_trace::parse_jsonl(&artifact.jsonl).expect("trace must parse");
        assert_eq!(events.len(), artifact.events);
        assert!(artifact.summary.contains("counters"));
    }

    #[test]
    fn traces_are_deterministic() {
        let p = quick();
        let a = representative_trace("faults", &p).unwrap();
        let b = representative_trace("faults", &p).unwrap();
        assert_eq!(a.jsonl, b.jsonl, "same seed must trace byte-identically");
    }
}
