//! The plugin ↔ OneAPI server wire protocol.
//!
//! The paper leaves the concrete message formats to future standardization
//! ("these message exchange procedures can be standardized by extending
//! related existing standards for telecommunications APIs"), but FLARE's
//! privacy argument rests on *what* the messages carry. These serializable
//! types pin that down:
//!
//! * [`ClientHello`] — sent when a video starts: the anonymized bitrate
//!   list (no title, no URL) plus whatever preferences the client opts to
//!   disclose.
//! * [`AssignmentMsg`] — server → plugin, once per BAI.
//! * [`StatsReportMsg`] — eNodeB → server: the per-flow `(n_u, b_u)`
//!   counters of the Statistics Reporter module.
//!
//! All quantities are plain integers in explicit units (kbps, bytes, ms) so
//! the wire format is implementation-independent.

use serde::{Deserialize, Serialize};

use flare_has::{BitrateLadder, Level};
use flare_lte::{FlowId, IntervalReport};
use flare_sim::units::Rate;

use crate::client::{ClientInfo, ClientPrefs};

/// Plugin → server: a video stream is starting on `flow_id`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClientHello {
    /// The flow carrying the video (dense cell-local index).
    pub flow_id: u32,
    /// Available encodings in kbps — the anonymized MPD projection.
    pub bitrates_kbps: Vec<u32>,
    /// Optional self-imposed rate cap in kbps.
    pub max_rate_kbps: Option<u32>,
    /// Optional floor on the assigned level.
    pub min_level: Option<u32>,
    /// Whether the client disclosed that the user is skimming.
    pub skimming: bool,
    /// Optional disclosed importance weight `β_u`.
    pub beta: Option<f64>,
    /// Optional disclosed screen parameter `θ_u` in kbps.
    pub theta_kbps: Option<u32>,
}

impl ClientHello {
    /// Builds the hello a plugin would send for `info`.
    pub fn from_client_info(info: &ClientInfo) -> Self {
        ClientHello {
            flow_id: info.flow().index() as u32,
            bitrates_kbps: info
                .ladder()
                .rates()
                .iter()
                .map(|r| r.as_kbps().round() as u32)
                .collect(),
            max_rate_kbps: info.prefs().max_rate.map(|r| r.as_kbps().round() as u32),
            min_level: info.prefs().min_level.map(|l| l.index() as u32),
            skimming: info.prefs().skimming,
            beta: info.prefs().beta,
            theta_kbps: info.prefs().theta.map(|r| r.as_kbps().round() as u32),
        }
    }

    /// Reconstructs the server-side [`ClientInfo`]. The caller supplies the
    /// authenticated [`FlowId`] (flow identity comes from the bearer, not
    /// from the message body).
    ///
    /// # Panics
    ///
    /// Panics if the bitrate list is not a valid ladder.
    pub fn into_client_info(self, flow: FlowId) -> ClientInfo {
        let ladder = BitrateLadder::from_kbps(&self.bitrates_kbps);
        let prefs = ClientPrefs {
            max_rate: self.max_rate_kbps.map(|k| Rate::from_kbps(f64::from(k))),
            min_level: self.min_level.map(|l| Level::new(l as usize)),
            skimming: self.skimming,
            beta: self.beta,
            theta: self.theta_kbps.map(|k| Rate::from_kbps(f64::from(k))),
        };
        ClientInfo::new(flow, ladder).with_prefs(prefs)
    }
}

/// Server → plugin (and PCEF): the decision for one BAI.
///
/// Assignments are *versioned*: `seq` counts the server's BAIs and
/// `issued_ms` timestamps the decision. Receivers reject any assignment
/// whose sequence number does not advance their view, so a message delayed
/// or reordered by an unreliable control plane can never roll a client back
/// to an older decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AssignmentMsg {
    /// The video flow being assigned.
    pub flow_id: u32,
    /// The ladder level the plugin must request next.
    pub level: u32,
    /// The GBR the PCEF installs, in kbps.
    pub gbr_kbps: u32,
    /// The server's BAI sequence number at issue time (monotonic per
    /// server; receivers reject non-advancing values).
    pub seq: u64,
    /// When the server issued the decision, in ms since simulation start.
    pub issued_ms: u64,
}

impl From<&crate::server::Assignment> for AssignmentMsg {
    fn from(a: &crate::server::Assignment) -> Self {
        AssignmentMsg {
            flow_id: a.flow.index() as u32,
            level: a.level.index() as u32,
            gbr_kbps: a.rate.as_kbps().round() as u32,
            seq: 0,
            issued_ms: 0,
        }
    }
}

/// One flow's counters inside a [`StatsReportMsg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowStatsMsg {
    /// The flow the counters describe.
    pub flow_id: u32,
    /// Resource blocks assigned during the interval (`n_u`).
    pub rbs: u64,
    /// Bytes transmitted during the interval (`b_u`).
    pub bytes: u64,
    /// The flow's iTbs operating point at the end of the interval.
    pub itbs: u8,
}

/// eNodeB → server: the periodic statistics report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatsReportMsg {
    /// Interval start, in ms since simulation start.
    pub start_ms: u64,
    /// Interval end, in ms since simulation start.
    pub end_ms: u64,
    /// Per-flow counters.
    pub flows: Vec<FlowStatsMsg>,
}

impl StatsReportMsg {
    /// The counters for one flow, if present in the report.
    pub fn flow(&self, flow_id: u32) -> Option<&FlowStatsMsg> {
        self.flows.iter().find(|f| f.flow_id == flow_id)
    }

    /// The covered interval's length in milliseconds.
    pub fn duration_ms(&self) -> u64 {
        self.end_ms.saturating_sub(self.start_ms)
    }
}

impl From<&IntervalReport> for StatsReportMsg {
    fn from(report: &IntervalReport) -> Self {
        StatsReportMsg {
            start_ms: report.start.as_millis(),
            end_ms: report.end.as_millis(),
            flows: report
                .flows
                .iter()
                .map(|f| FlowStatsMsg {
                    flow_id: f.flow.index() as u32,
                    rbs: f.rbs,
                    bytes: f.bytes.as_u64(),
                    itbs: f.itbs.index(),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flare_lte::channel::StaticChannel;
    use flare_lte::scheduler::ProportionalFair;
    use flare_lte::{CellConfig, ENodeB, FlowClass, Itbs};

    fn flow() -> FlowId {
        let mut enb = ENodeB::new(CellConfig::default(), Box::new(ProportionalFair::default()));
        enb.add_flow(FlowClass::Video, Box::new(StaticChannel::new(Itbs::new(5))))
    }

    #[test]
    fn hello_round_trips_through_client_info() {
        let prefs = ClientPrefs {
            max_rate: Some(Rate::from_kbps(800.0)),
            min_level: Some(Level::new(1)),
            skimming: false,
            beta: Some(12.0),
            theta: Some(Rate::from_kbps(300.0)),
        };
        let info = ClientInfo::new(flow(), BitrateLadder::testbed()).with_prefs(prefs);
        let hello = ClientHello::from_client_info(&info);
        // The message is value-semantic: an identical hello reconstructs an
        // identical server-side view.
        assert_eq!(hello, ClientHello::from_client_info(&info));
        let rebuilt = hello.into_client_info(flow());
        assert_eq!(rebuilt, info);
    }

    #[test]
    fn hello_contains_no_identifying_information() {
        let info = ClientInfo::new(flow(), BitrateLadder::testbed());
        let dump = format!("{:?}", ClientHello::from_client_info(&info));
        // The anonymized message carries bitrates only: no title/url fields
        // exist in the schema at all.
        assert!(!dump.contains("title"));
        assert!(!dump.contains("url"));
    }

    #[test]
    fn assignment_msg_converts() {
        let a = crate::server::Assignment {
            flow: flow(),
            level: Level::new(3),
            rate: Rate::from_kbps(790.0),
        };
        let msg = AssignmentMsg::from(&a);
        assert_eq!(msg.level, 3);
        assert_eq!(msg.gbr_kbps, 790);
        // The plain conversion carries no version; the server stamps seq
        // and issue time when it emits over the control plane.
        assert_eq!(msg.seq, 0);
        assert_eq!(msg.issued_ms, 0);
        assert_eq!(msg, AssignmentMsg::from(&a));
    }

    #[test]
    fn stats_report_converts() {
        use flare_sim::Time;
        let mut enb = ENodeB::new(CellConfig::default(), Box::new(ProportionalFair::default()));
        let f = enb.add_flow(FlowClass::Data, Box::new(StaticChannel::new(Itbs::new(5))));
        for ms in 0..100 {
            enb.step_tti(Time::from_millis(ms));
        }
        let report = enb.take_report(Time::from_millis(100));
        let msg = StatsReportMsg::from(&report);
        assert_eq!(msg.end_ms, 100);
        assert_eq!(msg.flows.len(), 1);
        assert_eq!(msg.flows[0].flow_id, f.index() as u32);
        assert!(msg.flows[0].rbs > 0);
        assert_eq!(msg, StatsReportMsg::from(&report));
    }
}
