//! FLARE — Fair and Link-Aware RatE adaptation (Im et al., ICDCS 2017).
//!
//! FLARE is a *coordinated* HAS system: a network-side entity (modelled on
//! the OMA OneAPI server) and a light-weight plugin in each client's video
//! player jointly decide every video flow's bitrate, once per bitrate
//! assignment interval (BAI). This crate is the paper's primary
//! contribution:
//!
//! * [`FlareConfig`] — the algorithm parameters (`α`, `δ`, `β_u`, `θ_u`,
//!   BAI length, exact vs. relaxed solver).
//! * [`OneApiServer`] — gathers per-flow MAC statistics and client
//!   information, builds the utility-maximization problem of equations
//!   (3)–(4), runs Algorithm 1 (solver + stability filter), and emits
//!   per-flow assignments (bitrate for the plugin, GBR for the PCEF/eNodeB).
//! * [`FlarePlugin`] — the UE-side rate adapter: it *always* requests the
//!   network-assigned encoding, eliminating the client/network
//!   mis-coordination of AVIS-style systems.
//! * [`PcrfRegistry`] — the policy function's view of which flows exist,
//!   giving the server the data-flow count `n`.
//! * [`messages`] — the (serializable) wire protocol between plugin and
//!   server, carrying only privacy-preserving information.
//!
//! # Example
//!
//! ```
//! use flare_core::{ClientInfo, FlareConfig, OneApiServer};
//! use flare_has::BitrateLadder;
//! use flare_lte::channel::StaticChannel;
//! use flare_lte::scheduler::TwoPhaseGbr;
//! use flare_lte::{CellConfig, ENodeB, FlowClass, Itbs};
//! use flare_sim::Time;
//!
//! let mut enb = ENodeB::new(CellConfig::default(), Box::new(TwoPhaseGbr::default()));
//! let flow = enb.add_flow(FlowClass::Video, Box::new(StaticChannel::new(Itbs::new(12))));
//!
//! let mut server = OneApiServer::new(FlareConfig::default());
//! server.register_video(ClientInfo::new(flow, BitrateLadder::testbed()));
//!
//! // One BAI of MAC activity, then assignment:
//! for ms in 0..10_000u64 {
//!     enb.step_tti(Time::from_millis(ms));
//! }
//! let report = enb.take_report(Time::from_secs(10));
//! let assignments = server.assign(&report, enb.link_adaptation(), enb.config().rbs_per_tti);
//! assert_eq!(assignments.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod algorithm;
mod client;
mod clock;
mod config;
pub mod control;
pub mod messages;
mod multicell;
mod pcrf;
mod plugin;
mod server;

pub use algorithm::{StabilityFilter, StabilityState};
pub use client::{ClientInfo, ClientPrefs};
pub use clock::{ManualClock, SolveClock, WallClock};
pub use config::{FlareConfig, RobustnessConfig, SolveMode};
pub use control::{ControlPlane, ControlPlaneStats, FaultModel, OutageWindow};
pub use multicell::{CellId, MultiCellServer};
pub use pcrf::PcrfRegistry;
pub use plugin::{FlarePlugin, ResilientPlugin};
pub use server::{Assignment, OneApiServer};
