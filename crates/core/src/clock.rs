//! Injectable monotonic clock for timing Algorithm 1's solves.
//!
//! The OneAPI server reports how long each per-BAI optimization took
//! (Figure 9's metric). Production uses wall time; tests inject a manual
//! clock so solve-time bookkeeping is observable without real elapsed time
//! and never makes a test flaky.

use std::time::{Duration, Instant};

/// A monotonic clock the server reads before and after each solve.
///
/// Readings are durations since an arbitrary fixed epoch; only differences
/// between readings are meaningful.
pub trait SolveClock: std::fmt::Debug {
    /// The current reading.
    fn now(&mut self) -> Duration;
}

/// The real wall clock (default; keeps Figure 9 honest).
#[derive(Debug, Clone)]
pub struct WallClock {
    epoch: Instant,
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock {
            epoch: Instant::now(),
        }
    }
}

impl SolveClock for WallClock {
    fn now(&mut self) -> Duration {
        self.epoch.elapsed()
    }
}

/// A deterministic clock that only moves when told to.
#[derive(Debug, Clone, Default)]
pub struct ManualClock {
    now: Duration,
}

impl ManualClock {
    /// A clock starting at zero.
    pub fn new() -> Self {
        ManualClock::default()
    }

    /// Moves the clock forward.
    pub fn advance(&mut self, by: Duration) {
        self.now += by;
    }
}

impl SolveClock for ManualClock {
    fn now(&mut self) -> Duration {
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotonic() {
        let mut c = WallClock::default();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_moves_only_on_advance() {
        let mut c = ManualClock::new();
        assert_eq!(c.now(), Duration::ZERO);
        assert_eq!(c.now(), Duration::ZERO);
        c.advance(Duration::from_millis(7));
        assert_eq!(c.now(), Duration::from_millis(7));
    }
}
