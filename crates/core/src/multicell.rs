//! One OneAPI server managing several base stations.
//!
//! Section II-A: "A single OneAPI server can manage multiple BSs, though
//! the bitrates are calculated independently for each network cell."
//! [`MultiCellServer`] is that front end: it routes client registrations
//! and per-cell statistics reports to independent per-cell optimizers, so
//! an operator deploys one logical server for a whole femtocell cluster.

use flare_lte::{FlowId, IntervalReport, LinkAdaptation};

use crate::client::ClientInfo;
use crate::config::FlareConfig;
use crate::server::{Assignment, OneApiServer};

/// Identifies one base station managed by the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CellId(pub u32);

impl std::fmt::Display for CellId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cell#{}", self.0)
    }
}

/// A OneAPI server front end multiplexing several cells.
///
/// Each cell gets its own [`OneApiServer`] (same configuration); the
/// per-BAI optimizations are independent, exactly as the paper specifies.
///
/// # Example
///
/// ```
/// use flare_core::{CellId, FlareConfig, MultiCellServer};
///
/// let mut server = MultiCellServer::new(FlareConfig::default());
/// server.add_cell(CellId(0));
/// server.add_cell(CellId(1));
/// assert_eq!(server.cell_count(), 2);
/// ```
#[derive(Debug)]
pub struct MultiCellServer {
    config: FlareConfig,
    cells: Vec<(CellId, OneApiServer)>,
}

impl MultiCellServer {
    /// Creates an empty multi-cell server.
    pub fn new(config: FlareConfig) -> Self {
        MultiCellServer {
            config,
            cells: Vec::new(),
        }
    }

    /// Registers a base station. Re-adding an existing id is a no-op.
    pub fn add_cell(&mut self, cell: CellId) {
        if !self.cells.iter().any(|(c, _)| *c == cell) {
            self.cells
                .push((cell, OneApiServer::new(self.config.clone())));
        }
    }

    /// Number of managed cells.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// The per-cell server, if the cell is managed.
    pub fn cell(&self, cell: CellId) -> Option<&OneApiServer> {
        self.cells.iter().find(|(c, _)| *c == cell).map(|(_, s)| s)
    }

    fn cell_mut(&mut self, cell: CellId) -> &mut OneApiServer {
        self.cells
            .iter_mut()
            .find(|(c, _)| *c == cell)
            .map(|(_, s)| s)
            .expect("cell not managed by this server")
    }

    /// Registers a video client in its serving cell.
    ///
    /// # Panics
    ///
    /// Panics if `cell` has not been added.
    pub fn register_video(&mut self, cell: CellId, info: ClientInfo) {
        self.cell_mut(cell).register_video(info);
    }

    /// Registers a data flow in its serving cell.
    ///
    /// # Panics
    ///
    /// Panics if `cell` has not been added.
    pub fn register_data(&mut self, cell: CellId, flow: FlowId) {
        self.cell_mut(cell).register_data(flow);
    }

    /// Runs one BAI of Algorithm 1 for one cell. Other cells are untouched
    /// — assignments are per-cell-independent by design.
    ///
    /// # Panics
    ///
    /// Panics if `cell` has not been added.
    pub fn assign(
        &mut self,
        cell: CellId,
        report: &IntervalReport,
        la: &LinkAdaptation,
        rbs_per_tti: u32,
    ) -> Vec<Assignment> {
        self.cell_mut(cell).assign(report, la, rbs_per_tti)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flare_has::BitrateLadder;
    use flare_lte::channel::StaticChannel;
    use flare_lte::scheduler::TwoPhaseGbr;
    use flare_lte::{CellConfig, ENodeB, FlowClass, Itbs};
    use flare_sim::units::ByteCount;
    use flare_sim::Time;

    fn make_cell(itbs: u8, n_video: usize) -> (ENodeB, Vec<FlowId>) {
        let mut enb = ENodeB::new(CellConfig::default(), Box::new(TwoPhaseGbr::default()));
        let flows = (0..n_video)
            .map(|_| {
                let f = enb.add_flow(
                    FlowClass::Video,
                    Box::new(StaticChannel::new(Itbs::new(itbs))),
                );
                enb.push_backlog(f, ByteCount::new(u64::MAX / 4));
                f
            })
            .collect();
        (enb, flows)
    }

    fn run_bai(enb: &mut ENodeB, bai: u64) -> IntervalReport {
        for ms in bai * 10_000..(bai + 1) * 10_000 {
            enb.step_tti(Time::from_millis(ms));
        }
        enb.take_report(Time::from_millis((bai + 1) * 10_000))
    }

    #[test]
    fn cells_are_managed_independently() {
        // Two cells with very different channels: the loaded cell's
        // assignments must not be influenced by the idle one.
        let (mut enb_a, flows_a) = make_cell(20, 2);
        let (mut enb_b, flows_b) = make_cell(2, 2);

        let mut multi = MultiCellServer::new(FlareConfig::default().with_delta(0));
        multi.add_cell(CellId(0));
        multi.add_cell(CellId(1));
        for &f in &flows_a {
            multi.register_video(CellId(0), ClientInfo::new(f, BitrateLadder::simulation()));
        }
        for &f in &flows_b {
            multi.register_video(CellId(1), ClientInfo::new(f, BitrateLadder::simulation()));
        }

        let mut solo = OneApiServer::new(FlareConfig::default().with_delta(0));
        for &f in &flows_a {
            solo.register_video(ClientInfo::new(f, BitrateLadder::simulation()));
        }

        for bai in 0..4 {
            let report_a = run_bai(&mut enb_a, bai);
            let report_b = run_bai(&mut enb_b, bai);
            let la = enb_a.link_adaptation().clone();
            let multi_a = multi.assign(CellId(0), &report_a, &la, 50);
            let solo_a = solo.assign(&report_a, &la, 50);
            assert_eq!(
                multi_a, solo_a,
                "cell 0 must behave like a standalone server"
            );
            let multi_b = multi.assign(CellId(1), &report_b, &la, 50);
            // The poor cell gets strictly lower levels than the good one.
            assert!(multi_b.iter().map(|a| a.level).max() <= multi_a.iter().map(|a| a.level).max());
        }
    }

    #[test]
    fn duplicate_add_is_a_noop() {
        let mut multi = MultiCellServer::new(FlareConfig::default());
        multi.add_cell(CellId(3));
        multi.add_cell(CellId(3));
        assert_eq!(multi.cell_count(), 1);
        assert!(multi.cell(CellId(3)).is_some());
        assert!(multi.cell(CellId(4)).is_none());
    }

    #[test]
    #[should_panic(expected = "not managed")]
    fn unknown_cell_panics() {
        let (_, flows) = make_cell(5, 1);
        let mut multi = MultiCellServer::new(FlareConfig::default());
        multi.register_video(
            CellId(9),
            ClientInfo::new(flows[0], BitrateLadder::testbed()),
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(CellId(7).to_string(), "cell#7");
    }
}
