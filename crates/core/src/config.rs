//! FLARE algorithm parameters.

use flare_sim::units::Rate;
use flare_sim::TimeDelta;

/// How the OneAPI server solves the per-BAI optimization (Figure 8 compares
/// the two).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolveMode {
    /// Solve the discrete problem directly (the paper's default, "we solve
    /// the exact bitrate optimization problem (3–4)").
    #[default]
    Exact,
    /// Solve the convex continuous relaxation of Proposition 1, then round
    /// each rate down to the nearest ladder entry.
    Relaxed,
}

/// Graceful-degradation parameters for an unreliable control plane.
///
/// The paper assumes the OneAPI coordination loop is lossless; these knobs
/// govern how each side degrades when statistics reports or assignments go
/// missing (dropped, delayed, or lost to a server outage). All horizons are
/// counted in BAIs, the loop's natural heartbeat.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RobustnessConfig {
    /// Plugin: BAIs without a fresh assignment before it falls back to its
    /// local conservative policy (`k`).
    pub stale_bais: u32,
    /// Plugin: consecutive BAIs with fresh assignments required before it
    /// rejoins coordination (hysteresis against flapping).
    pub rejoin_bais: u32,
    /// eNodeB: a GBR installed by the server is a *lease* expiring after
    /// this many BAIs without renewal (`l`), returning the reservation to
    /// the proportional-fair pool.
    pub lease_bais: u32,
    /// Server: clients whose statistics have been missing for this many
    /// consecutive BAIs are evicted (`m`).
    pub evict_bais: u32,
    /// Server: per-missed-BAI decay applied to a client's last observed
    /// link efficiency when its `(n_u, b_u)` counters are missing. Values
    /// below 1 make the server progressively more conservative about
    /// clients it cannot see.
    pub stats_aging: f64,
}

impl Default for RobustnessConfig {
    fn default() -> Self {
        RobustnessConfig {
            stale_bais: 3,
            rejoin_bais: 2,
            lease_bais: 3,
            evict_bais: 6,
            stats_aging: 0.7,
        }
    }
}

impl RobustnessConfig {
    /// Returns a copy with a different fallback threshold `k`.
    pub fn with_stale_bais(mut self, k: u32) -> Self {
        assert!(k > 0, "stale threshold must be at least one BAI");
        self.stale_bais = k;
        self
    }

    /// Returns a copy with a different rejoin hysteresis.
    pub fn with_rejoin_bais(mut self, n: u32) -> Self {
        self.rejoin_bais = n;
        self
    }

    /// Returns a copy with a different lease length `l`.
    pub fn with_lease_bais(mut self, l: u32) -> Self {
        assert!(l > 0, "lease must last at least one BAI");
        self.lease_bais = l;
        self
    }

    /// Returns a copy with a different eviction horizon `m`.
    pub fn with_evict_bais(mut self, m: u32) -> Self {
        assert!(m > 0, "eviction horizon must be at least one BAI");
        self.evict_bais = m;
        self
    }

    /// Returns a copy with a different aging factor.
    pub fn with_stats_aging(mut self, aging: f64) -> Self {
        assert!(
            aging.is_finite() && (0.0..=1.0).contains(&aging),
            "aging factor must be in [0, 1]"
        );
        self.stats_aging = aging;
        self
    }
}

/// Parameters of FLARE's coordination algorithm.
///
/// Defaults come from the paper's Table IV: `α = 1.0`, `δ = 4`,
/// `θ_u = 0.2 Mbps`, `β_u = 10`.
#[derive(Debug, Clone, PartialEq)]
pub struct FlareConfig {
    /// Relative priority of data flows versus video flows (`α` in (3);
    /// Figure 11 sweeps it from 0.25 to 4).
    pub alpha: f64,
    /// Stability knob: a recommended one-step increase to level `L+1`
    /// (1-based) is applied only after `δ · (L+1)` consecutive BAIs of the
    /// same recommendation (Figure 12 sweeps δ from 1 to 12).
    pub delta: u32,
    /// Default importance weight `β_u` for clients that don't send one.
    pub beta: f64,
    /// Default screen-size parameter `θ_u` for clients that don't send one.
    pub theta: Rate,
    /// Bitrate assignment interval `B`.
    pub bai: TimeDelta,
    /// Which solver backs Algorithm 1.
    pub solve_mode: SolveMode,
    /// Carry solver state across BAIs ([`flare_solver::WarmSolver`]).
    /// Bit-identical to cold solves — identical assignments, objectives,
    /// and work counters — so it defaults to on; exact-mode only (the
    /// relaxed solver has no warm path). Disable to time cold solves.
    pub warm_start: bool,
    /// Graceful degradation under control-plane faults. `None` (the
    /// default) reproduces the paper exactly: assignments persist forever
    /// and missing statistics simply skip a client.
    pub robustness: Option<RobustnessConfig>,
}

impl Default for FlareConfig {
    fn default() -> Self {
        FlareConfig {
            alpha: 1.0,
            delta: 4,
            beta: 10.0,
            theta: Rate::from_mbps(0.2),
            bai: TimeDelta::from_secs(10),
            solve_mode: SolveMode::Exact,
            warm_start: true,
            robustness: None,
        }
    }
}

impl FlareConfig {
    /// Returns a copy with a different `α`.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        assert!(
            alpha.is_finite() && alpha >= 0.0,
            "alpha must be non-negative"
        );
        self.alpha = alpha;
        self
    }

    /// Returns a copy with a different `δ`.
    pub fn with_delta(mut self, delta: u32) -> Self {
        self.delta = delta;
        self
    }

    /// Returns a copy with a different BAI.
    ///
    /// # Panics
    ///
    /// Panics if `bai` is zero.
    pub fn with_bai(mut self, bai: TimeDelta) -> Self {
        assert!(!bai.is_zero(), "BAI must be non-zero");
        self.bai = bai;
        self
    }

    /// Returns a copy with a different solver.
    pub fn with_solve_mode(mut self, mode: SolveMode) -> Self {
        self.solve_mode = mode;
        self
    }

    /// Returns a copy with warm-started solves enabled or disabled.
    pub fn with_warm_start(mut self, warm: bool) -> Self {
        self.warm_start = warm;
        self
    }

    /// Returns a copy with graceful degradation enabled.
    pub fn with_robustness(mut self, robustness: RobustnessConfig) -> Self {
        self.robustness = Some(robustness);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_iv() {
        let c = FlareConfig::default();
        assert_eq!(c.alpha, 1.0);
        assert_eq!(c.delta, 4);
        assert_eq!(c.beta, 10.0);
        assert_eq!(c.theta, Rate::from_mbps(0.2));
        assert_eq!(c.bai, TimeDelta::from_secs(10));
        assert_eq!(c.solve_mode, SolveMode::Exact);
    }

    #[test]
    fn builder_style_overrides() {
        let c = FlareConfig::default()
            .with_alpha(2.0)
            .with_delta(8)
            .with_bai(TimeDelta::from_secs(2))
            .with_solve_mode(SolveMode::Relaxed);
        assert_eq!(c.alpha, 2.0);
        assert_eq!(c.delta, 8);
        assert_eq!(c.bai, TimeDelta::from_secs(2));
        assert_eq!(c.solve_mode, SolveMode::Relaxed);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_bai_panics() {
        let _ = FlareConfig::default().with_bai(TimeDelta::ZERO);
    }

    #[test]
    fn robustness_defaults_and_builders() {
        assert!(FlareConfig::default().robustness.is_none());
        let r = RobustnessConfig::default()
            .with_stale_bais(2)
            .with_rejoin_bais(3)
            .with_lease_bais(4)
            .with_evict_bais(8)
            .with_stats_aging(0.5);
        assert_eq!(r.stale_bais, 2);
        assert_eq!(r.rejoin_bais, 3);
        assert_eq!(r.lease_bais, 4);
        assert_eq!(r.evict_bais, 8);
        assert_eq!(r.stats_aging, 0.5);
        let c = FlareConfig::default().with_robustness(r);
        assert_eq!(c.robustness, Some(r));
    }

    #[test]
    #[should_panic(expected = "lease")]
    fn zero_lease_panics() {
        let _ = RobustnessConfig::default().with_lease_bais(0);
    }
}
