//! FLARE algorithm parameters.

use flare_sim::units::Rate;
use flare_sim::TimeDelta;

/// How the OneAPI server solves the per-BAI optimization (Figure 8 compares
/// the two).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolveMode {
    /// Solve the discrete problem directly (the paper's default, "we solve
    /// the exact bitrate optimization problem (3–4)").
    #[default]
    Exact,
    /// Solve the convex continuous relaxation of Proposition 1, then round
    /// each rate down to the nearest ladder entry.
    Relaxed,
}

/// Parameters of FLARE's coordination algorithm.
///
/// Defaults come from the paper's Table IV: `α = 1.0`, `δ = 4`,
/// `θ_u = 0.2 Mbps`, `β_u = 10`.
#[derive(Debug, Clone, PartialEq)]
pub struct FlareConfig {
    /// Relative priority of data flows versus video flows (`α` in (3);
    /// Figure 11 sweeps it from 0.25 to 4).
    pub alpha: f64,
    /// Stability knob: a recommended one-step increase to level `L+1`
    /// (1-based) is applied only after `δ · (L+1)` consecutive BAIs of the
    /// same recommendation (Figure 12 sweeps δ from 1 to 12).
    pub delta: u32,
    /// Default importance weight `β_u` for clients that don't send one.
    pub beta: f64,
    /// Default screen-size parameter `θ_u` for clients that don't send one.
    pub theta: Rate,
    /// Bitrate assignment interval `B`.
    pub bai: TimeDelta,
    /// Which solver backs Algorithm 1.
    pub solve_mode: SolveMode,
}

impl Default for FlareConfig {
    fn default() -> Self {
        FlareConfig {
            alpha: 1.0,
            delta: 4,
            beta: 10.0,
            theta: Rate::from_mbps(0.2),
            bai: TimeDelta::from_secs(10),
            solve_mode: SolveMode::Exact,
        }
    }
}

impl FlareConfig {
    /// Returns a copy with a different `α`.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        assert!(alpha.is_finite() && alpha >= 0.0, "alpha must be non-negative");
        self.alpha = alpha;
        self
    }

    /// Returns a copy with a different `δ`.
    pub fn with_delta(mut self, delta: u32) -> Self {
        self.delta = delta;
        self
    }

    /// Returns a copy with a different BAI.
    ///
    /// # Panics
    ///
    /// Panics if `bai` is zero.
    pub fn with_bai(mut self, bai: TimeDelta) -> Self {
        assert!(!bai.is_zero(), "BAI must be non-zero");
        self.bai = bai;
        self
    }

    /// Returns a copy with a different solver.
    pub fn with_solve_mode(mut self, mode: SolveMode) -> Self {
        self.solve_mode = mode;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_iv() {
        let c = FlareConfig::default();
        assert_eq!(c.alpha, 1.0);
        assert_eq!(c.delta, 4);
        assert_eq!(c.beta, 10.0);
        assert_eq!(c.theta, Rate::from_mbps(0.2));
        assert_eq!(c.bai, TimeDelta::from_secs(10));
        assert_eq!(c.solve_mode, SolveMode::Exact);
    }

    #[test]
    fn builder_style_overrides() {
        let c = FlareConfig::default()
            .with_alpha(2.0)
            .with_delta(8)
            .with_bai(TimeDelta::from_secs(2))
            .with_solve_mode(SolveMode::Relaxed);
        assert_eq!(c.alpha, 2.0);
        assert_eq!(c.delta, 8);
        assert_eq!(c.bai, TimeDelta::from_secs(2));
        assert_eq!(c.solve_mode, SolveMode::Relaxed);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_bai_panics() {
        let _ = FlareConfig::default().with_bai(TimeDelta::ZERO);
    }
}
