//! The PCRF's flow registry.
//!
//! The Policy, Charging, and Rules Function "manages and monitors all flows
//! in the network; thus, it can provide the OneAPI server with all relevant
//! network information, such as the number of non-video flows" (Section
//! I-C). This registry is that view: which flows exist and what class they
//! are.

use flare_lte::{FlowClass, FlowId};

/// The PCRF's registry of flows in one cell.
#[derive(Debug, Clone, Default)]
pub struct PcrfRegistry {
    flows: Vec<(FlowId, FlowClass)>,
}

impl PcrfRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        PcrfRegistry::default()
    }

    /// Registers a flow; re-registering updates its class.
    pub fn register(&mut self, flow: FlowId, class: FlowClass) {
        match self.flows.iter_mut().find(|(f, _)| *f == flow) {
            Some(entry) => entry.1 = class,
            None => self.flows.push((flow, class)),
        }
    }

    /// Removes a flow (bearer teardown). Returns whether it was present.
    pub fn deregister(&mut self, flow: FlowId) -> bool {
        let before = self.flows.len();
        self.flows.retain(|(f, _)| *f != flow);
        self.flows.len() != before
    }

    /// Number of data flows (`n` in the objective).
    pub fn data_flow_count(&self) -> usize {
        self.flows
            .iter()
            .filter(|(_, c)| *c == FlowClass::Data)
            .count()
    }

    /// Number of video flows.
    pub fn video_flow_count(&self) -> usize {
        self.flows
            .iter()
            .filter(|(_, c)| *c == FlowClass::Video)
            .count()
    }

    /// Iterates over all registered flows.
    pub fn iter(&self) -> impl Iterator<Item = (FlowId, FlowClass)> + '_ {
        self.flows.iter().copied()
    }

    /// The class of a flow, if registered.
    pub fn class_of(&self, flow: FlowId) -> Option<FlowClass> {
        self.flows.iter().find(|(f, _)| *f == flow).map(|(_, c)| *c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flare_lte::channel::StaticChannel;
    use flare_lte::scheduler::ProportionalFair;
    use flare_lte::{CellConfig, ENodeB, Itbs};

    fn flows(n: usize) -> Vec<FlowId> {
        let mut enb = ENodeB::new(CellConfig::default(), Box::new(ProportionalFair::default()));
        (0..n)
            .map(|_| enb.add_flow(FlowClass::Data, Box::new(StaticChannel::new(Itbs::new(1)))))
            .collect()
    }

    #[test]
    fn counts_by_class() {
        let ids = flows(4);
        let mut reg = PcrfRegistry::new();
        reg.register(ids[0], FlowClass::Video);
        reg.register(ids[1], FlowClass::Data);
        reg.register(ids[2], FlowClass::Data);
        assert_eq!(reg.video_flow_count(), 1);
        assert_eq!(reg.data_flow_count(), 2);
        assert_eq!(reg.class_of(ids[1]), Some(FlowClass::Data));
        assert_eq!(reg.class_of(ids[3]), None);
    }

    #[test]
    fn reregistration_updates_class() {
        let ids = flows(1);
        let mut reg = PcrfRegistry::new();
        reg.register(ids[0], FlowClass::Data);
        reg.register(ids[0], FlowClass::Video);
        assert_eq!(reg.data_flow_count(), 0);
        assert_eq!(reg.video_flow_count(), 1);
        assert_eq!(reg.iter().count(), 1);
    }

    #[test]
    fn deregistration() {
        let ids = flows(2);
        let mut reg = PcrfRegistry::new();
        reg.register(ids[0], FlowClass::Data);
        assert!(reg.deregister(ids[0]));
        assert!(!reg.deregister(ids[0]));
        assert_eq!(reg.data_flow_count(), 0);
    }
}
