//! Algorithm 1's stability filter.
//!
//! The solver recommends a level `L*` each BAI (already capped at one step
//! above the previous level by constraint (4)). The filter then decides what
//! is *applied*:
//!
//! * a recommended increase `L* = L_prev + 1` is applied only after it has
//!   been recommended for `δ · (L_prev + 1)` consecutive BAIs (1-based
//!   level), so higher bitrates are entered ever more cautiously;
//! * otherwise `L = min(L_prev, L*)` — decreases take effect immediately,
//!   which is what protects the cell when several new clients arrive.

/// Per-flow filter state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StabilityState {
    /// The level applied in the previous BAI (0-based ladder index).
    pub level: usize,
    /// How many consecutive BAIs the solver has recommended `level + 1`.
    pub consecutive_up: u32,
}

impl StabilityState {
    /// Starts a flow at the given (usually lowest) level.
    pub fn starting_at(level: usize) -> Self {
        StabilityState {
            level,
            consecutive_up: 0,
        }
    }
}

/// The δ-controlled stability filter of Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StabilityFilter {
    delta: u32,
}

impl StabilityFilter {
    /// Creates a filter with stability knob `δ`.
    pub fn new(delta: u32) -> Self {
        StabilityFilter { delta }
    }

    /// BAIs of consecutive recommendation required before stepping up *to*
    /// 0-based level `target`: `δ · target`, so the first climb off the
    /// floor costs `δ` BAIs and each higher rung costs proportionally more
    /// — "a slower increase for higher bitrates" (Section II-B). A floor of
    /// one BAI applies (δ = 0 disables the filter — the ablation
    /// configuration).
    pub fn threshold(&self, target: usize) -> u32 {
        (self.delta * (target as u32).max(1)).max(1)
    }

    /// Feeds one BAI's recommendation `recommended` into `state`, returning
    /// the level to apply. `state` is updated in place.
    pub fn apply(&self, state: &mut StabilityState, recommended: usize) -> usize {
        if recommended == state.level + 1 {
            state.consecutive_up += 1;
            if state.consecutive_up >= self.threshold(recommended) {
                state.level = recommended;
                state.consecutive_up = 0;
            }
        } else {
            state.consecutive_up = 0;
            state.level = state.level.min(recommended);
        }
        state.level
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn threshold_scales_with_target_level() {
        let f = StabilityFilter::new(4);
        assert_eq!(f.threshold(1), 4);
        assert_eq!(f.threshold(2), 8);
        assert_eq!(f.threshold(5), 20);
        // Degenerate target 0 still needs one BAI.
        assert_eq!(f.threshold(0), 4);
    }

    #[test]
    fn delta_zero_disables_the_filter() {
        let f = StabilityFilter::new(0);
        let mut s = StabilityState::starting_at(0);
        assert_eq!(f.apply(&mut s, 1), 1);
        assert_eq!(f.apply(&mut s, 2), 2);
    }

    #[test]
    fn increase_needs_consecutive_recommendations() {
        let f = StabilityFilter::new(1);
        let mut s = StabilityState::starting_at(2);
        // Threshold to enter level 3 is 1*3 = 3 BAIs.
        for i in 1..3 {
            assert_eq!(f.apply(&mut s, 3), 2, "BAI {i} must hold");
        }
        assert_eq!(
            f.apply(&mut s, 3),
            3,
            "3rd consecutive recommendation applies"
        );
        assert_eq!(s.consecutive_up, 0, "counter resets after applying");
    }

    #[test]
    fn interruption_resets_the_counter() {
        let f = StabilityFilter::new(1);
        let mut s = StabilityState::starting_at(2);
        f.apply(&mut s, 3);
        f.apply(&mut s, 3);
        // An equal-level recommendation breaks the streak...
        assert_eq!(f.apply(&mut s, 2), 2);
        // ...so the climb starts over (threshold is 3 for target level 3).
        for _ in 0..2 {
            assert_eq!(f.apply(&mut s, 3), 2);
        }
        assert_eq!(f.apply(&mut s, 3), 3);
    }

    #[test]
    fn decreases_apply_immediately() {
        let f = StabilityFilter::new(4);
        let mut s = StabilityState::starting_at(5);
        assert_eq!(f.apply(&mut s, 1), 1, "drops are immediate");
        assert_eq!(s.level, 1);
    }

    #[test]
    fn equal_recommendation_holds() {
        let f = StabilityFilter::new(4);
        let mut s = StabilityState::starting_at(3);
        assert_eq!(f.apply(&mut s, 3), 3);
        assert_eq!(s.consecutive_up, 0);
    }

    proptest! {
        #[test]
        fn level_never_rises_faster_than_threshold(
            delta in 1u32..12,
            recs in prop::collection::vec(0usize..8, 1..200),
        ) {
            let f = StabilityFilter::new(delta);
            let mut s = StabilityState::starting_at(0);
            let mut ups_since = 0u32;
            let mut prev = s.level;
            for &r in &recs {
                // The solver never recommends more than one step above.
                let r = r.min(s.level + 1);
                let applied = f.apply(&mut s, r);
                prop_assert!(applied <= prev + 1, "never skip a level");
                if applied == prev + 1 {
                    // An increase must have taken at least threshold BAIs.
                    prop_assert!(ups_since + 1 >= f.threshold(applied));
                    ups_since = 0;
                } else if applied < prev {
                    ups_since = 0;
                } else {
                    ups_since += 1;
                }
                prev = applied;
            }
        }

        #[test]
        fn increase_is_admitted_exactly_at_threshold_and_never_early(
            delta in 1u32..12,
            recs in prop::collection::vec(0usize..8, 1..300),
        ) {
            // Sharper than the rate-limit property: an increase to level T
            // is applied on exactly the δ·T-th *consecutive* recommendation
            // of T — the counter alone decides, so admitting one BAI early
            // is impossible by construction and this pins it.
            let f = StabilityFilter::new(delta);
            let mut s = StabilityState::starting_at(0);
            let mut streak = 0u32;
            for &r in &recs {
                let r = r.min(s.level + 1);
                let before = s.level;
                let target = before + 1;
                streak = if r == target { streak + 1 } else { 0 };
                let applied = f.apply(&mut s, r);
                if applied == target {
                    prop_assert_eq!(
                        streak, f.threshold(target),
                        "level {} admitted at streak {} != threshold {}",
                        target, streak, f.threshold(target)
                    );
                    streak = 0;
                } else {
                    prop_assert!(
                        streak < f.threshold(target),
                        "streak {} reached threshold {} without admitting",
                        streak, f.threshold(target)
                    );
                }
            }
        }

        #[test]
        fn applied_level_never_exceeds_recommendation_history_max(
            recs in prop::collection::vec(0usize..8, 1..100),
        ) {
            let f = StabilityFilter::new(2);
            let mut s = StabilityState::starting_at(0);
            let mut max_rec = 0;
            for &r in &recs {
                let r = r.min(s.level + 1);
                max_rec = max_rec.max(r);
                let applied = f.apply(&mut s, r);
                prop_assert!(applied <= max_rec);
            }
        }
    }
}
