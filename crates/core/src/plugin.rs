//! The FLARE UE plugin: the client half of the coordination loop.

use flare_abr::{CoordinationMode, SharedAssignment, VersionedAssignment};
use flare_has::estimator::{HarmonicMean, ThroughputEstimator, ThroughputSample};
use flare_has::{AdaptContext, Level, RateAdapter};

/// The light-weight client-side plugin FLARE embeds in the HAS player.
///
/// Its adaptation policy is deliberately trivial: *always request the
/// network-assigned level* (clamped to the ladder). This is the half of the
/// paper's dual enforcement that AVIS lacks — the eNodeB guarantees the
/// assigned rate with a GBR while the plugin guarantees the player actually
/// requests it, so the two can never disagree.
///
/// Before the first assignment arrives the plugin streams at the lowest
/// encoding, which is also what bootstraps the MAC statistics the server's
/// optimizer needs.
///
/// # Example
///
/// ```
/// use flare_abr::SharedAssignment;
/// use flare_core::FlarePlugin;
/// use flare_has::RateAdapter;
///
/// let assignment = SharedAssignment::new();
/// let plugin = FlarePlugin::new(assignment.clone());
/// assert_eq!(plugin.name(), "flare");
/// ```
#[derive(Debug, Clone)]
pub struct FlarePlugin {
    assignment: SharedAssignment,
}

impl FlarePlugin {
    /// Creates a plugin reading assignments from `assignment` (the harness
    /// keeps the other clone and writes the OneAPI server's decisions into
    /// it).
    pub fn new(assignment: SharedAssignment) -> Self {
        FlarePlugin { assignment }
    }

    /// The assignment cell (for introspection/tests).
    pub fn assignment(&self) -> &SharedAssignment {
        &self.assignment
    }
}

impl RateAdapter for FlarePlugin {
    fn next_level(&mut self, ctx: &AdaptContext) -> Level {
        match self.assignment.get() {
            Some(level) => ctx.ladder.clamp(level),
            None => ctx.ladder.lowest(),
        }
    }

    fn name(&self) -> &'static str {
        "flare"
    }
}

/// The FLARE plugin hardened for an unreliable control plane.
///
/// While assignments are fresh it behaves exactly like [`FlarePlugin`]:
/// request the network-assigned level, nothing else. When its
/// [`VersionedAssignment`] cell reports staleness (no fresh assignment for
/// `k` BAIs — the server crashed, messages are being dropped), it falls
/// back to a conservative local policy built from the same machinery the
/// estimator-driven baselines use:
///
/// * a harmonic-mean throughput estimate with a safety factor picks the
///   candidate level (robust to outlier-fast segments, like FESTIVE);
/// * the candidate is **capped at the last assigned level** — the network's
///   last word is also the last GBR the eNodeB leased, so requesting above
///   it would demand bandwidth nobody reserved;
/// * a thin buffer (< one segment) forces the lowest encoding outright.
///
/// Rejoin hysteresis lives in the shared cell: coordination resumes only
/// after `rejoin_bais` consecutive BAIs with fresh assignments, so a
/// flapping control plane cannot whipsaw the player.
#[derive(Debug, Clone)]
pub struct ResilientPlugin {
    assignment: VersionedAssignment,
    estimator: HarmonicMean,
    safety: f64,
}

impl ResilientPlugin {
    /// FESTIVE's estimation window and safety factor — conservative by
    /// construction.
    const WINDOW: usize = 5;
    const SAFETY: f64 = 0.8;

    /// Creates a plugin reading versioned assignments from `assignment`
    /// (the harness keeps the other clone: it installs delivered
    /// assignments and ticks BAI boundaries).
    pub fn new(assignment: VersionedAssignment) -> Self {
        ResilientPlugin {
            assignment,
            estimator: HarmonicMean::new(Self::WINDOW),
            safety: Self::SAFETY,
        }
    }

    /// The shared assignment cell (for introspection/tests).
    pub fn assignment(&self) -> &VersionedAssignment {
        &self.assignment
    }

    /// The level the fallback policy would pick in `ctx`, ignoring mode.
    fn fallback_level(&self, ctx: &AdaptContext) -> Level {
        // The last assignment is the last rate anyone leased for us; never
        // request above it.
        let cap = match self.assignment.level() {
            Some(level) => ctx.ladder.clamp(level),
            None => ctx.ladder.lowest(),
        };
        if ctx.buffer_level < ctx.segment_duration {
            return ctx.ladder.lowest();
        }
        let candidate = match self.estimator.estimate() {
            Some(est) => ctx.ladder.highest_at_most_or_lowest(est * self.safety),
            None => ctx.ladder.lowest(),
        };
        candidate.min(cap)
    }
}

impl RateAdapter for ResilientPlugin {
    fn on_download_complete(&mut self, sample: flare_has::DownloadSample) {
        // Keep the estimator warm even while coordinated, so fallback
        // engages with real data instead of a cold start.
        self.estimator.record(ThroughputSample {
            bytes: sample.bytes,
            elapsed: sample.elapsed,
        });
    }

    fn next_level(&mut self, ctx: &AdaptContext) -> Level {
        match self.assignment.mode() {
            CoordinationMode::Coordinated => match self.assignment.level() {
                Some(level) => ctx.ladder.clamp(level),
                None => ctx.ladder.lowest(),
            },
            CoordinationMode::Fallback => self.fallback_level(ctx),
        }
    }

    fn name(&self) -> &'static str {
        "flare-resilient"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flare_has::BitrateLadder;
    use flare_sim::{Time, TimeDelta};

    fn ctx<'a>(ladder: &'a BitrateLadder) -> AdaptContext<'a> {
        AdaptContext {
            now: Time::ZERO,
            ladder,
            buffer_level: TimeDelta::from_secs(20),
            last_level: Some(Level::new(1)),
            segment_duration: TimeDelta::from_secs(10),
            segment_index: 3,
        }
    }

    #[test]
    fn unassigned_plugin_streams_lowest() {
        let ladder = BitrateLadder::testbed();
        let mut plugin = FlarePlugin::new(SharedAssignment::new());
        assert_eq!(plugin.next_level(&ctx(&ladder)), Level::new(0));
    }

    #[test]
    fn follows_assignments_exactly() {
        let ladder = BitrateLadder::testbed();
        let cell = SharedAssignment::new();
        let mut plugin = FlarePlugin::new(cell.clone());
        cell.set(Level::new(3));
        assert_eq!(plugin.next_level(&ctx(&ladder)), Level::new(3));
        cell.set(Level::new(6));
        assert_eq!(plugin.next_level(&ctx(&ladder)), Level::new(6));
    }

    #[test]
    fn out_of_range_assignments_clamp() {
        let ladder = BitrateLadder::simulation();
        let cell = SharedAssignment::new();
        let mut plugin = FlarePlugin::new(cell.clone());
        cell.set(Level::new(99));
        assert_eq!(plugin.next_level(&ctx(&ladder)), ladder.highest());
    }

    use flare_has::DownloadSample;
    use flare_sim::units::{ByteCount, Rate};

    /// A download sample whose observed throughput is `rate`.
    fn sample(rate: Rate) -> DownloadSample {
        let elapsed = TimeDelta::from_secs(1);
        DownloadSample {
            completed_at: Time::ZERO,
            level: Level::new(0),
            bytes: ByteCount::new((rate.as_bps() / 8.0) as u64),
            elapsed,
        }
    }

    #[test]
    fn resilient_follows_assignments_while_coordinated() {
        let ladder = BitrateLadder::testbed();
        let cell = VersionedAssignment::new(3, 2);
        let mut plugin = ResilientPlugin::new(cell.clone());
        assert_eq!(plugin.next_level(&ctx(&ladder)), ladder.lowest());
        cell.install(1, 0, Level::new(4));
        assert_eq!(plugin.next_level(&ctx(&ladder)), Level::new(4));
    }

    #[test]
    fn fallback_caps_at_last_assigned_level() {
        let ladder = BitrateLadder::testbed();
        let cell = VersionedAssignment::new(1, 1);
        let mut plugin = ResilientPlugin::new(cell.clone());
        cell.install(1, 0, Level::new(2));
        cell.end_bai();
        // Plenty of measured throughput — without the cap this would pick a
        // high level.
        plugin.on_download_complete(sample(ladder.rate(ladder.highest())));
        cell.end_bai(); // silent -> fallback
        assert_eq!(cell.mode(), CoordinationMode::Fallback);
        assert!(plugin.next_level(&ctx(&ladder)) <= Level::new(2));
    }

    #[test]
    fn fallback_respects_estimator_below_cap() {
        let ladder = BitrateLadder::testbed();
        let cell = VersionedAssignment::new(1, 1);
        let mut plugin = ResilientPlugin::new(cell.clone());
        cell.install(1, 0, ladder.highest());
        cell.end_bai();
        cell.end_bai(); // silent -> fallback
                        // Throughput only supports a bit more than the lowest encoding.
        let low = ladder.rate(Level::new(1));
        plugin.on_download_complete(sample(low));
        let picked = plugin.next_level(&ctx(&ladder));
        assert!(picked <= ladder.highest_at_most_or_lowest(low));
    }

    #[test]
    fn fallback_with_thin_buffer_streams_lowest() {
        let ladder = BitrateLadder::testbed();
        let cell = VersionedAssignment::new(1, 1);
        let mut plugin = ResilientPlugin::new(cell.clone());
        cell.install(1, 0, ladder.highest());
        cell.end_bai();
        cell.end_bai(); // silent -> fallback
        plugin.on_download_complete(sample(ladder.rate(ladder.highest())));
        let mut c = ctx(&ladder);
        c.buffer_level = TimeDelta::from_secs(3); // < one 10 s segment
        assert_eq!(plugin.next_level(&c), ladder.lowest());
    }

    #[test]
    fn fallback_without_estimate_streams_lowest() {
        let ladder = BitrateLadder::testbed();
        let cell = VersionedAssignment::new(1, 1);
        let mut plugin = ResilientPlugin::new(cell.clone());
        cell.install(1, 0, ladder.highest());
        cell.end_bai();
        cell.end_bai(); // silent -> fallback
        assert_eq!(plugin.next_level(&ctx(&ladder)), ladder.lowest());
    }
}
