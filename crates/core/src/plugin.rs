//! The FLARE UE plugin: the client half of the coordination loop.

use flare_abr::SharedAssignment;
use flare_has::{AdaptContext, Level, RateAdapter};

/// The light-weight client-side plugin FLARE embeds in the HAS player.
///
/// Its adaptation policy is deliberately trivial: *always request the
/// network-assigned level* (clamped to the ladder). This is the half of the
/// paper's dual enforcement that AVIS lacks — the eNodeB guarantees the
/// assigned rate with a GBR while the plugin guarantees the player actually
/// requests it, so the two can never disagree.
///
/// Before the first assignment arrives the plugin streams at the lowest
/// encoding, which is also what bootstraps the MAC statistics the server's
/// optimizer needs.
///
/// # Example
///
/// ```
/// use flare_abr::SharedAssignment;
/// use flare_core::FlarePlugin;
/// use flare_has::RateAdapter;
///
/// let assignment = SharedAssignment::new();
/// let plugin = FlarePlugin::new(assignment.clone());
/// assert_eq!(plugin.name(), "flare");
/// ```
#[derive(Debug, Clone)]
pub struct FlarePlugin {
    assignment: SharedAssignment,
}

impl FlarePlugin {
    /// Creates a plugin reading assignments from `assignment` (the harness
    /// keeps the other clone and writes the OneAPI server's decisions into
    /// it).
    pub fn new(assignment: SharedAssignment) -> Self {
        FlarePlugin { assignment }
    }

    /// The assignment cell (for introspection/tests).
    pub fn assignment(&self) -> &SharedAssignment {
        &self.assignment
    }
}

impl RateAdapter for FlarePlugin {
    fn next_level(&mut self, ctx: &AdaptContext) -> Level {
        match self.assignment.get() {
            Some(level) => ctx.ladder.clamp(level),
            None => ctx.ladder.lowest(),
        }
    }

    fn name(&self) -> &'static str {
        "flare"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flare_has::BitrateLadder;
    use flare_sim::{Time, TimeDelta};

    fn ctx<'a>(ladder: &'a BitrateLadder) -> AdaptContext<'a> {
        AdaptContext {
            now: Time::ZERO,
            ladder,
            buffer_level: TimeDelta::from_secs(20),
            last_level: Some(Level::new(1)),
            segment_duration: TimeDelta::from_secs(10),
            segment_index: 3,
        }
    }

    #[test]
    fn unassigned_plugin_streams_lowest() {
        let ladder = BitrateLadder::testbed();
        let mut plugin = FlarePlugin::new(SharedAssignment::new());
        assert_eq!(plugin.next_level(&ctx(&ladder)), Level::new(0));
    }

    #[test]
    fn follows_assignments_exactly() {
        let ladder = BitrateLadder::testbed();
        let cell = SharedAssignment::new();
        let mut plugin = FlarePlugin::new(cell.clone());
        cell.set(Level::new(3));
        assert_eq!(plugin.next_level(&ctx(&ladder)), Level::new(3));
        cell.set(Level::new(6));
        assert_eq!(plugin.next_level(&ctx(&ladder)), Level::new(6));
    }

    #[test]
    fn out_of_range_assignments_clamp() {
        let ladder = BitrateLadder::simulation();
        let cell = SharedAssignment::new();
        let mut plugin = FlarePlugin::new(cell.clone());
        cell.set(Level::new(99));
        assert_eq!(plugin.next_level(&ctx(&ladder)), ladder.highest());
    }
}
