//! A fault-injectable control plane for the OneAPI coordination loop.
//!
//! The paper treats the plugin ↔ server ↔ eNodeB message exchange as
//! lossless and instantaneous. Real deployments run it over a mobile
//! operator's signalling path: messages get dropped, delayed, reordered,
//! and the server itself goes away for maintenance windows. This module
//! models that path explicitly:
//!
//! * [`FaultModel`] — per-message drop probability, fixed delay plus
//!   uniform jitter, reordering (a message held back long enough for its
//!   successor to overtake it), and scheduled server outage windows.
//! * [`ControlPlane`] — two delay queues (uplink statistics reports,
//!   downlink assignments) through which every message passes. Fault
//!   decisions come from a dedicated seeded RNG stream, so a faulty run is
//!   exactly reproducible and fault randomness never perturbs the
//!   simulation's other stochastic processes.
//!
//! With [`FaultModel::perfect`] every message is delivered unmodified at
//! the instant it is sent and the RNG is never consulted — the loop behaves
//! exactly as the paper assumes.

use flare_sim::rng::stream;
use flare_sim::{Time, TimeDelta};
use flare_trace::{Category, TraceHandle};
use rand::Rng;

use crate::messages::{AssignmentMsg, StatsReportMsg};

/// A closed interval of simulation time during which the OneAPI server is
/// unreachable (crash, failover, maintenance).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutageWindow {
    /// First instant of the outage.
    pub start: Time,
    /// First instant after the outage.
    pub end: Time,
}

impl OutageWindow {
    /// An outage covering `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `end <= start`.
    pub fn new(start: Time, end: Time) -> Self {
        assert!(end > start, "outage window must have positive length");
        OutageWindow { start, end }
    }

    /// Whether `now` falls inside the window.
    pub fn contains(&self, now: Time) -> bool {
        now >= self.start && now < self.end
    }
}

/// Describes how the control plane misbehaves.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultModel {
    /// Probability that any individual message is silently dropped.
    pub drop_prob: f64,
    /// Fixed one-way delivery delay applied to every message.
    pub delay: TimeDelta,
    /// Extra uniformly distributed delay in `[0, jitter]` per message.
    pub jitter: TimeDelta,
    /// Probability that a message is held back by [`FaultModel::reorder_delay`],
    /// letting later messages overtake it.
    pub reorder_prob: f64,
    /// How long a reordered message is held back (default: one 10 s BAI, so
    /// the *next* assignment always overtakes it).
    pub reorder_delay: TimeDelta,
    /// Scheduled windows during which the server is down: uplink messages
    /// due in a window are lost, and no assignments are issued.
    pub outages: Vec<OutageWindow>,
}

impl Default for FaultModel {
    fn default() -> Self {
        FaultModel::perfect()
    }
}

impl FaultModel {
    /// The lossless, instantaneous control plane the paper assumes.
    pub fn perfect() -> Self {
        FaultModel {
            drop_prob: 0.0,
            delay: TimeDelta::ZERO,
            jitter: TimeDelta::ZERO,
            reorder_prob: 0.0,
            reorder_delay: TimeDelta::from_secs(10),
            outages: Vec::new(),
        }
    }

    /// Returns a copy with a per-message drop probability.
    pub fn with_drop_prob(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.drop_prob = p;
        self
    }

    /// Returns a copy with a fixed delivery delay.
    pub fn with_delay(mut self, delay: TimeDelta) -> Self {
        self.delay = delay;
        self
    }

    /// Returns a copy with uniform per-message jitter in `[0, jitter]`.
    pub fn with_jitter(mut self, jitter: TimeDelta) -> Self {
        self.jitter = jitter;
        self
    }

    /// Returns a copy with a reordering probability.
    pub fn with_reorder_prob(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.reorder_prob = p;
        self
    }

    /// Returns a copy with a different hold-back time for reordered
    /// messages.
    pub fn with_reorder_delay(mut self, delay: TimeDelta) -> Self {
        self.reorder_delay = delay;
        self
    }

    /// Returns a copy with an additional server outage window.
    pub fn with_outage(mut self, window: OutageWindow) -> Self {
        self.outages.push(window);
        self
    }

    /// Whether this model never alters any message.
    pub fn is_perfect(&self) -> bool {
        self.drop_prob == 0.0
            && self.delay.is_zero()
            && self.jitter.is_zero()
            && self.reorder_prob == 0.0
            && self.outages.is_empty()
    }

    /// Whether the server is inside an outage window at `now`.
    pub fn in_outage(&self, now: Time) -> bool {
        self.outages.iter().any(|w| w.contains(now))
    }
}

/// Delivery and loss counters, for experiment telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ControlPlaneStats {
    /// Messages handed to receivers.
    pub delivered: u64,
    /// Messages dropped by the loss process.
    pub dropped: u64,
    /// Uplink messages lost because they arrived during a server outage.
    pub lost_to_outage: u64,
    /// Messages that were held back by the reordering process.
    pub reordered: u64,
}

#[derive(Debug)]
struct InFlight<M> {
    deliver_at: Time,
    /// Tie-breaker preserving send order among equal delivery times.
    sent_seq: u64,
    msg: M,
}

/// The message path between eNodeB/plugins and the OneAPI server.
///
/// All randomness comes from the seeded `"control"` RNG stream, so two runs
/// with the same seed and fault model see identical fault patterns.
#[derive(Debug)]
pub struct ControlPlane {
    faults: FaultModel,
    rng: rand::rngs::SmallRng,
    uplink: Vec<InFlight<StatsReportMsg>>,
    downlink: Vec<InFlight<AssignmentMsg>>,
    sent: u64,
    stats: ControlPlaneStats,
    trace: TraceHandle,
}

impl ControlPlane {
    /// A control plane with the given fault model, seeded from the
    /// simulation's master seed.
    pub fn new(faults: FaultModel, seed: u64) -> Self {
        ControlPlane {
            faults,
            rng: stream(seed, "control", 0),
            uplink: Vec::new(),
            downlink: Vec::new(),
            sent: 0,
            stats: ControlPlaneStats::default(),
            trace: TraceHandle::disabled(),
        }
    }

    /// Returns this control plane with a trace recorder attached. Message
    /// fates become [`Category::Control`] events, and the delivery/loss
    /// counters are mirrored into the registry (`control.*`). Trace
    /// recording never consults the fault RNG, so attaching a recorder
    /// cannot perturb the fault pattern.
    pub fn with_trace(mut self, trace: TraceHandle) -> Self {
        self.trace = trace;
        self
    }

    /// The active fault model.
    pub fn faults(&self) -> &FaultModel {
        &self.faults
    }

    /// Delivery/loss counters so far.
    pub fn stats(&self) -> ControlPlaneStats {
        self.stats
    }

    /// Whether the server is unreachable at `now`.
    pub fn in_outage(&self, now: Time) -> bool {
        self.faults.in_outage(now)
    }

    /// Draws the fate of one message: `None` when dropped, otherwise its
    /// delivery time. The RNG is only consulted for faults that are
    /// actually enabled, so a perfect model stays RNG-silent.
    fn fate(&mut self, now: Time, link: &'static str) -> Option<Time> {
        if self.faults.drop_prob > 0.0 && self.rng.gen_bool(self.faults.drop_prob) {
            self.stats.dropped += 1;
            self.trace.incr("control.dropped", 1);
            self.trace.record(now, Category::Control, "drop", |e| {
                e.str("link", link);
            });
            return None;
        }
        let mut at = now + self.faults.delay;
        if !self.faults.jitter.is_zero() {
            let extra = self.rng.gen_range(0..=self.faults.jitter.as_millis());
            at += TimeDelta::from_millis(extra);
        }
        let mut reordered = false;
        if self.faults.reorder_prob > 0.0 && self.rng.gen_bool(self.faults.reorder_prob) {
            self.stats.reordered += 1;
            self.trace.incr("control.reordered", 1);
            at += self.faults.reorder_delay;
            reordered = true;
        }
        self.trace
            .record_debug(now, Category::Control, "sent", |e| {
                e.str("link", link)
                    .u64("delay_ms", at.saturating_since(now).as_millis())
                    .bool("reordered", reordered);
            });
        Some(at)
    }

    /// eNodeB → server: submits one statistics report at time `now`.
    pub fn send_report(&mut self, now: Time, msg: StatsReportMsg) {
        if let Some(deliver_at) = self.fate(now, "up") {
            self.sent += 1;
            self.uplink.push(InFlight {
                deliver_at,
                sent_seq: self.sent,
                msg,
            });
        }
    }

    /// Server side: receives every report due by `now`, in delivery order.
    ///
    /// Reports due while the server is inside an outage window are lost
    /// (the server was not there to take the connection).
    pub fn recv_reports(&mut self, now: Time) -> Vec<StatsReportMsg> {
        let due = Self::take_due(&mut self.uplink, now);
        let mut out = Vec::with_capacity(due.len());
        for m in due {
            if self.faults.in_outage(m.deliver_at) {
                self.stats.lost_to_outage += 1;
                self.trace.incr("control.lost_to_outage", 1);
                self.trace
                    .record(now, Category::Control, "outage_loss", |e| {
                        e.str("link", "up");
                    });
            } else {
                self.stats.delivered += 1;
                self.trace.incr("control.delivered", 1);
                out.push(m.msg);
            }
        }
        out
    }

    /// Server → plugins/PCEF: submits one BAI's assignments at time `now`.
    pub fn send_assignments(&mut self, now: Time, msgs: Vec<AssignmentMsg>) {
        for msg in msgs {
            if let Some(deliver_at) = self.fate(now, "down") {
                self.sent += 1;
                self.downlink.push(InFlight {
                    deliver_at,
                    sent_seq: self.sent,
                    msg,
                });
            }
        }
    }

    /// Client side: receives every assignment due by `now`, in delivery
    /// order (reordered messages genuinely arrive late).
    pub fn recv_assignments(&mut self, now: Time) -> Vec<AssignmentMsg> {
        let due = Self::take_due(&mut self.downlink, now);
        self.stats.delivered += due.len() as u64;
        self.trace.incr("control.delivered", due.len() as u64);
        due.into_iter().map(|m| m.msg).collect()
    }

    /// Messages still in flight on both links (for tests).
    pub fn in_flight(&self) -> usize {
        self.uplink.len() + self.downlink.len()
    }

    fn take_due<M>(queue: &mut Vec<InFlight<M>>, now: Time) -> Vec<InFlight<M>> {
        let mut due: Vec<InFlight<M>> = Vec::new();
        let mut i = 0;
        while i < queue.len() {
            if queue[i].deliver_at <= now {
                due.push(queue.swap_remove(i));
            } else {
                i += 1;
            }
        }
        due.sort_by_key(|m| (m.deliver_at, m.sent_seq));
        due
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(end_ms: u64) -> StatsReportMsg {
        StatsReportMsg {
            start_ms: end_ms.saturating_sub(10_000),
            end_ms,
            flows: vec![],
        }
    }

    fn assignment(seq: u64) -> AssignmentMsg {
        AssignmentMsg {
            flow_id: 0,
            level: 1,
            gbr_kbps: 500,
            seq,
            issued_ms: seq * 10_000,
        }
    }

    #[test]
    fn perfect_plane_delivers_immediately_in_order() {
        let mut cp = ControlPlane::new(FaultModel::perfect(), 1);
        cp.send_report(Time::from_secs(10), report(10_000));
        let got = cp.recv_reports(Time::from_secs(10));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].end_ms, 10_000);
        cp.send_assignments(Time::from_secs(10), vec![assignment(1), assignment(2)]);
        let got = cp.recv_assignments(Time::from_secs(10));
        assert_eq!(got.iter().map(|a| a.seq).collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(cp.in_flight(), 0);
        assert_eq!(cp.stats().dropped, 0);
    }

    #[test]
    fn full_loss_drops_everything() {
        let mut cp = ControlPlane::new(FaultModel::perfect().with_drop_prob(1.0), 1);
        cp.send_report(Time::ZERO, report(0));
        cp.send_assignments(Time::ZERO, vec![assignment(1)]);
        assert!(cp.recv_reports(Time::from_secs(100)).is_empty());
        assert!(cp.recv_assignments(Time::from_secs(100)).is_empty());
        assert_eq!(cp.stats().dropped, 2);
        assert_eq!(cp.in_flight(), 0);
    }

    #[test]
    fn delay_holds_messages_until_due() {
        let fm = FaultModel::perfect().with_delay(TimeDelta::from_secs(3));
        let mut cp = ControlPlane::new(fm, 1);
        cp.send_assignments(Time::from_secs(10), vec![assignment(1)]);
        assert!(cp.recv_assignments(Time::from_secs(12)).is_empty());
        assert_eq!(cp.recv_assignments(Time::from_secs(13)).len(), 1);
    }

    #[test]
    fn reordered_assignment_arrives_after_its_successor() {
        // Hold back every message by one BAI: the assignment sent at t=10
        // arrives after the one sent at t=20.
        let fm = FaultModel::perfect()
            .with_reorder_prob(1.0)
            .with_reorder_delay(TimeDelta::from_secs(10));
        let mut cp = ControlPlane::new(fm, 1);
        cp.send_assignments(Time::from_secs(10), vec![assignment(1)]);
        cp.send_assignments(Time::from_secs(20), vec![assignment(2)]);
        let at20 = cp.recv_assignments(Time::from_secs(20));
        assert_eq!(at20.iter().map(|a| a.seq).collect::<Vec<_>>(), vec![1]);
        let at30 = cp.recv_assignments(Time::from_secs(30));
        assert_eq!(at30.iter().map(|a| a.seq).collect::<Vec<_>>(), vec![2]);
        assert_eq!(cp.stats().reordered, 2);
    }

    #[test]
    fn outage_swallows_uplink_reports() {
        let fm = FaultModel::perfect()
            .with_outage(OutageWindow::new(Time::from_secs(10), Time::from_secs(30)));
        let mut cp = ControlPlane::new(fm, 1);
        assert!(!cp.in_outage(Time::from_secs(9)));
        assert!(cp.in_outage(Time::from_secs(10)));
        assert!(cp.in_outage(Time::from_secs(29)));
        assert!(!cp.in_outage(Time::from_secs(30)));
        cp.send_report(Time::from_secs(20), report(20_000));
        assert!(cp.recv_reports(Time::from_secs(20)).is_empty());
        assert_eq!(cp.stats().lost_to_outage, 1);
        // After the outage, fresh reports flow again.
        cp.send_report(Time::from_secs(30), report(30_000));
        assert_eq!(cp.recv_reports(Time::from_secs(30)).len(), 1);
    }

    #[test]
    fn faulty_plane_is_deterministic_per_seed() {
        let fm = FaultModel::perfect()
            .with_drop_prob(0.3)
            .with_jitter(TimeDelta::from_millis(500));
        let run = |seed: u64| {
            let mut cp = ControlPlane::new(fm.clone(), seed);
            for bai in 0..50u64 {
                cp.send_assignments(Time::from_secs(bai * 10), vec![assignment(bai)]);
            }
            let got = cp.recv_assignments(Time::from_secs(1000));
            (got.iter().map(|a| a.seq).collect::<Vec<_>>(), cp.stats())
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).0, run(8).0, "different seeds see different faults");
    }

    #[test]
    fn perfect_model_reports_itself() {
        assert!(FaultModel::perfect().is_perfect());
        assert!(!FaultModel::perfect().with_drop_prob(0.1).is_perfect());
        assert!(!FaultModel::perfect()
            .with_outage(OutageWindow::new(Time::ZERO, Time::from_secs(1)))
            .is_perfect());
    }

    #[test]
    #[should_panic(expected = "positive length")]
    fn empty_outage_panics() {
        let _ = OutageWindow::new(Time::from_secs(5), Time::from_secs(5));
    }
}
