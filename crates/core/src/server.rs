//! The OneAPI server: FLARE's network-side brain.

use std::time::{Duration, Instant};

use flare_has::Level;
use flare_lte::{FlowClass, FlowId, IntervalReport, LinkAdaptation};
use flare_sim::units::Rate;
use flare_solver::{
    round_down, solve_discrete, solve_relaxed, FlowSpec, ProblemSpec,
};

use crate::algorithm::{StabilityFilter, StabilityState};
use crate::client::ClientInfo;
use crate::config::{FlareConfig, SolveMode};
use crate::pcrf::PcrfRegistry;

/// One BAI's decision for one video flow: the level the plugin must request
/// and the GBR the PCEF/eNodeB must enforce (they are the same rate — that
/// equality *is* FLARE's dual enforcement).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Assignment {
    /// The video flow.
    pub flow: FlowId,
    /// Ladder level the plugin will request.
    pub level: Level,
    /// The level's bitrate, installed as the flow's GBR.
    pub rate: Rate,
}

#[derive(Debug, Clone)]
struct ClientEntry {
    info: ClientInfo,
    state: StabilityState,
}

/// FLARE's network-side controller.
///
/// Once per BAI, feed it the cell's [`IntervalReport`]; it rebuilds the
/// utility-maximization problem (3)–(4) from the fresh `(n_u, b_u)`
/// counters, solves it (exactly or via the convex relaxation), pushes the
/// recommendations through Algorithm 1's δ stability filter, and returns the
/// assignments to enforce.
#[derive(Debug)]
pub struct OneApiServer {
    config: FlareConfig,
    filter: StabilityFilter,
    clients: Vec<ClientEntry>,
    pcrf: PcrfRegistry,
    last_solve_time: Option<Duration>,
}

impl OneApiServer {
    /// Creates a server.
    pub fn new(config: FlareConfig) -> Self {
        let filter = StabilityFilter::new(config.delta);
        OneApiServer {
            config,
            filter,
            clients: Vec::new(),
            pcrf: PcrfRegistry::new(),
            last_solve_time: None,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &FlareConfig {
        &self.config
    }

    /// Registers a video client (the plugin's hello message). The client
    /// starts at its lowest allowed level.
    pub fn register_video(&mut self, info: ClientInfo) {
        self.pcrf.register(info.flow(), FlowClass::Video);
        let start = info.min_allowed_level().index();
        self.clients.push(ClientEntry {
            info,
            state: StabilityState::starting_at(start),
        });
    }

    /// Registers a best-effort data flow (via the PCRF, not the plugin).
    pub fn register_data(&mut self, flow: FlowId) {
        self.pcrf.register(flow, FlowClass::Data);
    }

    /// The PCRF's flow registry.
    pub fn pcrf(&self) -> &PcrfRegistry {
        &self.pcrf
    }

    /// Wall-clock time of the most recent solve (Figure 9's metric).
    pub fn last_solve_time(&self) -> Option<Duration> {
        self.last_solve_time
    }

    /// The level currently applied to `flow`, if it is a registered client.
    pub fn current_level(&self, flow: FlowId) -> Option<Level> {
        self.clients
            .iter()
            .find(|c| c.info.flow() == flow)
            .map(|c| Level::new(c.state.level))
    }

    /// Runs one BAI of Algorithm 1.
    ///
    /// `report` is the eNodeB's statistics for the elapsed BAI; `la` and
    /// `rbs_per_tti` describe the cell (used to size the RB budget and to
    /// estimate link efficiency for flows that were idle).
    ///
    /// Returns one [`Assignment`] per registered video client present in the
    /// report. An empty report interval returns no assignments.
    pub fn assign(
        &mut self,
        report: &IntervalReport,
        la: &LinkAdaptation,
        rbs_per_tti: u32,
    ) -> Vec<Assignment> {
        let interval = report.duration();
        if interval.is_zero() || self.clients.is_empty() {
            return Vec::new();
        }
        let bai_secs = interval.as_secs_f64();
        let total_rbs = f64::from(rbs_per_tti) * interval.as_millis() as f64;

        // Build the solver problem from fresh MAC statistics.
        let mut solver_index: Vec<usize> = Vec::new();
        let mut flows: Vec<FlowSpec> = Vec::new();
        for (i, client) in self.clients.iter_mut().enumerate() {
            let Some(stats) = report.flow(client.info.flow()) else {
                continue;
            };
            let bits_per_rb = stats
                .bytes_per_rb()
                .map(|b| b * 8.0)
                .unwrap_or_else(|| la.bits_per_rb(stats.itbs))
                .max(1.0);
            let weight = bai_secs / bits_per_rb;
            let ladder: Vec<f64> = client
                .info
                .ladder()
                .rates()
                .iter()
                .map(|r| r.as_bps())
                .collect();
            let beta = client.info.prefs().beta.unwrap_or(self.config.beta);
            let theta = client
                .info
                .prefs()
                .theta
                .unwrap_or(self.config.theta)
                .as_bps();
            let max_allowed = client.info.max_allowed_level().index();
            let min_allowed = client.info.min_allowed_level().index();
            // Keep the persistent state inside the currently allowed band
            // (preferences may have tightened since the last BAI).
            client.state.level = client.state.level.clamp(min_allowed, max_allowed);
            // Constraint (4): at most one step above the previous level.
            let max_level = (client.state.level + 1).min(max_allowed);
            flows.push(
                FlowSpec::new(ladder, beta, theta, weight, max_level)
                    .with_min_level(min_allowed),
            );
            solver_index.push(i);
        }
        if flows.is_empty() {
            return Vec::new();
        }

        let spec = ProblemSpec::builder()
            .total_rbs(total_rbs)
            .data_flows(self.pcrf.data_flow_count(), self.config.alpha)
            .flows(flows)
            .build()
            .expect("validated inputs");

        let started = Instant::now();
        let solution = match self.config.solve_mode {
            SolveMode::Exact => solve_discrete(&spec),
            SolveMode::Relaxed => round_down(&spec, &solve_relaxed(&spec)),
        };
        self.last_solve_time = Some(started.elapsed());

        // Stability filter, then emit assignments.
        solver_index
            .iter()
            .zip(&solution.levels)
            .map(|(&ci, &recommended)| {
                let client = &mut self.clients[ci];
                let applied = self.filter.apply(&mut client.state, recommended);
                let level = Level::new(applied);
                Assignment {
                    flow: client.info.flow(),
                    level,
                    rate: client.info.ladder().rate(level),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ClientPrefs;
    use flare_has::BitrateLadder;
    use flare_lte::channel::StaticChannel;
    use flare_lte::scheduler::TwoPhaseGbr;
    use flare_lte::{CellConfig, ENodeB, Itbs};
    use flare_sim::Time;

    /// A cell with `n_video` great-channel video flows and `n_data` data
    /// flows, plus one BAI of traffic so the report is meaningful.
    fn cell(n_video: usize, n_data: usize, itbs: u8) -> (ENodeB, Vec<FlowId>, Vec<FlowId>) {
        let mut enb = ENodeB::new(CellConfig::default(), Box::new(TwoPhaseGbr::default()));
        let videos: Vec<FlowId> = (0..n_video)
            .map(|_| {
                let f = enb.add_flow(
                    FlowClass::Video,
                    Box::new(StaticChannel::new(Itbs::new(itbs))),
                );
                enb.push_backlog(f, flare_sim::units::ByteCount::new(50_000_000));
                f
            })
            .collect();
        let datas: Vec<FlowId> = (0..n_data)
            .map(|_| {
                enb.add_flow(
                    FlowClass::Data,
                    Box::new(StaticChannel::new(Itbs::new(itbs))),
                )
            })
            .collect();
        (enb, videos, datas)
    }

    fn run_bai(enb: &mut ENodeB, bai_index: u64) -> IntervalReport {
        let start = bai_index * 10_000;
        for ms in start..start + 10_000 {
            enb.step_tti(Time::from_millis(ms));
        }
        enb.take_report(Time::from_millis(start + 10_000))
    }

    #[test]
    fn assigns_one_level_per_client() {
        let (mut enb, videos, datas) = cell(3, 1, 12);
        let mut server = OneApiServer::new(FlareConfig::default());
        for &v in &videos {
            server.register_video(ClientInfo::new(v, BitrateLadder::testbed()));
        }
        for &d in &datas {
            server.register_data(d);
        }
        let report = run_bai(&mut enb, 0);
        let assignments = server.assign(&report, enb.link_adaptation(), 50);
        assert_eq!(assignments.len(), 3);
        for a in &assignments {
            assert_eq!(a.rate, BitrateLadder::testbed().rate(a.level));
        }
        assert!(server.last_solve_time().is_some());
    }

    #[test]
    fn levels_climb_one_step_per_threshold() {
        let (mut enb, videos, _) = cell(1, 0, 14);
        let config = FlareConfig::default().with_delta(1);
        let mut server = OneApiServer::new(config);
        server.register_video(ClientInfo::new(videos[0], BitrateLadder::testbed()));
        let mut levels = Vec::new();
        for bai in 0..30 {
            let report = run_bai(&mut enb, bai);
            let assignments = server.assign(&report, enb.link_adaptation(), 50);
            levels.push(assignments[0].level.index());
            // Keep the flow backlogged so statistics stay meaningful.
            enb.push_backlog(videos[0], flare_sim::units::ByteCount::new(50_000_000));
        }
        // Never skips a level.
        assert!(levels.windows(2).all(|w| w[1] <= w[0] + 1), "{levels:?}");
        // With delta=1 and a great channel it climbs steadily.
        assert!(*levels.last().unwrap() > levels[0], "{levels:?}");
    }

    #[test]
    fn data_flow_count_tempers_assignments() {
        let run = |n_data: usize| {
            let (mut enb, videos, datas) = cell(2, n_data, 6);
            let mut server = OneApiServer::new(FlareConfig::default().with_delta(0));
            for &v in &videos {
                server.register_video(ClientInfo::new(v, BitrateLadder::testbed()));
            }
            for &d in &datas {
                server.register_data(d);
            }
            let mut last = Vec::new();
            for bai in 0..10 {
                let report = run_bai(&mut enb, bai);
                last = server.assign(&report, enb.link_adaptation(), 50);
                for &v in &videos {
                    enb.push_backlog(v, flare_sim::units::ByteCount::new(50_000_000));
                }
            }
            last.iter().map(|a| a.level.index()).sum::<usize>()
        };
        assert!(run(6) <= run(0), "more data flows must not raise video levels");
    }

    #[test]
    fn client_rate_cap_is_respected() {
        let (mut enb, videos, _) = cell(1, 0, 20);
        let mut server = OneApiServer::new(FlareConfig::default().with_delta(0));
        let prefs = ClientPrefs {
            max_rate: Some(Rate::from_kbps(800.0)),
            ..ClientPrefs::default()
        };
        server.register_video(
            ClientInfo::new(videos[0], BitrateLadder::testbed()).with_prefs(prefs),
        );
        for bai in 0..12 {
            let report = run_bai(&mut enb, bai);
            let assignments = server.assign(&report, enb.link_adaptation(), 50);
            assert!(
                assignments[0].rate <= Rate::from_kbps(800.0),
                "cap violated: {:?}",
                assignments[0]
            );
            enb.push_backlog(videos[0], flare_sim::units::ByteCount::new(50_000_000));
        }
    }

    #[test]
    fn skimming_client_pinned_to_lowest() {
        let (mut enb, videos, _) = cell(1, 0, 20);
        let mut server = OneApiServer::new(FlareConfig::default().with_delta(0));
        let prefs = ClientPrefs {
            skimming: true,
            ..ClientPrefs::default()
        };
        server.register_video(
            ClientInfo::new(videos[0], BitrateLadder::testbed()).with_prefs(prefs),
        );
        for bai in 0..5 {
            let report = run_bai(&mut enb, bai);
            let assignments = server.assign(&report, enb.link_adaptation(), 50);
            assert_eq!(assignments[0].level, Level::new(0));
        }
    }

    #[test]
    fn relaxed_mode_also_assigns() {
        let (mut enb, videos, datas) = cell(2, 1, 10);
        let mut server =
            OneApiServer::new(FlareConfig::default().with_solve_mode(SolveMode::Relaxed));
        for &v in &videos {
            server.register_video(ClientInfo::new(v, BitrateLadder::simulation()));
        }
        server.register_data(datas[0]);
        let report = run_bai(&mut enb, 0);
        let assignments = server.assign(&report, enb.link_adaptation(), 50);
        assert_eq!(assignments.len(), 2);
    }

    #[test]
    fn empty_report_yields_nothing() {
        let (_, videos, _) = cell(1, 0, 5);
        let mut server = OneApiServer::new(FlareConfig::default());
        server.register_video(ClientInfo::new(videos[0], BitrateLadder::testbed()));
        let empty = IntervalReport {
            start: Time::ZERO,
            end: Time::ZERO,
            flows: vec![],
        };
        assert!(server
            .assign(&empty, &LinkAdaptation::default(), 50)
            .is_empty());
    }

    #[test]
    fn unknown_flows_are_skipped() {
        let (mut enb, _videos, _) = cell(1, 0, 5);
        let (_, other_videos, _) = cell(3, 0, 5);
        let mut server = OneApiServer::new(FlareConfig::default());
        // Register a flow id (index 2) that the reporting cell doesn't have.
        server.register_video(ClientInfo::new(other_videos[2], BitrateLadder::testbed()));
        let report = run_bai(&mut enb, 0);
        // The report covers flow 0 only; the registered client is flow 2.
        assert!(server.assign(&report, enb.link_adaptation(), 50).is_empty());
    }
}
