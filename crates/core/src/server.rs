//! The OneAPI server: FLARE's network-side brain.

use std::time::Duration;

use flare_has::Level;
use flare_lte::{FlowClass, FlowId, IntervalReport, Itbs, LinkAdaptation};
use flare_sim::units::Rate;
use flare_sim::Time;
use flare_solver::{round_down, solve_discrete, solve_relaxed, FlowSpec, ProblemSpec, WarmSolver};
use flare_trace::{Category, TraceHandle};

use crate::algorithm::{StabilityFilter, StabilityState};
use crate::client::ClientInfo;
use crate::clock::{SolveClock, WallClock};
use crate::config::{FlareConfig, SolveMode};
use crate::messages::{AssignmentMsg, StatsReportMsg};
use crate::pcrf::PcrfRegistry;

/// One BAI's decision for one video flow: the level the plugin must request
/// and the GBR the PCEF/eNodeB must enforce (they are the same rate — that
/// equality *is* FLARE's dual enforcement).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Assignment {
    /// The video flow.
    pub flow: FlowId,
    /// Ladder level the plugin will request.
    pub level: Level,
    /// The level's bitrate, installed as the flow's GBR.
    pub rate: Rate,
}

#[derive(Debug, Clone)]
struct ClientEntry {
    info: ClientInfo,
    state: StabilityState,
    /// Last observed link efficiency (bits per RB), aged while the
    /// client's statistics are missing. `None` until first observed.
    cached_bits_per_rb: Option<f64>,
    /// Consecutive BAIs without statistics for this client.
    silent_bais: u32,
}

/// FLARE's network-side controller.
///
/// Once per BAI, feed it the cell's [`IntervalReport`]; it rebuilds the
/// utility-maximization problem (3)–(4) from the fresh `(n_u, b_u)`
/// counters, solves it (exactly or via the convex relaxation), pushes the
/// recommendations through Algorithm 1's δ stability filter, and returns the
/// assignments to enforce.
#[derive(Debug)]
pub struct OneApiServer {
    config: FlareConfig,
    filter: StabilityFilter,
    clients: Vec<ClientEntry>,
    pcrf: PcrfRegistry,
    clock: Box<dyn SolveClock>,
    last_solve_time: Option<Duration>,
    /// BAI sequence number stamped onto versioned assignments.
    seq: u64,
    /// Clients evicted for prolonged statistics silence (telemetry).
    evicted: u64,
    /// Exact-mode solver state carried across BAIs (`warm_start`).
    warm: WarmSolver,
    trace: TraceHandle,
}

impl OneApiServer {
    /// Creates a server timing its solves with the wall clock.
    pub fn new(config: FlareConfig) -> Self {
        OneApiServer::with_clock(config, Box::new(WallClock::default()))
    }

    /// Creates a server with an injected solve clock (tests use
    /// [`crate::ManualClock`]; Figure 9 keeps [`WallClock`]).
    pub fn with_clock(config: FlareConfig, clock: Box<dyn SolveClock>) -> Self {
        let filter = StabilityFilter::new(config.delta);
        OneApiServer {
            config,
            filter,
            clients: Vec::new(),
            pcrf: PcrfRegistry::new(),
            clock,
            last_solve_time: None,
            seq: 0,
            evicted: 0,
            warm: WarmSolver::new(),
            trace: TraceHandle::disabled(),
        }
    }

    /// Attaches a trace recorder. Solver events ([`Category::Solver`])
    /// record each BAI solve round, per-client assignments (debug level),
    /// and client evictions; solve wall time goes to the registry histogram
    /// `solver.wall_ms` only, never into the event stream.
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    /// The active configuration.
    pub fn config(&self) -> &FlareConfig {
        &self.config
    }

    /// Registers a video client (the plugin's hello message). The client
    /// starts at its lowest allowed level.
    pub fn register_video(&mut self, info: ClientInfo) {
        self.pcrf.register(info.flow(), FlowClass::Video);
        let start = info.min_allowed_level().index();
        self.clients.push(ClientEntry {
            info,
            state: StabilityState::starting_at(start),
            cached_bits_per_rb: None,
            silent_bais: 0,
        });
    }

    /// Registers a best-effort data flow (via the PCRF, not the plugin).
    pub fn register_data(&mut self, flow: FlowId) {
        self.pcrf.register(flow, FlowClass::Data);
    }

    /// The PCRF's flow registry.
    pub fn pcrf(&self) -> &PcrfRegistry {
        &self.pcrf
    }

    /// Wall-clock time of the most recent solve (Figure 9's metric).
    pub fn last_solve_time(&self) -> Option<Duration> {
        self.last_solve_time
    }

    /// The server's current BAI sequence number (the version stamped onto
    /// the most recently emitted assignments).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Number of registered video clients still being served.
    pub fn client_count(&self) -> usize {
        self.clients.len()
    }

    /// Clients evicted so far for prolonged statistics silence.
    pub fn evicted_clients(&self) -> u64 {
        self.evicted
    }

    /// The level currently applied to `flow`, if it is a registered client.
    pub fn current_level(&self, flow: FlowId) -> Option<Level> {
        self.clients
            .iter()
            .find(|c| c.info.flow() == flow)
            .map(|c| Level::new(c.state.level))
    }

    /// Runs one BAI of Algorithm 1.
    ///
    /// `report` is the eNodeB's statistics for the elapsed BAI; `la` and
    /// `rbs_per_tti` describe the cell (used to size the RB budget and to
    /// estimate link efficiency for flows that were idle).
    ///
    /// Returns one [`Assignment`] per registered video client present in the
    /// report. An empty report interval returns no assignments.
    pub fn assign(
        &mut self,
        report: &IntervalReport,
        la: &LinkAdaptation,
        rbs_per_tti: u32,
    ) -> Vec<Assignment> {
        let interval = report.duration();
        if interval.is_zero() || self.clients.is_empty() {
            return Vec::new();
        }
        let bai_secs = interval.as_secs_f64();
        let total_rbs = f64::from(rbs_per_tti) * interval.as_millis() as f64;

        // Fresh MAC statistics only; clients missing from the report are
        // skipped (the paper's lossless-world semantics).
        let obs: Vec<Option<f64>> = self
            .clients
            .iter()
            .map(|client| {
                report.flow(client.info.flow()).map(|stats| {
                    stats
                        .bytes_per_rb()
                        .map(|b| b * 8.0)
                        .unwrap_or_else(|| la.bits_per_rb(stats.itbs))
                        .max(1.0)
                })
            })
            .collect();

        self.solve_clients(report.end.as_millis(), bai_secs, total_rbs, &obs)
            .into_iter()
            .map(|(ci, level)| {
                let client = &self.clients[ci];
                Assignment {
                    flow: client.info.flow(),
                    level,
                    rate: client.info.ladder().rate(level),
                }
            })
            .collect()
    }

    /// Message-path variant of [`OneApiServer::assign`] with the same
    /// lossless-world semantics (clients missing from the report are
    /// skipped, nothing ages, nobody is evicted) — the *naive* server of
    /// the fault experiments. Emitted assignments are stamped with the
    /// server's BAI sequence number and the report's end time.
    pub fn assign_msg(
        &mut self,
        report: &StatsReportMsg,
        la: &LinkAdaptation,
        rbs_per_tti: u32,
    ) -> Vec<AssignmentMsg> {
        let duration_ms = report.duration_ms();
        if duration_ms == 0 || self.clients.is_empty() {
            return Vec::new();
        }
        self.seq += 1;
        let seq = self.seq;
        let bai_secs = duration_ms as f64 / 1000.0;
        let total_rbs = f64::from(rbs_per_tti) * duration_ms as f64;
        let obs: Vec<Option<f64>> = self
            .clients
            .iter()
            .map(|client| {
                report
                    .flow(client.info.flow().index() as u32)
                    .map(|s| Self::msg_bits_per_rb(s, la))
            })
            .collect();
        let issued_ms = report.end_ms;
        self.solve_clients(issued_ms, bai_secs, total_rbs, &obs)
            .into_iter()
            .map(|(ci, level)| self.assignment_msg(ci, level, seq, issued_ms))
            .collect()
    }

    /// One robust BAI: the graceful-degradation entry point used when the
    /// control plane may lose or delay messages.
    ///
    /// Unlike [`OneApiServer::assign`], this always issues a decision for
    /// every surviving client:
    ///
    /// * clients present in `report` refresh their cached link efficiency;
    /// * clients missing from it (or the whole report, when `None`) reuse
    ///   their previous `(n_u, b_u)` observation, exponentially aged so the
    ///   server grows conservative about flows it cannot see;
    /// * clients silent for `evict_bais` consecutive BAIs are evicted and
    ///   deregistered from the PCRF.
    ///
    /// Assignments carry the server's BAI sequence number and `now`, so
    /// receivers can reject stale or reordered deliveries. The robustness
    /// parameters come from the config's [`crate::RobustnessConfig`]
    /// (defaults apply if none was set).
    pub fn bai_tick(
        &mut self,
        now: Time,
        report: Option<&StatsReportMsg>,
        la: &LinkAdaptation,
        rbs_per_tti: u32,
    ) -> Vec<AssignmentMsg> {
        let r = self.config.robustness.unwrap_or_default();
        self.seq += 1;
        let seq = self.seq;
        // An empty interval carries no usable counters.
        let report = report.filter(|m| m.duration_ms() > 0);

        // 1. Refresh or age each client's cached link efficiency.
        for client in &mut self.clients {
            let flow_id = client.info.flow().index() as u32;
            match report.and_then(|m| m.flow(flow_id)) {
                Some(stats) => {
                    client.cached_bits_per_rb = Some(Self::msg_bits_per_rb(stats, la));
                    client.silent_bais = 0;
                }
                None => {
                    client.silent_bais += 1;
                    if let Some(b) = client.cached_bits_per_rb.as_mut() {
                        *b = (*b * r.stats_aging).max(1.0);
                    }
                }
            }
        }

        // 2. Evict clients the server has not heard from in `m` BAIs.
        let evicted: Vec<FlowId> = self
            .clients
            .iter()
            .filter(|c| c.silent_bais >= r.evict_bais)
            .map(|c| c.info.flow())
            .collect();
        if !evicted.is_empty() {
            self.clients.retain(|c| c.silent_bais < r.evict_bais);
            for flow in &evicted {
                self.pcrf.deregister(*flow);
                self.trace.record(now, Category::Solver, "evict", |e| {
                    e.u64("flow", flow.index() as u64);
                });
            }
            self.evicted += evicted.len() as u64;
            self.trace.incr("server.evicted", evicted.len() as u64);
        }
        if self.clients.is_empty() {
            return Vec::new();
        }

        // 3. Solve over cached observations; a client never observed at all
        // is assumed to sit at the worst link-adaptation operating point.
        let bai_ms = report
            .map(StatsReportMsg::duration_ms)
            .unwrap_or_else(|| self.config.bai.as_millis());
        let bai_secs = bai_ms as f64 / 1000.0;
        let total_rbs = f64::from(rbs_per_tti) * bai_ms as f64;
        let floor = la.bits_per_rb(Itbs::new(0)).max(1.0);
        let obs: Vec<Option<f64>> = self
            .clients
            .iter()
            .map(|c| Some(c.cached_bits_per_rb.unwrap_or(floor)))
            .collect();
        let issued_ms = now.as_millis();
        self.solve_clients(issued_ms, bai_secs, total_rbs, &obs)
            .into_iter()
            .map(|(ci, level)| self.assignment_msg(ci, level, seq, issued_ms))
            .collect()
    }

    /// Link efficiency (bits/RB) from one flow's wire-format counters.
    fn msg_bits_per_rb(stats: &crate::messages::FlowStatsMsg, la: &LinkAdaptation) -> f64 {
        let from_counters = if stats.rbs > 0 {
            (stats.bytes as f64 / stats.rbs as f64) * 8.0
        } else {
            la.bits_per_rb(Itbs::new(stats.itbs))
        };
        from_counters.max(1.0)
    }

    fn assignment_msg(&self, ci: usize, level: Level, seq: u64, issued_ms: u64) -> AssignmentMsg {
        let client = &self.clients[ci];
        AssignmentMsg {
            flow_id: client.info.flow().index() as u32,
            level: level.index() as u32,
            gbr_kbps: client.info.ladder().rate(level).as_kbps().round() as u32,
            seq,
            issued_ms,
        }
    }

    /// The shared core of Algorithm 1: builds problem (3)–(4) from one
    /// observation (bits/RB) per participating client, solves it, and runs
    /// the δ stability filter. `obs[i] == None` excludes client `i` from
    /// this BAI. Returns `(client index, applied level)` pairs. `now_ms` is
    /// the simulation time stamped onto trace events.
    fn solve_clients(
        &mut self,
        now_ms: u64,
        bai_secs: f64,
        total_rbs: f64,
        obs: &[Option<f64>],
    ) -> Vec<(usize, Level)> {
        let mut solver_index: Vec<usize> = Vec::new();
        let mut flows: Vec<FlowSpec> = Vec::new();
        for (i, client) in self.clients.iter_mut().enumerate() {
            let Some(bits_per_rb) = obs[i] else {
                continue;
            };
            let weight = bai_secs / bits_per_rb;
            let ladder: Vec<f64> = client
                .info
                .ladder()
                .rates()
                .iter()
                .map(|r| r.as_bps())
                .collect();
            let beta = client.info.prefs().beta.unwrap_or(self.config.beta);
            let theta = client
                .info
                .prefs()
                .theta
                .unwrap_or(self.config.theta)
                .as_bps();
            let max_allowed = client.info.max_allowed_level().index();
            let min_allowed = client.info.min_allowed_level().index();
            // Keep the persistent state inside the currently allowed band
            // (preferences may have tightened since the last BAI).
            client.state.level = client.state.level.clamp(min_allowed, max_allowed);
            // Constraint (4): at most one step above the previous level.
            let max_level = (client.state.level + 1).min(max_allowed);
            flows.push(
                FlowSpec::new(ladder, beta, theta, weight, max_level).with_min_level(min_allowed),
            );
            solver_index.push(i);
        }
        if flows.is_empty() {
            return Vec::new();
        }

        let spec = ProblemSpec::builder()
            .total_rbs(total_rbs)
            .data_flows(self.pcrf.data_flow_count(), self.config.alpha)
            .flows(flows)
            .build()
            .expect("validated inputs");

        let started = self.clock.now();
        let solution = match self.config.solve_mode {
            // The warm path is bit-identical to the cold one (see
            // `flare_solver::warm`), so this choice never shows up in
            // events — only in wall time and the warm-hit counters.
            SolveMode::Exact if self.config.warm_start => {
                let hits_before = self.warm.hits();
                let solution = self.warm.solve(spec);
                if self.trace.is_attached() {
                    if self.warm.hits() > hits_before {
                        self.trace.incr("solver.warm_hits", 1);
                    } else {
                        self.trace.incr("solver.warm_misses", 1);
                    }
                }
                solution
            }
            SolveMode::Exact => solve_discrete(&spec),
            SolveMode::Relaxed => round_down(&spec, &solve_relaxed(&spec)),
        };
        let wall = self.clock.now().saturating_sub(started);
        self.last_solve_time = Some(wall);

        let now = Time::from_millis(now_ms);
        if self.trace.is_attached() {
            // Wall-clock solve time goes into the registry only: putting it
            // in an event would break the byte-identical-trace guarantee.
            self.trace.incr("solver.solves", 1);
            self.trace
                .observe("solver.wall_ms", wall.as_secs_f64() * 1e3);
            self.trace.observe("solver.steps", solution.steps as f64);
            self.trace.record(now, Category::Solver, "solve", |e| {
                e.u64("clients", solver_index.len() as u64)
                    .u64("data_flows", self.pcrf.data_flow_count() as u64)
                    .f64("total_rbs", total_rbs)
                    .str(
                        "mode",
                        match self.config.solve_mode {
                            SolveMode::Exact => "exact",
                            SolveMode::Relaxed => "relaxed",
                        },
                    )
                    .u64("steps", solution.steps)
                    .f64("r", solution.r);
                if solution.objective.is_finite() {
                    e.f64("objective", solution.objective);
                } else {
                    e.bool("overloaded", true);
                }
            });
        }

        // Stability filter, then report the applied levels.
        let assign_debug = self.trace.debug_enabled(Category::Solver);
        let mut deferrals: u64 = 0;
        let mut out = Vec::with_capacity(solver_index.len());
        for (&ci, &recommended) in solver_index.iter().zip(&solution.levels) {
            let client = &mut self.clients[ci];
            let applied = self.filter.apply(&mut client.state, recommended);
            let deferred = applied != recommended;
            if deferred {
                deferrals += 1;
            }
            if assign_debug {
                let flow = client.info.flow().index() as u64;
                let bits_per_rb = obs[ci].unwrap_or(0.0);
                self.trace
                    .record_debug(now, Category::Solver, "assign", |e| {
                        e.u64("flow", flow)
                            .f64("bits_per_rb", bits_per_rb)
                            .u64("recommended", recommended as u64)
                            .u64("applied", applied as u64)
                            .bool("deferred", deferred);
                    });
            }
            out.push((ci, Level::new(applied)));
        }
        if deferrals > 0 {
            self.trace.incr("solver.deferrals", deferrals);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ClientPrefs;
    use flare_has::BitrateLadder;
    use flare_lte::channel::StaticChannel;
    use flare_lte::scheduler::TwoPhaseGbr;
    use flare_lte::{CellConfig, ENodeB, Itbs};
    use flare_sim::Time;

    /// A cell with `n_video` great-channel video flows and `n_data` data
    /// flows, plus one BAI of traffic so the report is meaningful.
    fn cell(n_video: usize, n_data: usize, itbs: u8) -> (ENodeB, Vec<FlowId>, Vec<FlowId>) {
        let mut enb = ENodeB::new(CellConfig::default(), Box::new(TwoPhaseGbr::default()));
        let videos: Vec<FlowId> = (0..n_video)
            .map(|_| {
                let f = enb.add_flow(
                    FlowClass::Video,
                    Box::new(StaticChannel::new(Itbs::new(itbs))),
                );
                enb.push_backlog(f, flare_sim::units::ByteCount::new(50_000_000));
                f
            })
            .collect();
        let datas: Vec<FlowId> = (0..n_data)
            .map(|_| {
                enb.add_flow(
                    FlowClass::Data,
                    Box::new(StaticChannel::new(Itbs::new(itbs))),
                )
            })
            .collect();
        (enb, videos, datas)
    }

    fn run_bai(enb: &mut ENodeB, bai_index: u64) -> IntervalReport {
        let start = bai_index * 10_000;
        for ms in start..start + 10_000 {
            enb.step_tti(Time::from_millis(ms));
        }
        enb.take_report(Time::from_millis(start + 10_000))
    }

    #[test]
    fn assigns_one_level_per_client() {
        let (mut enb, videos, datas) = cell(3, 1, 12);
        let mut server = OneApiServer::new(FlareConfig::default());
        for &v in &videos {
            server.register_video(ClientInfo::new(v, BitrateLadder::testbed()));
        }
        for &d in &datas {
            server.register_data(d);
        }
        let report = run_bai(&mut enb, 0);
        let assignments = server.assign(&report, enb.link_adaptation(), 50);
        assert_eq!(assignments.len(), 3);
        for a in &assignments {
            assert_eq!(a.rate, BitrateLadder::testbed().rate(a.level));
        }
        assert!(server.last_solve_time().is_some());
    }

    #[test]
    fn levels_climb_one_step_per_threshold() {
        let (mut enb, videos, _) = cell(1, 0, 14);
        let config = FlareConfig::default().with_delta(1);
        let mut server = OneApiServer::new(config);
        server.register_video(ClientInfo::new(videos[0], BitrateLadder::testbed()));
        let mut levels = Vec::new();
        for bai in 0..30 {
            let report = run_bai(&mut enb, bai);
            let assignments = server.assign(&report, enb.link_adaptation(), 50);
            levels.push(assignments[0].level.index());
            // Keep the flow backlogged so statistics stay meaningful.
            enb.push_backlog(videos[0], flare_sim::units::ByteCount::new(50_000_000));
        }
        // Never skips a level.
        assert!(levels.windows(2).all(|w| w[1] <= w[0] + 1), "{levels:?}");
        // With delta=1 and a great channel it climbs steadily.
        assert!(*levels.last().unwrap() > levels[0], "{levels:?}");
    }

    #[test]
    fn data_flow_count_tempers_assignments() {
        let run = |n_data: usize| {
            let (mut enb, videos, datas) = cell(2, n_data, 6);
            let mut server = OneApiServer::new(FlareConfig::default().with_delta(0));
            for &v in &videos {
                server.register_video(ClientInfo::new(v, BitrateLadder::testbed()));
            }
            for &d in &datas {
                server.register_data(d);
            }
            let mut last = Vec::new();
            for bai in 0..10 {
                let report = run_bai(&mut enb, bai);
                last = server.assign(&report, enb.link_adaptation(), 50);
                for &v in &videos {
                    enb.push_backlog(v, flare_sim::units::ByteCount::new(50_000_000));
                }
            }
            last.iter().map(|a| a.level.index()).sum::<usize>()
        };
        assert!(
            run(6) <= run(0),
            "more data flows must not raise video levels"
        );
    }

    #[test]
    fn client_rate_cap_is_respected() {
        let (mut enb, videos, _) = cell(1, 0, 20);
        let mut server = OneApiServer::new(FlareConfig::default().with_delta(0));
        let prefs = ClientPrefs {
            max_rate: Some(Rate::from_kbps(800.0)),
            ..ClientPrefs::default()
        };
        server
            .register_video(ClientInfo::new(videos[0], BitrateLadder::testbed()).with_prefs(prefs));
        for bai in 0..12 {
            let report = run_bai(&mut enb, bai);
            let assignments = server.assign(&report, enb.link_adaptation(), 50);
            assert!(
                assignments[0].rate <= Rate::from_kbps(800.0),
                "cap violated: {:?}",
                assignments[0]
            );
            enb.push_backlog(videos[0], flare_sim::units::ByteCount::new(50_000_000));
        }
    }

    #[test]
    fn skimming_client_pinned_to_lowest() {
        let (mut enb, videos, _) = cell(1, 0, 20);
        let mut server = OneApiServer::new(FlareConfig::default().with_delta(0));
        let prefs = ClientPrefs {
            skimming: true,
            ..ClientPrefs::default()
        };
        server
            .register_video(ClientInfo::new(videos[0], BitrateLadder::testbed()).with_prefs(prefs));
        for bai in 0..5 {
            let report = run_bai(&mut enb, bai);
            let assignments = server.assign(&report, enb.link_adaptation(), 50);
            assert_eq!(assignments[0].level, Level::new(0));
        }
    }

    #[test]
    fn relaxed_mode_also_assigns() {
        let (mut enb, videos, datas) = cell(2, 1, 10);
        let mut server =
            OneApiServer::new(FlareConfig::default().with_solve_mode(SolveMode::Relaxed));
        for &v in &videos {
            server.register_video(ClientInfo::new(v, BitrateLadder::simulation()));
        }
        server.register_data(datas[0]);
        let report = run_bai(&mut enb, 0);
        let assignments = server.assign(&report, enb.link_adaptation(), 50);
        assert_eq!(assignments.len(), 2);
    }

    #[test]
    fn empty_report_yields_nothing() {
        let (_, videos, _) = cell(1, 0, 5);
        let mut server = OneApiServer::new(FlareConfig::default());
        server.register_video(ClientInfo::new(videos[0], BitrateLadder::testbed()));
        let empty = IntervalReport {
            start: Time::ZERO,
            end: Time::ZERO,
            flows: vec![],
        };
        assert!(server
            .assign(&empty, &LinkAdaptation::default(), 50)
            .is_empty());
    }

    #[test]
    fn unknown_flows_are_skipped() {
        let (mut enb, _videos, _) = cell(1, 0, 5);
        let (_, other_videos, _) = cell(3, 0, 5);
        let mut server = OneApiServer::new(FlareConfig::default());
        // Register a flow id (index 2) that the reporting cell doesn't have.
        server.register_video(ClientInfo::new(other_videos[2], BitrateLadder::testbed()));
        let report = run_bai(&mut enb, 0);
        // The report covers flow 0 only; the registered client is flow 2.
        assert!(server.assign(&report, enb.link_adaptation(), 50).is_empty());
    }

    use crate::messages::StatsReportMsg;
    use crate::RobustnessConfig;

    fn servers(videos: &[FlowId]) -> (OneApiServer, OneApiServer) {
        let mk = || {
            let mut s = OneApiServer::new(
                FlareConfig::default().with_robustness(RobustnessConfig::default()),
            );
            for &v in videos {
                s.register_video(ClientInfo::new(v, BitrateLadder::testbed()));
            }
            s
        };
        (mk(), mk())
    }

    #[test]
    fn bai_tick_matches_assign_when_reports_are_fresh() {
        // With every client present in every report, the robust path must
        // reproduce the lossless path's levels exactly.
        let (mut enb, videos, _) = cell(3, 0, 10);
        let (mut lossless, mut robust) = servers(&videos);
        for bai in 0..8 {
            let report = run_bai(&mut enb, bai);
            let la = enb.link_adaptation().clone();
            let legacy = lossless.assign(&report, &la, 50);
            let msg = StatsReportMsg::from(&report);
            let ticked = robust.bai_tick(report.end, Some(&msg), &la, 50);
            assert_eq!(legacy.len(), ticked.len());
            for (a, m) in legacy.iter().zip(&ticked) {
                assert_eq!(a.flow.index() as u32, m.flow_id);
                assert_eq!(a.level.index() as u32, m.level);
            }
            for &v in &videos {
                enb.push_backlog(v, flare_sim::units::ByteCount::new(50_000_000));
            }
        }
    }

    #[test]
    fn bai_tick_stamps_monotonic_seq_and_issue_time() {
        let (mut enb, videos, _) = cell(1, 0, 10);
        let (_, mut server) = servers(&videos);
        let report = run_bai(&mut enb, 0);
        let msg = StatsReportMsg::from(&report);
        let la = enb.link_adaptation().clone();
        let first = server.bai_tick(Time::from_secs(10), Some(&msg), &la, 50);
        let second = server.bai_tick(Time::from_secs(20), None, &la, 50);
        assert_eq!(first[0].seq, 1);
        assert_eq!(second[0].seq, 2);
        assert_eq!(first[0].issued_ms, 10_000);
        assert_eq!(second[0].issued_ms, 20_000);
        assert_eq!(server.seq(), 2);
    }

    #[test]
    fn silent_clients_are_served_from_aged_cache_then_evicted() {
        let (mut enb, videos, _) = cell(2, 0, 10);
        let r = RobustnessConfig::default();
        let mut server = OneApiServer::new(FlareConfig::default().with_robustness(r));
        for &v in &videos {
            server.register_video(ClientInfo::new(v, BitrateLadder::testbed()));
        }
        let full = StatsReportMsg::from(&run_bai(&mut enb, 0));
        let la = enb.link_adaptation().clone();
        let msgs = server.bai_tick(Time::from_secs(10), Some(&full), &la, 50);
        assert_eq!(msgs.len(), 2);

        // From here on, flow 1 goes silent: reports only cover flow 0.
        let partial = StatsReportMsg {
            flows: full
                .flows
                .iter()
                .filter(|f| f.flow_id == 0)
                .copied()
                .collect(),
            ..full.clone()
        };
        let mut now = Time::from_secs(10);
        for i in 1..r.evict_bais {
            now += flare_sim::TimeDelta::from_secs(10);
            let msgs = server.bai_tick(now, Some(&partial), &la, 50);
            assert_eq!(
                msgs.len(),
                2,
                "silent client still served from aged cache (BAI {i})"
            );
        }
        // The next silent BAI crosses the eviction threshold.
        now += flare_sim::TimeDelta::from_secs(10);
        let msgs = server.bai_tick(now, Some(&partial), &la, 50);
        assert_eq!(msgs.len(), 1, "evicted client no longer assigned");
        assert_eq!(msgs[0].flow_id, 0);
        assert_eq!(server.client_count(), 1);
        assert_eq!(server.evicted_clients(), 1);
        // The PCRF forgot the flow too (it is not a data flow now either).
        assert_eq!(server.pcrf().data_flow_count(), 0);
    }

    #[test]
    fn aging_makes_the_server_conservative_about_silent_clients() {
        // One client with a good cached observation goes silent while the
        // other keeps reporting; aging shrinks the silent client's weight
        // so its level must never rise while silent.
        let (mut enb, videos, _) = cell(2, 0, 12);
        let mut server = OneApiServer::new(
            FlareConfig::default()
                .with_delta(0)
                .with_robustness(RobustnessConfig::default().with_evict_bais(100)),
        );
        for &v in &videos {
            server.register_video(ClientInfo::new(v, BitrateLadder::testbed()));
        }
        let la = enb.link_adaptation().clone();
        let full = StatsReportMsg::from(&run_bai(&mut enb, 0));
        server.bai_tick(Time::from_secs(10), Some(&full), &la, 50);
        let partial = StatsReportMsg {
            flows: full
                .flows
                .iter()
                .filter(|f| f.flow_id == 0)
                .copied()
                .collect(),
            ..full.clone()
        };
        let mut silent_levels = Vec::new();
        for bai in 2..14u64 {
            let msgs = server.bai_tick(Time::from_secs(bai * 10), Some(&partial), &la, 50);
            silent_levels.push(msgs.iter().find(|m| m.flow_id == 1).unwrap().level);
        }
        // The one-step-up ramp may climb for a few BAIs on the still-good
        // cache, but compounding decay must win: once past its peak the
        // level only falls, and it ends strictly below the peak.
        let peak_at = silent_levels
            .iter()
            .enumerate()
            .max_by_key(|(_, &l)| l)
            .map(|(i, _)| i)
            .unwrap();
        let peak = silent_levels[peak_at];
        assert!(
            silent_levels[peak_at..].windows(2).all(|w| w[1] <= w[0]),
            "level must decay after its peak: {silent_levels:?}"
        );
        assert!(
            *silent_levels.last().unwrap() < peak,
            "aging must pull the silent client down: {silent_levels:?}"
        );
    }

    /// A deterministic clock advancing a fixed step per observation.
    #[derive(Debug)]
    struct SteppingClock {
        now: Duration,
        step: Duration,
    }

    impl crate::SolveClock for SteppingClock {
        fn now(&mut self) -> Duration {
            let t = self.now;
            self.now += self.step;
            t
        }
    }

    #[test]
    fn injected_clock_times_solves() {
        let (mut enb, videos, _) = cell(1, 0, 10);
        let clock = SteppingClock {
            now: Duration::ZERO,
            step: Duration::from_millis(7),
        };
        let mut server = OneApiServer::with_clock(FlareConfig::default(), Box::new(clock));
        server.register_video(ClientInfo::new(videos[0], BitrateLadder::testbed()));
        let report = run_bai(&mut enb, 0);
        server.assign(&report, enb.link_adaptation(), 50);
        // One solve = exactly one clock step between the two observations.
        assert_eq!(server.last_solve_time(), Some(Duration::from_millis(7)));
    }
}
