//! Client-side information a FLARE plugin shares with the OneAPI server.

use flare_has::{BitrateLadder, Level};
use flare_lte::FlowId;
use flare_sim::units::Rate;

/// Optional client preferences/constraints (Section II-B, "Incorporating
/// client information").
///
/// Every field is optional: privacy-wise, a client shares only what it
/// chooses to. The server folds whatever is present into the optimization
/// as additional constraints.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ClientPrefs {
    /// Upper bound on the assigned bitrate — e.g. the client wants to limit
    /// mobile data cost, or its buffer is low and it wants to fill quickly.
    pub max_rate: Option<Rate>,
    /// Lower bound on the assigned level — e.g. a large screen refusing
    /// postage-stamp quality.
    pub min_level: Option<Level>,
    /// The client disclosed that the user is skimming (frequent seeks): the
    /// server assigns the minimum bitrate to avoid wasting radio resources.
    pub skimming: bool,
    /// Client-specific importance weight `β_u`, if disclosed.
    pub beta: Option<f64>,
    /// Client-specific screen parameter `θ_u`, if disclosed.
    pub theta: Option<Rate>,
}

/// Everything the server knows about one video client.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientInfo {
    flow: FlowId,
    ladder: BitrateLadder,
    prefs: ClientPrefs,
}

impl ClientInfo {
    /// Registers a client by its flow and (anonymized) bitrate ladder.
    pub fn new(flow: FlowId, ladder: BitrateLadder) -> Self {
        ClientInfo {
            flow,
            ladder,
            prefs: ClientPrefs::default(),
        }
    }

    /// Attaches preferences.
    pub fn with_prefs(mut self, prefs: ClientPrefs) -> Self {
        self.prefs = prefs;
        self
    }

    /// The client's downlink flow.
    pub fn flow(&self) -> FlowId {
        self.flow
    }

    /// The available encodings.
    pub fn ladder(&self) -> &BitrateLadder {
        &self.ladder
    }

    /// The disclosed preferences.
    pub fn prefs(&self) -> &ClientPrefs {
        &self.prefs
    }

    /// The highest ladder level this client may be assigned, combining the
    /// ladder with any disclosed rate cap or skimming signal.
    pub fn max_allowed_level(&self) -> Level {
        if self.prefs.skimming {
            return self.ladder.lowest();
        }
        match self.prefs.max_rate {
            Some(cap) => self.ladder.highest_at_most_or_lowest(cap),
            None => self.ladder.highest(),
        }
    }

    /// The lowest ladder level this client accepts (clamped to the maximum
    /// allowed, so constraints can never cross).
    pub fn min_allowed_level(&self) -> Level {
        let lo = self.prefs.min_level.unwrap_or_else(|| self.ladder.lowest());
        lo.min(self.max_allowed_level())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flare_lte::channel::StaticChannel;
    use flare_lte::scheduler::ProportionalFair;
    use flare_lte::{CellConfig, ENodeB, FlowClass, Itbs};

    fn flow() -> FlowId {
        let mut enb = ENodeB::new(CellConfig::default(), Box::new(ProportionalFair::default()));
        enb.add_flow(FlowClass::Video, Box::new(StaticChannel::new(Itbs::new(5))))
    }

    #[test]
    fn default_bounds_span_the_ladder() {
        let info = ClientInfo::new(flow(), BitrateLadder::testbed());
        assert_eq!(info.min_allowed_level(), Level::new(0));
        assert_eq!(info.max_allowed_level(), Level::new(7));
    }

    #[test]
    fn rate_cap_limits_max_level() {
        let prefs = ClientPrefs {
            max_rate: Some(Rate::from_kbps(800.0)),
            ..ClientPrefs::default()
        };
        let info = ClientInfo::new(flow(), BitrateLadder::testbed()).with_prefs(prefs);
        // Highest testbed rate <= 800 kbps is 790 kbps (level 3).
        assert_eq!(info.max_allowed_level(), Level::new(3));
    }

    #[test]
    fn skimming_pins_to_lowest() {
        let prefs = ClientPrefs {
            skimming: true,
            min_level: Some(Level::new(4)),
            ..ClientPrefs::default()
        };
        let info = ClientInfo::new(flow(), BitrateLadder::testbed()).with_prefs(prefs);
        assert_eq!(info.max_allowed_level(), Level::new(0));
        // min is clamped down so constraints never cross.
        assert_eq!(info.min_allowed_level(), Level::new(0));
    }

    #[test]
    fn min_level_floor_holds() {
        let prefs = ClientPrefs {
            min_level: Some(Level::new(2)),
            ..ClientPrefs::default()
        };
        let info = ClientInfo::new(flow(), BitrateLadder::testbed()).with_prefs(prefs);
        assert_eq!(info.min_allowed_level(), Level::new(2));
    }
}
