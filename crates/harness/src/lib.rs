//! `flare-harness`: parallel experiment execution plus runtime invariants.
//!
//! Two cooperating pieces:
//!
//! 1. A [work-stealing thread pool](pool) that fans independent simulation
//!    runs across cores while preserving bit-identical output: jobs construct
//!    all of their state (configs, RNG streams, trace recorders) inside the
//!    job closure, so the pool only changes which thread executes a run.
//!    [`serial_parallel_divergence`] makes that contract executable.
//! 2. A [runtime invariant layer](invariant) that checks the paper's
//!    feasibility constraints — Eq. (4a) RB-budget feasibility, Eq. (4b)
//!    one-step-up, MAC-layer RB conservation, GBR lease return, player
//!    buffer sanity, and monotone versioned installs — inline while a run
//!    executes, surfacing violations as structured trace events with an
//!    optional hard-failure (panic) mode for tests and CI.
//!
//! The crate deliberately depends only on `flare-sim` (time) and
//! `flare-trace` (event surface): observations are plain numbers, and job
//! closures are generic, so every experiment family in `flare-scenarios`
//! can adopt the harness without dependency cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod invariant;
pub mod pool;
pub mod shard;

pub use invariant::{
    Invariant, InvariantSet, LeaseReturn, MonotoneInstall, Observation, OneStepUp, PlayerSanity,
    RateFeasibility, RbConservation, Violation,
};
pub use pool::{effective_jobs, run_indexed, serial_parallel_divergence};
pub use shard::ShardPool;
