//! Work-stealing thread pool for independent, index-addressed jobs.
//!
//! The unit of work is "run job `i`" for `i` in `0..n_jobs`. Jobs must be
//! independent: each FLARE experiment run builds its own `SimConfig`, RNG
//! streams (via `flare_sim::rng::stream`), and trace recorder inside the job
//! closure, so executing runs on different threads cannot perturb each other
//! and parallel output is bit-identical to serial output. The pool only
//! changes *which thread* executes a run, never *what* the run computes.
//!
//! Scheduling is classic work stealing over `std::thread::scope`: jobs are
//! dealt round-robin into one deque per worker; each worker pops its own
//! deque from the front and, when empty, steals from the back of a victim's
//! deque. Results land in a slot vector indexed by job id, so the returned
//! `Vec` is always in job order regardless of execution order.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Resolves a `--jobs` request to a worker count: `0` means "all cores".
pub fn effective_jobs(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    }
}

/// Runs `job(0..n_jobs)` on up to `jobs` worker threads and returns the
/// results in job order.
///
/// `jobs == 0` uses all available cores; `jobs == 1` (or a single job)
/// degenerates to a plain serial loop on the calling thread, which is the
/// reference execution the parallel path must match bit-for-bit.
///
/// # Panics
///
/// Propagates a panic from any job (the scope join re-raises it), so a
/// hard-fail invariant violation inside one run aborts the whole sweep.
pub fn run_indexed<T, F>(n_jobs: usize, jobs: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = effective_jobs(jobs).min(n_jobs.max(1));
    if workers <= 1 {
        return (0..n_jobs).map(job).collect();
    }

    let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| Mutex::new((w..n_jobs).step_by(workers).collect()))
        .collect();
    let slots: Vec<Mutex<Option<T>>> = (0..n_jobs).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let queues = &queues;
                let slots = &slots;
                let job = &job;
                scope.spawn(move || loop {
                    let mut next = queues[w].lock().expect("queue poisoned").pop_front();
                    if next.is_none() {
                        // All jobs exist up front, so an empty sweep over
                        // every victim means nothing is left to run or steal.
                        for v in 1..workers {
                            let victim = (w + v) % workers;
                            next = queues[victim].lock().expect("queue poisoned").pop_back();
                            if next.is_some() {
                                break;
                            }
                        }
                    }
                    let Some(i) = next else { break };
                    let out = job(i);
                    *slots[i].lock().expect("slot poisoned") = Some(out);
                })
            })
            .collect();
        // Re-raise the original payload so a hard-fail invariant's message
        // reaches the caller instead of a generic "scoped thread panicked".
        for handle in handles {
            if let Err(payload) = handle.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot poisoned")
                .expect("worker exited without producing its result")
        })
        .collect()
}

/// Runs the same job set serially and with `jobs` workers and returns the
/// index of the first divergent result, if any.
///
/// This is the harness's determinism contract made executable: callers pass a
/// closure returning a comparable per-run artifact (typically a JSONL trace
/// snapshot from `flare-trace`) and assert the result is `None`.
pub fn serial_parallel_divergence<T, F>(n_jobs: usize, jobs: usize, job: F) -> Option<usize>
where
    T: Send + PartialEq,
    F: Fn(usize) -> T + Sync,
{
    let serial = run_indexed(n_jobs, 1, &job);
    let parallel = run_indexed(n_jobs, jobs, &job);
    serial.iter().zip(parallel.iter()).position(|(a, b)| a != b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn zero_jobs_means_all_cores() {
        assert!(effective_jobs(0) >= 1);
        assert_eq!(effective_jobs(3), 3);
    }

    #[test]
    fn results_are_in_job_order() {
        for jobs in [1, 2, 4, 8] {
            let out = run_indexed(17, jobs, |i| i * i);
            assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn handles_edge_sizes() {
        assert_eq!(run_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(1, 4, |i| i + 10), vec![10]);
        // More workers than jobs: excess workers find nothing to steal.
        assert_eq!(run_indexed(2, 16, |i| i), vec![0, 1]);
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = run_indexed(64, 4, |i| {
            counter.fetch_add(1, Ordering::SeqCst);
            i
        });
        assert_eq!(counter.load(Ordering::SeqCst), 64);
        assert_eq!(out.len(), 64);
    }

    #[test]
    fn parallel_matches_serial_for_pure_jobs() {
        assert_eq!(
            serial_parallel_divergence(32, 4, |i| (i as u64).wrapping_mul(0x9e37_79b9)),
            None
        );
    }

    #[test]
    fn divergence_reports_first_mismatch() {
        // A job that depends on shared mutable state is exactly what the
        // harness forbids; the checker must flag it.
        let calls = AtomicUsize::new(0);
        let got = serial_parallel_divergence(4, 2, |_| calls.fetch_add(1, Ordering::SeqCst));
        assert!(got.is_some());
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn job_panics_propagate() {
        let _ = run_indexed(4, 2, |i| {
            if i == 2 {
                panic!("boom");
            }
            i
        });
    }
}
