//! Persistent shard-owning worker pool with a full-barrier `each`.
//!
//! [`run_indexed`](crate::pool::run_indexed) parallelises *independent*
//! runs: each job builds, runs, and discards its own state inside the job
//! closure. A sharded multi-cell simulation is different in two ways: shard
//! state (a whole cell simulation) must *persist* across many rounds of
//! work separated by coordination barriers, and that state is deliberately
//! not [`Send`] (a cell shares assignment state between plugin and player
//! via `Rc`). [`ShardPool`] therefore inverts the ownership: worker threads
//! **build and own** their shards from a `Send + Sync` builder, and callers
//! ship boxed closures to the shards instead of shipping shards into
//! closures. Only the builder, the round closures, and the per-round
//! results ever cross a thread boundary.
//!
//! [`ShardPool::each`] is a full barrier: it returns only once every shard
//! has finished the round, with results merged in shard-index order
//! regardless of which worker ran which shard. With `jobs <= 1` the pool
//! degenerates to a caller-thread loop in ascending shard order — the
//! reference execution the threaded pool must match bit-for-bit. Shard
//! construction and per-round work must therefore not depend on cross-shard
//! ordering; per-shard seeded RNG streams and per-shard trace recorders
//! satisfy this by construction.

use std::any::Any;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::pool::effective_jobs;

/// A unit of work executed by a worker against the shards it owns.
///
/// The closure only captures `Send` data; the `&mut Vec` it receives lives
/// on the worker thread, which is what lets `S` itself be `!Send`.
type Command<S> = Box<dyn FnOnce(&mut Vec<(usize, S)>) + Send>;

/// A pool of `n_shards` persistent stateful shards spread over worker
/// threads, driven in rounds by [`ShardPool::each`].
pub struct ShardPool<S> {
    n_shards: usize,
    inner: Inner<S>,
}

enum Inner<S> {
    /// `jobs <= 1`: shards live on the caller thread in ascending index
    /// order. This is the serial reference execution.
    Serial(Vec<(usize, S)>),
    Threaded(Vec<Worker<S>>),
}

struct Worker<S> {
    sender: Sender<Command<S>>,
    handle: JoinHandle<()>,
}

fn worker_loop<S>(
    mine: Vec<usize>,
    builder: Arc<dyn Fn(usize) -> S + Send + Sync>,
    rx: Receiver<Command<S>>,
) {
    let mut shards: Vec<(usize, S)> = mine.into_iter().map(|i| (i, builder(i))).collect();
    while let Ok(cmd) = rx.recv() {
        cmd(&mut shards);
    }
}

impl<S: 'static> ShardPool<S> {
    /// Builds `n_shards` shards via `builder(shard_index)` on up to `jobs`
    /// worker threads (`0` = all cores; `<= 1` = serial on the caller).
    ///
    /// Shards are dealt round-robin: worker `w` of `W` owns shards
    /// `w, w+W, w+2W, …` and builds them in ascending index order.
    /// Construction must not depend on cross-shard ordering.
    pub fn build<B>(n_shards: usize, jobs: usize, builder: B) -> Self
    where
        B: Fn(usize) -> S + Send + Sync + 'static,
    {
        let workers = effective_jobs(jobs).min(n_shards.max(1));
        if workers <= 1 {
            let shards = (0..n_shards).map(|i| (i, builder(i))).collect();
            return ShardPool {
                n_shards,
                inner: Inner::Serial(shards),
            };
        }
        let builder: Arc<dyn Fn(usize) -> S + Send + Sync> = Arc::new(builder);
        let workers = (0..workers)
            .map(|w| {
                let mine: Vec<usize> = (w..n_shards).step_by(workers).collect();
                let builder = Arc::clone(&builder);
                let (sender, rx) = channel::<Command<S>>();
                let handle = std::thread::spawn(move || worker_loop(mine, builder, rx));
                Worker { sender, handle }
            })
            .collect();
        ShardPool {
            n_shards,
            inner: Inner::Threaded(workers),
        }
    }

    /// Number of shards in the pool.
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// Number of OS threads executing shard work (1 = serial caller thread).
    pub fn workers(&self) -> usize {
        match &self.inner {
            Inner::Serial(_) => 1,
            Inner::Threaded(ws) => ws.len(),
        }
    }

    /// Runs `f(shard_index, &mut shard)` on every shard and returns the
    /// results in shard-index order. This is a full barrier: no shard can
    /// observe the next round before every shard has finished this one.
    ///
    /// # Panics
    ///
    /// Re-raises the original payload if `f` panics on any shard (the pool
    /// is torn down first, so the failure is not silently retried).
    pub fn each<T, F>(&mut self, f: F) -> Vec<T>
    where
        T: Send + 'static,
        F: Fn(usize, &mut S) -> T + Send + Sync + 'static,
    {
        let n_shards = self.n_shards;
        match &mut self.inner {
            Inner::Serial(shards) => shards.iter_mut().map(|(i, s)| f(*i, s)).collect(),
            Inner::Threaded(workers) => {
                let f = Arc::new(f);
                let (tx, rx) = channel::<(usize, T)>();
                let mut dead = false;
                for worker in workers.iter() {
                    let f = Arc::clone(&f);
                    let tx = tx.clone();
                    let cmd: Command<S> = Box::new(move |shards| {
                        for (i, s) in shards.iter_mut() {
                            let out = f(*i, s);
                            // A dropped receiver means the caller is
                            // already unwinding; the result has nowhere
                            // useful to go.
                            let _ = tx.send((*i, out));
                        }
                    });
                    if worker.sender.send(cmd).is_err() {
                        // The worker died in an earlier round; join below
                        // re-raises its payload.
                        dead = true;
                        break;
                    }
                }
                // The receive loop must see disconnection, not block on the
                // caller's own sender.
                drop(tx);
                if dead {
                    Self::teardown(workers);
                }
                let mut slots: Vec<Option<T>> = (0..n_shards).map(|_| None).collect();
                let mut received = 0usize;
                while received < n_shards {
                    match rx.recv() {
                        Ok((i, out)) => {
                            slots[i] = Some(out);
                            received += 1;
                        }
                        Err(_) => Self::teardown(workers),
                    }
                }
                slots
                    .into_iter()
                    .map(|s| s.expect("worker finished round without producing its result"))
                    .collect()
            }
        }
    }

    /// Consumes the pool, draining every shard through `f(shard_index,
    /// shard)`, and returns the results in shard-index order after joining
    /// all workers.
    pub fn finish<R, F>(mut self, f: F) -> Vec<R>
    where
        R: Send + 'static,
        F: Fn(usize, S) -> R + Send + Sync + 'static,
    {
        let n_shards = self.n_shards;
        match std::mem::replace(&mut self.inner, Inner::Serial(Vec::new())) {
            Inner::Serial(shards) => shards.into_iter().map(|(i, s)| f(i, s)).collect(),
            Inner::Threaded(mut workers) => {
                let f = Arc::new(f);
                let (tx, rx) = channel::<(usize, R)>();
                let mut dead = false;
                for worker in workers.iter() {
                    let f = Arc::clone(&f);
                    let tx = tx.clone();
                    let cmd: Command<S> = Box::new(move |shards| {
                        for (i, s) in shards.drain(..) {
                            let _ = tx.send((i, f(i, s)));
                        }
                    });
                    if worker.sender.send(cmd).is_err() {
                        dead = true;
                        break;
                    }
                }
                drop(tx);
                if dead {
                    Self::teardown(&mut workers);
                }
                let mut slots: Vec<Option<R>> = (0..n_shards).map(|_| None).collect();
                let mut received = 0usize;
                while received < n_shards {
                    match rx.recv() {
                        Ok((i, out)) => {
                            slots[i] = Some(out);
                            received += 1;
                        }
                        Err(_) => Self::teardown(&mut workers),
                    }
                }
                for worker in workers.drain(..) {
                    drop(worker.sender);
                    if let Err(payload) = worker.handle.join() {
                        std::panic::resume_unwind(payload);
                    }
                }
                slots
                    .into_iter()
                    .map(|s| s.expect("worker exited without draining its shards"))
                    .collect()
            }
        }
    }

    /// Joins every worker and re-raises the first panic payload. Called
    /// when a round ends early (a worker disconnected), so the pool is
    /// already broken.
    fn teardown(workers: &mut Vec<Worker<S>>) -> ! {
        let mut payload: Option<Box<dyn Any + Send>> = None;
        for worker in workers.drain(..) {
            drop(worker.sender);
            if let Err(p) = worker.handle.join() {
                payload.get_or_insert(p);
            }
        }
        match payload {
            Some(p) => std::panic::resume_unwind(p),
            None => panic!("shard worker disconnected without panicking"),
        }
    }
}

impl<S> Drop for ShardPool<S> {
    fn drop(&mut self) {
        if let Inner::Threaded(workers) = &mut self.inner {
            for worker in workers.drain(..) {
                drop(worker.sender);
                // Ignore the join result: if the worker panicked we are
                // either already unwinding from `teardown` or the caller
                // abandoned the pool, and a panic-in-drop would abort.
                let _ = worker.handle.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use std::rc::Rc;

    /// A deliberately `!Send` shard: the pool must work with `Rc` state.
    fn counter_pool(n: usize, jobs: usize) -> ShardPool<Rc<Cell<u64>>> {
        ShardPool::build(n, jobs, |i| Rc::new(Cell::new(i as u64)))
    }

    #[test]
    fn each_returns_results_in_shard_order() {
        for jobs in [1, 2, 4, 8] {
            let mut pool = counter_pool(9, jobs);
            let out = pool.each(|i, s| (i as u64) * 100 + s.get());
            assert_eq!(out, (0..9).map(|i| i as u64 * 101).collect::<Vec<_>>());
        }
    }

    #[test]
    fn state_persists_across_rounds_and_matches_serial() {
        let run = |jobs: usize| {
            let mut pool = counter_pool(7, jobs);
            for round in 0..5u64 {
                pool.each(move |i, s| {
                    s.set(s.get().wrapping_mul(31).wrapping_add(round + i as u64));
                });
            }
            pool.finish(|i, s| (i, s.get()))
        };
        let serial = run(1);
        assert_eq!(serial, run(4));
        assert_eq!(serial.len(), 7);
    }

    #[test]
    fn empty_pool_is_fine() {
        let mut pool = counter_pool(0, 4);
        assert_eq!(pool.each(|_, s| s.get()), Vec::<u64>::new());
        assert_eq!(pool.finish(|_, s| s.get()), Vec::<u64>::new());
    }

    #[test]
    fn more_workers_than_shards_caps_at_shard_count() {
        let pool = counter_pool(2, 16);
        assert!(pool.workers() <= 2);
    }

    #[test]
    #[should_panic(expected = "shard 3 exploded")]
    fn shard_panics_propagate_with_payload() {
        let mut pool = counter_pool(6, 3);
        pool.each(|i, _| {
            if i == 3 {
                panic!("shard 3 exploded");
            }
        });
    }

    #[test]
    fn dropping_a_live_pool_joins_workers() {
        let pool = counter_pool(4, 2);
        drop(pool); // must not hang or leak threads
    }
}
