//! Runtime invariant checking for FLARE simulation runs.
//!
//! Each [`Invariant`] encodes one constraint the paper (or the simulator's
//! own contracts) says must hold *while a run executes*, not just in its
//! final statistics:
//!
//! - [`RbConservation`]: an eNodeB TTI never grants more RBs than the cell
//!   has (50 by default) — the MAC-layer counterpart of the solver's budget.
//! - [`LeaseReturn`]: when a GBR lease expires, the reservation is actually
//!   cleared so the leased RBs return to the PF pool.
//! - [`OneStepUp`]: solver outputs obey Eq. (4b) — a client's level moves up
//!   by at most one step per BAI and never beyond the ladder top.
//! - [`RateFeasibility`]: solver outputs obey Eq. (4a) — the assigned rates,
//!   weighted by the same previous-BAI `(n_u, b_u)` efficiency estimates the
//!   server used, fit within the RB budget fraction `r_cap`.
//! - [`PlayerSanity`]: player buffers never go negative, rebuffer counters
//!   are monotone, and stall/resume transitions pair with them correctly.
//! - [`MonotoneInstall`]: `VersionedAssignment` installs accept exactly the
//!   assignments with a strictly newer sequence number.
//!
//! Checkers consume [`Observation`]s — plain-number snapshots emitted by the
//! simulation at natural checkpoints (per TTI, per BAI, per install). Keeping
//! observations primitive means this crate needs no dependency on the LTE,
//! solver, or player crates, and the same checkers run identically in unit
//! tests, property tests, and full experiment sweeps.
//!
//! Violations are surfaced as structured [`Category::Invariant`] trace
//! events (plus an `invariant.violations` counter) and, in hard-fail mode,
//! as a panic — the mode tests and `repro --check-invariants` use.

use std::collections::HashMap;

use flare_sim::Time;
use flare_trace::{Category, TraceHandle};

/// One snapshot of simulator state handed to every registered [`Invariant`].
///
/// All payloads are plain numbers so that producing an observation is cheap
/// and the checkers stay decoupled from simulator internals.
#[derive(Debug, Clone, PartialEq)]
pub enum Observation {
    /// One eNodeB TTI completed: `granted` RBs were handed out against a
    /// per-TTI budget of `budget` RBs.
    TtiGrant {
        /// RBs granted across all flows this TTI.
        granted: u32,
        /// The cell's RB budget per TTI (`rbs_per_tti`).
        budget: u32,
    },
    /// A GBR lease for `flow` reached its expiry this TTI.
    LeaseExpiry {
        /// Flow whose lease expired.
        flow: u64,
        /// Whether the eNodeB actually cleared the GBR reservation.
        gbr_cleared: bool,
    },
    /// The server emitted one per-flow assignment at a BAI boundary.
    Assignment {
        /// Flow the assignment targets.
        flow: u64,
        /// The server's level for this flow before the solve, if the flow
        /// was already registered.
        prev_level: Option<usize>,
        /// The newly assigned ladder level.
        new_level: usize,
        /// Highest valid ladder index.
        max_level: usize,
    },
    /// Aggregate RB-budget usage of one BAI's assignments, recomputed from
    /// the same report statistics the server solved against.
    RateBudget {
        /// `sum_u w_u R_u / N`: fraction of the BAI RB budget consumed.
        used_fraction: f64,
        /// Budget cap from Eq. (4a) (`0.999` when data flows share the cell).
        r_cap: f64,
        /// Slack for discretization and kbps rounding in the message path.
        tolerance: f64,
    },
    /// Per-TTI snapshot of one player's playback state.
    PlayerState {
        /// UE index of the player.
        ue: u64,
        /// Buffered media in milliseconds (signed so a corrupted negative
        /// value is representable and detectable).
        buffer_ms: i64,
        /// Whether playback is stalled.
        stalled: bool,
        /// Monotone count of rebuffer events so far.
        rebuffer_events: u64,
        /// Buffer level required before a stalled player resumes.
        resume_threshold_ms: i64,
        /// Whether the player has downloaded every segment (it may then
        /// resume below threshold to drain the buffer).
        finished: bool,
    },
    /// A versioned assignment install attempt at a client plugin.
    Install {
        /// UE index of the plugin.
        ue: u64,
        /// Sequence number of the arriving assignment.
        seq: u64,
        /// Newest sequence number installed before this attempt.
        prev_seq: Option<u64>,
        /// Whether the plugin accepted the install.
        accepted: bool,
    },
}

/// A detected invariant violation.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Name of the invariant that fired (stable, test-matchable).
    pub invariant: &'static str,
    /// Human-readable description with the offending values.
    pub message: String,
}

/// A runtime-checkable constraint over a stream of [`Observation`]s.
///
/// Checkers may keep state across observations (e.g. the previous rebuffer
/// count per UE) but must be deterministic functions of the observation
/// stream: the harness runs them inline inside simulation runs, so any
/// nondeterminism here would break serial/parallel trace equality.
pub trait Invariant {
    /// Stable name used in trace events and failure messages.
    fn name(&self) -> &'static str;

    /// Feeds one observation; returns a violation if the constraint broke.
    fn observe(&mut self, now: Time, obs: &Observation) -> Option<Violation>;
}

/// Per-TTI RB conservation: grants never exceed the cell budget.
#[derive(Debug, Default)]
pub struct RbConservation;

impl Invariant for RbConservation {
    fn name(&self) -> &'static str {
        "rb_conservation"
    }

    fn observe(&mut self, _now: Time, obs: &Observation) -> Option<Violation> {
        match *obs {
            Observation::TtiGrant { granted, budget } if granted > budget => Some(Violation {
                invariant: self.name(),
                message: format!("TTI granted {granted} RBs > budget {budget}"),
            }),
            _ => None,
        }
    }
}

/// Expired GBR leases must return their RBs to the shared pool.
#[derive(Debug, Default)]
pub struct LeaseReturn;

impl Invariant for LeaseReturn {
    fn name(&self) -> &'static str {
        "lease_return"
    }

    fn observe(&mut self, _now: Time, obs: &Observation) -> Option<Violation> {
        match *obs {
            Observation::LeaseExpiry { flow, gbr_cleared } if !gbr_cleared => Some(Violation {
                invariant: self.name(),
                message: format!("flow {flow} lease expired but GBR reservation persists"),
            }),
            _ => None,
        }
    }
}

/// Eq. (4b): per BAI, a level increases by at most one step and stays on
/// the ladder.
#[derive(Debug, Default)]
pub struct OneStepUp;

impl Invariant for OneStepUp {
    fn name(&self) -> &'static str {
        "one_step_up"
    }

    fn observe(&mut self, _now: Time, obs: &Observation) -> Option<Violation> {
        let Observation::Assignment {
            flow,
            prev_level,
            new_level,
            max_level,
        } = *obs
        else {
            return None;
        };
        if new_level > max_level {
            return Some(Violation {
                invariant: self.name(),
                message: format!("flow {flow} assigned level {new_level} > ladder top {max_level}"),
            });
        }
        if let Some(prev) = prev_level {
            if new_level > prev + 1 {
                return Some(Violation {
                    invariant: self.name(),
                    message: format!(
                        "flow {flow} jumped {prev} -> {new_level} (more than one step up)"
                    ),
                });
            }
        }
        None
    }
}

/// Eq. (4a): one BAI's assignments fit the RB budget fraction.
#[derive(Debug, Default)]
pub struct RateFeasibility;

impl Invariant for RateFeasibility {
    fn name(&self) -> &'static str {
        "rate_feasibility"
    }

    fn observe(&mut self, _now: Time, obs: &Observation) -> Option<Violation> {
        match *obs {
            Observation::RateBudget {
                used_fraction,
                r_cap,
                tolerance,
            } if used_fraction > r_cap + tolerance => Some(Violation {
                invariant: self.name(),
                message: format!(
                    "assignments use {used_fraction:.6} of the RB budget > r_cap {r_cap} (+{tolerance})"
                ),
            }),
            _ => None,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct PlayerSeen {
    stalled: bool,
    rebuffer_events: u64,
}

/// Player buffer non-negativity, rebuffer-counter monotonicity, and
/// stall/resume pairing.
#[derive(Debug, Default)]
pub struct PlayerSanity {
    seen: HashMap<u64, PlayerSeen>,
}

impl Invariant for PlayerSanity {
    fn name(&self) -> &'static str {
        "player_sanity"
    }

    fn observe(&mut self, _now: Time, obs: &Observation) -> Option<Violation> {
        let Observation::PlayerState {
            ue,
            buffer_ms,
            stalled,
            rebuffer_events,
            resume_threshold_ms,
            finished,
        } = *obs
        else {
            return None;
        };
        let fail = |message: String| {
            Some(Violation {
                invariant: "player_sanity",
                message,
            })
        };
        if buffer_ms < 0 {
            return fail(format!("ue {ue} buffer is negative: {buffer_ms} ms"));
        }
        let Some(last) = self.seen.get(&ue).copied() else {
            self.seen.insert(
                ue,
                PlayerSeen {
                    stalled,
                    rebuffer_events,
                },
            );
            return None;
        };
        self.seen.insert(
            ue,
            PlayerSeen {
                stalled,
                rebuffer_events,
            },
        );
        if rebuffer_events < last.rebuffer_events {
            return fail(format!(
                "ue {ue} rebuffer counter regressed {} -> {rebuffer_events}",
                last.rebuffer_events
            ));
        }
        let delta = rebuffer_events - last.rebuffer_events;
        if delta > 1 {
            return fail(format!(
                "ue {ue} rebuffer counter jumped by {delta} in one observation"
            ));
        }
        let entered_stall = stalled && !last.stalled;
        if entered_stall && delta != 1 {
            return fail(format!(
                "ue {ue} entered a stall without counting a rebuffer"
            ));
        }
        if delta == 1 && !entered_stall {
            return fail(format!(
                "ue {ue} counted a rebuffer without entering a stall"
            ));
        }
        let resumed = !stalled && last.stalled;
        if resumed && !finished && buffer_ms < resume_threshold_ms {
            return fail(format!(
                "ue {ue} resumed at {buffer_ms} ms < resume threshold {resume_threshold_ms} ms"
            ));
        }
        None
    }
}

/// `VersionedAssignment` installs accept exactly the strictly-newer
/// sequence numbers.
#[derive(Debug, Default)]
pub struct MonotoneInstall;

impl Invariant for MonotoneInstall {
    fn name(&self) -> &'static str {
        "monotone_install"
    }

    fn observe(&mut self, _now: Time, obs: &Observation) -> Option<Violation> {
        let Observation::Install {
            ue,
            seq,
            prev_seq,
            accepted,
        } = *obs
        else {
            return None;
        };
        let is_newer = prev_seq.is_none_or(|p| seq > p);
        if accepted && !is_newer {
            return Some(Violation {
                invariant: self.name(),
                message: format!(
                    "ue {ue} installed seq {seq} although seq {} was current",
                    prev_seq.unwrap_or(0)
                ),
            });
        }
        if !accepted && is_newer {
            return Some(Violation {
                invariant: self.name(),
                message: format!("ue {ue} rejected fresh seq {seq} (prev {prev_seq:?})"),
            });
        }
        None
    }
}

/// A pluggable set of invariants fed from one observation stream.
///
/// Every violation is recorded as a [`Category::Invariant`] trace event and
/// bumps the `invariant.violations` counter; in hard-fail mode the set then
/// panics, which the work-stealing pool propagates so a violating run aborts
/// the whole sweep.
pub struct InvariantSet {
    checks: Vec<Box<dyn Invariant>>,
    violations: Vec<(Time, Violation)>,
    hard_fail: bool,
    trace: TraceHandle,
}

impl InvariantSet {
    /// An empty set; [`push`](Self::push) checkers onto it.
    pub fn empty() -> Self {
        Self {
            checks: Vec::new(),
            violations: Vec::new(),
            hard_fail: false,
            trace: TraceHandle::disabled(),
        }
    }

    /// The full standard battery described in the module docs.
    pub fn standard() -> Self {
        let mut set = Self::empty();
        set.push(Box::new(RbConservation));
        set.push(Box::new(LeaseReturn));
        set.push(Box::new(OneStepUp));
        set.push(Box::new(RateFeasibility));
        set.push(Box::<PlayerSanity>::default());
        set.push(Box::new(MonotoneInstall));
        set
    }

    /// Adds a checker.
    pub fn push(&mut self, check: Box<dyn Invariant>) {
        self.checks.push(check);
    }

    /// Enables or disables panicking on the first violation (after it has
    /// been recorded to the trace).
    pub fn with_hard_fail(mut self, on: bool) -> Self {
        self.hard_fail = on;
        self
    }

    /// Routes violation events and counters into `trace`.
    pub fn with_trace(mut self, trace: TraceHandle) -> Self {
        self.trace = trace;
        self
    }

    /// Feeds one observation to every checker.
    ///
    /// # Panics
    ///
    /// Panics on a violation when hard-fail mode is enabled.
    pub fn observe(&mut self, now: Time, obs: &Observation) {
        for check in &mut self.checks {
            let Some(v) = check.observe(now, obs) else {
                continue;
            };
            self.trace.incr("invariant.violations", 1);
            self.trace
                .record(now, Category::Invariant, "violation", |e| {
                    e.str("inv", v.invariant).str("msg", v.message.clone());
                });
            if self.hard_fail {
                panic!(
                    "invariant `{}` violated at t={} ms: {}",
                    v.invariant,
                    now.as_millis(),
                    v.message
                );
            }
            self.violations.push((now, v));
        }
    }

    /// Violations collected so far (always empty in hard-fail mode, which
    /// panics instead of collecting).
    pub fn violations(&self) -> &[(Time, Violation)] {
        &self.violations
    }

    /// Number of collected violations.
    pub fn violation_count(&self) -> usize {
        self.violations.len()
    }

    /// Panics with a readable listing if any violation was collected.
    pub fn assert_clean(&self) {
        assert!(
            self.violations.is_empty(),
            "invariant violations:\n{}",
            self.violations
                .iter()
                .map(|(t, v)| format!("  t={} ms [{}] {}", t.as_millis(), v.invariant, v.message))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

impl std::fmt::Debug for InvariantSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InvariantSet")
            .field("checks", &self.checks.len())
            .field("violations", &self.violations.len())
            .field("hard_fail", &self.hard_fail)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flare_trace::TraceConfig;

    fn t(secs: u64) -> Time {
        Time::from_secs(secs)
    }

    #[test]
    fn rb_conservation_flags_over_grant_only() {
        let mut set = InvariantSet::standard();
        set.observe(
            t(1),
            &Observation::TtiGrant {
                granted: 50,
                budget: 50,
            },
        );
        assert_eq!(set.violation_count(), 0);
        set.observe(
            t(1),
            &Observation::TtiGrant {
                granted: 51,
                budget: 50,
            },
        );
        assert_eq!(set.violation_count(), 1);
        assert_eq!(set.violations()[0].1.invariant, "rb_conservation");
    }

    #[test]
    fn lease_return_requires_cleared_gbr() {
        let mut set = InvariantSet::standard();
        set.observe(
            t(2),
            &Observation::LeaseExpiry {
                flow: 3,
                gbr_cleared: true,
            },
        );
        set.observe(
            t(2),
            &Observation::LeaseExpiry {
                flow: 4,
                gbr_cleared: false,
            },
        );
        assert_eq!(set.violation_count(), 1);
        assert_eq!(set.violations()[0].1.invariant, "lease_return");
    }

    #[test]
    fn one_step_up_allows_single_step_and_any_decrease() {
        let mut set = InvariantSet::standard();
        for (prev, new) in [(Some(2), 3), (Some(2), 0), (None, 5), (Some(5), 5)] {
            set.observe(
                t(3),
                &Observation::Assignment {
                    flow: 1,
                    prev_level: prev,
                    new_level: new,
                    max_level: 5,
                },
            );
        }
        assert_eq!(set.violation_count(), 0);
        set.observe(
            t(3),
            &Observation::Assignment {
                flow: 1,
                prev_level: Some(1),
                new_level: 3,
                max_level: 5,
            },
        );
        set.observe(
            t(3),
            &Observation::Assignment {
                flow: 1,
                prev_level: Some(5),
                new_level: 6,
                max_level: 5,
            },
        );
        assert_eq!(set.violation_count(), 2);
    }

    #[test]
    fn rate_feasibility_respects_tolerance() {
        let mut set = InvariantSet::standard();
        set.observe(
            t(4),
            &Observation::RateBudget {
                used_fraction: 1.0009,
                r_cap: 0.999,
                tolerance: 0.005,
            },
        );
        assert_eq!(set.violation_count(), 0);
        set.observe(
            t(4),
            &Observation::RateBudget {
                used_fraction: 1.2,
                r_cap: 0.999,
                tolerance: 0.005,
            },
        );
        assert_eq!(set.violation_count(), 1);
    }

    fn player(buffer_ms: i64, stalled: bool, rebuffer_events: u64, finished: bool) -> Observation {
        Observation::PlayerState {
            ue: 0,
            buffer_ms,
            stalled,
            rebuffer_events,
            resume_threshold_ms: 10_000,
            finished,
        }
    }

    #[test]
    fn player_sanity_accepts_a_normal_stall_cycle() {
        let mut set = InvariantSet::standard();
        set.observe(t(1), &player(4000, false, 0, false));
        set.observe(t(2), &player(0, true, 1, false));
        set.observe(t(3), &player(12_000, false, 1, false));
        // Finished players may drain below the resume threshold.
        set.observe(t(4), &player(500, false, 1, true));
        assert_eq!(set.violation_count(), 0);
    }

    #[test]
    fn player_sanity_catches_each_failure_mode() {
        for (obs_a, obs_b) in [
            // Negative buffer.
            (player(1000, false, 0, false), player(-1, false, 0, false)),
            // Counter regression.
            (player(1000, false, 2, false), player(1000, false, 1, false)),
            // Stall entered without counting a rebuffer.
            (player(1000, false, 1, false), player(0, true, 1, false)),
            // Rebuffer counted without a stall transition.
            (player(1000, false, 1, false), player(1000, false, 2, false)),
            // Resume below threshold while unfinished.
            (player(0, true, 1, false), player(200, false, 1, false)),
        ] {
            let mut set = InvariantSet::standard();
            set.observe(t(1), &obs_a);
            assert_eq!(set.violation_count(), 0, "setup tripped for {obs_a:?}");
            set.observe(t(2), &obs_b);
            assert_eq!(set.violation_count(), 1, "missed violation for {obs_b:?}");
        }
    }

    #[test]
    fn monotone_install_checks_both_directions() {
        let mut set = InvariantSet::standard();
        set.observe(
            t(5),
            &Observation::Install {
                ue: 1,
                seq: 2,
                prev_seq: Some(1),
                accepted: true,
            },
        );
        set.observe(
            t(5),
            &Observation::Install {
                ue: 1,
                seq: 2,
                prev_seq: Some(2),
                accepted: false,
            },
        );
        assert_eq!(set.violation_count(), 0);
        set.observe(
            t(5),
            &Observation::Install {
                ue: 1,
                seq: 2,
                prev_seq: Some(3),
                accepted: true,
            },
        );
        set.observe(
            t(5),
            &Observation::Install {
                ue: 1,
                seq: 9,
                prev_seq: Some(3),
                accepted: false,
            },
        );
        assert_eq!(set.violation_count(), 2);
    }

    #[test]
    fn violations_surface_as_trace_events_and_counters() {
        let trace = TraceHandle::new(TraceConfig::info());
        let mut set = InvariantSet::standard().with_trace(trace.clone());
        set.observe(
            t(7),
            &Observation::TtiGrant {
                granted: 80,
                budget: 50,
            },
        );
        let events = trace.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].category, Category::Invariant);
        assert_eq!(events[0].name, "violation");
        assert_eq!(events[0].str_field("inv"), Some("rb_conservation"));
        assert_eq!(trace.snapshot().counter("invariant.violations"), 1);
    }

    #[test]
    #[should_panic(expected = "rb_conservation")]
    fn hard_fail_panics_after_recording() {
        let mut set = InvariantSet::standard().with_hard_fail(true);
        set.observe(
            t(8),
            &Observation::TtiGrant {
                granted: 51,
                budget: 50,
            },
        );
    }

    #[test]
    fn assert_clean_passes_on_empty_and_panics_on_violation() {
        let set = InvariantSet::standard();
        set.assert_clean();
        let mut dirty = InvariantSet::standard();
        dirty.observe(
            t(9),
            &Observation::TtiGrant {
                granted: 60,
                budget: 50,
            },
        );
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| dirty.assert_clean()));
        assert!(err.is_err());
    }
}
