//! A versioned assignment cell with staleness tracking.
//!
//! [`super::SharedAssignment`] is the lossless-world cell: whatever was
//! written last is the truth. Over an unreliable control plane that is no
//! longer safe — a delayed assignment can arrive *after* its successor and
//! roll the client back to an old decision, and a silent server leaves the
//! client obeying an assignment the network stopped honouring long ago.
//!
//! [`VersionedAssignment`] fixes both: installs carry the server's BAI
//! sequence number and are rejected unless they advance it, and the cell
//! runs the client's coordination-state machine — counting BAIs since the
//! last fresh assignment, switching to fallback after a configurable
//! staleness threshold, and rejoining only after a hysteresis streak of
//! fresh assignments.

use std::cell::RefCell;
use std::rc::Rc;

use flare_has::Level;

/// Whether the client currently trusts network coordination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoordinationMode {
    /// Assignments are fresh; the plugin obeys them verbatim.
    Coordinated,
    /// Assignments have gone stale; the plugin self-adapts conservatively.
    Fallback,
}

#[derive(Debug)]
struct State {
    level: Option<Level>,
    seq: Option<u64>,
    issued_ms: u64,
    mode: CoordinationMode,
    bais_since_fresh: u32,
    fresh_streak: u32,
    installed_this_bai: bool,
    stale_bais: u32,
    rejoin_bais: u32,
    // Telemetry.
    installs: u64,
    stale_rejections: u64,
    fallback_bais: u64,
}

/// A shared cell carrying the most recent *non-stale* assignment plus the
/// client's coordination-state machine.
///
/// The harness holds one clone (installing delivered assignments, ticking
/// BAI boundaries with [`VersionedAssignment::end_bai`], reading
/// telemetry); the plugin holds the other (reading the level and the
/// current [`CoordinationMode`]).
#[derive(Debug, Clone)]
pub struct VersionedAssignment {
    inner: Rc<RefCell<State>>,
}

impl VersionedAssignment {
    /// An empty cell: fall back after `stale_bais` BAIs without a fresh
    /// assignment, rejoin after `rejoin_bais` consecutive fresh ones.
    ///
    /// # Panics
    ///
    /// Panics if `stale_bais` is zero.
    pub fn new(stale_bais: u32, rejoin_bais: u32) -> Self {
        assert!(stale_bais > 0, "stale threshold must be at least one BAI");
        VersionedAssignment {
            inner: Rc::new(RefCell::new(State {
                level: None,
                seq: None,
                issued_ms: 0,
                mode: CoordinationMode::Coordinated,
                bais_since_fresh: 0,
                fresh_streak: 0,
                installed_this_bai: false,
                stale_bais,
                rejoin_bais,
                installs: 0,
                stale_rejections: 0,
                fallback_bais: 0,
            })),
        }
    }

    /// Installs an assignment. Returns `true` if it advanced the cell's
    /// sequence number; a non-advancing (reordered or replayed) assignment
    /// is rejected and counted, leaving the cell untouched.
    pub fn install(&self, seq: u64, issued_ms: u64, level: Level) -> bool {
        let mut s = self.inner.borrow_mut();
        if let Some(current) = s.seq {
            if seq <= current {
                s.stale_rejections += 1;
                return false;
            }
        }
        s.seq = Some(seq);
        s.issued_ms = issued_ms;
        s.level = Some(level);
        s.installs += 1;
        s.installed_this_bai = true;
        true
    }

    /// Marks a BAI boundary: advances the staleness clock and runs the
    /// fallback/rejoin state machine. Call exactly once per BAI, after
    /// delivering any assignments due in it.
    pub fn end_bai(&self) {
        let mut s = self.inner.borrow_mut();
        if s.installed_this_bai {
            s.installed_this_bai = false;
            s.bais_since_fresh = 0;
            s.fresh_streak += 1;
            if s.mode == CoordinationMode::Fallback && s.fresh_streak >= s.rejoin_bais {
                s.mode = CoordinationMode::Coordinated;
            }
        } else {
            s.bais_since_fresh += 1;
            s.fresh_streak = 0;
            if s.bais_since_fresh >= s.stale_bais {
                s.mode = CoordinationMode::Fallback;
            }
        }
        if s.mode == CoordinationMode::Fallback {
            s.fallback_bais += 1;
        }
    }

    /// The most recently installed level (possibly stale).
    pub fn level(&self) -> Option<Level> {
        self.inner.borrow().level
    }

    /// The highest sequence number installed so far.
    pub fn seq(&self) -> Option<u64> {
        self.inner.borrow().seq
    }

    /// Issue time (ms) of the currently installed assignment.
    pub fn issued_ms(&self) -> u64 {
        self.inner.borrow().issued_ms
    }

    /// The client's current coordination mode.
    pub fn mode(&self) -> CoordinationMode {
        self.inner.borrow().mode
    }

    /// BAIs elapsed since the last fresh assignment.
    pub fn bais_since_fresh(&self) -> u32 {
        self.inner.borrow().bais_since_fresh
    }

    /// Assignments rejected as stale (telemetry).
    pub fn stale_rejections(&self) -> u64 {
        self.inner.borrow().stale_rejections
    }

    /// Assignments accepted (telemetry).
    pub fn installs(&self) -> u64 {
        self.inner.borrow().installs
    }

    /// Total BAIs spent in fallback mode (telemetry).
    pub fn fallback_bais(&self) -> u64 {
        self.inner.borrow().fallback_bais
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn installs_advance_and_stale_installs_reject() {
        let cell = VersionedAssignment::new(3, 2);
        assert!(cell.install(1, 10_000, Level::new(2)));
        assert!(cell.install(3, 30_000, Level::new(4)));
        // A reordered seq-2 assignment arrives late: rejected, state kept.
        assert!(!cell.install(2, 20_000, Level::new(1)));
        assert_eq!(cell.level(), Some(Level::new(4)));
        assert_eq!(cell.seq(), Some(3));
        assert_eq!(cell.stale_rejections(), 1);
        assert_eq!(cell.installs(), 2);
    }

    #[test]
    fn staleness_triggers_fallback_after_threshold() {
        let cell = VersionedAssignment::new(3, 2);
        cell.install(1, 0, Level::new(2));
        cell.end_bai();
        assert_eq!(cell.mode(), CoordinationMode::Coordinated);
        // Three silent BAIs -> fallback on the third.
        cell.end_bai();
        cell.end_bai();
        assert_eq!(cell.mode(), CoordinationMode::Coordinated);
        cell.end_bai();
        assert_eq!(cell.mode(), CoordinationMode::Fallback);
        assert_eq!(cell.bais_since_fresh(), 3);
        assert_eq!(cell.fallback_bais(), 1);
    }

    #[test]
    fn rejoin_needs_a_fresh_streak() {
        let cell = VersionedAssignment::new(1, 2);
        cell.end_bai();
        assert_eq!(cell.mode(), CoordinationMode::Fallback);
        // One fresh BAI is not enough (hysteresis)…
        cell.install(1, 0, Level::new(1));
        cell.end_bai();
        assert_eq!(cell.mode(), CoordinationMode::Fallback);
        // …two consecutive fresh BAIs rejoin.
        cell.install(2, 10_000, Level::new(1));
        cell.end_bai();
        assert_eq!(cell.mode(), CoordinationMode::Coordinated);
    }

    #[test]
    fn a_stale_install_does_not_count_as_fresh() {
        let cell = VersionedAssignment::new(1, 1);
        cell.install(5, 0, Level::new(1));
        cell.end_bai();
        cell.end_bai(); // silent -> fallback
        assert_eq!(cell.mode(), CoordinationMode::Fallback);
        // A replayed old assignment must not rejoin the client.
        assert!(!cell.install(5, 0, Level::new(1)));
        cell.end_bai();
        assert_eq!(cell.mode(), CoordinationMode::Fallback);
    }

    #[test]
    fn clones_share_state() {
        let a = VersionedAssignment::new(3, 2);
        let b = a.clone();
        a.install(1, 500, Level::new(3));
        assert_eq!(b.level(), Some(Level::new(3)));
        assert_eq!(b.issued_ms(), 500);
    }
}
