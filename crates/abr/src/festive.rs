//! FESTIVE (Jiang, Sekar, Zhang — CoNEXT 2012), as configured in Table IV.

use flare_has::estimator::{HarmonicMean, ThroughputEstimator, ThroughputSample};
use flare_has::{AdaptContext, DownloadSample, Level, RateAdapter};

/// FESTIVE parameters (defaults from the paper's Table IV).
#[derive(Debug, Clone, PartialEq)]
pub struct FestiveConfig {
    /// Gradual-switching constant: an up-switch from level `L` requires
    /// having stayed `k · (L + 1)` segments at the current level.
    pub k: u32,
    /// Bandwidth safety factor: the target rate is the highest encoding
    /// `≤ p · estimate`.
    pub p: f64,
    /// Weight of the efficiency term in the delayed-update score
    /// `score_stability + α · score_efficiency`.
    pub alpha: f64,
    /// Harmonic-mean window (segments).
    pub window: usize,
}

impl Default for FestiveConfig {
    fn default() -> Self {
        FestiveConfig {
            k: 4,
            p: 0.85,
            alpha: 12.0,
            window: 20,
        }
    }
}

/// The FESTIVE rate controller.
///
/// Per segment:
/// 1. estimate bandwidth `w` as the harmonic mean of the last 20 samples;
/// 2. compute the reference `b_ref = max{b : b ≤ p·w}`;
/// 3. apply *gradual switching*: move at most one level towards `b_ref`,
///    and only switch up after staying `k·(level+1)` segments;
/// 4. apply *delayed update*: actually switch only if the combined
///    stability/efficiency score of the candidate beats the current level's.
///
/// The stability score counts level switches over the recent history, so a
/// player that has been flapping stops switching — FESTIVE's signature
/// behaviour. The paper's Section IV shows FESTIVE is nevertheless unstable
/// in LTE cells because its estimates cannot see the shared radio state.
#[derive(Debug, Clone)]
pub struct Festive {
    config: FestiveConfig,
    estimator: HarmonicMean,
    segments_at_level: u32,
    recent_switches: Vec<bool>,
}

impl Festive {
    /// Creates a FESTIVE controller.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `(0, 1]` or `window` is zero.
    pub fn new(config: FestiveConfig) -> Self {
        assert!(config.p > 0.0 && config.p <= 1.0, "p must be in (0, 1]");
        let estimator = HarmonicMean::new(config.window);
        Festive {
            config,
            estimator,
            segments_at_level: 0,
            recent_switches: Vec::new(),
        }
    }

    fn score(&self, switches: usize, candidate: f64, reference: f64) -> f64 {
        let stability = (switches as f64).exp2();
        let efficiency = (candidate / reference - 1.0).abs();
        stability + self.config.alpha * efficiency
    }

    fn recent_switch_count(&self) -> usize {
        let n = self.recent_switches.len();
        self.recent_switches[n.saturating_sub(10)..]
            .iter()
            .filter(|&&s| s)
            .count()
    }
}

impl Default for Festive {
    fn default() -> Self {
        Festive::new(FestiveConfig::default())
    }
}

impl RateAdapter for Festive {
    fn on_download_complete(&mut self, sample: DownloadSample) {
        self.estimator.record(ThroughputSample {
            bytes: sample.bytes,
            elapsed: sample.elapsed,
        });
    }

    fn next_level(&mut self, ctx: &AdaptContext) -> Level {
        let Some(last) = ctx.last_level else {
            // First segment: start at the bottom, like the reference player.
            self.segments_at_level = 1;
            return ctx.ladder.lowest();
        };
        let Some(estimate) = self.estimator.estimate() else {
            self.segments_at_level += 1;
            return last;
        };

        let reference = estimate.as_bps() * self.config.p;
        let b_ref = ctx
            .ladder
            .highest_at_most_or_lowest(flare_sim::units::Rate::from_bps(reference));

        // Gradual switching: move one level at a time; up-switches are gated
        // on dwell time proportional to the current level.
        let candidate = if b_ref > last {
            let dwell_needed = self.config.k * (last.index() as u32 + 1);
            if self.segments_at_level >= dwell_needed {
                ctx.ladder.clamp(last.up())
            } else {
                last
            }
        } else if b_ref < last {
            last.down()
        } else {
            last
        };

        // Delayed update: act towards the target only if doing so wins the
        // combined stability/efficiency score. The efficiency term is
        // evaluated at the target `b_ref` (the rate the switching process
        // converges to), the stability term charges one extra switch.
        let chosen = if candidate != last {
            let cur_rate = ctx.ladder.rate(last).as_bps();
            let target_rate = ctx.ladder.rate(b_ref).as_bps();
            let reference_rate = ctx.ladder.rate(b_ref).as_bps();
            let switches = self.recent_switch_count();
            let score_stay = self.score(switches, cur_rate, reference_rate);
            let score_move = self.score(switches + 1, target_rate, reference_rate);
            if score_move < score_stay {
                candidate
            } else {
                last
            }
        } else {
            last
        };

        let switched = chosen != last;
        self.recent_switches.push(switched);
        if self.recent_switches.len() > 64 {
            self.recent_switches.remove(0);
        }
        if switched {
            self.segments_at_level = 1;
        } else {
            self.segments_at_level += 1;
        }
        chosen
    }

    fn name(&self) -> &'static str {
        "festive"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flare_has::BitrateLadder;
    use flare_sim::units::Rate;
    use flare_sim::{Time, TimeDelta};

    fn ctx<'a>(ladder: &'a BitrateLadder, last: Option<Level>, idx: u64) -> AdaptContext<'a> {
        AdaptContext {
            now: Time::from_secs(idx * 10),
            ladder,
            buffer_level: TimeDelta::from_secs(20),
            last_level: last,
            segment_duration: TimeDelta::from_secs(10),
            segment_index: idx,
        }
    }

    fn feed(f: &mut Festive, level: Level, mbps: f64, idx: u64) {
        f.on_download_complete(DownloadSample {
            completed_at: Time::from_secs(idx * 10),
            level,
            bytes: Rate::from_mbps(mbps).bytes_over(TimeDelta::from_secs(1)),
            elapsed: TimeDelta::from_secs(1),
        });
    }

    #[test]
    fn starts_at_lowest() {
        let ladder = BitrateLadder::simulation();
        let mut f = Festive::default();
        assert_eq!(f.next_level(&ctx(&ladder, None, 0)), Level::new(0));
    }

    #[test]
    fn holds_level_without_estimate() {
        let ladder = BitrateLadder::simulation();
        let mut f = Festive::default();
        assert_eq!(
            f.next_level(&ctx(&ladder, Some(Level::new(2)), 1)),
            Level::new(2)
        );
    }

    #[test]
    fn climbs_gradually_under_plentiful_bandwidth() {
        let ladder = BitrateLadder::simulation();
        let mut f = Festive::default();
        let mut level = f.next_level(&ctx(&ladder, None, 0));
        let mut max_jump = 0usize;
        for i in 1..200 {
            feed(&mut f, level, 10.0, i);
            let next = f.next_level(&ctx(&ladder, Some(level), i));
            max_jump = max_jump.max(next.index().saturating_sub(level.index()));
            level = next;
        }
        assert_eq!(level, ladder.highest(), "should eventually reach the top");
        assert!(max_jump <= 1, "up-switches must be one level at a time");
    }

    #[test]
    fn dwell_time_gates_up_switches() {
        let ladder = BitrateLadder::simulation();
        let mut f = Festive::default();
        let mut level = f.next_level(&ctx(&ladder, None, 0));
        // k=4: from level 0 the first up-switch needs 4 segments of dwell.
        let mut history = vec![level];
        for i in 1..=4 {
            feed(&mut f, level, 10.0, i);
            level = f.next_level(&ctx(&ladder, Some(level), i));
            history.push(level);
        }
        assert_eq!(history[1], Level::new(0), "too early to switch");
        assert_eq!(
            history[4],
            Level::new(1),
            "dwell satisfied by segment 4: {history:?}"
        );
    }

    #[test]
    fn drops_when_bandwidth_collapses() {
        let ladder = BitrateLadder::simulation();
        let mut f = Festive::default();
        let mut level = Level::new(4);
        // Saturate the estimator low.
        for i in 0..25 {
            feed(&mut f, level, 0.2, i);
        }
        let next = f.next_level(&ctx(&ladder, Some(level), 30));
        assert_eq!(
            next,
            level.down(),
            "down-switches are immediate (one level)"
        );
        level = next;
        let next = f.next_level(&ctx(&ladder, Some(level), 31));
        assert!(next <= level);
    }

    #[test]
    fn respects_safety_factor() {
        let ladder = BitrateLadder::simulation();
        let mut f = Festive::default();
        // Estimate exactly 1000 kbps: p=0.85 -> target 850 kbps -> level 2
        // (500 kbps), so from level 2 it must not climb to 1000 kbps.
        let mut level = Level::new(2);
        for i in 0..25 {
            feed(&mut f, level, 1.0, i);
        }
        for i in 25..60 {
            feed(&mut f, level, 1.0, i);
            level = f.next_level(&ctx(&ladder, Some(level), i));
        }
        assert_eq!(level, Level::new(2));
    }

    #[test]
    fn deterministic() {
        let ladder = BitrateLadder::simulation();
        let run = || {
            let mut f = Festive::default();
            let mut level = f.next_level(&ctx(&ladder, None, 0));
            let mut out = vec![level];
            for i in 1..100 {
                feed(&mut f, level, if i % 7 < 3 { 0.5 } else { 3.0 }, i);
                level = f.next_level(&ctx(&ladder, Some(level), i));
                out.push(level);
            }
            out
        };
        assert_eq!(run(), run());
    }
}
