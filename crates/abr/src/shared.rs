//! The assignment cell shared between a network-side controller and a
//! client-side adapter.

use std::cell::Cell;
use std::rc::Rc;

use flare_has::Level;

/// A shared, single-writer cell carrying the most recent network-assigned
/// encoding level for one flow.
///
/// The FLARE plugin reads it on every segment request; the harness writes it
/// whenever the OneAPI server publishes a new assignment. Simulations are
/// single-threaded, so a `Rc<Cell<_>>` suffices.
///
/// # Example
///
/// ```
/// use flare_abr::SharedAssignment;
/// use flare_has::Level;
///
/// let network_side = SharedAssignment::new();
/// let client_side = network_side.clone();
/// assert_eq!(client_side.get(), None);
/// network_side.set(Level::new(3));
/// assert_eq!(client_side.get(), Some(Level::new(3)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct SharedAssignment {
    cell: Rc<Cell<Option<Level>>>,
}

impl SharedAssignment {
    /// Creates an empty (unassigned) cell.
    pub fn new() -> Self {
        SharedAssignment::default()
    }

    /// Publishes a new assignment.
    pub fn set(&self, level: Level) {
        self.cell.set(Some(level));
    }

    /// Clears the assignment (e.g. the controlling server went away).
    pub fn clear(&self) {
        self.cell.set(None);
    }

    /// Reads the current assignment.
    pub fn get(&self) -> Option<Level> {
        self.cell.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_state() {
        let a = SharedAssignment::new();
        let b = a.clone();
        a.set(Level::new(2));
        assert_eq!(b.get(), Some(Level::new(2)));
        b.set(Level::new(4));
        assert_eq!(a.get(), Some(Level::new(4)));
        a.clear();
        assert_eq!(b.get(), None);
    }

    #[test]
    fn fresh_cell_is_unassigned() {
        assert_eq!(SharedAssignment::new().get(), None);
    }
}
