//! Baseline HAS adaptation algorithms the paper evaluates against FLARE.
//!
//! * [`Festive`] — the client-side FESTIVE algorithm (Jiang et al., CoNEXT
//!   2012): harmonic-mean bandwidth estimation, gradual level-ups, and a
//!   stability/efficiency tradeoff score. Parameters from the paper's
//!   Table IV: `k = 4`, `p = 0.85`, `α = 12`.
//! * [`Google`] — the MPEG-DASH/Media Source demo player the paper calls
//!   GOOGLE: long/short window estimates `b^l`, `b^s` and the rule
//!   "highest rate ≤ 0.85 · min(b^l, b^s)".
//! * [`RateBased`] — the plain client controller AVIS pairs with: highest
//!   rate at most the estimated throughput, no safety factor.
//! * [`avis`] — AVIS's network side (Chen et al., MOBICOM 2013): a per-BAI
//!   cell allocator that carves a static video partition and pushes per-flow
//!   GBR/MBR caps into the MAC, *without* telling the client — the
//!   mis-coordination FLARE is designed to eliminate.
//! * [`BufferBased`] — a BBA-0-style buffer-level controller, an extra
//!   baseline beyond the paper's set (useful in ablations).
//! * [`SharedAssignment`] — the cell through which coordinated schemes
//!   (FLARE, and AVIS's MBR echo for analysis) hand a network-chosen level
//!   to a client-side adapter.
//! * [`VersionedAssignment`] — the robust variant of that cell for
//!   unreliable control planes: sequence-numbered installs (stale ones
//!   rejected) plus the client's staleness/fallback state machine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod avis;
mod buffer_based;
mod festive;
mod google;
mod rate_based;
mod shared;
mod versioned;

pub use buffer_based::{BufferBased, BufferBasedConfig};
pub use festive::{Festive, FestiveConfig};
pub use google::{Google, GoogleConfig};
pub use rate_based::RateBased;
pub use shared::SharedAssignment;
pub use versioned::{CoordinationMode, VersionedAssignment};
