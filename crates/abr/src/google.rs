//! The MPEG-DASH/Media Source demo player — "GOOGLE" in the paper.

use flare_has::estimator::{DualWindow, ThroughputEstimator, ThroughputSample};
use flare_has::{AdaptContext, DownloadSample, Level, RateAdapter};
use flare_sim::units::Rate;

/// GOOGLE parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct GoogleConfig {
    /// Long-window length in segments (`b^l`).
    pub long_window: usize,
    /// Short-window length in segments (`b^s`).
    pub short_window: usize,
    /// Safety factor: select the highest rate `≤ safety · min(b^l, b^s)`.
    pub safety: f64,
}

impl Default for GoogleConfig {
    fn default() -> Self {
        GoogleConfig {
            long_window: 20,
            short_window: 5,
            safety: 0.85,
        }
    }
}

/// The reference player's rate control: two arithmetic-mean bandwidth
/// estimates over long- and short-term histories, then "the highest
/// available video rate ≤ 0.85 · min(b^l, b^s)" (Section IV-A).
///
/// Unlike FESTIVE there is no gradual switching and no stability score: the
/// player jumps straight to the computed level. That aggressiveness is what
/// produces the frequent re-buffering the paper observes (Figure 4b).
#[derive(Debug, Clone)]
pub struct Google {
    config: GoogleConfig,
    estimator: DualWindow,
}

impl Google {
    /// Creates the controller.
    ///
    /// # Panics
    ///
    /// Panics if the windows are invalid or `safety` is not in `(0, 1]`.
    pub fn new(config: GoogleConfig) -> Self {
        assert!(
            config.safety > 0.0 && config.safety <= 1.0,
            "safety factor must be in (0, 1]"
        );
        let estimator = DualWindow::new(config.long_window, config.short_window);
        Google { config, estimator }
    }
}

impl Default for Google {
    fn default() -> Self {
        Google::new(GoogleConfig::default())
    }
}

impl RateAdapter for Google {
    fn on_download_complete(&mut self, sample: DownloadSample) {
        self.estimator.record(ThroughputSample {
            bytes: sample.bytes,
            elapsed: sample.elapsed,
        });
    }

    fn next_level(&mut self, ctx: &AdaptContext) -> Level {
        match self.estimator.estimate() {
            None => ctx.ladder.lowest(),
            Some(est) => {
                let budget = Rate::from_bps(est.as_bps() * self.config.safety);
                ctx.ladder.highest_at_most_or_lowest(budget)
            }
        }
    }

    fn name(&self) -> &'static str {
        "google"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flare_has::BitrateLadder;
    use flare_sim::{Time, TimeDelta};

    fn ctx<'a>(ladder: &'a BitrateLadder, last: Option<Level>) -> AdaptContext<'a> {
        AdaptContext {
            now: Time::ZERO,
            ladder,
            buffer_level: TimeDelta::from_secs(15),
            last_level: last,
            segment_duration: TimeDelta::from_secs(10),
            segment_index: 0,
        }
    }

    fn feed(g: &mut Google, mbps: f64) {
        g.on_download_complete(DownloadSample {
            completed_at: Time::ZERO,
            level: Level::new(0),
            bytes: Rate::from_mbps(mbps).bytes_over(TimeDelta::from_secs(1)),
            elapsed: TimeDelta::from_secs(1),
        });
    }

    #[test]
    fn starts_at_lowest_without_history() {
        let ladder = BitrateLadder::testbed();
        let mut g = Google::default();
        assert_eq!(g.next_level(&ctx(&ladder, None)), Level::new(0));
    }

    #[test]
    fn applies_safety_factor_to_min_estimate() {
        let ladder = BitrateLadder::testbed();
        let mut g = Google::default();
        for _ in 0..10 {
            feed(&mut g, 1.0); // 1 Mbps steady
        }
        // 0.85 Mbps budget -> 790 kbps (level 3).
        assert_eq!(
            g.next_level(&ctx(&ladder, Some(Level::new(0)))),
            Level::new(3)
        );
    }

    #[test]
    fn jumps_multiple_levels_at_once() {
        let ladder = BitrateLadder::testbed();
        let mut g = Google::default();
        for _ in 0..10 {
            feed(&mut g, 4.0);
        }
        // 3.4 Mbps budget -> top of the ladder, straight from level 0:
        // the aggressiveness FESTIVE's gradual switching avoids.
        assert_eq!(
            g.next_level(&ctx(&ladder, Some(Level::new(0)))),
            Level::new(7)
        );
    }

    #[test]
    fn short_window_dips_pull_the_estimate_down() {
        let ladder = BitrateLadder::testbed();
        let mut g = Google::default();
        for _ in 0..10 {
            feed(&mut g, 4.0);
        }
        for _ in 0..5 {
            feed(&mut g, 0.4); // a short outage filling the 5-sample window
        }
        // Short window now sees 0.4 Mbps: budget 0.34 Mbps -> 310 kbps.
        assert_eq!(
            g.next_level(&ctx(&ladder, Some(Level::new(7)))),
            Level::new(1)
        );
    }

    #[test]
    #[should_panic(expected = "safety factor")]
    fn invalid_safety_panics() {
        let _ = Google::new(GoogleConfig {
            safety: 0.0,
            ..GoogleConfig::default()
        });
    }
}
