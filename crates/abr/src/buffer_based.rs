//! A buffer-based rate controller (BBA-0 style), as an extra baseline.
//!
//! Not part of the paper's comparison set, but a standard point in the HAS
//! design space (Huang et al., SIGCOMM 2014): ignore throughput estimates
//! entirely and map the current buffer level linearly onto the ladder
//! between a *reservoir* and a *cushion*. Useful for ablations that
//! separate "what does buffer feedback buy" from "what does network
//! coordination buy".

use flare_has::{AdaptContext, Level, RateAdapter};
use flare_sim::TimeDelta;

/// BBA parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BufferBasedConfig {
    /// Below this buffer level the lowest encoding is always chosen.
    pub reservoir: TimeDelta,
    /// At or above `reservoir + cushion` the highest encoding is chosen;
    /// in between the level rises linearly.
    pub cushion: TimeDelta,
}

impl Default for BufferBasedConfig {
    /// 10 s reservoir, 20 s cushion — matched to the default 30 s player
    /// request threshold.
    fn default() -> Self {
        BufferBasedConfig {
            reservoir: TimeDelta::from_secs(10),
            cushion: TimeDelta::from_secs(20),
        }
    }
}

/// The BBA-0 controller: `level = f(buffer)` with a linear map.
#[derive(Debug, Clone)]
pub struct BufferBased {
    config: BufferBasedConfig,
}

impl BufferBased {
    /// Creates a BBA controller.
    ///
    /// # Panics
    ///
    /// Panics if the cushion is zero (the map would be a step function).
    pub fn new(config: BufferBasedConfig) -> Self {
        assert!(!config.cushion.is_zero(), "cushion must be non-zero");
        BufferBased { config }
    }
}

impl Default for BufferBased {
    fn default() -> Self {
        BufferBased::new(BufferBasedConfig::default())
    }
}

impl RateAdapter for BufferBased {
    fn next_level(&mut self, ctx: &AdaptContext) -> Level {
        let buffered = ctx.buffer_level;
        if buffered <= self.config.reservoir {
            return ctx.ladder.lowest();
        }
        let above = buffered - self.config.reservoir;
        let frac = (above.as_secs_f64() / self.config.cushion.as_secs_f64()).clamp(0.0, 1.0);
        let top = ctx.ladder.highest().index() as f64;
        Level::new((frac * top).floor() as usize)
    }

    fn name(&self) -> &'static str {
        "buffer-based"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flare_has::BitrateLadder;
    use flare_sim::Time;

    fn ctx(ladder: &BitrateLadder, buffer_secs: u64) -> AdaptContext<'_> {
        AdaptContext {
            now: Time::ZERO,
            ladder,
            buffer_level: TimeDelta::from_secs(buffer_secs),
            last_level: Some(Level::new(2)),
            segment_duration: TimeDelta::from_secs(10),
            segment_index: 3,
        }
    }

    #[test]
    fn reservoir_pins_to_lowest() {
        let ladder = BitrateLadder::simulation();
        let mut b = BufferBased::default();
        assert_eq!(b.next_level(&ctx(&ladder, 0)), Level::new(0));
        assert_eq!(b.next_level(&ctx(&ladder, 10)), Level::new(0));
    }

    #[test]
    fn full_cushion_reaches_the_top() {
        let ladder = BitrateLadder::simulation();
        let mut b = BufferBased::default();
        assert_eq!(b.next_level(&ctx(&ladder, 30)), ladder.highest());
        assert_eq!(b.next_level(&ctx(&ladder, 60)), ladder.highest());
    }

    #[test]
    fn map_is_monotone_in_buffer() {
        let ladder = BitrateLadder::simulation();
        let mut b = BufferBased::default();
        let mut prev = Level::new(0);
        for secs in 0..=40 {
            let l = b.next_level(&ctx(&ladder, secs));
            assert!(l >= prev, "non-monotone at {secs}s");
            prev = l;
        }
    }

    #[test]
    fn midpoint_lands_mid_ladder() {
        let ladder = BitrateLadder::simulation();
        let mut b = BufferBased::default();
        // 20 s buffered = half the cushion -> floor(0.5 * 5) = level 2.
        assert_eq!(b.next_level(&ctx(&ladder, 20)), Level::new(2));
    }

    #[test]
    #[should_panic(expected = "cushion")]
    fn zero_cushion_panics() {
        let _ = BufferBased::new(BufferBasedConfig {
            reservoir: TimeDelta::from_secs(5),
            cushion: TimeDelta::ZERO,
        });
    }
}
