//! The plain rate-based controller AVIS pairs with on the UE.

use flare_has::estimator::{HarmonicMean, ThroughputEstimator, ThroughputSample};
use flare_has::{AdaptContext, DownloadSample, Level, RateAdapter};

/// "A simple rate adaptation algorithm on a UE that requests the highest
/// possible rate based on the estimated throughput" (Section IV-B's AVIS
/// setup) — no safety factor, no switching discipline.
///
/// The network side separately clamps the flow with an MBR, so the estimate
/// converges towards whatever cap the allocator chose; but since the cap
/// rarely coincides with a ladder rate, the client keeps straddling two
/// levels — the requested/assigned mismatch the paper attributes AVIS's
/// instability to.
#[derive(Debug, Clone)]
pub struct RateBased {
    estimator: HarmonicMean,
}

impl RateBased {
    /// Creates the controller with the given estimation window (segments).
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        RateBased {
            estimator: HarmonicMean::new(window),
        }
    }
}

impl Default for RateBased {
    /// A 5-segment window: reactive, as the AVIS client is described.
    fn default() -> Self {
        RateBased::new(5)
    }
}

impl RateAdapter for RateBased {
    fn on_download_complete(&mut self, sample: DownloadSample) {
        self.estimator.record(ThroughputSample {
            bytes: sample.bytes,
            elapsed: sample.elapsed,
        });
    }

    fn next_level(&mut self, ctx: &AdaptContext) -> Level {
        match self.estimator.estimate() {
            None => ctx.ladder.lowest(),
            Some(est) => ctx.ladder.highest_at_most_or_lowest(est),
        }
    }

    fn name(&self) -> &'static str {
        "rate-based"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flare_has::BitrateLadder;
    use flare_sim::units::Rate;
    use flare_sim::{Time, TimeDelta};

    fn ctx<'a>(ladder: &'a BitrateLadder) -> AdaptContext<'a> {
        AdaptContext {
            now: Time::ZERO,
            ladder,
            buffer_level: TimeDelta::from_secs(15),
            last_level: Some(Level::new(0)),
            segment_duration: TimeDelta::from_secs(10),
            segment_index: 1,
        }
    }

    fn feed(r: &mut RateBased, mbps: f64) {
        r.on_download_complete(DownloadSample {
            completed_at: Time::ZERO,
            level: Level::new(0),
            bytes: Rate::from_mbps(mbps).bytes_over(TimeDelta::from_secs(1)),
            elapsed: TimeDelta::from_secs(1),
        });
    }

    #[test]
    fn requests_highest_at_estimate() {
        let ladder = BitrateLadder::simulation();
        let mut r = RateBased::default();
        assert_eq!(r.next_level(&ctx(&ladder)), Level::new(0));
        for _ in 0..5 {
            feed(&mut r, 2.1);
        }
        // 2.1 Mbps estimate, no safety factor -> 2000 kbps (level 4).
        assert_eq!(r.next_level(&ctx(&ladder)), Level::new(4));
    }

    #[test]
    fn straddles_levels_when_capped_between_rungs() {
        // An MBR just above 1 Mbps keeps the estimate wobbling around the
        // 1000 kbps rung: the pick flips between levels 2 and 3.
        let ladder = BitrateLadder::simulation();
        let mut r = RateBased::default();
        let mut picks = Vec::new();
        for i in 0..20 {
            feed(&mut r, if i % 2 == 0 { 0.9 } else { 1.15 });
            picks.push(r.next_level(&ctx(&ladder)));
        }
        let distinct: std::collections::HashSet<_> = picks[5..].iter().collect();
        assert!(
            distinct.len() >= 2,
            "expected level straddling, got {picks:?}"
        );
    }
}
