//! AVIS — the network-side scheduling framework of Chen et al. (MOBICOM
//! 2013), as the paper models it in ns-3.
//!
//! AVIS manages HTTP video flows entirely inside the network: a per-cell
//! allocator measures each video flow's demand, carves a *static partition*
//! of the cell for video, and enforces per-flow GBR/MBR caps through the
//! MAC scheduler. The UE keeps running its own rate controller
//! ([`crate::RateBased`]) with no knowledge of the caps — the paper's
//! Section IV-B uses exactly this split ("we run a simple rate adaptation
//! algorithm on a UE ... and set the GBR/MBR using the scheduler in the
//! BS"), and shows the resulting mismatch is AVIS's weakness.
//!
//! *Interpretation note (see DESIGN.md):* the original AVIS estimates flow
//! demand from deep packet inspection at 150 ms epochs with an EWMA. Our
//! allocator observes per-BAI MAC throughput instead (the paper's ns-3 port
//! does the same), smooths it with the Table IV EWMA constant rescaled to
//! the BAI length, and probes upward with a fixed growth factor so capped
//! flows can still discover new capacity.

use flare_lte::{FlowClass, FlowId, IntervalReport, LinkAdaptation};
use flare_sim::units::Rate;
use flare_sim::TimeDelta;

/// AVIS allocator parameters (Table IV: `α = 0.01`, `W = 150`).
#[derive(Debug, Clone, PartialEq)]
pub struct AvisConfig {
    /// Demand-smoothing EWMA weight per `w_ms` of observation.
    pub alpha: f64,
    /// The native measurement epoch the EWMA constant refers to, in ms.
    pub w_ms: f64,
    /// Largest fraction of the cell the video partition may occupy.
    pub partition_cap: f64,
    /// Multiplicative headroom granted above smoothed demand, letting capped
    /// flows probe for more capacity.
    pub probe_gain: f64,
    /// MBR is set this factor above the GBR.
    pub mbr_headroom: f64,
    /// Initial per-flow demand before any observation.
    pub initial_demand: Rate,
}

impl Default for AvisConfig {
    fn default() -> Self {
        AvisConfig {
            alpha: 0.01,
            w_ms: 150.0,
            partition_cap: 0.8,
            probe_gain: 1.25,
            mbr_headroom: 1.1,
            initial_demand: Rate::from_kbps(400.0),
        }
    }
}

/// One flow's caps for the next BAI.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AvisAssignment {
    /// The video flow being capped.
    pub flow: FlowId,
    /// Guaranteed bit rate pushed into the MAC.
    pub gbr: Rate,
    /// Maximum bit rate pushed into the MAC.
    pub mbr: Rate,
}

/// The AVIS cell allocator.
#[derive(Debug, Clone)]
pub struct AvisAllocator {
    config: AvisConfig,
    /// Smoothed demand per flow index (bps).
    demand: Vec<f64>,
}

impl AvisAllocator {
    /// Creates an allocator.
    ///
    /// # Panics
    ///
    /// Panics if the config's fractions are out of range.
    pub fn new(config: AvisConfig) -> Self {
        assert!(
            (0.0..=1.0).contains(&config.partition_cap),
            "partition cap must be a fraction"
        );
        assert!(
            config.alpha > 0.0 && config.alpha <= 1.0,
            "alpha must be in (0, 1]"
        );
        assert!(config.probe_gain >= 1.0, "probe gain must be >= 1");
        assert!(config.mbr_headroom >= 1.0, "MBR headroom must be >= 1");
        AvisAllocator {
            config,
            demand: Vec::new(),
        }
    }

    fn ensure(&mut self, flow: FlowId) {
        if flow.index() >= self.demand.len() {
            self.demand
                .resize(flow.index() + 1, self.config.initial_demand.as_bps());
        }
    }

    /// Computes per-video-flow GBR/MBR caps from the latest MAC report.
    ///
    /// `rbs_per_tti` sizes the cell; `la` converts iTbs operating points
    /// into achievable rates for flows that were idle during the interval.
    pub fn assign(
        &mut self,
        report: &IntervalReport,
        la: &LinkAdaptation,
        rbs_per_tti: u32,
    ) -> Vec<AvisAssignment> {
        let interval = report.duration();
        if interval.is_zero() {
            return Vec::new();
        }
        // EWMA weight rescaled from the native 150 ms epoch to the BAI.
        let epochs = interval.as_secs_f64() * 1000.0 / self.config.w_ms;
        let weight = (1.0 - (1.0 - self.config.alpha).powf(epochs)).clamp(0.0, 1.0);

        let videos: Vec<_> = report
            .flows
            .iter()
            .filter(|f| f.class == FlowClass::Video)
            .collect();
        if videos.is_empty() {
            return Vec::new();
        }

        // 1. Update smoothed demand from observed throughput (probing up).
        for v in &videos {
            self.ensure(v.flow);
            let observed = v.throughput(interval).as_bps() * self.config.probe_gain;
            let observed = observed.max(self.config.initial_demand.as_bps() * 0.25);
            let d = &mut self.demand[v.flow.index()];
            *d = (1.0 - weight) * *d + weight * observed;
        }

        // 2. Size the static video partition and scale demands into it.
        let mut required_rbs = 0.0;
        let mut per_flow: Vec<(FlowId, f64, f64)> = Vec::with_capacity(videos.len());
        for v in &videos {
            let bits_per_rb = v
                .bytes_per_rb()
                .map(|b| b * 8.0)
                .unwrap_or_else(|| la.bits_per_rb(v.itbs));
            let demand = self.demand[v.flow.index()];
            // RBs per second this demand needs on this flow's channel.
            let rbs_per_sec = demand / bits_per_rb.max(1.0);
            required_rbs += rbs_per_sec;
            per_flow.push((v.flow, demand, rbs_per_sec));
        }
        let cell_rbs_per_sec = f64::from(rbs_per_tti) * 1000.0;
        let partition = self.config.partition_cap * cell_rbs_per_sec;
        let scale = if required_rbs > partition {
            partition / required_rbs
        } else {
            1.0
        };

        // 3. Emit caps.
        per_flow
            .into_iter()
            .map(|(flow, demand, _)| {
                let gbr = Rate::from_bps(demand * scale);
                let mbr = Rate::from_bps(gbr.as_bps() * self.config.mbr_headroom);
                AvisAssignment { flow, gbr, mbr }
            })
            .collect()
    }

    /// The smoothed demand currently tracked for `flow`.
    pub fn demand(&self, flow: FlowId) -> Option<Rate> {
        self.demand.get(flow.index()).map(|&d| Rate::from_bps(d))
    }
}

impl Default for AvisAllocator {
    fn default() -> Self {
        AvisAllocator::new(AvisConfig::default())
    }
}

/// Helper: the EWMA weight AVIS applies per report of length `interval`.
pub fn bai_weight(alpha: f64, w_ms: f64, interval: TimeDelta) -> f64 {
    let epochs = interval.as_secs_f64() * 1000.0 / w_ms;
    (1.0 - (1.0 - alpha).powf(epochs)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flare_lte::{FlowIntervalStats, Itbs};
    use flare_sim::units::ByteCount;
    use flare_sim::Time;

    fn report(flows: Vec<FlowIntervalStats>) -> IntervalReport {
        IntervalReport {
            start: Time::ZERO,
            end: Time::from_secs(10),
            flows,
        }
    }

    fn video(flow: u32, rbs: u64, bytes: u64, itbs: u8) -> FlowIntervalStats {
        FlowIntervalStats {
            flow: flow_id(flow),
            class: FlowClass::Video,
            rbs,
            bytes: ByteCount::new(bytes),
            itbs: Itbs::new(itbs),
        }
    }

    fn flow_id(i: u32) -> FlowId {
        // FlowId construction is crate-private in flare-lte; recover ids via
        // an eNodeB the same way the harness does.
        use flare_lte::channel::StaticChannel;
        use flare_lte::scheduler::ProportionalFair;
        use flare_lte::{CellConfig, ENodeB};
        let mut enb = ENodeB::new(CellConfig::default(), Box::new(ProportionalFair::default()));
        let mut last = None;
        for _ in 0..=i {
            last = Some(enb.add_flow(FlowClass::Video, Box::new(StaticChannel::new(Itbs::new(0)))));
        }
        last.unwrap()
    }

    #[test]
    fn caps_scale_with_observed_throughput() {
        let mut avis = AvisAllocator::default();
        let la = LinkAdaptation::default();
        // Flow 0 moved 1.25 MB in 10 s (= 1 Mbps); flow 1 moved a tenth.
        let mut assignments = Vec::new();
        for _ in 0..20 {
            assignments = avis.assign(
                &report(vec![
                    video(0, 100_000, 1_250_000, 10),
                    video(1, 10_000, 125_000, 10),
                ]),
                &la,
                50,
            );
        }
        assert_eq!(assignments.len(), 2);
        assert!(assignments[0].gbr > assignments[1].gbr);
        // Probing: the cap exceeds the observed 1 Mbps.
        assert!(assignments[0].gbr.as_mbps() > 1.0);
        assert!(assignments[0].mbr > assignments[0].gbr);
    }

    #[test]
    fn partition_cap_limits_total_allocation() {
        let mut avis = AvisAllocator::default();
        let la = LinkAdaptation::default();
        // Eight flows each claiming 5 Mbps on a poor channel (64 bits/RB):
        // the demands cannot all fit in 80% of 50k RB/s.
        let flows: Vec<_> = (0..8).map(|i| video(i, 600_000, 4_800_000, 2)).collect();
        let mut assignments = Vec::new();
        for _ in 0..30 {
            assignments = avis.assign(&report(flows.clone()), &la, 50);
        }
        // Total GBR in RB/s must not exceed the partition: each flow's
        // channel moves 64 bits/RB, so sum(gbr)/64 <= 0.8 * 50_000.
        let total_rbs_per_sec: f64 = assignments.iter().map(|a| a.gbr.as_bps() / 64.0).sum();
        assert!(
            total_rbs_per_sec <= 0.8 * 50_000.0 * 1.01,
            "partition exceeded: {total_rbs_per_sec}"
        );
    }

    #[test]
    fn idle_flows_fall_back_to_link_adaptation() {
        let mut avis = AvisAllocator::default();
        let la = LinkAdaptation::default();
        // No RBs assigned last BAI: bytes_per_rb is None, iTbs must be used.
        let assignments = avis.assign(&report(vec![video(0, 0, 0, 12)]), &la, 50);
        assert_eq!(assignments.len(), 1);
        assert!(assignments[0].gbr > Rate::ZERO);
    }

    #[test]
    fn data_flows_are_ignored() {
        let mut avis = AvisAllocator::default();
        let la = LinkAdaptation::default();
        let mut flows = vec![video(0, 1000, 100_000, 5)];
        flows.push(FlowIntervalStats {
            class: FlowClass::Data,
            ..video(1, 50_000, 5_000_000, 5)
        });
        let assignments = avis.assign(&report(flows), &la, 50);
        assert_eq!(assignments.len(), 1);
    }

    #[test]
    fn empty_interval_yields_nothing() {
        let mut avis = AvisAllocator::default();
        let la = LinkAdaptation::default();
        let empty = IntervalReport {
            start: Time::ZERO,
            end: Time::ZERO,
            flows: vec![],
        };
        assert!(avis.assign(&empty, &la, 50).is_empty());
    }

    #[test]
    fn demand_shrinks_when_flow_goes_idle() {
        let mut avis = AvisAllocator::default();
        let la = LinkAdaptation::default();
        for _ in 0..10 {
            avis.assign(&report(vec![video(0, 100_000, 1_250_000, 10)]), &la, 50);
        }
        let before = avis.demand(flow_id(0)).unwrap();
        for _ in 0..10 {
            avis.assign(&report(vec![video(0, 100, 1_000, 10)]), &la, 50);
        }
        let after = avis.demand(flow_id(0)).unwrap();
        assert!(
            after < before,
            "idle demand must decay: {after:?} vs {before:?}"
        );
    }

    #[test]
    fn bai_weight_rescales() {
        let w10s = bai_weight(0.01, 150.0, TimeDelta::from_secs(10));
        let w1s = bai_weight(0.01, 150.0, TimeDelta::from_secs(1));
        assert!(w10s > w1s);
        assert!(w10s > 0.0 && w10s < 1.0);
    }
}
