//! A composite quality-of-experience score.
//!
//! The paper evaluates with three separate quantities (average bitrate,
//! change count, underflow time) because HAS-over-TCP makes PSNR
//! meaningless. For ranking schemes it is often convenient to combine them
//! into the linear QoE model of the MPC line of work (Yin et al., SIGCOMM
//! 2015), which the paper cites:
//!
//! ```text
//! QoE = avg_bitrate − λ · avg_switch_magnitude − μ · rebuffer_ratio
//! ```
//!
//! with all rate terms in the same unit (kbps here) and the rebuffer term
//! scaled by a rate-denominated penalty.

use serde::Serialize;

/// Weights of the linear QoE model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct QoeWeights {
    /// Weight on the average magnitude of bitrate switches (dimensionless;
    /// 1.0 in the MPC paper's "balanced" instantiation).
    pub lambda: f64,
    /// Penalty per unit of rebuffer ratio, in kbps (the MPC paper uses the
    /// ladder's top rate, making one fully stalled session worth the best
    /// encoding).
    pub mu_kbps: f64,
}

impl Default for QoeWeights {
    fn default() -> Self {
        QoeWeights {
            lambda: 1.0,
            mu_kbps: 3000.0,
        }
    }
}

/// Inputs of the QoE model for one client session.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct QoeInputs {
    /// Mean nominal bitrate over downloaded segments, kbps.
    pub average_rate_kbps: f64,
    /// Mean |rate(i+1) − rate(i)| over consecutive segments, kbps.
    pub average_switch_kbps: f64,
    /// Stalled time divided by session wall-clock time, in `[0, 1]`.
    pub rebuffer_ratio: f64,
}

impl QoeInputs {
    /// Builds the inputs from a per-segment nominal-rate sequence and the
    /// session's stall accounting.
    ///
    /// # Panics
    ///
    /// Panics if `session_secs` is not positive or `rates_kbps` is empty.
    pub fn from_session(rates_kbps: &[f64], stalled_secs: f64, session_secs: f64) -> Self {
        assert!(session_secs > 0.0, "session must have positive length");
        assert!(!rates_kbps.is_empty(), "session must have segments");
        let average_rate_kbps = rates_kbps.iter().sum::<f64>() / rates_kbps.len() as f64;
        let average_switch_kbps = if rates_kbps.len() < 2 {
            0.0
        } else {
            rates_kbps
                .windows(2)
                .map(|w| (w[1] - w[0]).abs())
                .sum::<f64>()
                / (rates_kbps.len() - 1) as f64
        };
        QoeInputs {
            average_rate_kbps,
            average_switch_kbps,
            rebuffer_ratio: (stalled_secs / session_secs).clamp(0.0, 1.0),
        }
    }
}

/// Evaluates the linear QoE score (kbps-denominated; higher is better).
///
/// # Example
///
/// ```
/// use flare_metrics::{qoe_score, QoeInputs, QoeWeights};
///
/// let smooth = QoeInputs { average_rate_kbps: 800.0, average_switch_kbps: 0.0, rebuffer_ratio: 0.0 };
/// let janky = QoeInputs { average_rate_kbps: 900.0, average_switch_kbps: 400.0, rebuffer_ratio: 0.05 };
/// assert!(qoe_score(smooth, QoeWeights::default()) > qoe_score(janky, QoeWeights::default()));
/// ```
pub fn qoe_score(inputs: QoeInputs, weights: QoeWeights) -> f64 {
    inputs.average_rate_kbps
        - weights.lambda * inputs.average_switch_kbps
        - weights.mu_kbps * inputs.rebuffer_ratio
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_session_scores_its_bitrate() {
        let inputs = QoeInputs::from_session(&[790.0; 60], 0.0, 600.0);
        assert_eq!(qoe_score(inputs, QoeWeights::default()), 790.0);
    }

    #[test]
    fn switches_and_stalls_cost() {
        let stable = QoeInputs::from_session(&[500.0; 10], 0.0, 100.0);
        let flappy = QoeInputs::from_session(
            &[
                250.0, 1000.0, 250.0, 1000.0, 250.0, 1000.0, 250.0, 1000.0, 250.0, 1000.0,
            ],
            0.0,
            100.0,
        );
        let stalled = QoeInputs::from_session(&[625.0; 10], 20.0, 100.0);
        let w = QoeWeights::default();
        // All three average 500–625 kbps, but only the stable one keeps it.
        assert!(qoe_score(stable, w) > qoe_score(flappy, w));
        assert!(qoe_score(stable, w) > qoe_score(stalled, w));
    }

    #[test]
    fn single_segment_has_no_switch_term() {
        let inputs = QoeInputs::from_session(&[300.0], 0.0, 10.0);
        assert_eq!(inputs.average_switch_kbps, 0.0);
    }

    #[test]
    fn rebuffer_ratio_clamps() {
        let inputs = QoeInputs::from_session(&[100.0], 999.0, 10.0);
        assert_eq!(inputs.rebuffer_ratio, 1.0);
    }

    #[test]
    #[should_panic(expected = "positive length")]
    fn zero_session_panics() {
        let _ = QoeInputs::from_session(&[100.0], 0.0, 0.0);
    }

    proptest! {
        #[test]
        fn score_is_monotone_in_each_input(
            rate in 100.0f64..3000.0,
            switch in 0.0f64..1000.0,
            ratio in 0.0f64..1.0,
        ) {
            let w = QoeWeights::default();
            let base = qoe_score(QoeInputs { average_rate_kbps: rate, average_switch_kbps: switch, rebuffer_ratio: ratio }, w);
            let better_rate = qoe_score(QoeInputs { average_rate_kbps: rate + 10.0, average_switch_kbps: switch, rebuffer_ratio: ratio }, w);
            let worse_switch = qoe_score(QoeInputs { average_rate_kbps: rate, average_switch_kbps: switch + 10.0, rebuffer_ratio: ratio }, w);
            prop_assert!(better_rate > base);
            prop_assert!(worse_switch < base);
            if ratio < 0.99 {
                let worse_stall = qoe_score(QoeInputs { average_rate_kbps: rate, average_switch_kbps: switch, rebuffer_ratio: ratio + 0.01 }, w);
                prop_assert!(worse_stall < base);
            }
        }

        #[test]
        fn switch_magnitude_is_translation_invariant(
            rates in prop::collection::vec(100.0f64..3000.0, 2..30),
            shift in 0.0f64..500.0,
        ) {
            let a = QoeInputs::from_session(&rates, 0.0, 100.0);
            let shifted: Vec<f64> = rates.iter().map(|r| r + shift).collect();
            let b = QoeInputs::from_session(&shifted, 0.0, 100.0);
            prop_assert!((a.average_switch_kbps - b.average_switch_kbps).abs() < 1e-9);
        }
    }
}
