//! QoE and network metrics for the FLARE evaluation.
//!
//! The paper argues PSNR-style metrics are meaningless for TCP-based HAS
//! and evaluates with: average bitrate, number of bitrate changes, Jain's
//! fairness index of realized rates, buffer-underflow time, and per-flow
//! throughput — plus CDFs of all of the above across clients and runs.
//! This crate computes those quantities:
//!
//! * [`jain_index`] — Jain's fairness index.
//! * [`Cdf`] — an empirical CDF with percentile queries and fixed-grid
//!   evaluation for table output.
//! * [`Summary`] — mean / standard deviation / extrema of a sample.
//! * [`TimeSeries`] — `(time, value)` traces for the Figure 4/5-style
//!   plots, with averaging and resampling helpers.
//! * [`qoe_score`] — the linear composite QoE model (Yin et al.) for
//!   single-number scheme rankings.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cdf;
mod jain;
mod qoe;
mod summary;
mod timeseries;

pub use cdf::Cdf;
pub use jain::jain_index;
pub use qoe::{qoe_score, QoeInputs, QoeWeights};
pub use summary::Summary;
pub use timeseries::TimeSeries;
