//! Jain's fairness index.

/// Computes Jain's fairness index `(Σx)² / (n · Σx²)`.
///
/// The index is 1 when all values are equal and approaches `1/n` under
/// maximal unfairness. An empty sample or an all-zero sample returns 1
/// (vacuously fair), matching how the paper reports fairness over realized
/// bitrates.
///
/// # Example
///
/// ```
/// use flare_metrics::jain_index;
///
/// assert_eq!(jain_index(&[1.0, 1.0, 1.0]), 1.0);
/// let skewed = jain_index(&[10.0, 0.0, 0.0]);
/// assert!((skewed - 1.0 / 3.0).abs() < 1e-12);
/// ```
///
/// # Panics
///
/// Panics in debug builds if any value is negative or non-finite.
pub fn jain_index(values: &[f64]) -> f64 {
    debug_assert!(
        values.iter().all(|v| v.is_finite() && *v >= 0.0),
        "Jain's index requires non-negative finite values"
    );
    if values.is_empty() {
        return 1.0;
    }
    let sum: f64 = values.iter().sum();
    let sum_sq: f64 = values.iter().map(|v| v * v).sum();
    if sum_sq == 0.0 {
        return 1.0;
    }
    sum * sum / (values.len() as f64 * sum_sq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn equal_allocation_is_perfectly_fair() {
        assert_eq!(jain_index(&[5.0; 8]), 1.0);
        assert_eq!(jain_index(&[0.001; 3]), 1.0);
    }

    #[test]
    fn single_user_is_fair() {
        assert_eq!(jain_index(&[42.0]), 1.0);
    }

    #[test]
    fn degenerate_inputs_are_vacuously_fair() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn starving_one_user_lowers_the_index() {
        let fair = jain_index(&[1.0, 1.0, 1.0, 1.0]);
        let unfair = jain_index(&[2.0, 1.0, 1.0, 0.0]);
        assert!(unfair < fair);
    }

    #[test]
    fn known_value() {
        // (1+2+3)² / (3 · (1+4+9)) = 36/42.
        let idx = jain_index(&[1.0, 2.0, 3.0]);
        assert!((idx - 36.0 / 42.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn bounded_between_inv_n_and_one(values in prop::collection::vec(0.0f64..1e6, 1..50)) {
            let idx = jain_index(&values);
            let n = values.len() as f64;
            prop_assert!(idx <= 1.0 + 1e-12);
            prop_assert!(idx >= 1.0 / n - 1e-12);
        }

        #[test]
        fn scale_invariant(values in prop::collection::vec(0.1f64..1e3, 1..20), k in 0.1f64..100.0) {
            let scaled: Vec<f64> = values.iter().map(|v| v * k).collect();
            prop_assert!((jain_index(&values) - jain_index(&scaled)).abs() < 1e-9);
        }
    }
}
