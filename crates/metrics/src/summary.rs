//! Sample summaries: mean, deviation, extrema.

use serde::Serialize;

/// Mean / standard deviation / extrema of a sample — the "average ± std"
/// bars of Figure 11.
///
/// # Example
///
/// ```
/// use flare_metrics::Summary;
///
/// let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
/// assert_eq!(s.mean, 5.0);
/// assert_eq!(s.std_dev, 2.0);
/// assert_eq!(s.min, 2.0);
/// assert_eq!(s.max, 9.0);
/// assert_eq!(s.count, 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Number of samples.
    pub count: usize,
}

impl Summary {
    /// Summarizes `values`.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or contains non-finite entries.
    pub fn of(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "summary needs at least one value");
        assert!(
            values.iter().all(|v| v.is_finite()),
            "summary values must be finite"
        );
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Summary {
            mean,
            std_dev: var.sqrt(),
            min,
            max,
            count: values.len(),
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.2} ± {:.2} (n={})",
            self.mean, self.std_dev, self.count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_value() {
        let s = Summary::of(&[3.5]);
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.min, 3.5);
        assert_eq!(s.max, 3.5);
        assert_eq!(s.count, 1);
    }

    #[test]
    fn display_format() {
        let s = Summary::of(&[1.0, 3.0]);
        assert_eq!(s.to_string(), "2.00 ± 1.00 (n=2)");
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_panics() {
        let _ = Summary::of(&[]);
    }

    proptest! {
        #[test]
        fn invariants(values in prop::collection::vec(-1e6f64..1e6, 1..100)) {
            let s = Summary::of(&values);
            prop_assert!(s.min <= s.mean + 1e-9);
            prop_assert!(s.mean <= s.max + 1e-9);
            prop_assert!(s.std_dev >= 0.0);
            prop_assert!(s.std_dev <= (s.max - s.min) + 1e-9);
            prop_assert_eq!(s.count, values.len());
        }
    }
}
