//! Empirical cumulative distribution functions.

use serde::Serialize;

/// An empirical CDF over a finite sample.
///
/// Used for every "CDF over 160 clients" plot in the paper's Section IV-B.
///
/// # Example
///
/// ```
/// use flare_metrics::Cdf;
///
/// let cdf = Cdf::from_samples(vec![3.0, 1.0, 2.0, 4.0]);
/// assert_eq!(cdf.fraction_at_most(2.0), 0.5);
/// assert_eq!(cdf.percentile(50.0), 2.0);
/// assert_eq!(cdf.min(), 1.0);
/// assert_eq!(cdf.max(), 4.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from samples (any order).
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or contains non-finite values.
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        assert!(!samples.is_empty(), "CDF needs at least one sample");
        assert!(
            samples.iter().all(|s| s.is_finite()),
            "CDF samples must be finite"
        );
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Cdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the CDF is empty (never true for a constructed CDF).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The empirical `P(X ≤ x)`.
    pub fn fraction_at_most(&self, x: f64) -> f64 {
        let count = self.sorted.partition_point(|&s| s <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// The `p`-th percentile (nearest-rank), `p ∈ [0, 100]`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
        if p == 0.0 {
            return self.sorted[0];
        }
        let rank = ((p / 100.0) * self.sorted.len() as f64).ceil() as usize;
        self.sorted[rank.clamp(1, self.sorted.len()) - 1]
    }

    /// The median (50th percentile).
    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }

    /// Smallest sample.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Largest sample.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty")
    }

    /// Mean of the sample.
    pub fn mean(&self) -> f64 {
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// Evaluates the CDF on an `n`-point grid spanning `[min, max]`,
    /// returning `(x, P(X ≤ x))` pairs — the series a plotting script (or
    /// the `repro` binary's tables) consumes.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn grid(&self, n: usize) -> Vec<(f64, f64)> {
        assert!(n >= 2, "grid needs at least two points");
        let lo = self.min();
        let hi = self.max();
        (0..n)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (n - 1) as f64;
                (x, self.fraction_at_most(x))
            })
            .collect()
    }

    /// The sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fraction_at_most_brackets() {
        let cdf = Cdf::from_samples(vec![1.0, 2.0, 2.0, 5.0]);
        assert_eq!(cdf.fraction_at_most(0.5), 0.0);
        assert_eq!(cdf.fraction_at_most(1.0), 0.25);
        assert_eq!(cdf.fraction_at_most(2.0), 0.75);
        assert_eq!(cdf.fraction_at_most(10.0), 1.0);
    }

    #[test]
    fn percentiles() {
        let cdf = Cdf::from_samples((1..=100).map(f64::from).collect());
        assert_eq!(cdf.percentile(0.0), 1.0);
        assert_eq!(cdf.percentile(1.0), 1.0);
        assert_eq!(cdf.percentile(50.0), 50.0);
        assert_eq!(cdf.percentile(100.0), 100.0);
        assert_eq!(cdf.median(), 50.0);
    }

    #[test]
    fn summary_stats() {
        let cdf = Cdf::from_samples(vec![4.0, 1.0, 7.0]);
        assert_eq!(cdf.min(), 1.0);
        assert_eq!(cdf.max(), 7.0);
        assert_eq!(cdf.mean(), 4.0);
        assert_eq!(cdf.len(), 3);
        assert!(!cdf.is_empty());
    }

    #[test]
    fn grid_spans_range_and_is_monotone() {
        let cdf = Cdf::from_samples(vec![1.0, 3.0, 3.5, 9.0, 2.2]);
        let grid = cdf.grid(11);
        assert_eq!(grid.len(), 11);
        assert_eq!(grid[0].0, 1.0);
        assert_eq!(grid[10].0, 9.0);
        assert_eq!(grid[10].1, 1.0);
        assert!(grid.windows(2).all(|w| w[1].1 >= w[0].1));
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_sample_panics() {
        let _ = Cdf::from_samples(vec![]);
    }

    #[test]
    fn single_sample_is_every_statistic() {
        let cdf = Cdf::from_samples(vec![42.0]);
        assert_eq!(cdf.len(), 1);
        assert_eq!(cdf.min(), 42.0);
        assert_eq!(cdf.max(), 42.0);
        assert_eq!(cdf.mean(), 42.0);
        assert_eq!(cdf.median(), 42.0);
        assert_eq!(cdf.percentile(0.0), 42.0);
        assert_eq!(cdf.percentile(100.0), 42.0);
        assert_eq!(cdf.fraction_at_most(41.9), 0.0);
        assert_eq!(cdf.fraction_at_most(42.0), 1.0);
        // The grid degenerates to a flat span but stays well-formed.
        let grid = cdf.grid(3);
        assert_eq!(grid.len(), 3);
        assert!(grid.iter().all(|&(x, f)| x == 42.0 && f == 1.0));
    }

    #[test]
    fn duplicate_heavy_samples_keep_percentiles_on_samples() {
        let cdf = Cdf::from_samples(vec![5.0, 5.0, 5.0, 5.0, 9.0]);
        assert_eq!(cdf.median(), 5.0);
        assert_eq!(cdf.percentile(80.0), 5.0);
        assert_eq!(cdf.percentile(81.0), 9.0);
        assert_eq!(cdf.fraction_at_most(5.0), 0.8);
        assert_eq!(cdf.fraction_at_most(8.999), 0.8);
        assert_eq!(cdf.fraction_at_most(9.0), 1.0);
    }

    #[test]
    fn tiny_percentiles_round_up_to_the_first_sample() {
        // Nearest-rank: any p > 0 maps to rank ceil(p/100 * n) >= 1.
        let cdf = Cdf::from_samples((1..=10).map(f64::from).collect());
        assert_eq!(cdf.percentile(0.001), 1.0);
        assert_eq!(cdf.percentile(10.0), 1.0);
        assert_eq!(cdf.percentile(10.1), 2.0);
        assert_eq!(cdf.percentile(99.999), 10.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_sample_panics() {
        let _ = Cdf::from_samples(vec![1.0, f64::NAN]);
    }

    proptest! {
        #[test]
        fn cdf_is_monotone_everywhere(samples in prop::collection::vec(-1e3f64..1e3, 1..40)) {
            let cdf = Cdf::from_samples(samples);
            let mut prev = 0.0;
            let mut x = cdf.min() - 1.0;
            while x <= cdf.max() + 1.0 {
                let f = cdf.fraction_at_most(x);
                prop_assert!(f >= prev);
                prev = f;
                x += 0.37;
            }
            prop_assert_eq!(cdf.fraction_at_most(cdf.max()), 1.0);
        }

        #[test]
        fn percentile_is_a_sample(samples in prop::collection::vec(-1e3f64..1e3, 1..40), p in 0.0f64..100.0) {
            let cdf = Cdf::from_samples(samples.clone());
            let v = cdf.percentile(p);
            prop_assert!(samples.contains(&v));
        }
    }
}
