//! `(time, value)` traces for the Figure 4/5-style time-series plots.

use serde::Serialize;

/// A time series with monotone timestamps (seconds).
///
/// # Example
///
/// ```
/// use flare_metrics::TimeSeries;
///
/// let mut ts = TimeSeries::new("video rate (kbps)");
/// ts.push(0.0, 200.0);
/// ts.push(10.0, 450.0);
/// ts.push(20.0, 790.0);
/// assert_eq!(ts.mean(), 480.0);
/// assert_eq!(ts.value_at(12.0), Some(450.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TimeSeries {
    label: String,
    points: Vec<(f64, f64)>,
}

impl TimeSeries {
    /// Creates an empty series with a label for table/plot output.
    pub fn new(label: impl Into<String>) -> Self {
        TimeSeries {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// The series label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Reserves capacity for at least `additional` further samples, so
    /// callers with a known sample budget can keep `push` reallocation-free.
    pub fn reserve(&mut self, additional: usize) {
        self.points.reserve(additional);
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes the previous sample or either value is not
    /// finite.
    pub fn push(&mut self, t: f64, value: f64) {
        assert!(t.is_finite() && value.is_finite(), "samples must be finite");
        if let Some(&(last_t, _)) = self.points.last() {
            assert!(t >= last_t, "timestamps must be non-decreasing");
        }
        self.points.push((t, value));
    }

    /// The raw points.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Mean of the values (unweighted).
    ///
    /// # Panics
    ///
    /// Panics if the series is empty.
    pub fn mean(&self) -> f64 {
        assert!(!self.points.is_empty(), "mean of an empty series");
        self.points.iter().map(|(_, v)| v).sum::<f64>() / self.points.len() as f64
    }

    /// The last value at or before time `t` (step interpolation), `None`
    /// before the first sample.
    pub fn value_at(&self, t: f64) -> Option<f64> {
        let idx = self.points.partition_point(|&(pt, _)| pt <= t);
        idx.checked_sub(1).map(|i| self.points[i].1)
    }

    /// Resamples onto a fixed `step` grid from the first to the last
    /// timestamp (step interpolation) — handy for aligning series before
    /// printing them side by side.
    ///
    /// # Panics
    ///
    /// Panics if the series is empty or `step` is not positive.
    pub fn resample(&self, step: f64) -> TimeSeries {
        assert!(!self.points.is_empty(), "cannot resample an empty series");
        assert!(step > 0.0, "step must be positive");
        let mut out = TimeSeries::new(self.label.clone());
        let start = self.points[0].0;
        let end = self.points.last().expect("non-empty").0;
        let mut t = start;
        while t <= end + 1e-9 {
            out.push(t, self.value_at(t).expect("t >= start"));
            t += step;
        }
        out
    }

    /// Counts transitions to a different value — the "number of bitrate
    /// changes" metric when the series carries per-segment rates.
    pub fn change_count(&self) -> usize {
        self.points.windows(2).filter(|w| w[0].1 != w[1].1).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(vals: &[(f64, f64)]) -> TimeSeries {
        let mut ts = TimeSeries::new("test");
        for &(t, v) in vals {
            ts.push(t, v);
        }
        ts
    }

    #[test]
    fn push_and_accessors() {
        let ts = series(&[(0.0, 1.0), (1.0, 2.0)]);
        assert_eq!(ts.len(), 2);
        assert!(!ts.is_empty());
        assert_eq!(ts.label(), "test");
        assert_eq!(ts.points(), &[(0.0, 1.0), (1.0, 2.0)]);
    }

    #[test]
    fn step_interpolation() {
        let ts = series(&[(10.0, 1.0), (20.0, 2.0)]);
        assert_eq!(ts.value_at(5.0), None);
        assert_eq!(ts.value_at(10.0), Some(1.0));
        assert_eq!(ts.value_at(19.9), Some(1.0));
        assert_eq!(ts.value_at(20.0), Some(2.0));
        assert_eq!(ts.value_at(100.0), Some(2.0));
    }

    #[test]
    fn resample_grid() {
        let ts = series(&[(0.0, 1.0), (10.0, 2.0), (30.0, 3.0)]);
        let r = ts.resample(10.0);
        assert_eq!(
            r.points(),
            &[(0.0, 1.0), (10.0, 2.0), (20.0, 2.0), (30.0, 3.0)]
        );
    }

    #[test]
    fn change_counting() {
        let ts = series(&[(0.0, 1.0), (1.0, 1.0), (2.0, 2.0), (3.0, 1.0), (4.0, 1.0)]);
        assert_eq!(ts.change_count(), 2);
        assert_eq!(series(&[(0.0, 5.0)]).change_count(), 0);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn out_of_order_push_panics() {
        let mut ts = TimeSeries::new("x");
        ts.push(5.0, 1.0);
        ts.push(4.0, 1.0);
    }

    #[test]
    fn equal_timestamps_are_allowed() {
        let ts = series(&[(1.0, 1.0), (1.0, 2.0)]);
        assert_eq!(ts.value_at(1.0), Some(2.0));
    }

    #[test]
    fn resample_single_point_yields_that_point() {
        let ts = series(&[(7.0, 3.0)]);
        let r = ts.resample(10.0);
        assert_eq!(r.points(), &[(7.0, 3.0)]);
        assert_eq!(r.label(), "test");
    }

    #[test]
    fn resample_includes_an_endpoint_reached_exactly() {
        // Span 20 s with a 5 s step: the grid's last point lands exactly on
        // the final sample despite accumulated floating-point addition.
        let ts = series(&[(0.0, 1.0), (20.0, 2.0)]);
        let r = ts.resample(5.0);
        assert_eq!(
            r.points(),
            &[
                (0.0, 1.0),
                (5.0, 1.0),
                (10.0, 1.0),
                (15.0, 1.0),
                (20.0, 2.0)
            ]
        );
    }

    #[test]
    fn resample_stops_short_of_an_unreached_endpoint() {
        // Span 9 s with a 4 s step: 0, 4, 8 — the grid never overshoots the
        // last timestamp.
        let ts = series(&[(0.0, 1.0), (9.0, 2.0)]);
        let r = ts.resample(4.0);
        assert_eq!(r.points(), &[(0.0, 1.0), (4.0, 1.0), (8.0, 1.0)]);
    }

    #[test]
    fn resample_grid_starts_at_the_first_timestamp() {
        // A series that starts late resamples from its own start, not 0.
        let ts = series(&[(3.0, 1.0), (13.0, 2.0)]);
        let r = ts.resample(5.0);
        assert_eq!(r.points(), &[(3.0, 1.0), (8.0, 1.0), (13.0, 2.0)]);
    }

    #[test]
    #[should_panic(expected = "cannot resample an empty series")]
    fn resample_empty_panics() {
        let _ = TimeSeries::new("x").resample(1.0);
    }

    #[test]
    #[should_panic(expected = "step must be positive")]
    fn resample_zero_step_panics() {
        let _ = series(&[(0.0, 1.0)]).resample(0.0);
    }
}
