pub use flare_scenarios as scenarios;
