//! End-to-end guarantees of the trace subsystem (PR 2's acceptance bar):
//! same-seed runs trace byte-identically, real traces survive a JSONL
//! round trip, the registry-backed telemetry agrees with the degradation
//! report, and a run without a user recorder still yields telemetry.

use flare_core::{FaultModel, FlareConfig, RobustnessConfig};
use flare_scenarios::{CellSim, ChannelKind, SchemeKind, SimConfig};
use flare_sim::TimeDelta;
use flare_trace::{Category, TraceConfig, TraceHandle};

/// A faulty FLARE-R run: exercises every instrumented category (MAC, solver,
/// control, plugin, player, enforcement).
fn faulty_config(trace: TraceHandle) -> SimConfig {
    SimConfig::builder()
        .seed(11)
        .duration(TimeDelta::from_secs(150))
        .bai(TimeDelta::from_secs(10))
        .videos(3)
        .data_flows(1)
        .channel(ChannelKind::Static { itbs: 10 })
        .scheme(SchemeKind::Flare(
            FlareConfig::default().with_robustness(RobustnessConfig::default()),
        ))
        .faults(
            FaultModel::perfect()
                .with_drop_prob(0.3)
                .with_jitter(TimeDelta::from_millis(800)),
        )
        .trace(trace)
        .build()
}

#[test]
fn same_seed_runs_trace_byte_identically() {
    let run = || {
        let trace = TraceHandle::new(TraceConfig::debug());
        CellSim::new(faulty_config(trace.clone())).run();
        trace.to_jsonl()
    };
    let (a, b) = (run(), run());
    assert!(!a.is_empty());
    assert_eq!(a, b, "same seed must produce a byte-identical trace");
}

#[test]
fn real_traces_round_trip_through_jsonl() {
    let trace = TraceHandle::new(TraceConfig::info());
    CellSim::new(faulty_config(trace.clone())).run();
    let jsonl = trace.to_jsonl();
    let parsed = flare_trace::parse_jsonl(&jsonl).expect("trace must parse");
    assert_eq!(parsed.len(), trace.event_count());
    assert_eq!(parsed, trace.events(), "parse must reconstruct the events");

    // Every instrumented category shows up in a faulty FLARE-R run.
    for cat in [
        Category::Solver,
        Category::Control,
        Category::Plugin,
        Category::Player,
        Category::Mac,
    ] {
        assert!(
            parsed.iter().any(|e| e.category == cat),
            "no {cat} events in the trace"
        );
    }
}

#[test]
fn telemetry_counters_agree_with_the_robustness_report() {
    let result = CellSim::new(faulty_config(TraceHandle::new(TraceConfig::info()))).run();
    let r = result.robustness.expect("message path reports telemetry");
    let t = &result.telemetry;
    assert_eq!(t.counter("control.delivered"), r.delivered);
    assert_eq!(t.counter("control.dropped"), r.dropped);
    assert_eq!(t.counter("plugin.installs"), r.installs);
    assert_eq!(t.counter("plugin.fallback_bais"), r.fallback_bais);
    assert_eq!(t.counter("plugin.stale_rejections"), r.stale_rejections);
    assert!(r.dropped > 0, "the fault model must actually drop messages");
    assert!(
        t.counter("solver.solves") > 0,
        "the server must have solved at least once"
    );
    assert!(
        t.histogram("solver.wall_ms").is_some(),
        "solve wall time must be recorded"
    );
}

#[test]
fn detached_user_handle_still_yields_telemetry() {
    let user = TraceHandle::disabled();
    let result = CellSim::new(faulty_config(user.clone())).run();
    // The user's handle stays empty…
    assert!(!user.is_attached());
    assert_eq!(user.event_count(), 0);
    // …but the run's internal registry-only recorder fills the telemetry.
    assert!(!result.telemetry.is_empty());
    assert!(result.telemetry.counter("player.segments") > 0);
    assert!(result.telemetry.counter("mac.reports") > 0);
}
