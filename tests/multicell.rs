//! One OneAPI server managing two base stations (Section II-A: "A single
//! OneAPI server can manage multiple BSs, though the bitrates are
//! calculated independently for each network cell").

use flare_core::{CellId, ClientInfo, FlareConfig, MultiCellServer};
use flare_has::BitrateLadder;
use flare_lte::channel::StaticChannel;
use flare_lte::scheduler::TwoPhaseGbr;
use flare_lte::{CellConfig, ENodeB, FlowClass, FlowId, Itbs};
use flare_sim::units::ByteCount;
use flare_sim::Time;

fn cell(itbs: u8, n: usize) -> (ENodeB, Vec<FlowId>) {
    let mut enb = ENodeB::new(CellConfig::default(), Box::new(TwoPhaseGbr::default()));
    let flows = (0..n)
        .map(|_| {
            enb.add_flow(
                FlowClass::Video,
                Box::new(StaticChannel::new(Itbs::new(itbs))),
            )
        })
        .collect();
    (enb, flows)
}

fn run_bai(enb: &mut ENodeB, flows: &[FlowId], bai: u64) -> flare_lte::IntervalReport {
    for &f in flows {
        enb.push_backlog(f, ByteCount::new(50_000_000));
    }
    for ms in bai * 10_000..(bai + 1) * 10_000 {
        enb.step_tti(Time::from_millis(ms));
    }
    enb.take_report(Time::from_millis((bai + 1) * 10_000))
}

#[test]
fn one_server_drives_two_cells_end_to_end() {
    // A crowded low-quality cell and a lightly loaded high-quality cell
    // behind one server: each converges to its own regime, and adding load
    // to one never perturbs the other (per-cell independence).
    let (mut enb_a, flows_a) = cell(4, 6); // poor, crowded
    let (mut enb_b, flows_b) = cell(20, 2); // great, light

    let mut server = MultiCellServer::new(FlareConfig::default().with_delta(1));
    server.add_cell(CellId(0));
    server.add_cell(CellId(1));
    for &f in &flows_a {
        server.register_video(CellId(0), ClientInfo::new(f, BitrateLadder::simulation()));
    }
    for &f in &flows_b {
        server.register_video(CellId(1), ClientInfo::new(f, BitrateLadder::simulation()));
    }

    let mut last_a = Vec::new();
    let mut last_b = Vec::new();
    let mut b_history = Vec::new();
    for bai in 0..20u64 {
        let report_a = run_bai(&mut enb_a, &flows_a, bai);
        let report_b = run_bai(&mut enb_b, &flows_b, bai);
        let la = enb_a.link_adaptation().clone();
        last_a = server.assign(CellId(0), &report_a, &la, 50);
        last_b = server.assign(CellId(1), &report_b, &la, 50);
        // Flow ids are dense per-cell indices (they overlap across cells),
        // so enforcement routes by which assignment list an entry came from.
        for a in &last_a {
            enb_a.set_gbr(a.flow, Some(a.rate));
        }
        for a in &last_b {
            enb_b.set_gbr(a.flow, Some(a.rate));
        }
        b_history.push(last_b.iter().map(|a| a.level.index()).max().unwrap_or(0));
    }

    // The light cell saturates the ladder; the crowded one cannot.
    let max_a = last_a.iter().map(|a| a.level.index()).max().unwrap();
    let max_b = last_b.iter().map(|a| a.level.index()).max().unwrap();
    assert!(
        max_b > max_a,
        "light cell {max_b} must out-level crowded cell {max_a}"
    );
    assert_eq!(max_b, 5, "light cell should reach the ladder top");

    // Independence: re-running cell B alone, with no cell A registered,
    // yields exactly the same trajectory.
    let (mut enb_b2, flows_b2) = cell(20, 2);
    let mut solo = MultiCellServer::new(FlareConfig::default().with_delta(1));
    solo.add_cell(CellId(9));
    for &f in &flows_b2 {
        solo.register_video(CellId(9), ClientInfo::new(f, BitrateLadder::simulation()));
    }
    let mut solo_history = Vec::new();
    for bai in 0..20u64 {
        let report = run_bai(&mut enb_b2, &flows_b2, bai);
        let la = enb_b2.link_adaptation().clone();
        let assignments = solo.assign(CellId(9), &report, &la, 50);
        for a in &assignments {
            enb_b2.set_gbr(a.flow, Some(a.rate));
        }
        solo_history.push(
            assignments
                .iter()
                .map(|a| a.level.index())
                .max()
                .unwrap_or(0),
        );
    }
    assert_eq!(b_history, solo_history, "cells must be fully independent");
}
