//! Determinism contract for the sharded multi-cell engine (DESIGN.md §12).
//!
//! Every check here is byte-level: a cell's JSONL trace records its solver
//! decisions, scheduler grants, and player events with simulated-time
//! timestamps, so byte-equality of traces is equality of behavior. The
//! contract pinned below:
//!
//! 1. `MultiCellSim` at one shard is byte-identical to the pre-existing
//!    serial path (`CellSim::run` with a recorder attached).
//! 2. Sharded execution at any worker count is byte-identical to serial,
//!    for randomized cell counts, seeds, and shard counts.
//! 3. Two same-seed sharded runs are bit-identical to *each other* (no
//!    scheduling-order leakage at all).
//!
//! The runtime invariant battery (`check_invariants`) stays on throughout,
//! so lease accounting and observation checks also run under sharding.

use flare_core::FlareConfig;
use flare_lte::mobility::MobilityConfig;
use flare_scenarios::cell::cell_config;
use flare_scenarios::{CellSim, ChannelKind, MultiCellSim, SchemeKind, SimConfig};
use flare_sim::TimeDelta;
use flare_trace::{TraceConfig, TraceHandle};
use proptest::prelude::*;

/// The fig6-shaped cell (8 stationary FLARE videos) with invariants on;
/// cell `i` of a fleet gets `seed + i` exactly like `multi_cell_sweep`.
fn sharded_cell(seed: u64, cell: usize, secs: u64) -> SimConfig {
    let mut config = cell_config(
        SchemeKind::Flare(FlareConfig::default()),
        ChannelKind::StationaryRandom(MobilityConfig::default()),
        8,
        0,
        seed + cell as u64,
        TimeDelta::from_secs(secs),
    );
    config.check_invariants = true;
    config
}

/// The pre-existing serial path: one `CellSim::run` on the caller thread
/// with a recording handle attached (exactly what the golden-trace tests
/// do). This is the reference every sharded trace must reproduce.
fn serial_reference_trace(seed: u64, cell: usize, secs: u64) -> String {
    let trace = TraceHandle::new(TraceConfig::info());
    let mut config = sharded_cell(seed, cell, secs);
    config.trace = trace.clone();
    CellSim::new(config).run();
    trace.to_jsonl()
}

/// Per-cell JSONL from a `MultiCellSim` run at the given worker count.
fn sharded_traces(cells: usize, jobs: usize, seed: u64, secs: u64) -> Vec<String> {
    let outcome = MultiCellSim::new(cells, jobs, true, move |i| sharded_cell(seed, i, secs)).run();
    outcome
        .traces
        .into_iter()
        .map(|t| t.expect("tracing was requested"))
        .collect()
}

/// Acceptance gate: a 4-cell run at 4 workers is byte-identical, cell by
/// cell, to both the one-shard configuration and the pre-existing serial
/// `CellSim` path. This is also the CI `multicell-smoke` battery.
#[test]
fn four_cells_at_four_jobs_match_the_serial_path_byte_for_byte() {
    const SEED: u64 = 1;
    const SECS: u64 = 30;
    let reference: Vec<String> = (0..4)
        .map(|cell| serial_reference_trace(SEED, cell, SECS))
        .collect();
    for jobs in [1, 4] {
        let traces = sharded_traces(4, jobs, SEED, SECS);
        assert_eq!(traces.len(), 4);
        for (cell, (sharded, serial)) in traces.iter().zip(&reference).enumerate() {
            assert!(!serial.is_empty(), "cell {cell}: empty reference trace");
            assert!(
                sharded == serial,
                "cell {cell} at jobs={jobs} deviates from the serial path"
            );
        }
    }
}

/// Two sharded runs with the same seed must agree byte-for-byte: worker
/// scheduling (which varies freely between runs) must leave no residue.
#[test]
fn same_seed_sharded_runs_are_bit_identical() {
    let first = sharded_traces(8, 8, 77, 20);
    let second = sharded_traces(8, 8, 77, 20);
    assert_eq!(first, second, "same-seed sharded runs diverged");
    // Sanity: distinct cells really are distinct experiments.
    assert_ne!(first[0], first[1]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    /// The satellite contract: for random fleet shapes, sharded JSONL is
    /// byte-equal to the one-shard serial execution of the same fleet.
    #[test]
    fn sharded_jsonl_is_byte_equal_to_serial(
        cells in 1usize..=8,
        jobs in 2usize..=8,
        seed in 0u64..1_000_000,
    ) {
        let serial = sharded_traces(cells, 1, seed, 20);
        let sharded = sharded_traces(cells, jobs, seed, 20);
        prop_assert_eq!(serial.len(), cells);
        for (cell, (a, b)) in serial.iter().zip(&sharded).enumerate() {
            prop_assert!(
                a == b,
                "cell {} of {} deviates at jobs={} seed={}",
                cell, cells, jobs, seed
            );
        }
    }
}
