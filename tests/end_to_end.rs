//! End-to-end integration tests spanning every crate: cell + players +
//! adaptation + metrics, exercised through the public API only.

use flare_core::FlareConfig;
use flare_scenarios::{CellSim, ChannelKind, SchedulerKind, SchemeKind, SimConfig};
use flare_sim::TimeDelta;

fn sim(scheme: SchemeKind, itbs: u8, videos: usize, data: usize, secs: u64) -> SimConfig {
    SimConfig::builder()
        .seed(42)
        .duration(TimeDelta::from_secs(secs))
        .videos(videos)
        .data_flows(data)
        .channel(ChannelKind::Static { itbs })
        .scheduler(SchedulerKind::TwoPhaseGbr)
        .scheme(scheme)
        .build()
}

/// Cell capacity at the given iTbs with the default 2x MIMO table, kbps.
fn capacity_kbps(itbs: u8) -> f64 {
    let la = flare_lte::LinkAdaptation::default();
    la.cell_capacity(flare_lte::Itbs::new(itbs), 50).as_kbps()
}

#[test]
fn throughput_never_exceeds_cell_capacity() {
    for scheme in [
        SchemeKind::Festive,
        SchemeKind::Google,
        SchemeKind::Flare(FlareConfig::default()),
        SchemeKind::Avis(Default::default()),
    ] {
        let r = CellSim::new(sim(scheme, 8, 2, 1, 120)).run();
        let total: f64 = r
            .videos
            .iter()
            .map(|v| v.average_throughput.as_kbps())
            .chain(r.data.iter().map(|d| d.average_throughput.as_kbps()))
            .sum();
        let cap = capacity_kbps(8);
        assert!(
            total <= cap * 1.01,
            "{}: delivered {total:.0} kbps exceeds capacity {cap:.0}",
            r.scheme
        );
    }
}

#[test]
fn greedy_data_flow_saturates_leftover_capacity() {
    // One data flow and one low-rate FLARE video: the cell should be almost
    // fully utilized (the video is paced; data soaks up the slack).
    let r = CellSim::new(sim(SchemeKind::Flare(FlareConfig::default()), 8, 1, 1, 120)).run();
    let total: f64 =
        r.videos[0].average_throughput.as_kbps() + r.data[0].average_throughput.as_kbps();
    let cap = capacity_kbps(8);
    assert!(
        total >= cap * 0.95,
        "cell underutilized: {total:.0} of {cap:.0} kbps"
    );
}

#[test]
fn video_only_cell_never_exceeds_demand() {
    // With an excellent channel, players are demand-limited: delivered
    // bytes must not exceed what the selected segments contain.
    let r = CellSim::new(sim(
        SchemeKind::Flare(FlareConfig::default()),
        20,
        2,
        0,
        120,
    ))
    .run();
    for v in &r.videos {
        let demand_kbps = v.stats.average_rate.as_kbps();
        // Delivered throughput averaged over the run can't beat the nominal
        // segment rate by more than the buffering headroom.
        assert!(
            v.average_throughput.as_kbps() <= demand_kbps * 1.5 + 100.0,
            "client {} delivered {:.0} kbps for {:.0} kbps demand",
            v.index,
            v.average_throughput.as_kbps(),
            demand_kbps
        );
    }
}

#[test]
fn all_schemes_make_playback_progress() {
    for scheme in [
        SchemeKind::Festive,
        SchemeKind::Google,
        SchemeKind::Flare(FlareConfig::default()),
        SchemeKind::FlareGbrOnly(FlareConfig::default()),
        SchemeKind::Avis(Default::default()),
    ] {
        let name = scheme.name();
        let r = CellSim::new(sim(scheme, 10, 2, 0, 120)).run();
        for v in &r.videos {
            // 120 s at 10 s segments: a healthy player downloads ~12.
            assert!(
                v.stats.segments >= 8,
                "{name} client {} downloaded only {} segments",
                v.index,
                v.stats.segments
            );
            assert!(
                v.stats.playback_started_at.is_some(),
                "{name}: never started"
            );
        }
    }
}

#[test]
fn whole_stack_is_deterministic() {
    let run = |scheme: SchemeKind| {
        let r = CellSim::new(sim(scheme, 6, 3, 1, 90)).run();
        (
            r.videos
                .iter()
                .map(|v| v.rate_series.points().to_vec())
                .collect::<Vec<_>>(),
            r.data[0].throughput_series.points().to_vec(),
        )
    };
    for scheme in [
        SchemeKind::Festive,
        SchemeKind::Flare(FlareConfig::default()),
        SchemeKind::Avis(Default::default()),
    ] {
        assert_eq!(
            run(scheme.clone()),
            run(scheme.clone()),
            "{}",
            scheme.name()
        );
    }
}

#[test]
fn mobile_cell_full_pipeline() {
    let cfg = SimConfig::builder()
        .seed(8)
        .duration(TimeDelta::from_secs(120))
        .videos(4)
        .data_flows(1)
        .channel(ChannelKind::Mobile(
            flare_lte::mobility::MobilityConfig::default(),
        ))
        .scheme(SchemeKind::Flare(FlareConfig::default()))
        .build();
    let r = CellSim::new(cfg).run();
    assert_eq!(r.videos.len(), 4);
    assert!(r.solve_times.len() >= 10, "one solve per BAI expected");
    assert!(r.jain_of_video_rates() > 0.5);
}
