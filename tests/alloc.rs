//! Regression test: the per-TTI hot path must be allocation-free once the
//! cell's scratch buffers have warmed up.
//!
//! A counting global allocator wraps the system allocator; after a warm-up
//! period that lets every reused buffer (TTI flow states, grants, delivered
//! results, scheduler scratch, PF averages) reach its steady-state capacity,
//! ten thousand further TTIs must perform exactly zero heap operations.
//!
//! This test runs with `harness = false` (see the `[[test]]` entry in
//! Cargo.toml) so the process is truly single-threaded: libtest's harness
//! threads allocate at unpredictable times and would otherwise perturb the
//! global counter mid-measurement.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use flare_core::FlareConfig;
use flare_lte::channel::{StaticChannel, TriangleWave};
use flare_lte::mobility::MobilityConfig;
use flare_lte::scheduler::{
    MacScheduler, PrioritySetScheduler, ProportionalFair, RoundRobin, StrictGbrPartition,
    TwoPhaseGbr,
};
use flare_lte::{CellConfig, ENodeB, FlowClass, Itbs};
use flare_scenarios::cell::cell_config;
use flare_scenarios::{CellSim, ChannelKind, SchemeKind};
use flare_sim::units::{ByteCount, Rate};
use flare_sim::{Time, TimeDelta};

struct CountingAlloc;

static ALLOC_OPS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_OPS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_OPS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_OPS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// A loaded cell: four GBR video flows (two on moving channels, so the
/// iTbs→bits-per-RB cache is exercised through invalidations) and four
/// greedy data flows keeping every scheduler phase busy.
fn build_cell(scheduler: Box<dyn MacScheduler>) -> (ENodeB, Vec<flare_lte::FlowId>) {
    let mut enb = ENodeB::new(CellConfig::default(), scheduler);
    let mut videos = Vec::new();
    for i in 0..4u8 {
        let f = if i % 2 == 0 {
            enb.add_flow(
                FlowClass::Video,
                Box::new(StaticChannel::new(Itbs::new(6 + i))),
            )
        } else {
            enb.add_flow(
                FlowClass::Video,
                Box::new(TriangleWave::new(
                    Itbs::new(2),
                    Itbs::new(12 + i),
                    TimeDelta::from_millis(400),
                    TimeDelta::from_millis(u64::from(i) * 50),
                )),
            )
        };
        enb.set_gbr(f, Some(Rate::from_kbps(500.0)));
        enb.push_backlog(f, ByteCount::new(4_000_000));
        videos.push(f);
    }
    for i in 0..4u8 {
        enb.add_flow(
            FlowClass::Data,
            Box::new(StaticChannel::new(Itbs::new(4 + i))),
        );
    }
    (enb, videos)
}

fn main() {
    let schedulers: Vec<(&str, Box<dyn MacScheduler>)> = vec![
        ("pf", Box::new(ProportionalFair::default())),
        ("two-phase-gbr", Box::new(TwoPhaseGbr::default())),
        ("priority-set", Box::new(PrioritySetScheduler::default())),
        (
            "strict-gbr-partition",
            Box::new(StrictGbrPartition::default()),
        ),
        ("round-robin", Box::new(RoundRobin::new())),
    ];
    for (name, scheduler) in schedulers {
        let (mut enb, videos) = build_cell(scheduler);

        // Warm-up: let every scratch buffer reach steady-state capacity.
        for ms in 0..200u64 {
            let _ = enb.step_tti(Time::from_millis(ms));
        }

        let before = ALLOC_OPS.load(Ordering::Relaxed);
        let mut delivered_ttis = 0u64;
        for ms in 200..10_200u64 {
            delivered_ttis += u64::from(!enb.step_tti(Time::from_millis(ms)).is_empty());
            // Keep the video queues fed mid-measurement: ByteCount addition
            // on an existing backlog is part of the alloc-free contract.
            if ms % 1000 == 0 {
                for &f in &videos {
                    enb.push_backlog(f, ByteCount::new(500_000));
                }
            }
        }
        let ops = ALLOC_OPS.load(Ordering::Relaxed) - before;
        assert!(
            delivered_ttis > 9_000,
            "[{name}] cell went idle mid-measurement: {delivered_ttis} busy TTIs"
        );
        assert_eq!(
            ops, 0,
            "[{name}] hot path performed {ops} allocator operations over 10k TTIs"
        );
        println!("[{name}] 10k TTIs, 0 allocator operations ... ok");
    }

    // The sharded engine's steady-state contract (DESIGN.md §12): once a
    // cell's stepper has warmed up, a full between-barriers window
    // (`CellStepper::advance_to_bai`) performs zero allocator operations.
    // Shard-pool setup and BAI boundaries (solves, assignment installs,
    // control messages) may allocate; per-TTI stepping may not.
    // `MultiCellSim` drives exactly this path on its workers, so the gate
    // is measured here on the caller thread where the counter is quiet.
    let config = cell_config(
        SchemeKind::Flare(FlareConfig::default()),
        ChannelKind::StationaryRandom(MobilityConfig::default()),
        8,
        0,
        1,
        TimeDelta::from_secs(40),
    );
    let mut stepper = CellSim::new(config).into_stepper();
    for _ in 0..3 {
        stepper.advance_to_bai().expect("warm-up window");
        stepper.bai_boundary();
    }
    let before = ALLOC_OPS.load(Ordering::Relaxed);
    let boundary = stepper.advance_to_bai();
    let ops = ALLOC_OPS.load(Ordering::Relaxed) - before;
    assert!(boundary.is_some(), "measurement window must close a BAI");
    assert_eq!(
        ops, 0,
        "[stepper] one BAI window performed {ops} allocator operations"
    );
    println!("[stepper] one 10 s BAI window (10k TTIs), 0 allocator operations ... ok");
}
