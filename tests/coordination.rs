//! Tests of FLARE's coordination loop across crates: the OneAPI server,
//! the eNodeB's GBR enforcement, and the plugin's request enforcement.

use flare_abr::SharedAssignment;
use flare_core::{ClientInfo, FlareConfig, FlarePlugin, OneApiServer};
use flare_has::{BitrateLadder, Level, Mpd, Player, PlayerConfig};
use flare_lte::channel::StaticChannel;
use flare_lte::scheduler::TwoPhaseGbr;
use flare_lte::{CellConfig, ENodeB, FlowClass, Itbs};
use flare_sim::units::Rate;
use flare_sim::{Time, TimeDelta, TTI};

/// Hand-rolled coordination loop (no scenarios crate): one video client and
/// one data flow, a OneAPI server assigning every 10 s, the plugin obeying.
#[test]
fn assigned_level_is_what_the_player_requests() {
    let mut enb = ENodeB::new(CellConfig::default(), Box::new(TwoPhaseGbr::default()));
    let video = enb.add_flow(
        FlowClass::Video,
        Box::new(StaticChannel::new(Itbs::new(14))),
    );
    let data = enb.add_flow(FlowClass::Data, Box::new(StaticChannel::new(Itbs::new(14))));

    let ladder = BitrateLadder::testbed();
    let mut server = OneApiServer::new(FlareConfig::default().with_delta(1));
    server.register_video(ClientInfo::new(video, ladder.clone()));
    server.register_data(data);

    let assignment = SharedAssignment::new();
    let mpd = Mpd::new(
        "coordination".into(),
        ladder.clone(),
        TimeDelta::from_secs(10),
        TimeDelta::from_secs(400),
    );
    let mut player = Player::new(
        mpd,
        PlayerConfig::default(),
        Box::new(FlarePlugin::new(assignment.clone())),
    );

    let mut requested: Vec<(u64, Level)> = Vec::new();
    let mut assigned: Vec<(u64, Level)> = Vec::new();
    for ms in 0..300_000u64 {
        let t_end = Time::from_millis(ms + 1);
        if let Some(req) = player.step(t_end, TTI) {
            enb.push_backlog(video, req.bytes);
            requested.push((ms, req.level));
        }
        for d in enb.step_tti(Time::from_millis(ms)) {
            if d.flow == video {
                player.on_delivered(t_end, d.bytes);
            }
        }
        if (ms + 1) % 10_000 == 0 {
            let report = enb.take_report(t_end);
            let la = enb.link_adaptation().clone();
            for a in server.assign(&report, &la, 50) {
                enb.set_gbr(a.flow, Some(a.rate));
                assignment.set(a.level);
                assigned.push((ms, a.level));
            }
        }
    }

    assert!(!assigned.is_empty(), "server must assign");
    // Every request after the first assignment matches the latest
    // assignment exactly — the mis-coordination AVIS suffers cannot occur.
    let first_assign = assigned[0].0;
    for &(t, level) in requested.iter().filter(|(t, _)| *t > first_assign) {
        let current = assigned
            .iter()
            .rev()
            .find(|(at, _)| *at <= t)
            .map(|(_, l)| *l)
            .expect("an assignment precedes this request");
        assert_eq!(level, current, "request at {t} ms deviated from assignment");
    }
    // And the GBR installed in the MAC equals the assigned encoding's rate.
    let last_level = assigned.last().unwrap().1;
    assert_eq!(enb.qos(video).gbr, Some(ladder.rate(last_level)));
}

#[test]
fn stability_filter_gates_the_live_loop() {
    // delta = 4: with a 10 s BAI, the first climb (into 0-based level 1)
    // needs 4 consecutive recommendations = 40 s.
    let mut enb = ENodeB::new(CellConfig::default(), Box::new(TwoPhaseGbr::default()));
    let video = enb.add_flow(
        FlowClass::Video,
        Box::new(StaticChannel::new(Itbs::new(20))),
    );
    enb.push_backlog(video, flare_sim::units::ByteCount::new(u64::MAX / 4));

    let ladder = BitrateLadder::simulation();
    let mut server = OneApiServer::new(FlareConfig::default().with_delta(4));
    server.register_video(ClientInfo::new(video, ladder));

    let mut levels = Vec::new();
    for bai in 0..12u64 {
        for ms in bai * 10_000..(bai + 1) * 10_000 {
            enb.step_tti(Time::from_millis(ms));
        }
        let report = enb.take_report(Time::from_millis((bai + 1) * 10_000));
        let la = enb.link_adaptation().clone();
        let assignments = server.assign(&report, &la, 50);
        levels.push(assignments[0].level.index());
    }
    // Threshold to enter 0-based level 1 is 4 BAIs.
    assert!(
        levels[..3].iter().all(|&l| l == 0),
        "climbed before the threshold: {levels:?}"
    );
    assert_eq!(
        levels[3], 1,
        "4th consecutive recommendation applies: {levels:?}"
    );
    assert!(
        levels.contains(&1),
        "never climbed despite a great channel: {levels:?}"
    );
}

#[test]
fn gbr_enforcement_protects_video_from_data_pressure() {
    // A video flow assigned 1100 kbps must actually receive it even with
    // four greedy data flows hammering the cell.
    let mut enb = ENodeB::new(CellConfig::default(), Box::new(TwoPhaseGbr::default()));
    let video = enb.add_flow(
        FlowClass::Video,
        Box::new(StaticChannel::new(Itbs::new(10))),
    );
    for _ in 0..4 {
        enb.add_flow(FlowClass::Data, Box::new(StaticChannel::new(Itbs::new(10))));
    }
    enb.set_gbr(video, Some(Rate::from_kbps(1100.0)));
    enb.push_backlog(video, flare_sim::units::ByteCount::new(u64::MAX / 4));
    for ms in 0..60_000u64 {
        enb.step_tti(Time::from_millis(ms));
    }
    let report = enb.take_report(Time::from_secs(60));
    let tput = report.flow(video).unwrap().throughput(report.duration());
    assert!(
        tput.as_kbps() >= 1080.0,
        "GBR violated under data pressure: {tput}"
    );
}
