//! Failure injection and churn: the situations Section II-B's stability
//! constraint is designed for ("we do, however, permit large drops in the
//! flow's bitrate if necessary ... e.g., several new clients enter the
//! system").

use flare_abr::{CoordinationMode, VersionedAssignment};
use flare_core::{
    ClientInfo, FaultModel, FlareConfig, OneApiServer, OutageWindow, ResilientPlugin,
    RobustnessConfig,
};
use flare_has::{AdaptContext, BitrateLadder, DownloadSample, Level, RateAdapter};
use flare_lte::channel::{StaticChannel, TraceChannel};
use flare_lte::scheduler::TwoPhaseGbr;
use flare_lte::{CellConfig, ENodeB, FlowClass, FlowId, Itbs};
use flare_scenarios::{CellSim, SchemeKind, SimConfig};
use flare_sim::units::ByteCount;
use flare_sim::{Time, TimeDelta};
use proptest::prelude::*;

fn keep_backlogged(enb: &mut ENodeB, flows: &[FlowId]) {
    for &f in flows {
        enb.push_backlog(f, ByteCount::new(50_000_000));
    }
}

fn run_bai(enb: &mut ENodeB, bai: u64) -> flare_lte::IntervalReport {
    for ms in bai * 10_000..(bai + 1) * 10_000 {
        enb.step_tti(Time::from_millis(ms));
    }
    enb.take_report(Time::from_millis((bai + 1) * 10_000))
}

#[test]
fn channel_blackout_cuts_the_victim_but_not_to_zero() {
    // Four video clients plus two data flows; client 0's channel collapses
    // to iTbs 0 during t = 120..240 s while the others stay excellent.
    // With data flows present the RB shadow price is strictly positive, so
    // the optimizer cuts the newly expensive victim promptly (drops are
    // not δ-gated) — but does *not* abandon it: serving a bad channel has
    // enormous marginal utility under the α-fair objective, so the victim
    // keeps a low-but-positive tier. Recovery is δ-gated: one level at a
    // time.
    let mut enb = ENodeB::new(CellConfig::default(), Box::new(TwoPhaseGbr::default()));
    let victim_trace = TraceChannel::new(vec![
        (Time::ZERO, Itbs::new(18)),
        (Time::from_secs(120), Itbs::new(0)),
        (Time::from_secs(240), Itbs::new(18)),
    ]);
    let victim = enb.add_flow(FlowClass::Video, Box::new(victim_trace));
    let others: Vec<FlowId> = (0..3)
        .map(|_| {
            enb.add_flow(
                FlowClass::Video,
                Box::new(StaticChannel::new(Itbs::new(18))),
            )
        })
        .collect();
    let mut all = vec![victim];
    all.extend(&others);

    let mut server = OneApiServer::new(FlareConfig::default().with_delta(1));
    for &f in &all {
        server.register_video(ClientInfo::new(f, BitrateLadder::simulation()));
    }
    for _ in 0..2 {
        let d = enb.add_flow(FlowClass::Data, Box::new(StaticChannel::new(Itbs::new(18))));
        server.register_data(d);
    }

    let mut victim_levels = Vec::new();
    for bai in 0..40u64 {
        keep_backlogged(&mut enb, &all);
        let report = run_bai(&mut enb, bai);
        let la = enb.link_adaptation().clone();
        let assignments = server.assign(&report, &la, 50);
        for a in &assignments {
            enb.set_gbr(a.flow, Some(a.rate));
            if a.flow == victim {
                victim_levels.push(a.level.index());
            }
        }
    }

    let peak_before = *victim_levels[..12].iter().max().unwrap();
    assert!(
        peak_before >= 2,
        "victim should climb before the blackout: {victim_levels:?}"
    );
    // Within two BAIs of the collapse (one to observe, one to act) the
    // victim is cut below its peak and stays there for the blackout.
    let during = &victim_levels[14..24];
    assert!(
        during.iter().all(|&l| l < peak_before),
        "victim must be cut during the blackout: {victim_levels:?}"
    );
    // ... but never fully abandoned (α-fair utility floors it).
    assert!(
        during.iter().all(|&l| l <= 2),
        "victim should sit in the low tiers: {victim_levels:?}"
    );
    // Recovery climbs one step at a time (δ-gated, never skipping).
    let after = &victim_levels[24..];
    assert!(
        after.windows(2).all(|w| w[1] <= w[0] + 1),
        "recovery must not skip levels: {after:?}"
    );
    assert!(
        *after.last().unwrap() > *during.iter().max().unwrap(),
        "victim should re-climb after recovery: {victim_levels:?}"
    );
}

#[test]
fn client_churn_drops_incumbents_promptly() {
    // Four incumbents at a comfortable level; four newcomers join at BAI
    // 12. The optimizer must cut incumbent assignments within a couple of
    // BAIs (drops are not δ-gated), and newcomers enter at the bottom of
    // the ladder (at most one δ=1 step above the floor on their first
    // assignment).
    let mut enb = ENodeB::new(CellConfig::default(), Box::new(TwoPhaseGbr::default()));
    let incumbents: Vec<FlowId> = (0..4)
        .map(|_| enb.add_flow(FlowClass::Video, Box::new(StaticChannel::new(Itbs::new(6)))))
        .collect();
    let newcomers: Vec<FlowId> = (0..4)
        .map(|_| enb.add_flow(FlowClass::Video, Box::new(StaticChannel::new(Itbs::new(6)))))
        .collect();

    let mut server = OneApiServer::new(FlareConfig::default().with_delta(1));
    for &f in &incumbents {
        server.register_video(ClientInfo::new(f, BitrateLadder::simulation()));
    }

    let mut incumbent_levels: Vec<usize> = Vec::new();
    for bai in 0..24u64 {
        keep_backlogged(&mut enb, &incumbents);
        if bai >= 12 {
            keep_backlogged(&mut enb, &newcomers);
        }
        if bai == 12 {
            for &f in &newcomers {
                server.register_video(ClientInfo::new(f, BitrateLadder::simulation()));
            }
        }
        let report = run_bai(&mut enb, bai);
        let la = enb.link_adaptation().clone();
        let assignments = server.assign(&report, &la, 50);
        for a in &assignments {
            enb.set_gbr(a.flow, Some(a.rate));
        }
        let inc_max = assignments
            .iter()
            .filter(|a| incumbents.contains(&a.flow))
            .map(|a| a.level.index())
            .max()
            .unwrap();
        incumbent_levels.push(inc_max);
        if bai == 12 {
            for a in assignments.iter().filter(|a| newcomers.contains(&a.flow)) {
                assert!(
                    a.level.index() <= 1,
                    "newcomers must start near the floor, got {:?}",
                    a.level
                );
            }
        }
    }

    let before = incumbent_levels[11];
    // The cut propagates as the newcomers' one-step-per-BAI climb tightens
    // the budget; give it a few BAIs.
    let after = *incumbent_levels[16..].iter().max().unwrap();
    assert!(
        after < before,
        "incumbents must yield capacity to newcomers: {incumbent_levels:?}"
    );
}

// ---------------------------------------------------------------------------
// Control-plane faults: the coordination loop itself misbehaves.
// ---------------------------------------------------------------------------

/// A download that observed `kbps` over one second.
fn observed(kbps: u64) -> DownloadSample {
    DownloadSample {
        completed_at: Time::from_secs(1),
        level: Level::new(0),
        bytes: ByteCount::new(kbps * 1000 / 8),
        elapsed: TimeDelta::from_secs(1),
    }
}

#[test]
fn dropped_assignments_trigger_fallback_and_hysteresis_rejoins() {
    // The plugin-side state machine end to end: a client obeys fresh
    // assignments, degrades to capped self-adaptation when assignments
    // stop arriving, and rejoins only after a hysteresis streak.
    let cell = VersionedAssignment::new(3, 2);
    let mut plugin = ResilientPlugin::new(cell.clone());
    let ladder = BitrateLadder::simulation();
    let ctx = AdaptContext {
        now: Time::from_secs(50),
        ladder: &ladder,
        buffer_level: TimeDelta::from_secs(30),
        last_level: Some(Level::new(0)),
        segment_duration: TimeDelta::from_secs(10),
        segment_index: 5,
    };

    // Fresh assignment: obeyed verbatim.
    cell.install(1, 0, Level::new(3));
    cell.end_bai();
    assert_eq!(cell.mode(), CoordinationMode::Coordinated);
    assert_eq!(plugin.next_level(&ctx), Level::new(3));

    // The estimator has seen plenty of bandwidth, so once coordination is
    // lost the cap — not the estimate — must bind.
    for _ in 0..5 {
        plugin.on_download_complete(observed(5000));
    }
    cell.end_bai();
    cell.end_bai();
    assert_eq!(cell.mode(), CoordinationMode::Coordinated);
    cell.end_bai(); // third silent BAI: stale
    assert_eq!(cell.mode(), CoordinationMode::Fallback);
    assert_eq!(
        plugin.next_level(&ctx),
        Level::new(3),
        "fallback must cap at the last assigned level even with a rich estimate"
    );

    // One fresh assignment is not enough to rejoin (hysteresis)…
    cell.install(2, 40_000, Level::new(4));
    cell.end_bai();
    assert_eq!(cell.mode(), CoordinationMode::Fallback);
    // …a second consecutive fresh BAI restores coordination.
    cell.install(3, 50_000, Level::new(4));
    cell.end_bai();
    assert_eq!(cell.mode(), CoordinationMode::Coordinated);
    assert_eq!(plugin.next_level(&ctx), Level::new(4));
}

#[test]
fn server_outage_forces_fallback_and_expires_gbr_leases() {
    // A 60 s OneAPI outage in the middle of the run: reports due in the
    // window are lost, no assignments are issued, every client goes stale,
    // and the leased GBRs lapse at the eNodeB (freeing those RBs for
    // best-effort scheduling) — yet playback survives and coordination
    // resumes after the server returns.
    let outage = OutageWindow::new(Time::from_secs(100), Time::from_secs(160));
    let config = SimConfig::builder()
        .seed(5)
        .duration(TimeDelta::from_secs(260))
        .videos(4)
        .data_flows(2)
        .scheme(SchemeKind::Flare(
            FlareConfig::default().with_robustness(RobustnessConfig::default()),
        ))
        .faults(FaultModel::perfect().with_outage(outage))
        .build();
    let r = CellSim::new(config).run();
    let rb = r.robustness.expect("FLARE-R must report telemetry");

    assert!(
        rb.lost_to_outage > 0,
        "uplink reports in the window are lost"
    );
    assert!(rb.fallback_bais >= 4, "every client must fall back: {rb:?}");
    assert!(
        rb.expired_leases >= 4,
        "each video flow's lease must lapse during the outage: {rb:?}"
    );
    // Hysteresis recovery: fallback is an episode, not the steady state.
    // 26 BAIs x 4 clients; the outage covers ~6 of them per client.
    assert!(
        rb.fallback_bais <= 4 * 12,
        "clients must rejoin after the outage: {rb:?}"
    );
    assert!(rb.installs > 0, "coordination must resume after the outage");
    for v in &r.videos {
        assert!(
            v.stats.average_rate.as_kbps() > 0.0,
            "playback must survive the outage"
        );
    }
    for d in &r.data {
        assert!(d.average_throughput.as_kbps() > 0.0);
    }
}

#[test]
fn reordered_assignments_are_rejected_not_rolled_back() {
    // Half of all messages are held back 15 s — past the next BAI — so
    // newer assignments regularly overtake older ones. The versioned cell
    // must reject the late arrivals instead of rolling clients back.
    let config = SimConfig::builder()
        .seed(9)
        .duration(TimeDelta::from_secs(300))
        .videos(4)
        .scheme(SchemeKind::Flare(
            FlareConfig::default().with_robustness(RobustnessConfig::default()),
        ))
        .faults(
            FaultModel::perfect()
                .with_reorder_prob(0.5)
                .with_reorder_delay(TimeDelta::from_secs(15)),
        )
        .build();
    let r = CellSim::new(config).run();
    let rb = r.robustness.expect("FLARE-R must report telemetry");
    assert!(
        rb.reordered > 0,
        "the fault model must reorder messages: {rb:?}"
    );
    assert!(
        rb.stale_rejections > 0,
        "overtaken assignments must be rejected as stale: {rb:?}"
    );
    assert!(
        rb.installs > 0,
        "in-order assignments still install: {rb:?}"
    );
    for v in &r.videos {
        assert!(v.stats.average_rate.as_kbps() > 0.0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// While a lease is live (i.e. in fallback, bounded by the last leased
    /// assignment), the plugin never requests a level above it — no matter
    /// what the estimator has seen or how full the buffer is.
    #[test]
    fn fallback_never_requests_above_the_last_leased_level(
        cap in 0usize..6,
        rates in prop::collection::vec(50u64..10_000, 1..8),
        buffer_secs in 0u64..60,
    ) {
        let cell = VersionedAssignment::new(1, 1);
        let mut plugin = ResilientPlugin::new(cell.clone());
        cell.install(1, 0, Level::new(cap));
        cell.end_bai(); // consumes the install as fresh
        cell.end_bai(); // silent -> stale -> fallback
        prop_assert_eq!(cell.mode(), CoordinationMode::Fallback);
        for r in &rates {
            plugin.on_download_complete(observed(*r));
        }
        let ladder = BitrateLadder::simulation();
        let ctx = AdaptContext {
            now: Time::from_secs(100),
            ladder: &ladder,
            buffer_level: TimeDelta::from_secs(buffer_secs),
            last_level: Some(Level::new(0)),
            segment_duration: TimeDelta::from_secs(10),
            segment_index: 7,
        };
        let level = plugin.next_level(&ctx);
        prop_assert!(
            level.index() <= cap,
            "fallback level {} exceeds leased cap {}", level.index(), cap
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The fault-injected simulation is a pure function of its seed: two
    /// identically configured runs agree on every counter and sample.
    #[test]
    fn faulty_cellsim_is_deterministic_per_seed(seed in 1u64..500, drop_pct in 0u32..80) {
        let build = || SimConfig::builder()
            .seed(seed)
            .duration(TimeDelta::from_secs(80))
            .videos(2)
            .scheme(SchemeKind::Flare(
                FlareConfig::default().with_robustness(RobustnessConfig::default()),
            ))
            .faults(
                FaultModel::perfect()
                    .with_drop_prob(f64::from(drop_pct) / 100.0)
                    .with_jitter(TimeDelta::from_millis(500)),
            )
            .build();
        let a = CellSim::new(build()).run();
        let b = CellSim::new(build()).run();
        prop_assert_eq!(a.robustness, b.robustness);
        for (va, vb) in a.videos.iter().zip(&b.videos) {
            prop_assert_eq!(va.rate_series.points(), vb.rate_series.points());
        }
    }
}

#[test]
fn overloaded_cell_starves_gracefully() {
    // Eight clients all at iTbs 0: the whole cell carries 1.6 Mbps, a fair
    // share of 200 kbps each. The optimizer packs what fits (a mix of the
    // two lowest tiers), nothing panics, and MAC byte accounting matches
    // the cell's physical capacity.
    let mut enb = ENodeB::new(CellConfig::default(), Box::new(TwoPhaseGbr::default()));
    let flows: Vec<FlowId> = (0..8)
        .map(|_| enb.add_flow(FlowClass::Video, Box::new(StaticChannel::new(Itbs::new(0)))))
        .collect();
    let mut server = OneApiServer::new(FlareConfig::default());
    for &f in &flows {
        server.register_video(ClientInfo::new(f, BitrateLadder::simulation()));
    }
    for bai in 0..6u64 {
        keep_backlogged(&mut enb, &flows);
        let report = run_bai(&mut enb, bai);
        let la = enb.link_adaptation().clone();
        let assignments = server.assign(&report, &la, 50);
        assert_eq!(assignments.len(), 8);
        let mut budget = 0.0;
        for a in &assignments {
            assert!(
                a.level.index() <= 1,
                "no client can afford more than 250 kbps here: {:?}",
                a.level
            );
            budget += a.rate.as_kbps();
            enb.set_gbr(a.flow, Some(a.rate));
        }
        // The packed assignment must respect the 1.6 Mbps cell.
        assert!(
            budget <= 1600.0 + 1.0,
            "assignment overshoots capacity: {budget}"
        );
    }
    // The cell still moved bytes — 50 RBs/TTI at 32 bits/RB = 1.6 Mbps
    // (phase-2 PF tops flows up beyond their GBR, so the cell runs full).
    let total: u64 = flows.iter().map(|&f| enb.total_bytes(f).as_u64()).sum();
    let expected = 1_600_000.0 / 8.0 * 60.0; // bytes over 60 s
    assert!(
        (total as f64) > expected * 0.95 && (total as f64) <= expected * 1.01,
        "byte conservation violated: {total} vs ~{expected}"
    );
}
