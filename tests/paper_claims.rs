//! Shape-level checks of the paper's headline claims, on shrunk workloads.
//!
//! These are directional assertions (who wins), not absolute-number
//! matches; EXPERIMENTS.md records the full-scale numbers.

use flare_core::FlareConfig;
use flare_scenarios::cell::{mobile_run, pooled_changes, pooled_rates, repeat, static_run};
use flare_scenarios::sweeps::{alpha_sweep, delta_sweep};
use flare_scenarios::testbed;
use flare_scenarios::SchemeKind;
use flare_sim::TimeDelta;

const SHORT: TimeDelta = TimeDelta::from_secs(300);
const RUNS: usize = 2;

fn mean(v: &[f64]) -> f64 {
    v.iter().sum::<f64>() / v.len() as f64
}

#[test]
fn claim_flare_is_most_stable_in_static_cells() {
    // FLARE's total change count includes its deliberate conservative ramp
    // (one change per level climbed), so on short runs we allow that
    // allowance against AVIS; FESTIVE must simply be no more stable.
    // EXPERIMENTS.md discusses how the idealized transport substrate mutes
    // the baselines' estimate noise relative to the paper's testbed.
    let flare = repeat(RUNS, 1, 2, |s| {
        static_run(SchemeKind::Flare(FlareConfig::default()), s, SHORT)
    });
    let avis = repeat(RUNS, 1, 2, |s| {
        static_run(SchemeKind::Avis(Default::default()), s, SHORT)
    });
    let festive = repeat(RUNS, 1, 2, |s| static_run(SchemeKind::Festive, s, SHORT));

    let f = mean(&pooled_changes(&flare));
    let a = mean(&pooled_changes(&avis));
    let e = mean(&pooled_changes(&festive));
    let ramp_allowance = 4.0;
    assert!(
        f <= a + ramp_allowance,
        "FLARE changes {f:.1} vs AVIS {a:.1}"
    );
    assert!(
        f <= e + ramp_allowance,
        "FLARE changes {f:.1} vs FESTIVE {e:.1}"
    );
    // And FLARE never pays the QoE price the others do.
    assert!(
        mean(
            &flare
                .iter()
                .map(|r| r.average_underflow_secs())
                .collect::<Vec<_>>()
        ) == 0.0,
        "FLARE must not stall"
    );
}

#[test]
fn claim_flare_beats_avis_in_mobile_cells() {
    // Mobile is where the paper reports FLARE's biggest advantages over the
    // network-side baseline: +53% average bitrate and 85% fewer changes.
    // Our substrate reproduces the ordering (see EXPERIMENTS.md for the
    // full-scale numbers and the FESTIVE caveat).
    let flare = repeat(RUNS, 5, 2, |s| {
        mobile_run(SchemeKind::Flare(FlareConfig::default()), s, SHORT)
    });
    let avis = repeat(RUNS, 5, 2, |s| {
        mobile_run(SchemeKind::Avis(Default::default()), s, SHORT)
    });

    assert!(
        mean(&pooled_changes(&flare)) <= mean(&pooled_changes(&avis)) + 2.0,
        "stability: FLARE {:.1} vs AVIS {:.1}",
        mean(&pooled_changes(&flare)),
        mean(&pooled_changes(&avis))
    );
    // FLARE's coordinated assignment dominates AVIS's fairness badly
    // degraded tail (mismatched caps starve edge users).
    let flare_jain = flare_scenarios::cell::mean_jain(&flare);
    let avis_jain = flare_scenarios::cell::mean_jain(&avis);
    assert!(
        flare_jain >= avis_jain,
        "fairness: FLARE {flare_jain:.3} vs AVIS {avis_jain:.3}"
    );
    // On short runs FLARE is still inside its deliberate conservative ramp
    // (AVIS has no stability filter and jumps straight up), so the rate
    // assertion here is a loose sanity floor; the full-length ordering is
    // recorded in EXPERIMENTS.md.
    assert!(
        mean(&pooled_rates(&flare)) >= mean(&pooled_rates(&avis)) * 0.3,
        "rate: FLARE {:.0} vs AVIS {:.0}",
        mean(&pooled_rates(&flare)),
        mean(&pooled_rates(&avis))
    );
}

#[test]
fn claim_google_rebuffers_or_overreaches_in_the_testbed() {
    // GOOGLE picks the highest average rate of the three testbed schemes
    // but pays for its aggressiveness in stability and/or stalls.
    let google = testbed::run_static(SchemeKind::Google, 2);
    let festive = testbed::run_static(SchemeKind::Festive, 2);
    let flare = testbed::run_static(SchemeKind::Flare(testbed::flare_config()), 2);
    assert!(
        google.average_video_rate_kbps() >= festive.average_video_rate_kbps(),
        "google {:.0} vs festive {:.0}",
        google.average_video_rate_kbps(),
        festive.average_video_rate_kbps()
    );
    let google_pain = google.average_bitrate_changes() + google.average_underflow_secs();
    let flare_pain = flare.average_bitrate_changes() + flare.average_underflow_secs();
    assert!(
        google_pain > flare_pain,
        "google pain {google_pain:.1} vs flare {flare_pain:.1}"
    );
}

#[test]
fn claim_flare_never_underflows_in_the_testbed() {
    for dynamic in [false, true] {
        let r = if dynamic {
            testbed::run_dynamic(SchemeKind::Flare(testbed::flare_config()), 3)
        } else {
            testbed::run_static(SchemeKind::Flare(testbed::flare_config()), 3)
        };
        assert_eq!(
            r.average_underflow_secs(),
            0.0,
            "FLARE stalled in the {} scenario",
            if dynamic { "dynamic" } else { "static" }
        );
    }
}

#[test]
fn claim_alpha_monotonically_trades_classes() {
    let pts = alpha_sweep(&[0.25, 1.0, 4.0], 1, 4, 4, SHORT, 31, 1);
    assert!(pts[0].video_throughput.mean >= pts[2].video_throughput.mean);
    assert!(pts[0].data_throughput.mean <= pts[2].data_throughput.mean);
    // The middle point sits between the extremes on the data axis.
    assert!(pts[1].data_throughput.mean >= pts[0].data_throughput.mean * 0.9);
    assert!(pts[1].data_throughput.mean <= pts[2].data_throughput.mean * 1.1);
}

#[test]
fn claim_delta_monotonically_stabilizes() {
    let pts = delta_sweep(&[1, 6, 12], 1, SHORT, 32, 1);
    assert!(
        pts[2].bitrate_changes.mean <= pts[0].bitrate_changes.mean,
        "delta=12 changes {:.1} vs delta=1 {:.1}",
        pts[2].bitrate_changes.mean,
        pts[0].bitrate_changes.mean
    );
    assert!(
        pts[2].average_rate.mean <= pts[0].average_rate.mean + 1.0,
        "delta=12 rate {:.0} vs delta=1 {:.0}",
        pts[2].average_rate.mean,
        pts[0].average_rate.mean
    );
}

#[test]
fn claim_fairness_is_uniformly_high() {
    // The coordinated and client-side schemes stay near-fair; AVIS's
    // mismatched caps visibly hurt its tail in our substrate (the paper
    // reports ~0.99 for all three — see EXPERIMENTS.md for the discussion),
    // so it only gets a sanity floor here.
    for (scheme, floor) in [
        (SchemeKind::Flare(FlareConfig::default()), 0.7),
        (SchemeKind::Festive, 0.7),
        (SchemeKind::Avis(Default::default()), 0.35),
    ] {
        let runs = repeat(RUNS, 9, 2, |s| static_run(scheme.clone(), s, SHORT));
        let jain = flare_scenarios::cell::mean_jain(&runs);
        assert!(jain > floor, "{} Jain {jain:.3}", scheme.name());
    }
}
