//! Golden-trace regression tests.
//!
//! Each test re-runs one representative experiment configuration with a
//! recorder attached (`flare_scenarios::tracing::representative_trace`) and
//! compares the resulting JSONL event stream byte-for-byte against a
//! checked-in snapshot under `tests/golden/`. Traces are timestamped with
//! simulated time only, so these are exact-equality checks: any drift in
//! scheduling, solver decisions, RNG streams, or trace formatting fails the
//! diff.
//!
//! To refresh the snapshots after an intentional behavior change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden
//! ```
//!
//! then commit the rewritten files with a note explaining why the traces
//! legitimately changed.

use std::path::PathBuf;

use flare_scenarios::experiments::ExperimentParams;
use flare_scenarios::tracing::representative_trace;
use flare_sim::TimeDelta;

fn golden_params() -> ExperimentParams {
    ExperimentParams {
        runs: 1,
        duration: TimeDelta::from_secs(60),
        testbed_duration: TimeDelta::from_secs(60),
        seed: 1,
        jobs: 1,
    }
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join(format!("{name}.jsonl"))
}

fn check_golden(experiment: &str) {
    let artifact =
        representative_trace(experiment, &golden_params()).expect("experiment is traceable");
    assert!(artifact.events > 0, "{experiment}: trace must not be empty");
    let path = golden_path(experiment);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &artifact.jsonl).expect("write golden snapshot");
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); run UPDATE_GOLDEN=1 cargo test --test golden",
            path.display()
        )
    });
    assert!(
        artifact.jsonl == golden,
        "{experiment}: trace deviates from {} — if the change is intentional, \
         refresh with UPDATE_GOLDEN=1 cargo test --test golden",
        path.display()
    );
}

/// FLARE on the static cell: the coordination loop with a perfect control
/// plane (assignments, GBR enforcement, player events).
#[test]
fn golden_static_flare_trace() {
    check_golden("fig6");
}

/// FLARE-R under message loss and jitter: the message path with versioned
/// installs, fallback transitions, and lease expiries.
#[test]
fn golden_faulty_flare_trace() {
    check_golden("faults");
}

/// The GBR-only ablation: server-side enforcement without plugin obedience.
#[test]
fn golden_gbr_only_trace() {
    check_golden("ablation");
}
