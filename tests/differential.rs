//! Differential tests between the two GBR scheduler variants.
//!
//! `TwoPhaseGbr` (the paper's femtocell MAC) and `StrictGbrPartition` (the
//! AVIS-style static-slicing ablation) differ only in how they treat GBR
//! credit: strict partitioning reserves a sliced flow's RBs even when the
//! flow has nothing queued, and never lets GBR flows compete for leftover
//! capacity. When no flow ever holds GBR credit the two code paths collapse
//! to the same PF allocation, so a whole simulation run must come out
//! byte-identical — a strong end-to-end check that the strict scheduler
//! diverges *only* through the modelled AVIS waste and not through some
//! accidental bookkeeping difference.
//!
//! The scheduler-level counterpart (randomized per-TTI grants) lives in
//! `crates/lte/src/scheduler/two_phase.rs`.

use flare_scenarios::{CellSim, ChannelKind, SchedulerKind, SchemeKind, SimConfig};
use flare_sim::TimeDelta;

fn run_with(scheduler: SchedulerKind, scheme: SchemeKind, seed: u64) -> flare_scenarios::RunResult {
    let config = SimConfig::builder()
        .seed(seed)
        .duration(TimeDelta::from_secs(180))
        .bai(TimeDelta::from_secs(10))
        .videos(3)
        .data_flows(1)
        .channel(ChannelKind::Static { itbs: 10 })
        .scheme(scheme)
        .scheduler(scheduler)
        .build();
    CellSim::new(config).run()
}

/// FESTIVE is client-side only: no network-side assignments, hence no GBR
/// leases, hence zero credit at every TTI. Per-flow delivered bytes (and
/// every derived series) must match exactly between the two schedulers.
#[test]
fn schedulers_are_identical_end_to_end_without_gbr_leases() {
    for seed in [7, 19] {
        let two_phase = run_with(SchedulerKind::TwoPhaseGbr, SchemeKind::Festive, seed);
        let strict = run_with(SchedulerKind::StrictPartition, SchemeKind::Festive, seed);
        assert_eq!(
            two_phase.videos.len(),
            strict.videos.len(),
            "seed {seed}: video counts differ"
        );
        for (a, b) in two_phase.videos.iter().zip(&strict.videos) {
            assert_eq!(
                a.throughput_series.points(),
                b.throughput_series.points(),
                "seed {seed}: video {} delivered bytes diverged",
                a.index
            );
            assert_eq!(
                a.rate_series.points(),
                b.rate_series.points(),
                "seed {seed}: video {} rate decisions diverged",
                a.index
            );
        }
        for (a, b) in two_phase.data.iter().zip(&strict.data) {
            assert_eq!(
                a.throughput_series.points(),
                b.throughput_series.points(),
                "seed {seed}: data {} delivered bytes diverged",
                a.index
            );
        }
    }
}

/// Under FLARE the optimizer installs GBR leases, so players that idle with
/// a full buffer leave reserved-but-unused RBs behind under strict
/// partitioning. The schedulers MUST diverge here — that waste is the point
/// of the ablation (paper Section I-B), not a bug to fix.
#[test]
fn schedulers_diverge_once_gbr_leases_exist() {
    let scheme = || SchemeKind::Flare(flare_core::FlareConfig::default());
    let two_phase = run_with(SchedulerKind::TwoPhaseGbr, scheme(), 7);
    let strict = run_with(SchedulerKind::StrictPartition, scheme(), 7);
    let identical = two_phase
        .videos
        .iter()
        .zip(&strict.videos)
        .all(|(a, b)| a.throughput_series.points() == b.throughput_series.points())
        && two_phase
            .data
            .iter()
            .zip(&strict.data)
            .all(|(a, b)| a.throughput_series.points() == b.throughput_series.points());
    assert!(
        !identical,
        "strict partitioning should waste idle-slice RBs under FLARE"
    );
}
