//! Protocol-level integration: the plugin ↔ server message flow drives the
//! live optimization exactly like direct registration does.

use flare_core::messages::{AssignmentMsg, ClientHello, StatsReportMsg};
use flare_core::{ClientInfo, ClientPrefs, FlareConfig, OneApiServer};
use flare_has::{BitrateLadder, Level};
use flare_lte::channel::StaticChannel;
use flare_lte::scheduler::TwoPhaseGbr;
use flare_lte::{CellConfig, ENodeB, FlowClass, Itbs};
use flare_sim::units::{ByteCount, Rate};
use flare_sim::Time;

fn cell_with_video(itbs: u8) -> (ENodeB, flare_lte::FlowId) {
    let mut enb = ENodeB::new(CellConfig::default(), Box::new(TwoPhaseGbr::default()));
    let video = enb.add_flow(
        FlowClass::Video,
        Box::new(StaticChannel::new(Itbs::new(itbs))),
    );
    enb.push_backlog(video, ByteCount::new(u64::MAX / 4));
    (enb, video)
}

#[test]
fn hello_round_trip_preserves_server_behaviour() {
    // Register one server from a ClientInfo directly, another from the
    // serialized hello; both must produce identical assignments.
    let prefs = ClientPrefs {
        max_rate: Some(Rate::from_kbps(800.0)),
        min_level: Some(Level::new(1)),
        ..ClientPrefs::default()
    };

    let (mut enb, video) = cell_with_video(16);
    let info = ClientInfo::new(video, BitrateLadder::testbed()).with_prefs(prefs);

    let hello = ClientHello::from_client_info(&info);
    let rebuilt = hello.clone().into_client_info(video);
    assert_eq!(rebuilt, info);

    let mut direct = OneApiServer::new(FlareConfig::default().with_delta(0));
    direct.register_video(info);
    let mut via_wire = OneApiServer::new(FlareConfig::default().with_delta(0));
    via_wire.register_video(rebuilt);

    for bai in 0..5u64 {
        for ms in bai * 10_000..(bai + 1) * 10_000 {
            enb.step_tti(Time::from_millis(ms));
        }
        let report = enb.take_report(Time::from_millis((bai + 1) * 10_000));
        let la = enb.link_adaptation().clone();
        let a = direct.assign(&report, &la, 50);
        let b = via_wire.assign(&report, &la, 50);
        assert_eq!(a, b, "wire-rebuilt client diverged at BAI {bai}");
        // The disclosed cap binds in both.
        assert!(a[0].rate <= Rate::from_kbps(800.0));
        // The disclosed floor binds too.
        assert!(a[0].level >= Level::new(1));
        enb.push_backlog(video, ByteCount::new(u64::MAX / 8));
    }
}

#[test]
fn stats_report_message_matches_mac_counters() {
    let (mut enb, video) = cell_with_video(10);
    for ms in 0..10_000u64 {
        enb.step_tti(Time::from_millis(ms));
    }
    let report = enb.take_report(Time::from_secs(10));
    let msg = StatsReportMsg::from(&report);
    assert_eq!(msg.start_ms, 0);
    assert_eq!(msg.end_ms, 10_000);
    let flow_msg = msg
        .flows
        .iter()
        .find(|f| f.flow_id == video.index() as u32)
        .expect("video flow present");
    let stats = report.flow(video).unwrap();
    assert_eq!(flow_msg.rbs, stats.rbs);
    assert_eq!(flow_msg.bytes, stats.bytes.as_u64());
    assert_eq!(flow_msg.itbs, stats.itbs.index());
}

#[test]
fn assignment_messages_carry_the_decision() {
    let (mut enb, video) = cell_with_video(14);
    let mut server = OneApiServer::new(FlareConfig::default().with_delta(0));
    server.register_video(ClientInfo::new(video, BitrateLadder::simulation()));
    for ms in 0..10_000u64 {
        enb.step_tti(Time::from_millis(ms));
    }
    let report = enb.take_report(Time::from_secs(10));
    let la = enb.link_adaptation().clone();
    let assignments = server.assign(&report, &la, 50);
    let msgs: Vec<AssignmentMsg> = assignments.iter().map(AssignmentMsg::from).collect();
    assert_eq!(msgs.len(), 1);
    assert_eq!(msgs[0].flow_id, video.index() as u32);
    assert_eq!(msgs[0].level as usize, assignments[0].level.index());
    assert_eq!(
        msgs[0].gbr_kbps,
        assignments[0].rate.as_kbps().round() as u32
    );
}
