//! Integration tests for the parallel execution harness: the determinism
//! contract (serial and parallel sweeps are bit-identical) and the runtime
//! invariant layer wired through the experiment entry points.

use flare_harness::{run_indexed, serial_parallel_divergence};
use flare_scenarios::experiments::ExperimentParams;
use flare_scenarios::{ChannelKind, SchemeKind, SimConfig};
use flare_sim::TimeDelta;
use flare_trace::{TraceConfig, TraceHandle};

/// Builds one fully traced run inside the job closure — the simulation, its
/// RNG streams, and the recorder are all owned by the job, which is what
/// makes parallel execution bit-identical to serial.
fn traced_run(seed: u64, check_invariants: bool) -> String {
    let trace = TraceHandle::new(TraceConfig::info());
    let config = SimConfig::builder()
        .seed(seed)
        .duration(TimeDelta::from_secs(60))
        .bai(TimeDelta::from_secs(10))
        .videos(3)
        .data_flows(1)
        .channel(ChannelKind::Static { itbs: 10 })
        .scheme(SchemeKind::Flare(flare_core::FlareConfig::default()))
        .trace(trace.clone())
        .check_invariants(check_invariants)
        .build();
    let _ = flare_scenarios::CellSim::new(config).run();
    trace.to_jsonl()
}

#[test]
fn parallel_traces_are_byte_identical_to_serial() {
    // The tentpole acceptance criterion: same-seed serial vs `--jobs 4`
    // execution produces byte-identical per-run JSONL traces.
    let divergence = serial_parallel_divergence(6, 4, |i| traced_run(100 + i as u64, false));
    assert_eq!(divergence, None, "run {divergence:?} diverged");
}

#[test]
fn parallel_traces_stay_identical_with_invariants_on() {
    // The invariant layer is observation-only, so it must not perturb the
    // determinism contract either.
    let divergence = serial_parallel_divergence(4, 4, |i| traced_run(200 + i as u64, true));
    assert_eq!(divergence, None, "run {divergence:?} diverged");
}

#[test]
fn parallel_sweep_results_match_serial_results() {
    let job = |i: usize| {
        let r = flare_scenarios::cell::static_run(
            SchemeKind::Flare(flare_core::FlareConfig::default()),
            300 + i as u64,
            TimeDelta::from_secs(90),
        );
        (
            r.videos
                .iter()
                .map(|v| v.rate_series.points().to_vec())
                .collect::<Vec<_>>(),
            r.average_video_rate_kbps(),
        )
    };
    let serial = run_indexed(4, 1, job);
    let parallel = run_indexed(4, 4, job);
    assert_eq!(serial, parallel);
}

#[test]
fn quick_experiments_pass_with_invariants_enabled() {
    // `repro --check-invariants` routes through this process-global
    // default; every shipped experiment must run clean under the battery.
    // (The checks are observation-only, so the flag leaking to concurrently
    // running tests in this binary cannot change their results.)
    flare_scenarios::set_default_check_invariants(true);
    let p = ExperimentParams {
        runs: 1,
        duration: TimeDelta::from_secs(120),
        testbed_duration: TimeDelta::from_secs(120),
        seed: 5,
        jobs: 2,
    };
    let table = flare_scenarios::experiments::table1(p);
    assert_eq!(table.rows.len(), 3);
    let fig = flare_scenarios::experiments::fig6(p);
    assert_eq!(fig.panels.len(), 3);
    let faults = flare_scenarios::faults::faults(p);
    assert!(!faults.points.is_empty());
    flare_scenarios::set_default_check_invariants(false);
    assert!(!flare_scenarios::default_check_invariants());
}

#[test]
fn hard_invariant_failure_aborts_a_parallel_sweep() {
    // A violation in any run must surface through the pool, not vanish on
    // a worker thread.
    let outcome = std::panic::catch_unwind(|| {
        run_indexed(3, 2, |i| {
            let config = SimConfig::builder()
                .seed(400 + i as u64)
                .duration(TimeDelta::from_secs(10))
                .videos(1)
                .data_flows(0)
                .channel(ChannelKind::Static { itbs: 10 })
                .scheme(SchemeKind::Festive)
                .check_invariants(true)
                .build();
            let mut sim = flare_scenarios::CellSim::new(config);
            if i == 1 {
                sim.debug_enb_mut().debug_inflate_reported_grants(51);
            }
            sim.run().average_video_rate_kbps()
        })
    });
    let payload = outcome.expect_err("the injected violation must propagate");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(
        msg.contains("rb_conservation"),
        "panic payload should name the invariant: {msg}"
    );
}
