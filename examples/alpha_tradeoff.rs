//! The α knob: trading data-flow throughput against video bitrate in one
//! unified allocation (the paper's Figure 11).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example alpha_tradeoff
//! ```

use flare_scenarios::sweeps::alpha_sweep;
use flare_sim::TimeDelta;

fn main() {
    let alphas = [0.25, 0.5, 1.0, 2.0, 4.0];
    let points = alpha_sweep(&alphas, 2, 4, 4, TimeDelta::from_secs(300), 11, 0);

    println!("4 video + 4 data UEs, FLARE, 2 runs x 300 s per point\n");
    println!(
        "{:<8}{:>26}{:>26}",
        "alpha", "video throughput (kbps)", "data throughput (kbps)"
    );
    for p in &points {
        println!(
            "{:<8}{:>26}{:>26}",
            p.alpha,
            p.video_throughput.to_string(),
            p.data_throughput.to_string()
        );
    }
    println!("\nAs alpha grows, the optimizer's log(1 - r) term gets heavier:");
    println!("data flows smoothly gain throughput at the expense of video");
    println!("bitrates — one knob balancing both traffic classes, instead of");
    println!("AVIS-style static partitioning.");
}
