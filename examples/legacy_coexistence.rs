//! Incremental deployment: FLARE clients sharing a cell with conventional
//! HAS players, which FLARE services "like other data traffic without any
//! bitrate guarantees" (the paper's Section V).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example legacy_coexistence
//! ```

use flare_core::FlareConfig;
use flare_lte::mobility::MobilityConfig;
use flare_scenarios::{CellSim, ChannelKind, SchemeKind, SimConfig};
use flare_sim::TimeDelta;

fn main() {
    let config = SimConfig::builder()
        .seed(17)
        .duration(TimeDelta::from_secs(600))
        .videos(8)
        .legacy_video(4) // the last four players run plain FESTIVE
        .channel(ChannelKind::StationaryRandom(MobilityConfig::default()))
        .scheme(SchemeKind::Flare(FlareConfig::default()))
        .build();
    let result = CellSim::new(config).run();

    println!("8 video UEs: 4 FLARE-coordinated, 4 conventional (FESTIVE)\n");
    println!(
        "{:<10}{:<14}{:>12}{:>10}{:>12}",
        "client", "kind", "rate(kbps)", "changes", "stalled(s)"
    );
    for v in &result.videos {
        let kind = if v.index < 4 { "FLARE" } else { "conventional" };
        println!(
            "{:<10}{:<14}{:>12.0}{:>10}{:>12.1}",
            v.index,
            kind,
            v.stats.average_rate.as_kbps(),
            v.stats.bitrate_changes,
            v.stats.underflow_time.as_secs_f64(),
        );
    }
    println!(
        "\nFLARE clients keep GBR-protected, stable service; conventional\n\
         players still stream (as best-effort traffic) without disturbing\n\
         them — the paper's incremental-deployment story, plus the adoption\n\
         incentive: switching to FLARE buys guaranteed rates."
    );
}
