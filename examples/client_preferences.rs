//! Client preferences through the OneAPI protocol: a data-cost cap and a
//! skimming user, folded into FLARE's optimization as constraints
//! (Section II-B, "Incorporating client information").
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example client_preferences
//! ```

use flare_core::{ClientPrefs, FlareConfig};
use flare_scenarios::{CellSim, ChannelKind, SchedulerKind, SchemeKind, SimConfig};
use flare_sim::units::Rate;
use flare_sim::TimeDelta;

fn main() {
    // Three FLARE clients on an excellent shared channel:
    //   client 0 — no preferences (gets whatever the optimizer picks),
    //   client 1 — capped at 800 kbps to limit mobile data cost,
    //   client 2 — disclosed as skimming (frequent seeks): pinned to the
    //              minimum rate so radio resources aren't wasted.
    let config = SimConfig::builder()
        .seed(3)
        .duration(TimeDelta::from_secs(300))
        .videos(3)
        .data_flows(0)
        .ladder(flare_has::BitrateLadder::testbed())
        .channel(ChannelKind::Static { itbs: 20 })
        .scheduler(SchedulerKind::TwoPhaseGbr)
        .scheme(SchemeKind::Flare(FlareConfig::default()))
        .prefs_for(
            1,
            ClientPrefs {
                max_rate: Some(Rate::from_kbps(800.0)),
                ..ClientPrefs::default()
            },
        )
        .prefs_for(
            2,
            ClientPrefs {
                skimming: true,
                ..ClientPrefs::default()
            },
        )
        .build();

    let result = CellSim::new(config).run();
    let labels = ["unconstrained", "800 kbps cap", "skimming"];
    for (v, label) in result.videos.iter().zip(labels) {
        let max_seen = v
            .rate_series
            .points()
            .iter()
            .map(|(_, r)| *r)
            .fold(0.0f64, f64::max);
        println!(
            "client {} ({label:<14}): avg {:.0} kbps, peak {:.0} kbps, {} changes",
            v.index,
            v.stats.average_rate.as_kbps(),
            max_seen,
            v.stats.bitrate_changes,
        );
    }
    println!("\nThe cap holds the second client at or below 790 kbps (the highest");
    println!("ladder rate under 800), and the skimming client never leaves 200 kbps,");
    println!("freeing resources that the optimizer reassigns to client 0.");
}
