//! Coordinated cell-level adaptation at scale: FLARE vs AVIS vs FESTIVE on
//! the paper's mobile (vehicular) cell scenario, with per-client CDFs.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example coordinated_cell
//! ```

use flare_metrics::Cdf;
use flare_scenarios::cell::{mobile_run, pooled_changes, pooled_rates, repeat, schemes};
use flare_sim::TimeDelta;

fn main() {
    let duration = TimeDelta::from_secs(600);
    let n_runs = 4;

    println!("mobile cell scenario: 8 vehicular UEs, {n_runs} runs x {duration}");
    println!(
        "{:<10}{:>12}{:>12}{:>12}{:>14}{:>14}",
        "scheme", "rate p25", "rate p50", "rate p75", "changes p50", "changes p90"
    );
    for scheme in schemes() {
        let name = scheme.name().to_owned();
        let runs = repeat(n_runs, 100, 0, |s| mobile_run(scheme.clone(), s, duration));
        let rates = Cdf::from_samples(pooled_rates(&runs));
        let changes = Cdf::from_samples(pooled_changes(&runs));
        println!(
            "{:<10}{:>12.0}{:>12.0}{:>12.0}{:>14.1}{:>14.1}",
            name,
            rates.percentile(25.0),
            rates.percentile(50.0),
            rates.percentile(75.0),
            changes.percentile(50.0),
            changes.percentile(90.0),
        );
    }
    println!("\n(Per the paper's Figure 7, FLARE dominates AVIS on bitrate,");
    println!("stability, and fairness — which reproduces here. FESTIVE's");
    println!("bitrates are higher than in the paper because this substrate's");
    println!("idealized transport feeds it unrealistically clean estimates;");
    println!("see EXPERIMENTS.md for the analysis.)");
}
