//! The femtocell testbed head-to-head: FESTIVE vs GOOGLE vs FLARE on the
//! static and dynamic channel profiles of the paper's Section IV-A.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example femtocell_testbed
//! ```

use flare_scenarios::testbed::{run_dynamic, run_static, schemes};
use flare_scenarios::RunResult;

fn row(label: &str, runs: &[(String, RunResult)], f: impl Fn(&RunResult) -> String) {
    print!("{label:<36}");
    for (_, r) in runs {
        print!("{:>10}", f(r));
    }
    println!();
}

fn report(title: &str, runs: Vec<(String, RunResult)>) {
    println!("\n=== {title} ===");
    print!("{:<36}", "metric");
    for (name, _) in &runs {
        print!("{name:>10}");
    }
    println!();
    row("average video rate (kbps)", &runs, |r| {
        format!("{:.0}", r.average_video_rate_kbps())
    });
    row("buffer underflow time (s)", &runs, |r| {
        format!("{:.1}", r.average_underflow_secs())
    });
    row("bitrate changes", &runs, |r| {
        format!("{:.1}", r.average_bitrate_changes())
    });
    row("Jain's fairness index", &runs, |r| {
        format!("{:.3}", r.jain_of_video_rates())
    });
    row("data flow throughput (kbps)", &runs, |r| {
        format!("{:.0}", r.average_data_throughput_kbps())
    });
}

fn main() {
    let seed = 1;
    let static_runs: Vec<(String, RunResult)> = schemes()
        .into_iter()
        .map(|s| (s.name().to_owned(), run_static(s, seed)))
        .collect();
    report(
        "static scenario (iTbs pinned at 2, 10 minutes)",
        static_runs,
    );

    let dynamic_runs: Vec<(String, RunResult)> = schemes()
        .into_iter()
        .map(|s| (s.name().to_owned(), run_dynamic(s, seed)))
        .collect();
    report(
        "dynamic scenario (iTbs 1 -> 12 -> 1 over 4 minutes)",
        dynamic_runs,
    );
}
